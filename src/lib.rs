//! # smat-repro
//!
//! Facade crate for the Rust reproduction of *High Performance Unstructured
//! SpMM Computation Using Tensor Cores* (Okanovic et al., SC 2024) — the
//! SMaT library — including every substrate it depends on:
//!
//! * [`formats`] — CSR/CSC/COO/BCSR/SR-BCRS/dense formats and software
//!   half-precision scalars;
//! * [`reorder`] — block-densifying row/column permutations (Jaccard
//!   clustering, RCM, Saad, Gray-code);
//! * [`gpusim`] — a functional + analytical-timing simulator of the NVIDIA
//!   A100 execution model (SMs, warps, shared memory, Tensor Core MMA);
//! * [`smat`] — the SMaT pipeline and kernel (the paper's contribution);
//! * [`baselines`] — cuSPARSE-, DASP-, Magicube-, cuBLAS-, and
//!   Sputnik-like comparison kernels running on the same simulator;
//! * [`workloads`] — deterministic matrix generators (band, RMAT, meshes,
//!   SuiteSparse mimics);
//! * [`diag`] / [`analyze`] — typed diagnostics, the format invariant
//!   verifiers, and the kernel-schedule hazard analyzer backing the
//!   pipeline's pre-flight hook and the `analyze` example CLI;
//! * [`shard`] — 1D row partitioning of oversized operands into
//!   nnz-balanced device-sized shards, the fan-out/join primitive, and the
//!   cooperative multi-device executor;
//! * [`serve`] — the async multi-tenant serving engine (prepared-matrix
//!   registry, plan cache, request batcher, two-level device-pool
//!   scheduler with shard-aware fan-out);
//! * [`trace`] — the structured tracing/metrics layer (dual-clock span
//!   recorder, Chrome Trace export, summary tables) threaded through the
//!   pipeline, simulator, and serving engine;
//! * [`sanitize`] — the concurrency verification layer: checked sync
//!   primitives feeding a lockdep-style lock-order analysis, plus a
//!   deterministic interleaving model checker the serving protocols are
//!   proved against (C001–C008 diagnostics).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use smat_repro::prelude::*;
//!
//! // A small random sparse matrix in CSR, in FP16.
//! let a = smat_repro::workloads::random_uniform::<F16>(256, 256, 0.95, 42);
//! let b = Dense::<F16>::from_fn(256, 8, |i, j| F16::from_f32(((i + j) % 3) as f32));
//!
//! // The full SMaT pipeline: reorder -> BCSR -> simulated TC kernel.
//! let engine = Smat::prepare(&a, SmatConfig::default());
//! let run = engine.spmm(&b);
//!
//! assert_eq!(run.c.shape(), (256, 8));
//! assert!(run.report.elapsed_ms() > 0.0);
//! ```

pub use smat_analyze as analyze;
pub use smat_baselines as baselines;
pub use smat_diag as diag;
pub use smat_formats as formats;
pub use smat_gpusim as gpusim;
pub use smat_reorder as reorder;
pub use smat_sanitize as sanitize;
pub use smat_serve as serve;
pub use smat_shard as shard;
pub use smat_trace as trace;
pub use smat_workloads as workloads;

/// The SMaT core library (re-export of the `smat` crate).
pub use smat;

/// Commonly used items in one import.
pub mod prelude {
    pub use smat::{autotune, PreflightMode, Schedule, Smat, SmatConfig, TuneSpace};
    pub use smat_diag::{DiagCode, Diagnostic, DiagnosticsExt, Severity};
    pub use smat_formats::{Bcsr, Bf16, Csr, Dense, Element, Permutation, F16};
    pub use smat_gpusim::DeviceConfig;
    pub use smat_reorder::ReorderAlgorithm;
}
