//! Reordering explorer: compare every preprocessing scheme of §IV-C on a
//! matrix — either a Table I mimic by name, or a Matrix Market file.
//!
//! Run with:
//!   cargo run --release --example reorder_explorer -- cop20k_A
//!   cargo run --release --example reorder_explorer -- path/to/matrix.mtx

use smat_formats::{mtx, Csr};
use smat_reorder::evaluate_reordering;
use smat_repro::prelude::*;
use smat_repro::{reorder as sr, workloads};

fn load(arg: &str) -> (String, Csr<F16>) {
    if arg.ends_with(".mtx") {
        let m = mtx::read_csr_path::<F16>(arg).expect("readable Matrix Market file");
        (arg.to_string(), m)
    } else {
        let mimic = workloads::by_name(arg)
            .unwrap_or_else(|| panic!("unknown matrix '{arg}'; use a Table I name or a .mtx path"));
        (format!("{} (mimic)", mimic.name), mimic.generate(0.05))
    }
}

fn main() {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "cop20k_A".to_string());
    let (name, a) = load(&arg);
    println!(
        "{name}: {}x{}, {} nnz, {:.3}% sparse",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        a.sparsity() * 100.0
    );

    let algs = [
        ReorderAlgorithm::Identity,
        ReorderAlgorithm::JaccardRows { tau: 0.7 },
        ReorderAlgorithm::JaccardRowsCols { tau: 0.7 },
        ReorderAlgorithm::ReverseCuthillMcKee,
        ReorderAlgorithm::Saad { tau: 0.6 },
        ReorderAlgorithm::GrayCode,
        ReorderAlgorithm::Bisection,
        ReorderAlgorithm::DegreeSort,
    ];

    println!(
        "\n{:<18} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "algorithm", "blocks", "reduction", "mean/row", "stddev", "fill ratio"
    );
    for alg in algs {
        let (reordering, effect) = evaluate_reordering(&a, alg, 16, 16);
        let permuted = reordering.apply(&a);
        let bcsr = Bcsr::from_csr(&permuted, 16, 16);
        println!(
            "{:<18} {:>10} {:>9.2}x {:>10.2} {:>10.2} {:>11.1}%",
            alg.name(),
            effect.after.nblocks,
            effect.block_reduction(),
            effect.after.mean,
            effect.after.stddev,
            bcsr.fill_ratio() * 100.0
        );
    }

    // Show the end-to-end impact of the best-practice configuration.
    let b = workloads::dense_b::<F16>(a.ncols(), 8);
    let with = Smat::prepare(&a, SmatConfig::default()).spmm(&b);
    let without = Smat::prepare(&a, SmatConfig::default().without_reordering()).spmm(&b);
    assert_eq!(with.c, without.c, "reordering must not change the product");
    println!(
        "\nend-to-end (N=8): original {:.4} ms -> jaccard-rows {:.4} ms ({:.2}x)",
        without.report.elapsed_ms(),
        with.report.elapsed_ms(),
        without.report.elapsed_ms() / with.report.elapsed_ms()
    );

    // Jaccard threshold sensitivity, as a bonus.
    println!("\njaccard-rows threshold sweep:");
    for tau in [0.3, 0.5, 0.7, 0.9] {
        let (_, effect) = evaluate_reordering(&a, ReorderAlgorithm::JaccardRows { tau }, 16, 16);
        println!(
            "  tau={tau}: {} blocks ({:.2}x)",
            effect.after.nblocks,
            effect.block_reduction()
        );
    }
    let _ = sr::stats::count_blocks(&a, 16, 16);
}
