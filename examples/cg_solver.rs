//! Conjugate gradient on the simulated device: HPCG (§V-D) ranks machines
//! with CG on a 3D stencil, and every iteration is one SpMV — the workload
//! SMaT's inspector/executor split amortizes perfectly: the matrix is
//! prepared once and multiplied hundreds of times.
//!
//! The solve runs in f32 (CG needs more dynamic range than f16; mixed
//! precision would add a correction loop), on the 3D Poisson stencil.
//!
//! Run with: `cargo run --release --example cg_solver`

use smat::{Smat, SmatConfig};
use smat_reorder::ReorderAlgorithm;
use smat_repro::workloads;

fn dot(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

fn main() {
    // SPD system: 3D Poisson with Dirichlet boundary (the stencil matrix is
    // symmetric positive definite).
    let (nx, ny, nz) = (12, 12, 12);
    let a = workloads::mesh3d::<f32>(nx, ny, nz);
    let n = a.nrows();
    println!("3D Poisson {nx}x{ny}x{nz}: n = {n}, nnz = {}", a.nnz());

    // Manufactured solution: x* alternating pattern, b = A x*.
    let x_star: Vec<f32> = (0..n).map(|i| ((i % 5) as f32) - 2.0).collect();
    let engine = Smat::prepare(
        &a,
        SmatConfig {
            reorder: ReorderAlgorithm::Identity, // stencil is already ordered
            ..SmatConfig::default()
        },
    );
    let (b, _) = engine.spmv(&x_star);

    // Plain CG, every A·p through the simulated SMaT SpMV.
    let mut x = vec![0f32; n];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);
    let rs0 = rs_old;
    let mut sim_ms = 0.0;
    let mut iterations = 0;

    for it in 1..=500 {
        let (ap, report) = engine.spmv(&p);
        sim_ms += report.elapsed_ms();
        let alpha = rs_old / dot(&p, &ap);
        for i in 0..n {
            x[i] += (alpha * p[i] as f64) as f32;
            r[i] -= (alpha * ap[i] as f64) as f32;
        }
        let rs_new = dot(&r, &r);
        iterations = it;
        if (rs_new / rs0).sqrt() < 1e-6 {
            break;
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + (beta * p[i] as f64) as f32;
        }
        rs_old = rs_new;
    }

    let err = x
        .iter()
        .zip(&x_star)
        .map(|(&xi, &xs)| (xi - xs).abs())
        .fold(0f32, f32::max);
    println!(
        "CG converged in {iterations} iterations, relative residual < 1e-6, \
         max |x - x*| = {err:.3e}"
    );
    println!(
        "simulated device time: {sim_ms:.3} ms total, {:.4} ms per SpMV \
         (one-time preparation: {:.2} ms host)",
        sim_ms / iterations as f64,
        engine.prepare_wall_ms()
    );
    assert!(err < 1e-2, "CG must recover the manufactured solution");
    assert!(iterations < 500, "CG must converge");
}
