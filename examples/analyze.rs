//! `smat-analyze` as a CLI: run the format verifiers and the
//! kernel-schedule hazard analyzer over a Matrix Market file and print the
//! typed diagnostics, human-readable or as JSON.
//!
//! Usage:
//!
//! ```text
//! cargo run --example analyze -- data/sample.mtx
//! cargo run --example analyze -- data/corrupt.mtx --format json
//! cargo run --example analyze -- data/sample.mtx --device tiny --block 96x96
//! ```
//!
//! Exit status: 0 when no error-severity finding is present, 1 when the
//! launch would be rejected, 2 on usage or parse errors.

use std::process::ExitCode;

use smat_repro::analyze::{
    analyze_launch, render_human, render_json, verify_bcsr, verify_csr, DiagnosticsExt,
    ScheduleSpec,
};
use smat_repro::formats::{mtx, Bcsr, Csr, F16};
use smat_repro::gpusim::{DeviceConfig, Gpu, SmemLayout};
use smat_repro::prelude::*;
use smat_repro::smat::build_launch_config;
use smat_repro::smat::{OptFlags, Schedule};

struct Args {
    path: String,
    json: bool,
    device: DeviceConfig,
    block_h: usize,
    block_w: usize,
    layout: SmemLayout,
    n: usize,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: analyze <matrix.mtx> [--format human|json] [--device a100|h100|tiny]\n\
         \u{20}               [--block HxW] [--layout row-major|swizzle|padded] [--n COLS]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: String::new(),
        json: false,
        device: DeviceConfig::a100_sxm4_40gb(),
        block_h: 16,
        block_w: 16,
        layout: SmemLayout::RowMajor,
        n: 8,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--format" => {
                args.json = match value("--format")?.as_str() {
                    "json" => true,
                    "human" => false,
                    other => return Err(format!("unknown format '{other}'")),
                }
            }
            "--device" => {
                args.device = match value("--device")?.as_str() {
                    "a100" => DeviceConfig::a100_sxm4_40gb(),
                    "h100" => DeviceConfig::h100_sxm5_80gb(),
                    "tiny" => DeviceConfig::tiny_test_device(),
                    other => return Err(format!("unknown device '{other}'")),
                }
            }
            "--block" => {
                let v = value("--block")?;
                let (h, w) = v
                    .split_once('x')
                    .ok_or_else(|| format!("--block expects HxW, got '{v}'"))?;
                args.block_h = h.parse().map_err(|e| format!("bad block height: {e}"))?;
                args.block_w = w.parse().map_err(|e| format!("bad block width: {e}"))?;
            }
            "--layout" => {
                args.layout = match value("--layout")?.as_str() {
                    "row-major" => SmemLayout::RowMajor,
                    "swizzle" => SmemLayout::XorSwizzle,
                    "padded" => SmemLayout::Padded,
                    other => return Err(format!("unknown layout '{other}'")),
                }
            }
            "--n" => {
                args.n = value("--n")?
                    .parse()
                    .map_err(|e| format!("bad column count: {e}"))?;
            }
            _ if args.path.is_empty() && !arg.starts_with("--") => args.path = arg,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.path.is_empty() {
        return Err("missing input file".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };

    let csr: Csr<F16> = match mtx::read_csr_path(&args.path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: cannot read '{}': {e}", args.path);
            return ExitCode::from(2);
        }
    };

    // Pass 1: format invariants of the parsed CSR.
    let mut diags = verify_csr(&csr);

    // Pass 2: convert to BCSR the way the pipeline would and verify it.
    let bcsr = match Bcsr::try_from_csr(&csr, args.block_h, args.block_w) {
        Ok(b) => b,
        Err(conv) => {
            diags.extend(conv);
            report(&diags, &args);
            return ExitCode::from(1);
        }
    };
    diags.extend(verify_bcsr(&bcsr));

    // Pass 3: hazards of the exact launch the SMaT kernel would configure.
    let gpu = Gpu::new(args.device.clone());
    let launch_cfg = build_launch_config(&gpu, &bcsr, args.n, OptFlags::all(), Schedule::Static2D);
    let spec = ScheduleSpec {
        smem_layout: args.layout,
        ..ScheduleSpec::default()
    };
    diags.extend(analyze_launch(
        &bcsr,
        args.n,
        &launch_cfg,
        &args.device,
        &spec,
    ));

    if !args.json {
        println!(
            "{}: {}x{}, {} nonzeros -> {} BCSR blocks of {}x{} on {}",
            args.path,
            csr.nrows(),
            csr.ncols(),
            csr.nnz(),
            bcsr.nblocks(),
            args.block_h,
            args.block_w,
            args.device.name,
        );
    }
    report(&diags, &args);
    if diags.has_errors() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn report(diags: &[Diagnostic], args: &Args) {
    if args.json {
        println!("{}", render_json(diags));
    } else {
        print!("{}", render_human(diags));
    }
}
