//! HPCG-style regular workload (§V-D motivation): SpMM on matrices from
//! grid computations — a 2D Poisson stencil and a family of band matrices —
//! plus a live fit of the paper's performance model (Eq. 1).
//!
//! Run with: `cargo run --release --example hpcg_band`

use smat::{PerfModel, PerfSample, Smat};
use smat_reorder::ReorderAlgorithm;
use smat_repro::prelude::*;
use smat_repro::workloads;

fn main() {
    // --- Part 1: the HPCG-like stencil matrix -----------------------------
    let stencil = workloads::mesh2d::<F16>(64, 64);
    let b = workloads::dense_b::<F16>(stencil.ncols(), 8);
    let cfg = SmatConfig {
        // Grid matrices are already optimally ordered; skip reordering.
        reorder: ReorderAlgorithm::Identity,
        ..SmatConfig::default()
    };
    let run = Smat::prepare(&stencil, cfg.clone()).spmm(&b);
    assert_eq!(run.c, stencil.spmm_reference(&b));
    println!(
        "2D Poisson 64x64 grid: {} nnz, {} blocks, {:.4} ms, {:.1} GFLOP/s",
        stencil.nnz(),
        run.report.nblocks,
        run.report.elapsed_ms(),
        run.report.gflops()
    );

    // --- Part 1b: the HPCG 3D stencil ---------------------------------------
    let stencil3d = workloads::mesh3d::<F16>(16, 16, 16);
    let b3 = workloads::dense_b::<F16>(stencil3d.ncols(), 8);
    let run3 = Smat::prepare(&stencil3d, cfg.clone()).spmm(&b3);
    assert_eq!(run3.c, stencil3d.spmm_reference(&b3));
    println!(
        "3D Poisson 16^3 grid:  {} nnz, {} blocks, {:.4} ms, {:.1} GFLOP/s",
        stencil3d.nnz(),
        run3.report.nblocks,
        run3.report.elapsed_ms(),
        run3.report.gflops()
    );

    // --- Part 2: band sweep + performance model fit -----------------------
    let n = 2048;
    println!("\nband {n}x{n} sweep (N=8):");
    println!(
        "{:>10} {:>10} {:>12} {:>12}",
        "bandwidth", "n_e", "time ms", "GFLOP/s"
    );
    let b = workloads::dense_b::<F16>(n, 8);
    let mut samples = Vec::new();
    for bw in [16usize, 32, 64, 128, 256, 512] {
        let a = workloads::band::<F16>(n, bw);
        let run = Smat::prepare(&a, cfg.clone()).spmm(&b);
        println!(
            "{:>10} {:>10} {:>12.4} {:>12.1}",
            bw,
            run.report.nblocks,
            run.report.elapsed_ms(),
            run.report.gflops()
        );
        samples.push(PerfSample {
            n_e: run.report.nblocks as f64,
            t_ms: run.report.elapsed_ms(),
        });
    }

    let model = PerfModel::fit(&samples);
    println!(
        "\nEq. (1) fit: T_tot = {:.6} us * n_e + {:.4} ms   (R^2 = {:.4})",
        model.t_e_ms * 1e3,
        model.t_init_ms,
        model.r2
    );
    println!(
        "mean relative error across the sweep: {:.2}%",
        model.mean_relative_error(&samples) * 100.0
    );
    assert!(model.r2 > 0.95, "the linear model should explain the sweep");
}
