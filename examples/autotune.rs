//! Autotuning the SMaT configuration per matrix: block shape and reordering
//! are matrix-dependent (the padding-vs-block-count trade-off of §II-B3),
//! and preparation is a one-time inspector cost — so search the space with
//! simulated dry-runs before committing.
//!
//! Run with: `cargo run --release --example autotune [matrix-name]`

use smat::{autotune, SmatConfig, TuneSpace};
use smat_repro::prelude::*;
use smat_repro::workloads;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "shipsec1".to_string());
    let mimic =
        workloads::by_name(&name).unwrap_or_else(|| panic!("unknown Table I matrix '{name}'"));
    let a = mimic.generate::<F16>(0.05);
    println!(
        "{name} (mimic): {}x{}, {} nnz",
        a.nrows(),
        a.ncols(),
        a.nnz()
    );

    let space = TuneSpace {
        block_shapes: vec![(16, 16), (16, 8)],
        reorderings: vec![
            ReorderAlgorithm::Identity,
            ReorderAlgorithm::JaccardRows { tau: 0.7 },
            ReorderAlgorithm::GrayCode,
            ReorderAlgorithm::Bisection,
        ],
    };
    let report = autotune(&a, 8, &SmatConfig::default(), &space);

    println!(
        "\n{:<8} {:<14} {:>12} {:>10} {:>10}",
        "block", "reorder", "time ms", "blocks", "fill %"
    );
    for t in &report.trials {
        println!(
            "{:<8} {:<14} {:>12.4} {:>10} {:>9.1}%",
            format!("{}x{}", t.block_h, t.block_w),
            t.reorder,
            t.time_ms,
            t.nblocks,
            t.fill_ratio * 100.0
        );
    }
    println!(
        "\nwinner: {}x{} blocks with {}",
        report.best.block_h,
        report.best.block_w,
        report.best.reorder.name()
    );
    println!(
        "reorder passes: {} for {} trials (permutations hoisted across block shapes)",
        report.reorders_computed,
        report.trials.len()
    );
    if let Some(s) = report.speedup_over_default() {
        println!("speedup over the paper's default configuration: {s:.2}x");
    }

    // Use the tuned configuration end-to-end and verify correctness.
    let b = workloads::dense_b::<F16>(a.ncols(), 8);
    let run = Smat::prepare(&a, report.best.clone()).spmm(&b);
    assert_eq!(run.c, a.spmm_reference(&b));
    println!(
        "tuned run: {:.4} ms, {:.1} GFLOP/s (verified against the reference)",
        run.report.elapsed_ms(),
        run.report.gflops()
    );
}
