//! Quickstart: the full SMaT pipeline on a small unstructured matrix.
//!
//! Run with: `cargo run --release --example quickstart`

use smat_repro::prelude::*;
use smat_repro::workloads;

fn main() {
    // 1. An unstructured sparse matrix in CSR, FP16, 95% sparse.
    let a = workloads::random_uniform::<F16>(512, 512, 0.95, 42);
    println!(
        "A: {}x{}, {} nonzeros ({:.2}% sparse)",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        a.sparsity() * 100.0
    );

    // 2. A dense right-hand side (tall-and-skinny, N = 8).
    let b = workloads::dense_b::<F16>(512, 8);

    // 3. Prepare once (reordering + BCSR conversion), multiply many times.
    let engine = Smat::prepare(&a, SmatConfig::default());
    println!(
        "BCSR: {} blocks of {}x{} after Jaccard row clustering ({:.1}% filled)",
        engine.bcsr().nblocks(),
        engine.bcsr().block_h(),
        engine.bcsr().block_w(),
        engine.bcsr().fill_ratio() * 100.0,
    );

    let run = engine.spmm(&b);

    // 4. The result is in the original row order and matches the exact
    //    f64 reference bit-for-bit on integer-valued inputs.
    let reference = a.spmm_reference(&b);
    assert_eq!(run.c, reference, "SMaT must match the exact reference");

    println!(
        "one-time preprocessing took {:.2} ms on the host",
        engine.prepare_wall_ms()
    );
    println!("\nsimulated A100 execution:");
    println!("  kernel            {}", run.report.kernel_label);
    println!("  blocks (n_e)      {}", run.report.nblocks);
    println!(
        "  block reduction   {:.2}x (preprocessing)",
        run.report.block_reduction()
    );
    println!("  time              {:.4} ms", run.report.elapsed_ms());
    println!("  effective perf    {:.1} GFLOP/s", run.report.gflops());
    println!(
        "  SM load imbalance {:.2}",
        run.report.launch.sm_imbalance()
    );
    println!("  kernel is {}", run.report.launch.profile.bound());
    println!("\nOK: result verified against the exact reference.");
}
