//! Trace-replay driver for the `smat-serve` engine: registers a set of
//! synthetic matrices, replays a Zipf-skewed request trace over a pool of
//! simulated devices, verifies every batched response against an unbatched
//! run of the same request, and replays the whole trace a second time on a
//! fresh server to assert a deterministic end state.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example serve
//! cargo run --release --example serve -- --requests 512 --matrices 6 --devices 4
//! cargo run --release --example serve -- --seed 7 --window 16 --budget 128
//! cargo run --release --example serve -- --warm-prepare --sanitize
//! cargo run --release --example serve -- --devices 3 --shard-max-bytes 20000 --large-matrices 2
//! cargo run --release --example serve -- --plan
//! cargo run --release --example serve -- --mutate-rate 0.1
//! ```
//!
//! `--shard-max-bytes N` (0 = off) turns on partitioned serving: matrices
//! whose estimated CSR footprint exceeds `N` bytes are split into
//! nnz-balanced row shards and every submission against them fans out
//! across the device pool, joined by row concatenation (bitwise identical
//! to unsharded execution). `--large-matrices M` marks `M` of the tenants as large (double
//! dimension), so sharded and unsharded traffic interleave in the trace.
//!
//! `--plan` turns on the cost-model-driven admission planner: a perf-model
//! calibration is fitted once on the paper's band suite, each tenant's
//! configuration is chosen by the calibrated planner at registration, and
//! every response's predicted kernel time is checked against the observed
//! one (the per-request predicted-vs-actual record aggregated in the JSON
//! output). Bitwise verification still runs — against references prepared
//! under the *same decisions made manually* — because planner-chosen
//! configurations preserve exactness.
//!
//! `--mutate-rate R` makes the matrices dynamic: a deterministic mutation
//! schedule (expected `R` cell updates per request, Zipf-targeted at the
//! small tenants) is interleaved with the request windows. Each window
//! applies its mutations through [`Server::mutate`] and quiesces any
//! background compaction before submitting, so epoch swaps land at
//! deterministic trace positions and the double-replay check covers the
//! whole dynamic path. Verification replays every update against
//! independently prepared reference handles. `--naive-update` serves the
//! same schedule the strawman way — re-registering the fully merged matrix
//! after every mutation (paying `T_init` each time) — for the
//! `bench_update.sh` comparison.
//!
//! `--sanitize` runs both replays under the `smat-sanitize` lock-order
//! engine and fails the run (exit 1) on any concurrency finding.
//!
//! Stdout is a single JSON record (trace spec, verification verdicts, the
//! deterministic end-state summary, and the full `ServerStats` snapshot of
//! the first run); progress goes to stderr. Exit status: 0 when every
//! response matched its unbatched reference and both replays agree, 1
//! otherwise, 2 on usage errors.

use std::process::ExitCode;
use std::sync::Arc;

use smat_repro::formats::{Coo, Csr, Dense, Element, Fnv1a, F16};
use smat_repro::gpusim::{FaultConfig, SimError};
use smat_repro::reorder::ReorderAlgorithm;
use smat_repro::serve::{
    AdmissionState, Calibration, ChaosStats, MatrixKey, MatrixUpdate, PlanDecision, PlanSpace,
    Planner, ServeError, Server, ServerConfig, ServerStats,
};
use smat_repro::shard::estimated_csr_bytes;
use smat_repro::smat::{Smat, SmatConfig};
use smat_repro::workloads::{
    calibration_bands, mutation_trace, random_uniform, serve_trace, TraceMutation, TraceRequest,
    TraceSpec,
};

struct Args {
    requests: usize,
    matrices: usize,
    devices: usize,
    seed: u64,
    /// Requests submitted per pause/resume window (larger windows batch more).
    window: usize,
    /// Column budget per batched launch.
    budget: usize,
    /// Square dimension of each synthetic matrix.
    size: usize,
    /// Write a Chrome Trace Event JSON of the first replay here.
    trace: Option<String>,
    /// Seed for the fault-injection plan; `None` serves fault-free.
    chaos_seed: Option<u64>,
    /// Blended fault rate fed to [`FaultConfig::blended`].
    fault_rate: f64,
    /// Row-reordering algorithm for preparation (`None` = library default).
    reorder: Option<ReorderAlgorithm>,
    /// Prepare matrices on background threads (`Server::warm_prepare`)
    /// instead of the synchronous `register` barrier.
    warm_prepare: bool,
    /// Run both replays under the `smat-sanitize` lock-order engine and
    /// fail the run on any concurrency finding (C-codes).
    sanitize: bool,
    /// Shard byte budget for registered matrices (0 = sharding off).
    shard_max_bytes: usize,
    /// How many tenants are large (double dimension; candidates for
    /// sharding when `--shard-max-bytes` is set).
    large_matrices: usize,
    /// Choose each tenant's configuration with the calibrated admission
    /// planner instead of serving everything under the base config.
    plan: bool,
    /// Expected cell mutations per request (0 = static matrices).
    mutate_rate: f64,
    /// Serve mutations the strawman way: re-register the merged matrix
    /// after every update instead of accumulating a delta overlay.
    naive_update: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            requests: 256,
            matrices: 4,
            devices: 2,
            seed: 42,
            window: 32,
            budget: 64,
            size: 128,
            trace: None,
            chaos_seed: None,
            fault_rate: 0.1,
            reorder: None,
            warm_prepare: false,
            sanitize: false,
            shard_max_bytes: 0,
            large_matrices: 0,
            plan: false,
            mutate_rate: 0.0,
            naive_update: false,
        }
    }
}

/// Maps a CLI name (the `ReorderAlgorithm::name` vocabulary) to the
/// algorithm, with default parameters for the thresholded ones.
fn parse_reorder(name: &str) -> Option<ReorderAlgorithm> {
    Some(match name {
        "original" | "identity" => ReorderAlgorithm::Identity,
        "jaccard" | "jaccard-rows" => ReorderAlgorithm::JaccardRows { tau: 0.7 },
        "jaccard-rows-cols" => ReorderAlgorithm::JaccardRowsCols { tau: 0.7 },
        "jaccard-lsh" => ReorderAlgorithm::JaccardLsh {
            tau: 0.7,
            bands: 8,
            rows_per_band: 1,
        },
        "rcm" => ReorderAlgorithm::ReverseCuthillMcKee,
        "saad" => ReorderAlgorithm::Saad { tau: 0.5 },
        "gray" => ReorderAlgorithm::GrayCode,
        "bisection" => ReorderAlgorithm::Bisection,
        "degree-sort" => ReorderAlgorithm::DegreeSort,
        _ => return None,
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: serve [--requests N] [--matrices M] [--devices D] [--seed S]\n\
         \u{20}            [--window W] [--budget COLS] [--size DIM] [--trace PATH]\n\
         \u{20}            [--chaos-seed S] [--fault-rate R] [--reorder NAME]\n\
         \u{20}            [--warm-prepare] [--sanitize] [--plan]\n\
         \u{20}            [--shard-max-bytes N] [--large-matrices M]\n\
         \u{20}            [--mutate-rate R] [--naive-update]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<usize>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--requests" => args.requests = value("--requests")?,
            "--matrices" => args.matrices = value("--matrices")?,
            "--devices" => args.devices = value("--devices")?,
            "--seed" => args.seed = value("--seed")? as u64,
            "--window" => args.window = value("--window")?,
            "--budget" => args.budget = value("--budget")?,
            "--size" => args.size = value("--size")?,
            "--trace" => {
                args.trace = Some(it.next().ok_or("--trace needs a path")?);
            }
            "--chaos-seed" => args.chaos_seed = Some(value("--chaos-seed")? as u64),
            "--reorder" => {
                let name = it.next().ok_or("--reorder needs a name")?;
                args.reorder =
                    Some(parse_reorder(&name).ok_or_else(|| format!("unknown reordering {name}"))?);
            }
            "--warm-prepare" => args.warm_prepare = true,
            "--sanitize" => args.sanitize = true,
            "--plan" => args.plan = true,
            "--naive-update" => args.naive_update = true,
            "--mutate-rate" => {
                args.mutate_rate = it
                    .next()
                    .ok_or("--mutate-rate needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("--mutate-rate: {e}"))?;
            }
            "--shard-max-bytes" => args.shard_max_bytes = value("--shard-max-bytes")?,
            "--large-matrices" => args.large_matrices = value("--large-matrices")?,
            "--fault-rate" => {
                args.fault_rate = it
                    .next()
                    .ok_or("--fault-rate needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("--fault-rate: {e}"))?;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.requests == 0 || args.matrices == 0 || args.devices == 0 || args.window == 0 {
        return Err("all counts must be positive".into());
    }
    if !(0.0..=1.0).contains(&args.fault_rate) {
        return Err("--fault-rate must be within [0, 1]".into());
    }
    if !(0.0..=1.0).contains(&args.mutate_rate) {
        return Err("--mutate-rate must be within [0, 1]".into());
    }
    if args.naive_update && args.mutate_rate == 0.0 {
        return Err("--naive-update needs --mutate-rate > 0".into());
    }
    Ok(args)
}

/// The pipeline configuration shared by the server and the out-of-band
/// reference handles (they must match for bitwise verification).
fn smat_config(args: &Args) -> SmatConfig {
    SmatConfig {
        reorder: args.reorder.unwrap_or(SmatConfig::default().reorder),
        ..SmatConfig::default()
    }
}

/// Square dimension of tenant `m`'s matrix: large tenants are doubled so a
/// `--shard-max-bytes` budget sized between the two splits only them.
fn tenant_dim(args: &Args, large: bool) -> usize {
    if large {
        args.size * 2
    } else {
        args.size
    }
}

/// Deterministic per-request B panel: the trace position salts the pattern
/// so requests are distinguishable while replays regenerate identical data.
fn panel(rows: usize, req: &TraceRequest) -> Dense<F16> {
    Dense::from_fn(rows, req.n_cols, |i, j| {
        F16::from_f64((((i + 3 * j + 7 * req.seq) % 9) as f64 - 4.0) / 2.0)
    })
}

/// The end-state fields that must be identical across replays of the same
/// trace. Host-scheduling-driven numbers (latency percentiles, occupancy,
/// busy time) are deliberately excluded — see `ServerStats` docs.
#[derive(Debug, PartialEq, serde::Serialize)]
struct DeterministicSummary {
    submitted: u64,
    completed: u64,
    rejected_queue_full: u64,
    rejected_deadline: u64,
    rejected_preflight: u64,
    failed: u64,
    batches: u64,
    batched_requests: u64,
    max_batch: u64,
    /// Mutation batches applied and background compactions published —
    /// both pure functions of the trace + schedule under the quiesced
    /// window discipline.
    mutations: u64,
    compactions: u64,
    registry_hits: u64,
    registry_misses: u64,
    registry_prepares: u64,
    registry_evictions: u64,
    plan_hits: u64,
    plan_misses: u64,
    sim_ns_total: u64,
    per_device_served: Vec<u64>,
    per_device_cols: Vec<u64>,
    per_device_launches: Vec<u64>,
    /// Fan-out accounting for sharded tenants (zero with sharding off).
    fanout_requests: u64,
    shard_subrequests: u64,
    /// Requests (direct + shard sub-requests) enqueued per device — the
    /// two-level scheduler's placement, reproducible under the window
    /// discipline.
    per_device_dispatched: Vec<u64>,
    /// Fault-injection and recovery counters — reproducible under the
    /// pause/resume window discipline with a fixed `--chaos-seed`.
    chaos: ChaosStats,
    /// Requests served under a planner-chosen configuration (zero without
    /// `--plan`). Deterministic under the window discipline; the
    /// prediction-error stats are *not* (they depend on batch
    /// composition) and stay out of this summary.
    planned_requests: u64,
    /// FNV-1a over every response's C bits, in trace order.
    output_checksum: u64,
}

impl DeterministicSummary {
    fn new(stats: &ServerStats, output_checksum: u64) -> Self {
        DeterministicSummary {
            submitted: stats.submitted,
            completed: stats.completed,
            rejected_queue_full: stats.rejected_queue_full,
            rejected_deadline: stats.rejected_deadline,
            rejected_preflight: stats.rejected_preflight,
            failed: stats.failed,
            batches: stats.batches,
            batched_requests: stats.batched_requests,
            max_batch: stats.max_batch,
            mutations: stats.mutations,
            compactions: stats.compactions,
            registry_hits: stats.registry.hits,
            registry_misses: stats.registry.misses,
            registry_prepares: stats.registry.prepares,
            registry_evictions: stats.registry.evictions,
            plan_hits: stats.plans.hits,
            plan_misses: stats.plans.misses,
            sim_ns_total: (stats.sim_ms_total * 1e6).round() as u64,
            per_device_served: stats.devices.iter().map(|d| d.served).collect(),
            per_device_cols: stats.devices.iter().map(|d| d.cols).collect(),
            per_device_launches: stats.devices.iter().map(|d| d.launches).collect(),
            fanout_requests: stats.fanout_requests,
            shard_subrequests: stats.shard_subrequests,
            per_device_dispatched: stats.devices.iter().map(|d| d.dispatched).collect(),
            chaos: stats.chaos,
            planned_requests: stats.planned_requests,
            output_checksum,
        }
    }
}

struct Replay {
    summary: DeterministicSummary,
    stats: ServerStats,
    mismatches: usize,
    batched_responses: u64,
    degraded_responses: u64,
    /// Requests that exhausted the recovery ladder (chaos runs only).
    exhausted: u64,
    /// Responses carrying a plan prediction (`--plan` only).
    plan_checked: u64,
    /// Σ |predicted − observed| / observed over those responses.
    plan_rel_sum: f64,
    /// Worst per-request relative prediction error.
    plan_rel_max: f64,
}

/// One full replay on a fresh server: register, submit in pause/resume
/// windows (so backpressure, device assignment, and batch composition are
/// reproducible), verify each response against an unbatched run.
///
/// `references` are prepared *outside* the server (same `SmatConfig`), so
/// verification of sharded tenants — whose parent keys never enter the
/// registry — neither misses the registry nor perturbs its counters.
/// Converts a scheduled trace mutation into the serving-layer update op.
fn to_update(m: &TraceMutation) -> MatrixUpdate<F16> {
    if m.delete {
        MatrixUpdate::Delete {
            row: m.row,
            col: m.col,
        }
    } else {
        MatrixUpdate::Update {
            row: m.row,
            col: m.col,
            value: F16::from_f64(m.value),
        }
    }
}

fn replay(
    args: &Args,
    matrices: &[Csr<F16>],
    references: &[Smat<F16>],
    trace: &[TraceRequest],
    mutations: &[TraceMutation],
    plan_cal: Option<Calibration>,
    verify: bool,
) -> Replay {
    // Shards of large tenants occupy registry lines of their own; size the
    // capacity for parents plus the worst-case shard count so sharded
    // admission never evicts a small tenant's entry mid-trace.
    let shard_lines: usize = if args.shard_max_bytes > 0 {
        matrices
            .iter()
            .map(|a| estimated_csr_bytes(a).div_ceil(args.shard_max_bytes).max(1))
            .sum()
    } else {
        0
    };
    let server: Server<F16> = Server::new(ServerConfig {
        devices: args.devices,
        column_budget: args.budget,
        registry_capacity: args.matrices.max(2) + shard_lines,
        chaos: args
            .chaos_seed
            .map(|seed| FaultConfig::blended(seed, args.fault_rate)),
        smat: smat_config(args),
        shard_max_bytes: (args.shard_max_bytes > 0).then_some(args.shard_max_bytes),
        // A fresh planner per replay, seeded from the one shared
        // calibration: decisions depend only on (calibration, matrix), so
        // both replays register identical configurations and the
        // deterministic summary stays comparable.
        planner: plan_cal.map(|cal| Arc::new(Planner::with_calibration(PlanSpace::default(), cal))),
        // Compact eagerly enough that a default-sized mutating trace
        // exercises the fold-in path; the calibrated model (with `--plan`)
        // still overrides this structural floor.
        compaction: smat_repro::serve::CompactionPolicy {
            min_overlay_cells: 16,
            ..smat_repro::serve::CompactionPolicy::default()
        },
        ..ServerConfig::default()
    });
    let mut keys: Vec<MatrixKey> = if args.warm_prepare {
        // Background preparation: all matrices prepare concurrently while
        // this thread only pays the fingerprint pass. The readiness spin is
        // counter-neutral (unlike `wait_ready`) so the deterministic
        // summary's registry counters stay comparable across replays.
        // Sharded tenants publish on the shard table, not the registry.
        let keys: Vec<MatrixKey> = matrices.iter().map(|a| server.warm_prepare(a)).collect();
        for k in &keys {
            while server.registry().admission_state(k) != AdmissionState::Ready
                && server.shard_plan(k).is_none()
            {
                std::thread::yield_now();
            }
        }
        keys
    } else {
        matrices.iter().map(|a| server.register(a)).collect()
    };

    let mut checksum = Fnv1a::new();
    let mut mismatches = 0usize;
    let mut batched_responses = 0u64;
    let mut degraded_responses = 0u64;
    let mut exhausted = 0u64;
    let mut plan_checked = 0u64;
    let mut plan_rel_sum = 0.0f64;
    let mut plan_rel_max = 0.0f64;
    // Dynamic-matrix state: cheap handle clones of the references (the
    // overlay path mutates them in lockstep with the server) and, for the
    // naive strawman, an owned copy of each base matrix to merge into.
    let mut refs: Vec<Smat<F16>> = references.to_vec();
    let mut bases: Vec<Csr<F16>> = if args.naive_update {
        matrices.to_vec()
    } else {
        Vec::new()
    };
    let mut mcur = 0usize;
    for window in trace.chunks(args.window) {
        server.pause();
        // This window's mutations land before its submissions, and any
        // background compaction they trigger is quiesced before admission —
        // so epoch swaps happen at deterministic trace positions and the
        // double-replay check covers the dynamic path.
        let window_last = window.last().expect("chunks are non-empty").seq;
        let mut window_mutated = false;
        while mcur < mutations.len() && mutations[mcur].seq <= window_last {
            let m = &mutations[mcur];
            mcur += 1;
            window_mutated = true;
            if args.naive_update {
                // Strawman: merge into the base and re-register (a fresh
                // fingerprint, a fresh T_init-paying prepare).
                let value = if m.delete { 0.0 } else { m.value };
                bases[m.matrix] =
                    Coo::with_overrides(&bases[m.matrix], &[(m.row, m.col, value)]).to_csr();
                // Retire the stale entry first: the registry is sized for
                // one live handle per tenant, and the window is drained, so
                // nothing in flight still needs the old key.
                server.invalidate(&keys[m.matrix]);
                keys[m.matrix] = server.register(&bases[m.matrix]);
                if verify {
                    refs[m.matrix] = Smat::prepare(&bases[m.matrix], smat_config(args));
                }
            } else {
                let op = to_update(m);
                server
                    .mutate(keys[m.matrix], std::slice::from_ref(&op))
                    .expect("scheduled mutation must apply");
                if verify {
                    // The reference handle tracks the same overlay, so the
                    // solo-run oracle is always at the server's epoch.
                    refs[m.matrix].apply_updates(std::slice::from_ref(&op));
                }
            }
        }
        if window_mutated {
            server.quiesce_compactions();
        }
        let futures: Vec<_> = window
            .iter()
            .map(|req| {
                let b = panel(tenant_dim(args, req.large), req);
                (req, server.submit(keys[req.matrix], b))
            })
            .collect();
        server.resume();
        for (req, fut) in futures {
            let resp = match fut.wait() {
                Ok(resp) => resp,
                // At high fault rates a batch can exhaust the bounded
                // recovery ladder; that is the deterministic, typed outcome
                // of the configured policy, not a crash. Fold a marker into
                // the checksum so replays must fail the *same* requests.
                Err(ServeError::Sim(SimError::FaultInjected { .. }))
                    if args.chaos_seed.is_some() =>
                {
                    exhausted += 1;
                    checksum.write_u64(0xDEAD_FA17);
                    continue;
                }
                Err(e) => panic!("request {} failed: {e}", req.seq),
            };
            if resp.batched_with > 1 {
                batched_responses += 1;
            }
            if resp.degraded {
                degraded_responses += 1;
            }
            // The per-request predicted-vs-actual record: both numbers
            // describe the request's shared launch, so the ratio grades
            // the prediction at the width that actually ran.
            if let Some(pred) = resp.predicted_ms {
                if resp.sim_ms > 0.0 {
                    let rel = (pred - resp.sim_ms).abs() / resp.sim_ms;
                    plan_checked += 1;
                    plan_rel_sum += rel;
                    plan_rel_max = plan_rel_max.max(rel);
                }
            }
            for v in resp.c.as_slice() {
                checksum.write_u64(v.to_f64().to_bits());
            }
            if verify {
                // Unbatched reference: an identically-prepared handle, one
                // launch for this request alone. Must be bitwise identical.
                let solo = refs[req.matrix].spmm(&panel(tenant_dim(args, req.large), req));
                if solo.c != resp.c {
                    eprintln!("MISMATCH at seq {}", req.seq);
                    mismatches += 1;
                }
            }
        }
    }
    let stats = server.stats();
    Replay {
        summary: DeterministicSummary::new(&stats, checksum.finish()),
        stats,
        mismatches,
        batched_responses,
        degraded_responses,
        exhausted,
        plan_checked,
        plan_rel_sum,
        plan_rel_max,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };

    let spec = TraceSpec {
        requests: args.requests,
        n_matrices: args.matrices,
        widths: vec![8, 16, 32],
        zipf_s: 1.0,
        seed: args.seed,
        large_matrices: args.large_matrices,
        mutate_rate: args.mutate_rate,
    };
    let trace = serve_trace(&spec);
    // Which tenants the trace marked large (doubled dimension below).
    let mut is_large = vec![false; args.matrices];
    for r in &trace {
        is_large[r.matrix] = r.large;
    }
    // The mutation schedule rides a separate RNG stream, so the request
    // trace above is byte-identical with and without mutations.
    let dims: Vec<(usize, usize)> = (0..args.matrices)
        .map(|m| {
            let d = tenant_dim(&args, is_large[m]);
            (d, d)
        })
        .collect();
    let muts = mutation_trace(&spec, &dims);
    // Distinct sparsity per matrix so the prepared pipelines differ.
    let matrices: Vec<Csr<F16>> = (0..args.matrices)
        .map(|m| {
            let sparsity = 0.88 + 0.02 * (m as f64);
            let dim = tenant_dim(&args, is_large[m]);
            random_uniform::<F16>(dim, dim, sparsity, args.seed + m as u64)
        })
        .collect();
    // With --plan, fit the Eq. 1 calibration once on the paper's band
    // suite; both replays (and the reference decisions below) share it.
    let plan_cal = args.plan.then(|| {
        let cal =
            Calibration::fit_on(&calibration_bands::<F16>(args.size), 8, &smat_config(&args));
        eprintln!(
            "plan: calibrated T_e(tc)={:.3e} ms T_init(tc)={:.3e} ms (r2 {:.4}) | T_e(scalar)={:.3e} ms",
            cal.tc.t_e_ms, cal.tc.t_init_ms, cal.tc.r2, cal.scalar.t_e_ms
        );
        cal
    });
    // The decisions the server's planner will make, reproduced offline
    // (decisions are a pure function of calibration + matrix): the
    // reference handles below are prepared under the *same configurations
    // chosen manually*, so verification checks that planned serving is
    // bitwise identical to hand-pinning those configs. The planning width
    // is the server's column budget.
    let plan_decisions: Option<Vec<PlanDecision>> = plan_cal.map(|cal| {
        let offline = Planner::with_calibration(PlanSpace::default(), cal);
        matrices
            .iter()
            .map(|a| offline.decide(a, args.budget, &smat_config(&args)))
            .collect()
    });
    // Out-of-band reference handles for bitwise verification: prepared with
    // the server's exact per-tenant config, but never touching its registry
    // (sharded parent keys have no registry entry, and `get` would count
    // misses).
    let references: Vec<Smat<F16>> = matrices
        .iter()
        .enumerate()
        .map(|(m, a)| {
            let cfg = match &plan_decisions {
                Some(ds) => ds[m].apply(&smat_config(&args)),
                None => smat_config(&args),
            };
            Smat::prepare(a, cfg)
        })
        .collect();
    eprintln!(
        "replaying {} requests over {} matrices ({}x{}) on {} devices (window {}, budget {})",
        args.requests, args.matrices, args.size, args.size, args.devices, args.window, args.budget
    );
    if args.shard_max_bytes > 0 {
        eprintln!(
            "sharding: matrices above {} bytes fan out across the pool ({} large tenants)",
            args.shard_max_bytes, args.large_matrices
        );
    }
    if let Some(seed) = args.chaos_seed {
        eprintln!(
            "chaos: injecting faults with seed {seed} at blended rate {}",
            args.fault_rate
        );
    }
    if args.mutate_rate > 0.0 {
        eprintln!(
            "mutations: {} scheduled at rate {}{}",
            muts.len(),
            args.mutate_rate,
            if args.naive_update {
                " (naive re-prepare-per-update mode)"
            } else {
                " (overlay mode)"
            }
        );
    }

    // Lock-order smoke: record every checked-lock acquisition across both
    // replays (and the warm-prepare threads they spawn) and analyze the
    // accumulated graph at the end. The serving protocols must come back
    // with zero C-codes.
    if args.sanitize {
        smat_repro::sanitize::reset();
        smat_repro::sanitize::enable();
        eprintln!("sanitize: lock-order recording enabled");
    }

    // Trace only the first replay: the recorder is process-global, so the
    // second (determinism-check) replay would otherwise interleave its
    // spans with the first run's timeline.
    let tracer = smat_repro::trace::TraceHandle::new();
    if args.trace.is_some() {
        tracer.enable();
    }
    let first = replay(&args, &matrices, &references, &trace, &muts, plan_cal, true);
    if let Some(path) = &args.trace {
        tracer.disable();
        let events = tracer.drain();
        eprintln!("{}", smat_repro::trace::summary_table(&events));
        let json = smat_repro::trace::chrome_trace_json(&events);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: writing trace to {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!("wrote {} trace events to {path}", events.len());
    }
    eprintln!(
        "run 1: completed {}/{} | registry hit rate {:.3} | mean batch {:.2} | {} responses rode a shared launch",
        first.stats.completed,
        args.requests,
        first.stats.registry.hit_rate(),
        first.stats.mean_batch(),
        first.batched_responses,
    );
    if first.stats.chaos.any_activity() {
        let c = &first.stats.chaos;
        eprintln!(
            "run 1 chaos: {} faults ({} transient / {} ecc / {} offline) | {} retries | {} hedges | {} breaker trips | {} degraded completions | {} requests exhausted the ladder",
            c.faults_injected,
            c.faults_transient,
            c.faults_ecc,
            c.faults_offline,
            c.retries,
            c.hedges,
            c.breaker_trips,
            c.degraded_completions,
            first.exhausted,
        );
    }
    if args.plan {
        eprintln!(
            "run 1 plan: {} planned requests | {} predictions checked | mean rel error {:.4} (worst {:.4}) | {} refits over {} observations",
            first.stats.planned_requests,
            first.plan_checked,
            if first.plan_checked == 0 {
                0.0
            } else {
                first.plan_rel_sum / first.plan_checked as f64
            },
            first.plan_rel_max,
            first.stats.plan_refits,
            first.stats.plan_observations,
        );
    }
    if args.mutate_rate > 0.0 {
        eprintln!(
            "run 1 mutations: {} applied | {} background compactions",
            first.stats.mutations, first.stats.compactions,
        );
    }
    let second = replay(
        &args,
        &matrices,
        &references,
        &trace,
        &muts,
        plan_cal,
        false,
    );
    let runs_identical = first.summary == second.summary;
    eprintln!(
        "run 2: end state {} run 1",
        if runs_identical {
            "identical to"
        } else {
            "DIVERGED from"
        }
    );
    if !runs_identical {
        eprintln!("run 1: {:?}", first.summary);
        eprintln!("run 2: {:?}", second.summary);
    }

    let sanitize_findings = if args.sanitize {
        smat_repro::sanitize::disable();
        let findings = smat_repro::sanitize::report();
        if findings.is_empty() {
            eprintln!("sanitize: lock-order graph clean across both replays (0 findings)");
        } else {
            eprint!("{}", smat_repro::analyze::render_human(&findings));
        }
        Some(findings)
    } else {
        None
    };

    let record = serde_json::json!({
        "example": "serve",
        "spec": spec,
        "devices": args.devices,
        "window": args.window,
        "column_budget": args.budget,
        "matrix_dim": args.size,
        "verified_requests": args.requests,
        "mismatches": first.mismatches,
        "batched_responses": first.batched_responses,
        "degraded_responses": first.degraded_responses,
        "exhausted_requests": first.exhausted,
        "chaos_seed": args.chaos_seed,
        "fault_rate": args.fault_rate,
        "shard_max_bytes": args.shard_max_bytes,
        "mutate_rate": args.mutate_rate,
        "naive_update": args.naive_update,
        "mutations_applied": muts.len(),
        "fanout_requests": first.stats.fanout_requests,
        "shard_subrequests": first.stats.shard_subrequests,
        "registry_hit_rate": first.stats.registry.hit_rate(),
        "plan_enabled": args.plan,
        "plan": args.plan.then(|| serde_json::json!({
            "calibration": plan_cal,
            // Whole-matrix decisions per tenant (sharded tenants re-plan
            // per shard inside the server; these are the unsharded view).
            "decisions": plan_decisions,
            "planned_requests": first.stats.planned_requests,
            "plan_predictions": first.stats.plan_predictions,
            "plan_mean_rel_error": first.stats.plan_mean_rel_error,
            "plan_refits": first.stats.plan_refits,
            "plan_observations": first.stats.plan_observations,
            // Per-request predicted-vs-actual aggregate over responses.
            "request_checks": first.plan_checked,
            "request_mean_rel_error": if first.plan_checked == 0 { 0.0 }
                else { first.plan_rel_sum / first.plan_checked as f64 },
            "request_max_rel_error": first.plan_rel_max,
        })),
        "runs_identical": runs_identical,
        "sanitize_enabled": args.sanitize,
        "sanitize_findings": sanitize_findings.as_ref().map_or(0, Vec::len),
        "sanitize_codes": sanitize_findings
            .as_ref()
            .map_or_else(Vec::new, |f| {
                f.iter().map(|d| d.code.as_str()).collect::<Vec<_>>()
            }),
        "deterministic": first.summary,
        "stats": first.stats,
    });
    println!("{record}");

    let sanitize_clean = sanitize_findings.as_ref().is_none_or(Vec::is_empty);
    if first.mismatches == 0 && runs_identical && sanitize_clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
