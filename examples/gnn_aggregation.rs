//! GNN neighbor aggregation: the SpMM workload that motivates the paper's
//! introduction (§I). A two-layer graph neural network forward pass is a
//! chain of `H' = A·H` aggregations over a power-law graph adjacency
//! matrix — exactly the unstructured SpMM SMaT targets.
//!
//! Run with: `cargo run --release --example gnn_aggregation`

use smat_formats::{Dense, Element};
use smat_gpusim::Gpu;
use smat_repro::baselines::{CusparseLike, DaspLike};
use smat_repro::prelude::*;
use smat_repro::workloads;

/// Feature width of the hidden layers.
const FEATURES: usize = 64;

fn relu_quantize(h: &Dense<F16>) -> Dense<F16> {
    // ReLU + clamp keeps activations in the exactly-representable range.
    Dense::from_fn(h.nrows(), h.ncols(), |i, j| {
        let v = h.get(i, j).to_f64().clamp(0.0, 64.0);
        F16::from_f64(v.round())
    })
}

fn main() {
    // A social-network-like graph: RMAT with power-law degrees.
    let adj = workloads::rmat::<F16>(12, 60_000, 7);
    let n = adj.nrows();
    println!(
        "graph: {} nodes, {} edges, max degree {}",
        n,
        adj.nnz(),
        adj.row_nnz_histogram().into_iter().max().unwrap_or(0)
    );

    // Initial node features.
    let h0 = workloads::dense_b::<F16>(n, FEATURES);

    // SMaT engine: prepared once, reused across layers (the adjacency does
    // not change between layers — the inspector/executor pattern).
    let engine = Smat::prepare(&adj, SmatConfig::default());
    println!(
        "BCSR: {} blocks, preprocessing block reduction recorded per run",
        engine.bcsr().nblocks()
    );

    // Two aggregation layers.
    let layer1 = engine.spmm(&h0);
    let h1 = relu_quantize(&layer1.c);
    let layer2 = engine.spmm(&h1);
    println!(
        "layer 1: {:.4} ms ({:.1} GFLOP/s) | layer 2: {:.4} ms ({:.1} GFLOP/s)",
        layer1.report.elapsed_ms(),
        layer1.report.gflops(),
        layer2.report.elapsed_ms(),
        layer2.report.gflops()
    );

    // Verify layer 1 against the exact reference.
    assert_eq!(layer1.c, adj.spmm_reference(&h0));
    println!("layer 1 verified against the exact reference");

    // How would the baselines fare on the same aggregation?
    let gpu = Gpu::a100();
    let (cusp, _) = CusparseLike::new(&gpu, &adj).spmm(&h0).unwrap();
    let (dasp, _) = DaspLike::new(&gpu, &adj).spmm(&h0).unwrap();
    println!("\nsame layer on the baselines (simulated):");
    println!(
        "  SMaT     {:.4} ms\n  cuSPARSE {:.4} ms ({:.1}x slower)\n  DASP     {:.4} ms ({:.1}x slower)",
        layer1.report.elapsed_ms(),
        cusp.time_ms,
        cusp.time_ms / layer1.report.elapsed_ms(),
        dasp.time_ms,
        dasp.time_ms / layer1.report.elapsed_ms()
    );
}
