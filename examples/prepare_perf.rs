//! Prepare-path performance driver: measures the one-time inspection cost
//! (`T_init` in the paper's cost model) across reorder strategies and BCSR
//! conversion modes, and gates the parallel pipeline's correctness.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example prepare_perf            # JSON benchmark
//! cargo run --release --example prepare_perf -- --smoke # correctness gate
//! ```
//!
//! Default mode prints one JSON record to stdout: per (matrix, strategy)
//! timings — reorder / pack / convert / total milliseconds and the block
//! count the strategy achieved — plus per-matrix summaries (LSH-vs-exact
//! speedup and block-count ratio). `scripts/bench_prepare.sh` writes this
//! as `BENCH_PR5.json`.
//!
//! `--smoke` (used by `scripts/check.sh`) asserts on small fixed-seed
//! inputs that (1) the rayon-parallel BCSR conversion is bitwise identical
//! to the sequential one and (2) the LSH-bucketed Jaccard reordering lands
//! within 15% of the exact algorithm's block count on inputs derived from
//! `data/sample.mtx`. Exit status 0 on success, 1 on any violation.

use std::process::ExitCode;
use std::time::Instant;

use smat_repro::formats::{mtx, Bcsr, Coo, Csr, F16};
use smat_repro::reorder::{reorder, ReorderAlgorithm, Reordering};
use smat_repro::workloads::{mesh2d, random_uniform, rmat, scramble_rows};

const BLOCK: usize = 16;
const TAU: f64 = 0.7;

fn lsh() -> ReorderAlgorithm {
    ReorderAlgorithm::JaccardLsh {
        tau: TAU,
        bands: 8,
        rows_per_band: 1,
    }
}

/// Block-diagonal tiling of `a` (`copies` shifted copies), the derivation
/// that scales `data/sample.mtx` up while keeping its clusterable shape.
fn tile_diag(a: &Csr<F16>, copies: usize) -> Csr<F16> {
    let (nr, nc) = (a.nrows(), a.ncols());
    let mut coo = Coo::new(nr * copies, nc * copies);
    for t in 0..copies {
        for (i, j, v) in a.iter() {
            coo.push(t * nr + i, t * nc + j, v);
        }
    }
    coo.to_csr()
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// One timed prepare path: reorder with `alg`, apply the permutation, then
/// convert with the sequential or parallel BCSR pass. Returns the record's
/// numeric fields plus the converted matrix's block count.
fn run_strategy(
    a: &Csr<F16>,
    alg: ReorderAlgorithm,
    parallel: bool,
) -> (f64, f64, f64, f64, usize) {
    let t0 = Instant::now();
    let r: Reordering = reorder(a, alg, BLOCK, BLOCK);
    let reorder_ms = ms(t0);
    let t1 = Instant::now();
    let permuted = r.apply(a);
    let pack_ms = ms(t1);
    let t2 = Instant::now();
    let bcsr = if parallel {
        Bcsr::from_csr_parallel(&permuted, BLOCK, BLOCK)
    } else {
        Bcsr::from_csr(&permuted, BLOCK, BLOCK)
    };
    let convert_ms = ms(t2);
    (
        reorder_ms,
        pack_ms,
        convert_ms,
        reorder_ms + pack_ms + convert_ms,
        bcsr.nblocks(),
    )
}

fn bench_matrices() -> Vec<(&'static str, Csr<F16>)> {
    vec![
        ("mesh2d-8k", scramble_rows(&mesh2d(90, 90), 1)),
        ("rand-32k", random_uniform(32_768, 32_768, 0.9998, 7)),
        // The >=100k-row acceptance workload: power-law rows make the
        // exact algorithm's shared-column candidate sweep expensive, which
        // is precisely the breadth LSH bucketing bounds.
        ("rmat-131k", rmat(17, 1_000_000, 7)),
    ]
}

fn bench() -> ExitCode {
    let strategies: [(&str, ReorderAlgorithm, bool); 5] = [
        (
            "jaccard-exact+sequential",
            ReorderAlgorithm::JaccardRows { tau: TAU },
            false,
        ),
        (
            "jaccard-exact+parallel",
            ReorderAlgorithm::JaccardRows { tau: TAU },
            true,
        ),
        ("jaccard-lsh+sequential", lsh(), false),
        ("jaccard-lsh+parallel", lsh(), true),
        ("rcm+parallel", ReorderAlgorithm::ReverseCuthillMcKee, true),
    ];
    let mut records = Vec::new();
    let mut summaries = Vec::new();
    for (name, a) in bench_matrices() {
        eprintln!("{name}: {} rows, {} nnz", a.nrows(), a.nnz());
        let mut totals = std::collections::HashMap::new();
        let mut blocks = std::collections::HashMap::new();
        for (strategy, alg, parallel) in strategies {
            let (reorder_ms, pack_ms, convert_ms, total, nblocks) = run_strategy(&a, alg, parallel);
            eprintln!(
                "  {strategy:>26}: reorder {reorder_ms:9.2} ms | convert {convert_ms:7.2} ms | total {total:9.2} ms | {nblocks} blocks"
            );
            totals.insert(strategy, total);
            blocks.insert(strategy, nblocks);
            records.push(serde_json::json!({
                "matrix": name,
                "rows": a.nrows(),
                "nnz": a.nnz(),
                "strategy": strategy,
                "reorder_ms": reorder_ms,
                "pack_ms": pack_ms,
                "convert_ms": convert_ms,
                "total_prepare_ms": total,
                "nnz_blocks": nblocks,
            }));
        }
        let speedup = totals["jaccard-exact+sequential"] / totals["jaccard-lsh+parallel"];
        let ratio =
            blocks["jaccard-lsh+parallel"] as f64 / blocks["jaccard-exact+sequential"] as f64;
        eprintln!(
            "  lsh+parallel speedup over exact+sequential: {speedup:.2}x (block ratio {ratio:.3})"
        );
        summaries.push(serde_json::json!({
            "matrix": name,
            "rows": a.nrows(),
            "speedup_lsh_parallel_vs_exact_sequential": speedup,
            "lsh_block_count_ratio": ratio,
        }));
    }
    println!(
        "{}",
        serde_json::json!({
            "example": "prepare_perf",
            "block": BLOCK,
            "tau": TAU,
            "records": records,
            "summaries": summaries,
        })
    );
    ExitCode::SUCCESS
}

/// The check.sh gate: fixed seeds, small inputs, hard assertions.
fn smoke() -> ExitCode {
    let sample: Csr<F16> = match mtx::read_csr_path("data/sample.mtx") {
        Ok(a) => a,
        Err(e) => {
            eprintln!("smoke: cannot read data/sample.mtx: {e:?}");
            return ExitCode::from(1);
        }
    };
    let mut failures = 0usize;

    // Gate 1: parallel conversion is bitwise identical to sequential.
    let bitwise_inputs: Vec<(&str, Csr<F16>)> = vec![
        ("sample-x8", scramble_rows(&tile_diag(&sample, 8), 3)),
        ("rand-4k", random_uniform(4096, 4096, 1e-3, 7)),
        ("mesh2d-4k", scramble_rows(&mesh2d(64, 64), 5)),
    ];
    for (name, a) in &bitwise_inputs {
        for (h, w) in [(16, 16), (16, 8)] {
            let seq = Bcsr::from_csr(a, h, w);
            let par = Bcsr::from_csr_parallel(a, h, w);
            if seq != par {
                eprintln!("smoke FAIL: {name} {h}x{w}: parallel BCSR differs from sequential");
                failures += 1;
            }
        }
    }
    eprintln!("smoke: parallel BCSR bitwise check done");

    // Gate 2: LSH block count within 15% of exact Jaccard on
    // sample-derived inputs.
    for copies in [8usize, 32] {
        let a = scramble_rows(&tile_diag(&sample, copies), 11);
        let exact = reorder(&a, ReorderAlgorithm::JaccardRows { tau: TAU }, BLOCK, BLOCK);
        let approx = reorder(&a, lsh(), BLOCK, BLOCK);
        let b_exact = Bcsr::from_csr(&exact.apply(&a), BLOCK, BLOCK).nblocks();
        let b_lsh = Bcsr::from_csr(&approx.apply(&a), BLOCK, BLOCK).nblocks();
        let ratio = b_lsh as f64 / b_exact as f64;
        eprintln!("smoke: sample-x{copies}: exact {b_exact} blocks, lsh {b_lsh} blocks (ratio {ratio:.3})");
        if ratio > 1.15 {
            eprintln!("smoke FAIL: sample-x{copies}: LSH block count exceeds exact by >15%");
            failures += 1;
        }
    }

    if failures == 0 {
        eprintln!("smoke: all prepare-path gates passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("smoke: {failures} gate(s) failed");
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--smoke") => smoke(),
        None => bench(),
        Some(other) => {
            eprintln!("usage: prepare_perf [--smoke]   (unknown argument {other})");
            ExitCode::from(2)
        }
    }
}
