//! Warm-prepare admission: requests that arrive while a matrix is still
//! being prepared must park on the in-flight preparation — no duplicate
//! prepare, no blocked submitter — and complete with the shared handle once
//! it lands. A seeded-chaos arm confirms the parked path keeps the replay
//! determinism guarantee: response bytes are identical across two runs even
//! though batch composition behind a warm prepare may race.

use std::sync::{Arc, Barrier};

use smat::Smat;
use smat_formats::{Coo, Csr, Dense, Element, MatrixFingerprint, F16};
use smat_gpusim::FaultConfig;
use smat_serve::{block_on, AdmissionState, MatrixKey, Server, ServerConfig};

fn matrix(n: usize, shift: usize) -> Csr<F16> {
    let mut coo = Coo::new(n, n);
    for r in 0..n {
        for j in 0..5 {
            coo.push(
                r,
                (r * 3 + j * 11 + shift) % n,
                F16::from_f64(((r + j) % 5) as f64 - 2.0),
            );
        }
    }
    coo.to_csr()
}

fn panel(k: usize, seq: usize) -> Dense<F16> {
    let n = 4 + (seq % 3) * 4;
    Dense::from_fn(k, n, |i, j| {
        F16::from_f64((((i + 3 * j + 7 * seq) % 9) as f64 - 4.0) / 2.0)
    })
}

/// FNV-1a over the f64 renderings of a panel — the cross-run determinism
/// digest (bitwise: two equal digests here mean byte-equal responses).
fn fnv(c: &Dense<F16>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0..c.nrows() {
        for j in 0..c.ncols() {
            for byte in c.get(i, j).to_f64().to_bits().to_le_bytes() {
                h = (h ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    h
}

#[test]
fn requests_submitted_mid_warm_prepare_park_and_share_one_handle() {
    let config = ServerConfig::default();
    let server: Server<F16> = Server::new(config.clone());
    let a = matrix(64, 0);
    let key = MatrixKey::new(MatrixFingerprint::of_csr(&a), &config.smat);

    // Drive the registry's warm-prepare directly with a barrier-gated
    // closure so the preparation is provably still in flight while the
    // test submits — Server::warm_prepare wires the same entry point.
    let gate = Arc::new(Barrier::new(2));
    let (g, a2, cfg) = (Arc::clone(&gate), a.clone(), config.smat.clone());
    assert!(server.registry().warm_prepare(key, move || {
        g.wait();
        Smat::prepare(&a2, cfg)
    }));
    assert_eq!(
        server.registry().admission_state(&key),
        AdmissionState::Preparing
    );

    // Submit while preparing: admission must return immediately (this
    // thread holds the only release of the barrier, so any blocking here
    // would deadlock the test) and the requests park.
    let futures: Vec<_> = (0..6).map(|i| server.submit(key, panel(64, i))).collect();
    assert_eq!(
        server.registry().admission_state(&key),
        AdmissionState::Preparing,
        "submission must not wait for the prepare"
    );
    gate.wait();

    for (i, fut) in futures.into_iter().enumerate() {
        let resp = block_on(fut).expect("parked request completes");
        assert_eq!(resp.c, a.spmm_reference(&panel(64, i)), "request {i}");
    }

    let stats = server.registry().stats();
    assert_eq!(stats.prepares, 1, "parked requests must not re-prepare");
    assert_eq!(stats.warm_prepares, 1);
    assert_eq!(stats.parked, 6, "all six requests should have parked");

    // Every parked request was served from the one resident handle.
    let h1 = server.registry().wait_ready(&key).expect("resident");
    let h2 = server.registry().wait_ready(&key).expect("resident");
    assert!(std::ptr::eq(h1.bcsr(), h2.bcsr()), "one shared handle");
}

#[test]
fn warm_prepare_on_server_is_idempotent_with_register() {
    let server: Server<F16> = Server::new(ServerConfig::default());
    let a = matrix(48, 1);
    let key = server.warm_prepare(&a);
    // A second warm and a full register of the same matrix attach to the
    // same slot: exactly one preparation ever runs.
    assert_eq!(server.warm_prepare(&a), key);
    assert_eq!(server.register(&a), key);
    let resp = block_on(server.submit(key, panel(48, 0))).expect("serves");
    assert_eq!(resp.c, a.spmm_reference(&panel(48, 0)));
    assert_eq!(server.registry().stats().prepares, 1);
}

/// One full run of the chaos arm: warm-prepare, then stream requests
/// immediately so the early ones park behind the in-flight preparation.
fn chaos_run(seed: u64) -> Vec<u64> {
    let server: Server<F16> = Server::new(ServerConfig {
        devices: 2,
        chaos: Some(FaultConfig::blended(seed, 0.3)),
        ..ServerConfig::default()
    });
    let a = matrix(64, 0);
    let key = server.warm_prepare(&a);
    let futures: Vec<_> = (0..48).map(|i| server.submit(key, panel(64, i))).collect();
    let digests = futures
        .into_iter()
        .map(|fut| fnv(&block_on(fut).expect("recovery absorbs faults").c))
        .collect();
    assert_eq!(server.registry().stats().warm_prepares, 1);
    assert_eq!(server.registry().stats().prepares, 1);
    digests
}

#[test]
fn chaos_replay_behind_warm_prepare_is_byte_identical() {
    // Batch composition behind a warm prepare may race (how many requests
    // park depends on prepare timing), so devices/attempts can differ
    // between runs — but response bytes must not: batching and the whole
    // recovery ladder are bitwise-stable.
    let first = chaos_run(7);
    let second = chaos_run(7);
    assert_eq!(first, second, "response checksums diverged across replays");
}
