//! Deterministic model checking of the serving protocols.
//!
//! These tests run the three protocol cores of `smat-serve` under the
//! `smat-sanitize` interleaving model checker:
//!
//! 1. the [`ParkSlot`] publish-then-drain parking protocol (the heart of
//!    `get_or_park` / `wait_ready`),
//! 2. the warm-prepare single-producer invariant (a foreground
//!    `get_or_prepare` attaching to an in-flight warm prepare never
//!    duplicates the prepare),
//! 3. the circuit breaker's single-writer transition sequence.
//!
//! Each clean protocol must be explored exhaustively within the preemption
//! bound, or cap-bounded with the cap logged through the `C008` truncation
//! note. The final test is the counterexample: it hands the breaker a
//! *second* writer and the checker finds the schedule on which the
//! trip disappears — the reason the server keeps breakers single-writer.
//!
//! The dynamic-matrix additions model the **compaction epoch-swap**
//! protocol of `PreparedMatrixRegistry::compact_prepare` (snapshot →
//! prepare → publish-if-same-handle → rebase) against the mutation retry
//! loop of `Server::mutate` (apply → re-check current handle → retry onto
//! the fresh one): no update is ever lost, the newest write wins over the
//! rebase, and a reader never observes a torn (published-but-unfolded)
//! handle. Two counterexamples close the suite: rebase-by-overwrite loses
//! the newest write, and publish-before-fold is a torn read.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use smat_sanitize::sync::{AtomicU32, Mutex};
use smat_sanitize::{model, DiagCode, DiagnosticsExt, ModelConfig, ModelReport};
use smat_serve::{CircuitBreaker, ParkSlot};

/// Asserts the protocol came back clean: zero error-severity findings, and
/// either the bounded space was exhausted or the truncation cap was logged
/// via the C008 note (whose message states the budget).
fn assert_clean(report: &ModelReport) {
    println!("{}", report.summary());
    assert!(report.is_clean(), "{report:?}");
    assert!(report.findings.iter().all(|d| !d.is_error()), "{report:?}");
    if !report.exhausted {
        assert!(
            report
                .findings
                .codes()
                .contains(&DiagCode::ModelExplorationTruncated),
            "truncated exploration must carry the C008 cap note: {report:?}"
        );
    }
}

#[test]
fn park_slot_publish_then_drain_is_race_free_under_the_model() {
    // Three threads over the full slot need more than the default DFS
    // budget to exhaust the preemption-bounded space.
    let cfg = ModelConfig {
        max_schedules: 40_000,
        ..ModelConfig::named("serve.parkslot")
    };
    let report = model::check(cfg, || {
        let slot: Arc<ParkSlot<u32>> = Arc::new(ParkSlot::new());
        let runs = Arc::new(AtomicU32::new(0));
        let delivered = Arc::new(AtomicU32::new(0));
        let (s1, r1) = (Arc::clone(&slot), Arc::clone(&runs));
        let f1 = model::spawn(move || {
            s1.fulfill(|| {
                r1.fetch_add(1, Ordering::SeqCst);
                7
            })
        });
        let (s2, r2) = (Arc::clone(&slot), Arc::clone(&runs));
        let f2 = model::spawn(move || {
            s2.fulfill(|| {
                r2.fetch_add(1, Ordering::SeqCst);
                7
            })
        });
        let (s3, d3) = (Arc::clone(&slot), Arc::clone(&delivered));
        let parker = model::spawn(move || {
            let d = Arc::clone(&d3);
            s3.park(Box::new(move |v| {
                assert_eq!(v, 7, "waiter saw an unpublished value");
                d.fetch_add(1, Ordering::SeqCst);
            }));
        });
        let ran1 = f1.join();
        let ran2 = f2.join();
        parker.join();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one produce runs");
        assert_eq!(
            u32::from(ran1) + u32::from(ran2),
            1,
            "exactly one fulfiller reports having produced"
        );
        assert_eq!(
            delivered.load(Ordering::SeqCst),
            1,
            "the parked waiter is served exactly once, never lost"
        );
        assert_eq!(slot.get(), Some(7));
    });
    assert_clean(&report);
    assert!(report.schedules > 1, "{}", report.summary());
}

#[test]
fn warm_prepare_attach_never_duplicates_the_prepare_under_the_model() {
    let report = model::check(ModelConfig::named("serve.warm_prepare"), || {
        let slot: Arc<ParkSlot<u32>> = Arc::new(ParkSlot::new());
        let runs = Arc::new(AtomicU32::new(0));
        // The background warm-prepare fulfiller.
        let (s1, r1) = (Arc::clone(&slot), Arc::clone(&runs));
        let warm = model::spawn(move || {
            s1.fulfill(|| {
                r1.fetch_add(1, Ordering::SeqCst);
                11
            });
        });
        // A foreground get_or_prepare racing it: it must either win the
        // producer race or attach and wait — never run a second prepare
        // after the first published.
        let (s2, r2) = (Arc::clone(&slot), Arc::clone(&runs));
        let attach = model::spawn(move || {
            s2.fulfill(|| {
                r2.fetch_add(1, Ordering::SeqCst);
                11
            });
            s2.get().expect("fulfill implies published")
        });
        warm.join();
        assert_eq!(attach.join(), 11);
        assert_eq!(
            runs.load(Ordering::SeqCst),
            1,
            "warm + foreground prepare must collapse to one execution"
        );
    });
    assert_clean(&report);
}

#[test]
fn breaker_single_writer_trips_once_per_open_under_the_model() {
    let report = model::check(ModelConfig::named("serve.breaker"), || {
        let breaker = Arc::new(CircuitBreaker::new());
        let (b, trips, closes) = (
            Arc::clone(&breaker),
            Arc::new(AtomicU32::new(0)),
            Arc::new(AtomicU32::new(0)),
        );
        let (t, c) = (Arc::clone(&trips), Arc::clone(&closes));
        // The owning device's worker: the only writer, exactly as the
        // server wires it (hedge outcomes never touch a foreign breaker).
        let writer = model::spawn(move || {
            for _ in 0..3 {
                if b.record_failure(2) {
                    t.fetch_add(1, Ordering::SeqCst);
                }
            }
            if b.record_success() {
                c.fetch_add(1, Ordering::SeqCst);
            }
            for _ in 0..2 {
                if b.record_failure(2) {
                    t.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
        // Concurrent dispatch-side readers must not perturb the writer's
        // transition sequence, under any schedule.
        let b2 = Arc::clone(&breaker);
        let reader = model::spawn(move || {
            let _ = b2.is_open();
            let _ = b2.is_open();
        });
        writer.join();
        reader.join();
        assert!(breaker.is_open(), "final failure streak leaves it open");
        assert_eq!(
            trips.load(Ordering::SeqCst),
            2,
            "exactly one trip per open period"
        );
        assert_eq!(closes.load(Ordering::SeqCst), 1, "one close per success");
    });
    assert_clean(&report);
}

/// One dynamic tenant's handle, reduced to a single conceptual cell: the
/// prepared base holds the cell value folded in at prepare time, the
/// overlay is an absolute override of it (`Smat`'s copy-on-write snapshot
/// collapses to a mutex here because the model checker serializes access),
/// and the epoch counts applied mutations.
struct CellHandle {
    /// Cell value folded into the prepared base (written once, before
    /// publish, by whoever prepares the handle).
    base: AtomicU32,
    /// Absolute overlay override of the cell, `0` = no override.
    overlay: Mutex<u32>,
    epoch: AtomicU32,
}

impl CellHandle {
    fn new(base: u32) -> CellHandle {
        CellHandle {
            base: AtomicU32::new(base),
            overlay: Mutex::labeled("model.cell_overlay", 0),
            epoch: AtomicU32::new(0),
        }
    }

    /// `Smat::apply_updates` for the one cell: absolute override + epoch
    /// bump under the overlay lock.
    fn apply(&self, value: u32) {
        let mut cell = self.overlay.lock().unwrap();
        *cell = value;
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// The served value of the cell: overlay override if present, folded
    /// base otherwise.
    fn value(&self) -> u32 {
        let cell = *self.overlay.lock().unwrap();
        if cell != 0 {
            cell
        } else {
            self.base.load(Ordering::SeqCst)
        }
    }
}

/// `Server::mutate`'s retry loop against the published-handle index:
/// apply to the current handle, then re-check — if a compaction swapped
/// mid-apply, re-apply the (absolute, hence idempotent) update to the
/// fresh handle.
fn model_mutate(handles: &[Arc<CellHandle>; 2], published: &AtomicU32, value: u32) {
    let mut h = published.load(Ordering::SeqCst) as usize;
    loop {
        handles[h].apply(value);
        let cur = published.load(Ordering::SeqCst) as usize;
        if cur == h {
            break;
        }
        h = cur;
    }
}

/// `compact_prepare`'s thread body: snapshot the old overlay, fold it into
/// a fresh base, publish, then rebase the old handle's *final* overlay
/// insert-if-absent (a racing mutator's retried write is strictly newer
/// and must win).
fn model_compact(old: &CellHandle, fresh: &CellHandle, published: &AtomicU32) {
    let snap = *old.overlay.lock().unwrap();
    let folded = if snap != 0 {
        snap
    } else {
        old.base.load(Ordering::SeqCst)
    };
    fresh.base.store(folded, Ordering::SeqCst);
    published.store(1, Ordering::SeqCst);
    // Rebase AFTER the swap is visible: any mutation ordered before its
    // mutator's re-check is in this final snapshot; any ordered after was
    // retried onto `fresh` directly.
    let last = *old.overlay.lock().unwrap();
    let last_epoch = old.epoch.load(Ordering::SeqCst);
    if last != 0 && last != snap {
        let mut cell = fresh.overlay.lock().unwrap();
        if *cell == 0 {
            *cell = last;
        }
    }
    fresh.epoch.fetch_max(last_epoch, Ordering::SeqCst);
}

#[test]
fn compaction_epoch_swap_loses_no_update_under_the_model() {
    // A mutator writing 5 then 7 races the full snapshot → fold → publish
    // → rebase sequence, with a concurrent reader. Invariants on every
    // schedule: the final published value is 7 (the newest write is never
    // lost to the swap and never overwritten by the rebase), the epoch
    // accounts for both mutations, and no read observes a torn handle
    // (a published-but-unfolded base would serve 0).
    let cfg = ModelConfig {
        max_schedules: 40_000,
        ..ModelConfig::named("serve.epoch_swap")
    };
    let report = model::check(cfg, || {
        let handles = [Arc::new(CellHandle::new(3)), Arc::new(CellHandle::new(0))];
        let published = Arc::new(AtomicU32::new(0));
        let (h1, p1) = (handles.clone(), Arc::clone(&published));
        let mutator = model::spawn(move || {
            model_mutate(&h1, &p1, 5);
            model_mutate(&h1, &p1, 7);
        });
        let (h2, p2) = (handles.clone(), Arc::clone(&published));
        let compactor = model::spawn(move || {
            model_compact(&h2[0], &h2[1], &p2);
        });
        let (h3, p3) = (handles.clone(), Arc::clone(&published));
        let reader = model::spawn(move || {
            // Pin the handle the way admission does, then read through it:
            // any epoch-consistent value is legal, a torn 0 never is.
            let pinned = &h3[p3.load(Ordering::SeqCst) as usize];
            let v = pinned.value();
            assert!(
                v == 3 || v == 5 || v == 7,
                "torn read: published handle served {v}"
            );
        });
        mutator.join();
        compactor.join();
        reader.join();
        let current = &handles[published.load(Ordering::SeqCst) as usize];
        assert_eq!(
            current.value(),
            7,
            "the newest write survives the swap on every schedule"
        );
        assert!(
            current.epoch.load(Ordering::SeqCst) >= 1,
            "the published epoch reflects the mutation history"
        );
    });
    assert_clean(&report);
    assert!(report.schedules > 1, "{}", report.summary());
}

#[test]
fn rebase_by_overwrite_loses_the_newest_write_and_the_model_proves_it() {
    // The counterexample behind insert-if-absent: if the rebase *overwrote*
    // the fresh overlay with the old handle's final snapshot, there is a
    // schedule where a mutator's retried newer write (7) lands on the
    // fresh handle first and the rebase then clobbers it with the stale
    // snapshot (5) — the newest update silently vanishes.
    let cfg = ModelConfig {
        max_schedules: 40_000,
        ..ModelConfig::named("serve.epoch_swap_overwrite")
    };
    let report = model::check(cfg, || {
        let handles = [Arc::new(CellHandle::new(3)), Arc::new(CellHandle::new(0))];
        let published = Arc::new(AtomicU32::new(0));
        let (h1, p1) = (handles.clone(), Arc::clone(&published));
        let mutator = model::spawn(move || {
            model_mutate(&h1, &p1, 5);
            model_mutate(&h1, &p1, 7);
        });
        let (h2, p2) = (handles.clone(), Arc::clone(&published));
        let compactor = model::spawn(move || {
            let (old, fresh) = (&h2[0], &h2[1]);
            let snap = *old.overlay.lock().unwrap();
            let folded = if snap != 0 {
                snap
            } else {
                old.base.load(Ordering::SeqCst)
            };
            fresh.base.store(folded, Ordering::SeqCst);
            p2.store(1, Ordering::SeqCst);
            let last = *old.overlay.lock().unwrap();
            if last != 0 {
                // BUG under test: unconditional overwrite instead of
                // insert-if-absent.
                *fresh.overlay.lock().unwrap() = last;
            }
        });
        mutator.join();
        compactor.join();
        let current = &handles[published.load(Ordering::SeqCst) as usize];
        assert_eq!(current.value(), 7, "newest write must win");
    });
    assert!(
        report
            .findings
            .codes()
            .contains(&DiagCode::ModelInvariantViolation),
        "expected the checker to find the clobbered-write schedule: {report:?}"
    );
    assert!(!report.is_clean());
}

#[test]
fn publishing_before_folding_is_a_torn_read_and_the_model_proves_it() {
    // The counterexample behind fold-then-publish: swap the published
    // index before storing the folded base and there is a schedule where
    // a reader pins the fresh handle with its base still unwritten — it
    // serves 0 for a cell that has been 3 since epoch zero.
    let report = model::check(ModelConfig::named("serve.epoch_swap_torn"), || {
        let handles = [Arc::new(CellHandle::new(3)), Arc::new(CellHandle::new(0))];
        let published = Arc::new(AtomicU32::new(0));
        let (h1, p1) = (handles.clone(), Arc::clone(&published));
        let compactor = model::spawn(move || {
            let (old, fresh) = (&h1[0], &h1[1]);
            // BUG under test: publish first, fold after.
            p1.store(1, Ordering::SeqCst);
            let folded = old.base.load(Ordering::SeqCst);
            fresh.base.store(folded, Ordering::SeqCst);
        });
        let (h2, p2) = (handles.clone(), Arc::clone(&published));
        let reader = model::spawn(move || {
            let pinned = &h2[p2.load(Ordering::SeqCst) as usize];
            let v = pinned.value();
            assert_ne!(v, 0, "published handle served an unfolded base");
        });
        compactor.join();
        reader.join();
    });
    assert!(
        report
            .findings
            .codes()
            .contains(&DiagCode::ModelInvariantViolation),
        "expected the checker to find the torn-read schedule: {report:?}"
    );
    assert!(!report.is_clean());
}

#[test]
fn a_second_breaker_writer_is_schedule_dependent_and_the_model_proves_it() {
    // The counterexample behind the single-writer rule: let a hedge lane
    // record its success on the home breaker and there is a schedule where
    // the success lands *between* two home failures, resetting the
    // consecutive count — the trip silently disappears, and with it the
    // replay determinism of `breaker_trips`.
    let report = model::check(ModelConfig::named("serve.breaker_two_writers"), || {
        let breaker = Arc::new(CircuitBreaker::new());
        let home = Arc::clone(&breaker);
        let w1 = model::spawn(move || {
            let t1 = home.record_failure(2);
            let t2 = home.record_failure(2);
            u32::from(t1) + u32::from(t2)
        });
        let hedge = Arc::clone(&breaker);
        let w2 = model::spawn(move || {
            let _ = hedge.record_success();
        });
        let trips = w1.join();
        w2.join();
        assert_eq!(trips, 1, "two consecutive failures must trip the breaker");
    });
    assert!(
        report
            .findings
            .codes()
            .contains(&DiagCode::ModelInvariantViolation),
        "expected the checker to find the lost-trip schedule: {report:?}"
    );
    assert!(!report.is_clean());
}
