//! Deterministic model checking of the serving protocols.
//!
//! These tests run the three protocol cores of `smat-serve` under the
//! `smat-sanitize` interleaving model checker:
//!
//! 1. the [`ParkSlot`] publish-then-drain parking protocol (the heart of
//!    `get_or_park` / `wait_ready`),
//! 2. the warm-prepare single-producer invariant (a foreground
//!    `get_or_prepare` attaching to an in-flight warm prepare never
//!    duplicates the prepare),
//! 3. the circuit breaker's single-writer transition sequence.
//!
//! Each clean protocol must be explored exhaustively within the preemption
//! bound, or cap-bounded with the cap logged through the `C008` truncation
//! note. The final test is the counterexample: it hands the breaker a
//! *second* writer and the checker finds the schedule on which the
//! trip disappears — the reason the server keeps breakers single-writer.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use smat_sanitize::sync::AtomicU32;
use smat_sanitize::{model, DiagCode, DiagnosticsExt, ModelConfig, ModelReport};
use smat_serve::{CircuitBreaker, ParkSlot};

/// Asserts the protocol came back clean: zero error-severity findings, and
/// either the bounded space was exhausted or the truncation cap was logged
/// via the C008 note (whose message states the budget).
fn assert_clean(report: &ModelReport) {
    println!("{}", report.summary());
    assert!(report.is_clean(), "{report:?}");
    assert!(report.findings.iter().all(|d| !d.is_error()), "{report:?}");
    if !report.exhausted {
        assert!(
            report
                .findings
                .codes()
                .contains(&DiagCode::ModelExplorationTruncated),
            "truncated exploration must carry the C008 cap note: {report:?}"
        );
    }
}

#[test]
fn park_slot_publish_then_drain_is_race_free_under_the_model() {
    // Three threads over the full slot need more than the default DFS
    // budget to exhaust the preemption-bounded space.
    let cfg = ModelConfig {
        max_schedules: 40_000,
        ..ModelConfig::named("serve.parkslot")
    };
    let report = model::check(cfg, || {
        let slot: Arc<ParkSlot<u32>> = Arc::new(ParkSlot::new());
        let runs = Arc::new(AtomicU32::new(0));
        let delivered = Arc::new(AtomicU32::new(0));
        let (s1, r1) = (Arc::clone(&slot), Arc::clone(&runs));
        let f1 = model::spawn(move || {
            s1.fulfill(|| {
                r1.fetch_add(1, Ordering::SeqCst);
                7
            })
        });
        let (s2, r2) = (Arc::clone(&slot), Arc::clone(&runs));
        let f2 = model::spawn(move || {
            s2.fulfill(|| {
                r2.fetch_add(1, Ordering::SeqCst);
                7
            })
        });
        let (s3, d3) = (Arc::clone(&slot), Arc::clone(&delivered));
        let parker = model::spawn(move || {
            let d = Arc::clone(&d3);
            s3.park(Box::new(move |v| {
                assert_eq!(v, 7, "waiter saw an unpublished value");
                d.fetch_add(1, Ordering::SeqCst);
            }));
        });
        let ran1 = f1.join();
        let ran2 = f2.join();
        parker.join();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one produce runs");
        assert_eq!(
            u32::from(ran1) + u32::from(ran2),
            1,
            "exactly one fulfiller reports having produced"
        );
        assert_eq!(
            delivered.load(Ordering::SeqCst),
            1,
            "the parked waiter is served exactly once, never lost"
        );
        assert_eq!(slot.get(), Some(7));
    });
    assert_clean(&report);
    assert!(report.schedules > 1, "{}", report.summary());
}

#[test]
fn warm_prepare_attach_never_duplicates_the_prepare_under_the_model() {
    let report = model::check(ModelConfig::named("serve.warm_prepare"), || {
        let slot: Arc<ParkSlot<u32>> = Arc::new(ParkSlot::new());
        let runs = Arc::new(AtomicU32::new(0));
        // The background warm-prepare fulfiller.
        let (s1, r1) = (Arc::clone(&slot), Arc::clone(&runs));
        let warm = model::spawn(move || {
            s1.fulfill(|| {
                r1.fetch_add(1, Ordering::SeqCst);
                11
            });
        });
        // A foreground get_or_prepare racing it: it must either win the
        // producer race or attach and wait — never run a second prepare
        // after the first published.
        let (s2, r2) = (Arc::clone(&slot), Arc::clone(&runs));
        let attach = model::spawn(move || {
            s2.fulfill(|| {
                r2.fetch_add(1, Ordering::SeqCst);
                11
            });
            s2.get().expect("fulfill implies published")
        });
        warm.join();
        assert_eq!(attach.join(), 11);
        assert_eq!(
            runs.load(Ordering::SeqCst),
            1,
            "warm + foreground prepare must collapse to one execution"
        );
    });
    assert_clean(&report);
}

#[test]
fn breaker_single_writer_trips_once_per_open_under_the_model() {
    let report = model::check(ModelConfig::named("serve.breaker"), || {
        let breaker = Arc::new(CircuitBreaker::new());
        let (b, trips, closes) = (
            Arc::clone(&breaker),
            Arc::new(AtomicU32::new(0)),
            Arc::new(AtomicU32::new(0)),
        );
        let (t, c) = (Arc::clone(&trips), Arc::clone(&closes));
        // The owning device's worker: the only writer, exactly as the
        // server wires it (hedge outcomes never touch a foreign breaker).
        let writer = model::spawn(move || {
            for _ in 0..3 {
                if b.record_failure(2) {
                    t.fetch_add(1, Ordering::SeqCst);
                }
            }
            if b.record_success() {
                c.fetch_add(1, Ordering::SeqCst);
            }
            for _ in 0..2 {
                if b.record_failure(2) {
                    t.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
        // Concurrent dispatch-side readers must not perturb the writer's
        // transition sequence, under any schedule.
        let b2 = Arc::clone(&breaker);
        let reader = model::spawn(move || {
            let _ = b2.is_open();
            let _ = b2.is_open();
        });
        writer.join();
        reader.join();
        assert!(breaker.is_open(), "final failure streak leaves it open");
        assert_eq!(
            trips.load(Ordering::SeqCst),
            2,
            "exactly one trip per open period"
        );
        assert_eq!(closes.load(Ordering::SeqCst), 1, "one close per success");
    });
    assert_clean(&report);
}

#[test]
fn a_second_breaker_writer_is_schedule_dependent_and_the_model_proves_it() {
    // The counterexample behind the single-writer rule: let a hedge lane
    // record its success on the home breaker and there is a schedule where
    // the success lands *between* two home failures, resetting the
    // consecutive count — the trip silently disappears, and with it the
    // replay determinism of `breaker_trips`.
    let report = model::check(ModelConfig::named("serve.breaker_two_writers"), || {
        let breaker = Arc::new(CircuitBreaker::new());
        let home = Arc::clone(&breaker);
        let w1 = model::spawn(move || {
            let t1 = home.record_failure(2);
            let t2 = home.record_failure(2);
            u32::from(t1) + u32::from(t2)
        });
        let hedge = Arc::clone(&breaker);
        let w2 = model::spawn(move || {
            let _ = hedge.record_success();
        });
        let trips = w1.join();
        w2.join();
        assert_eq!(trips, 1, "two consecutive failures must trip the breaker");
    });
    assert!(
        report
            .findings
            .codes()
            .contains(&DiagCode::ModelInvariantViolation),
        "expected the checker to find the lost-trip schedule: {report:?}"
    );
    assert!(!report.is_clean());
}
