//! Concurrency edge cases for the oneshot channel and a model-based
//! property test for [`LruMap`].
//!
//! The oneshot tests target the two transitions that only happen under
//! scheduling pressure: a sender dropped while the receiving task is parked
//! inside `poll` (must wake with `None`, not hang), and the wake-vs-fulfill
//! race where the send lands in the window between a `Poll::Pending` return
//! and the thread parking. The LRU test drives `LruMap` and a naive
//! reference model with the same randomized operation sequence and demands
//! identical observable behavior at every step.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use proptest::prelude::*;
use smat_serve::lru::LruMap;
use smat_serve::oneshot::{block_on, channel};

#[test]
fn sender_dropped_while_receiver_parked_in_poll() {
    // The receiver must first register its waker (returning Pending and
    // parking), *then* lose the sender. A sleep before the drop makes the
    // parked-in-poll interleaving overwhelmingly likely; correctness does
    // not depend on it (the drop wakes the waker either way).
    let (tx, rx) = channel::<u32>();
    let parked = Arc::new(AtomicBool::new(false));
    let parked2 = Arc::clone(&parked);
    let waiter = std::thread::spawn(move || {
        parked2.store(true, Ordering::Release);
        block_on(rx)
    });
    while !parked.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
    std::thread::sleep(Duration::from_millis(30));
    drop(tx);
    assert_eq!(
        waiter.join().expect("receiver thread must not panic"),
        None,
        "dropping the sender must resolve a parked receiver to None"
    );
}

#[test]
fn concurrent_drop_and_wait_never_hangs() {
    // Same transition with no deliberate staggering: racing `wait` against
    // the drop across many iterations exercises both orders.
    for i in 0..200 {
        let (tx, rx) = channel::<u32>();
        let barrier = Arc::new(Barrier::new(2));
        let b2 = Arc::clone(&barrier);
        let dropper = std::thread::spawn(move || {
            b2.wait();
            if i % 2 == 0 {
                std::thread::yield_now();
            }
            drop(tx);
        });
        barrier.wait();
        assert_eq!(rx.wait(), None);
        dropper.join().unwrap();
    }
}

#[test]
fn wake_vs_fulfill_race_delivers_every_value() {
    // The classic lost-wakeup shape: the send may land exactly between the
    // receiver's `Poll::Pending` and its `thread::park()`. The channel must
    // tolerate every interleaving — `block_on` re-polls after any unpark,
    // and `Sender::send` wakes the registered waker under the state lock.
    for i in 0..500u32 {
        let (tx, rx) = channel::<u32>();
        let barrier = Arc::new(Barrier::new(2));
        let b2 = Arc::clone(&barrier);
        let sender = std::thread::spawn(move || {
            b2.wait();
            tx.send(i);
        });
        barrier.wait();
        assert_eq!(block_on(rx), Some(i), "value lost at iteration {i}");
        sender.join().unwrap();
    }
}

#[test]
fn send_beats_first_poll() {
    // Fulfill strictly before the receiver ever polls: the first poll must
    // complete immediately without a waker round-trip.
    let (tx, rx) = channel::<&str>();
    tx.send("early");
    assert_eq!(block_on(rx), Some("early"));
}

/// Naive reference model of the documented `LruMap` semantics: a plain map
/// plus an explicit recency tick, evicting the minimum tick on overflow.
struct ModelLru {
    entries: HashMap<u8, (i32, u64)>,
    capacity: usize,
    tick: u64,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru {
            entries: HashMap::new(),
            capacity,
            tick: 0,
        }
    }

    fn get(&mut self, k: u8) -> Option<i32> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&k).map(|(v, last)| {
            *last = tick;
            *v
        })
    }

    fn peek(&self, k: u8) -> Option<i32> {
        self.entries.get(&k).map(|(v, _)| *v)
    }

    fn insert(&mut self, k: u8, v: i32) -> Option<(u8, i32)> {
        self.tick += 1;
        self.entries.insert(k, (v, self.tick));
        if self.entries.len() <= self.capacity {
            return None;
        }
        let victim = *self
            .entries
            .iter()
            .min_by_key(|(_, (_, t))| *t)
            .map(|(key, _)| key)
            .expect("non-empty");
        self.entries.remove(&victim).map(|(val, _)| (victim, val))
    }

    fn remove(&mut self, k: u8) -> Option<i32> {
        self.entries.remove(&k).map(|(v, _)| v)
    }
}

/// One randomized operation against both implementations.
/// `sel % 4` chooses among insert / get / peek / remove.
#[derive(Clone, Copy, Debug)]
struct Op {
    sel: u8,
    key: u8,
    value: i32,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lru_matches_reference_model(
        capacity in 1usize..6,
        ops in proptest::collection::vec((0u8..4, 0u8..8, -100i32..100), 1..120),
    ) {
        let mut real: LruMap<u8, i32> = LruMap::new(capacity);
        let mut model = ModelLru::new(capacity);
        for (step, &(sel, key, value)) in ops.iter().enumerate() {
            let op = Op { sel, key, value };
            match op.sel {
                0 => {
                    let got = real.insert(op.key, op.value);
                    let want = model.insert(op.key, op.value);
                    prop_assert_eq!(got, want, "insert diverged at step {}: {:?}", step, op);
                }
                1 => {
                    let got = real.get(&op.key).copied();
                    let want = model.get(op.key);
                    prop_assert_eq!(got, want, "get diverged at step {}: {:?}", step, op);
                }
                2 => {
                    let got = real.peek(&op.key).copied();
                    let want = model.peek(op.key);
                    prop_assert_eq!(got, want, "peek diverged at step {}: {:?}", step, op);
                }
                _ => {
                    let got = real.remove(&op.key);
                    let want = model.remove(op.key);
                    prop_assert_eq!(got, want, "remove diverged at step {}: {:?}", step, op);
                }
            }
            prop_assert_eq!(real.len(), model.entries.len());
            prop_assert!(real.len() <= capacity);
            // Full-state agreement: every surviving key maps identically.
            for (k, v) in real.iter() {
                prop_assert_eq!(model.peek(*k), Some(*v), "key {} diverged", k);
            }
        }
    }
}
