//! Cross-module serving-engine tests: get-or-prepare under real thread
//! contention, LRU eviction order, concurrent submission through the full
//! server, and the batching bitwise-equality property.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use proptest::prelude::*;
use smat::{OverlaySnapshot, Smat, SmatConfig};
use smat_formats::{Coo, Csr, Dense, Element, MatrixFingerprint, F16};
use smat_gpusim::Gpu;
use smat_serve::{spmm_batched, MatrixKey, PreparedMatrixRegistry, Server, ServerConfig};

fn matrix(n: usize, shift: usize) -> Csr<F16> {
    let mut coo = Coo::new(n, n);
    for r in 0..n {
        for j in 0..5 {
            coo.push(
                r,
                (r * 3 + j * 11 + shift) % n,
                F16::from_f64(((r + j + shift) % 5) as f64 - 2.0),
            );
        }
    }
    coo.to_csr()
}

fn rhs(k: usize, n: usize, salt: usize) -> Dense<F16> {
    Dense::from_fn(k, n, |i, j| {
        F16::from_f64((((i + 2 * j + salt) % 7) as f64 - 3.0) / 2.0)
    })
}

fn key_of(a: &Csr<F16>, cfg: &SmatConfig) -> MatrixKey {
    MatrixKey::new(MatrixFingerprint::of_csr(a), cfg)
}

#[test]
fn racing_get_or_prepare_runs_prepare_exactly_once() {
    const THREADS: usize = 8;
    let cfg = SmatConfig::default();
    let a = Arc::new(matrix(96, 0));
    let key = key_of(&a, &cfg);
    let registry: Arc<PreparedMatrixRegistry<F16>> = Arc::new(PreparedMatrixRegistry::new(4));
    let closure_runs = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let (registry, a, cfg, runs, barrier) = (
                Arc::clone(&registry),
                Arc::clone(&a),
                cfg.clone(),
                Arc::clone(&closure_runs),
                Arc::clone(&barrier),
            );
            std::thread::spawn(move || {
                barrier.wait(); // maximize the race window
                let (smat, _) = registry.get_or_prepare(key, || {
                    runs.fetch_add(1, Ordering::SeqCst);
                    Smat::prepare(&a, cfg)
                });
                smat
            })
        })
        .collect();
    let smats: Vec<Smat<F16>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    assert_eq!(closure_runs.load(Ordering::SeqCst), 1, "duplicate prepare");
    assert_eq!(registry.stats().prepares, 1);
    // Every thread got the same underlying prepared state, not a copy.
    for s in &smats[1..] {
        assert!(std::ptr::eq(smats[0].bcsr(), s.bcsr()));
    }
    // All THREADS lookups are accounted: one miss admitted the slot, the
    // rest were hits on the already-admitted key.
    let stats = registry.stats();
    assert_eq!(stats.hits + stats.misses, THREADS as u64);
    assert_eq!(stats.misses, 1);
}

#[test]
fn racing_prepares_of_distinct_matrices_do_not_serialize_lookups() {
    // Two keys prepared concurrently: each runs once, neither blocks the
    // other's completion (prepare executes outside the registry lock).
    let cfg = SmatConfig::default();
    let a0 = Arc::new(matrix(96, 0));
    let a1 = Arc::new(matrix(96, 7));
    let (k0, k1) = (key_of(&a0, &cfg), key_of(&a1, &cfg));
    let registry: Arc<PreparedMatrixRegistry<F16>> = Arc::new(PreparedMatrixRegistry::new(4));
    let barrier = Arc::new(Barrier::new(2));

    let spawn = |key: MatrixKey, a: Arc<Csr<F16>>| {
        let (registry, cfg, barrier) = (Arc::clone(&registry), cfg.clone(), Arc::clone(&barrier));
        std::thread::spawn(move || {
            barrier.wait();
            registry.get_or_prepare(key, || Smat::prepare(&a, cfg)).0
        })
    };
    let h0 = spawn(k0, Arc::clone(&a0));
    let h1 = spawn(k1, Arc::clone(&a1));
    h0.join().unwrap();
    h1.join().unwrap();
    assert_eq!(registry.stats().prepares, 2);
    assert_eq!(registry.len(), 2);
}

#[test]
fn lru_eviction_follows_access_recency_exactly() {
    let cfg = SmatConfig::default();
    let mats: Vec<Csr<F16>> = (0..4).map(|s| matrix(64, s)).collect();
    let keys: Vec<MatrixKey> = mats.iter().map(|a| key_of(a, &cfg)).collect();
    let registry: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(3);
    for (k, a) in keys.iter().zip(&mats).take(3) {
        registry.get_or_prepare(*k, || Smat::prepare(a, cfg.clone()));
    }
    // Recency now 0 < 1 < 2. Touch 0 and 1; 2 becomes the victim.
    assert!(registry.get(&keys[0]).is_some());
    assert!(registry.get(&keys[1]).is_some());
    registry.get_or_prepare(keys[3], || Smat::prepare(&mats[3], cfg.clone()));
    assert!(registry.get(&keys[2]).is_none(), "stalest entry evicted");
    for &i in &[0usize, 1, 3] {
        assert!(registry.get(&keys[i]).is_some(), "key {i} must survive");
    }
    assert_eq!(registry.stats().evictions, 1);
}

#[test]
fn concurrent_submitters_all_get_correct_products() {
    const THREADS: usize = 6;
    const PER_THREAD: usize = 20;
    let server: Arc<Server<F16>> = Arc::new(Server::new(ServerConfig {
        devices: 3,
        column_budget: 48,
        ..ServerConfig::default()
    }));
    let a0 = Arc::new(matrix(96, 0));
    let a1 = Arc::new(matrix(96, 5));
    let k0 = server.register(&a0);
    let k1 = server.register(&a1);
    let barrier = Arc::new(Barrier::new(THREADS));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let (server, a0, a1, barrier) = (
                Arc::clone(&server),
                Arc::clone(&a0),
                Arc::clone(&a1),
                Arc::clone(&barrier),
            );
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..PER_THREAD {
                    let (a, k) = if (t + i) % 2 == 0 {
                        (&a0, k0)
                    } else {
                        (&a1, k1)
                    };
                    let b = rhs(96, 8 + 8 * (i % 3), t * 100 + i);
                    let want = a.spmm_reference(&b);
                    let resp = server.submit(k, b).wait().expect("served");
                    assert_eq!(resp.c, want, "thread {t} request {i}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let stats = server.stats();
    assert_eq!(stats.completed, (THREADS * PER_THREAD) as u64);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.registry.prepares, 2);
    assert!(stats.registry.hit_rate() > 0.9);
}

/// Strategy: a square sparse matrix dimension, entry set, and 1–5 panel
/// widths for the batched-vs-solo equality property.
fn batch_case() -> impl Strategy<Value = (Csr<F16>, Vec<usize>)> {
    (16usize..80)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(((0..n), (0..n), -4i32..=4), 1..240),
                proptest::collection::vec(1usize..24, 1..5),
                Just(n),
            )
        })
        .prop_map(|(entries, widths, n)| {
            let mut coo = Coo::new(n, n);
            for (i, j, v) in entries {
                if v != 0 {
                    coo.push(i, j, F16::from_f64(v as f64));
                }
            }
            (coo.to_csr(), widths)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The batcher's core guarantee: concatenating panels, running one wide
    /// SpMM, and splitting the product back is *bitwise* identical to
    /// executing every request on its own.
    #[test]
    fn batched_then_split_is_bitwise_equal_to_solo_runs(case in batch_case()) {
        let (a, widths) = case;
        let smat = Smat::prepare(&a, SmatConfig::default());
        let gpu = Gpu::new(smat.config().device.clone());
        let panels: Vec<Dense<F16>> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| rhs(a.ncols(), w, 13 * i + 1))
            .collect();
        let refs: Vec<&Dense<F16>> = panels.iter().collect();
        let (batched, _) = spmm_batched(&smat, &gpu, &refs, &OverlaySnapshot::empty()).expect("batched launch");
        prop_assert_eq!(batched.len(), panels.len());
        for (got, b) in batched.iter().zip(&panels) {
            let solo = smat.try_spmm_on(&gpu, b).expect("solo launch");
            prop_assert_eq!(got, &solo.c);
        }
    }
}
