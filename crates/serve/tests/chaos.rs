//! Determinism regression for the chaos layer: replaying the same request
//! trace with the same fault seed must reproduce byte-identical responses,
//! identical fault counters, and the identical set of injected-fault /
//! recovery trace events — the fault schedule is a pure function of
//! (seed, device, request content), never of wall-clock or thread timing.

use smat_formats::{Coo, Csr, Dense, Element, F16};
use smat_gpusim::FaultConfig;
use smat_serve::{block_on, ChaosStats, Server, ServerConfig, TraceHandle};

const REQUESTS: usize = 96;
const WINDOW: usize = 16;

/// The trace recorder is process-global, so tests that enable it must not
/// overlap; the harness runs tests on parallel threads by default.
static TRACER_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn matrix(n: usize, shift: usize) -> Csr<F16> {
    let mut coo = Coo::new(n, n);
    for r in 0..n {
        for j in 0..5 {
            coo.push(
                r,
                (r * 3 + j * 11 + shift) % n,
                F16::from_f64(((r + j) % 5) as f64 - 2.0),
            );
        }
    }
    coo.to_csr()
}

fn panel(k: usize, seq: usize) -> Dense<F16> {
    let n = 4 + (seq % 3) * 4;
    Dense::from_fn(k, n, |i, j| {
        F16::from_f64((((i + 3 * j + 7 * seq) % 9) as f64 - 4.0) / 2.0)
    })
}

struct Replay {
    /// `(c, device, attempts, degraded)` per request, in trace order.
    responses: Vec<(Dense<F16>, usize, u32, bool)>,
    chaos: ChaosStats,
    /// Canonical (sorted) rendering of every `chaos`-category trace event.
    /// Sorting is deliberate: events from concurrent workers drain in
    /// nondeterministic *order*, but the multiset must be identical.
    events: Vec<String>,
}

fn replay(seed: u64, rate: f64) -> Replay {
    let tracer = TraceHandle::new();
    tracer.enable();
    let server: Server<F16> = Server::new(ServerConfig {
        devices: 2,
        chaos: Some(FaultConfig::blended(seed, rate)),
        ..ServerConfig::default()
    });
    let matrices = [matrix(64, 0), matrix(64, 3)];
    let keys = [server.register(&matrices[0]), server.register(&matrices[1])];

    let mut responses = Vec::with_capacity(REQUESTS);
    let mut seq = 0usize;
    while seq < REQUESTS {
        // The pause/resume window discipline from examples/serve.rs: batch
        // composition (and hence work ids) must not depend on how fast the
        // workers drain relative to the submitting thread.
        server.pause();
        let futures: Vec<_> = (0..WINDOW.min(REQUESTS - seq))
            .map(|w| server.submit(keys[(seq + w) % 2], panel(64, seq + w)))
            .collect();
        server.resume();
        for fut in futures {
            let resp = block_on(fut).expect("recovery absorbs injected faults");
            responses.push((resp.c, resp.device, resp.attempts, resp.degraded));
        }
        seq += WINDOW;
    }
    let chaos = server.stats().chaos;
    drop(server);
    tracer.disable();
    let mut events: Vec<String> = tracer
        .drain()
        .into_iter()
        .filter(|e| e.cat == "chaos")
        .map(|e| format!("{} {:?}", e.name, e.args))
        .collect();
    events.sort_unstable();
    Replay {
        responses,
        chaos,
        events,
    }
}

#[test]
fn same_seed_reproduces_responses_counters_and_fault_events() {
    let _gate = TRACER_GATE.lock().unwrap();
    let first = replay(7, 0.3);
    assert!(
        first.chaos.faults_injected > 0 && first.chaos.retries > 0,
        "the regression is vacuous unless faults actually fired: {:?}",
        first.chaos
    );
    assert!(!first.events.is_empty(), "chaos events must be traced");

    let second = replay(7, 0.3);
    for (i, (a, b)) in first.responses.iter().zip(&second.responses).enumerate() {
        assert_eq!(a.0, b.0, "request {i}: response bytes diverged");
        assert_eq!(
            (a.1, a.2, a.3),
            (b.1, b.2, b.3),
            "request {i}: (device, attempts, degraded) diverged"
        );
    }
    assert_eq!(first.chaos, second.chaos, "fault counters diverged");
    assert_eq!(first.events, second.events, "fault event multiset diverged");
}

#[test]
fn different_seeds_produce_different_fault_schedules() {
    // Not a determinism requirement per se, but the guard that the seed is
    // actually reaching the plan: two seeds at the same rate should not
    // produce the same schedule (astronomically unlikely with ~30 faults
    // over hundreds of keyed draws).
    let _gate = TRACER_GATE.lock().unwrap();
    let a = replay(7, 0.3);
    let b = replay(8, 0.3);
    assert_ne!(
        a.events, b.events,
        "seeds 7 and 8 injected identical fault schedules"
    );
}
