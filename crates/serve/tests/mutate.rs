//! Integration tests of the dynamic-matrix path: mutation → epoch-keyed
//! planning → background compaction, under real thread contention and
//! fault injection.
//!
//! The unit tests in `server.rs` / `registry.rs` / `plan.rs` cover each
//! layer alone; these tests drive the layers together:
//!
//! * the stale-plan regression through the full server (a mutated tenant's
//!   next request must re-plan, never launch under the pre-mutation plan),
//! * the eviction-during-compaction race (the compactor's pinned clone
//!   keeps the handle alive; the publish-if-same-handle check prevents
//!   resurrection),
//! * the chaos arm: a compaction killed mid-flight leaves the tenant
//!   serving its old epoch, byte-identically, and the single-flight guard
//!   resets so a later compaction can succeed,
//! * concurrent mutators racing auto-compaction converge to the oracle.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use smat::{MatrixUpdate, Smat, SmatConfig};
use smat_formats::{Coo, Csr, Dense, Element, MatrixFingerprint, F16};
use smat_serve::{
    block_on, CompactionPolicy, MatrixKey, PreparedMatrixRegistry, ServeError, Server, ServerConfig,
};

fn matrix(n: usize, shift: usize) -> Csr<F16> {
    let mut coo = Coo::new(n, n);
    for r in 0..n {
        for j in 0..5 {
            coo.push(
                r,
                (r * 3 + j * 11 + shift) % n,
                F16::from_f64(((r + j + shift) % 5) as f64 - 2.0),
            );
        }
    }
    coo.to_csr()
}

fn rhs(k: usize, n: usize, salt: usize) -> Dense<F16> {
    Dense::from_fn(k, n, |i, j| {
        F16::from_f64((((i + 2 * j + salt) % 7) as f64 - 3.0) / 2.0)
    })
}

fn key_of(a: &Csr<F16>, cfg: &SmatConfig) -> MatrixKey {
    MatrixKey::new(MatrixFingerprint::of_csr(a), cfg)
}

#[test]
fn a_mutated_tenant_never_launches_under_a_stale_plan_end_to_end() {
    // Drive the PlanCache through the full server: same tenant, same RHS
    // width, before and after a mutation. The epoch-keyed plan entry must
    // miss after the mutation (a stale-geometry launch would reuse the old
    // entry and hit), and the served product must be the merged one.
    let server: Server<F16> = Server::new(ServerConfig {
        devices: 1,
        compaction: CompactionPolicy {
            auto: false,
            ..CompactionPolicy::default()
        },
        ..ServerConfig::default()
    });
    let a = matrix(96, 0);
    let key = server.register(&a);
    let b = rhs(96, 8, 1);

    block_on(server.submit(key, b.clone())).unwrap();
    let misses_before = server.stats().plans.misses;
    block_on(server.submit(key, b.clone())).unwrap();
    assert_eq!(
        server.stats().plans.misses,
        misses_before,
        "an unmutated repeat at the same width is a plan hit"
    );

    server
        .mutate(
            key,
            &[MatrixUpdate::Update {
                row: 1,
                col: 2,
                value: F16::from_f64(4.0),
            }],
        )
        .unwrap();
    let resp = block_on(server.submit(key, b.clone())).unwrap();
    assert_eq!(
        server.stats().plans.misses,
        misses_before + 1,
        "the post-mutation request must re-plan under the new epoch"
    );
    let merged = Coo::with_overrides(&a, &[(1, 2, 4.0)]).to_csr();
    assert_eq!(resp.c, merged.spmm_reference(&b));
}

#[test]
fn eviction_during_compaction_keeps_the_pinned_handle_and_never_resurrects() {
    // The satellite-2 race: evict a tenant while its background compaction
    // is still reading the old handle. The compactor owns a clone, so the
    // prepare completes on live data; the publish-if-same-handle check then
    // discards the fresh handle instead of resurrecting the evicted key.
    let cfg = SmatConfig::default();
    let a = matrix(96, 0);
    let key = key_of(&a, &cfg);
    let registry: Arc<PreparedMatrixRegistry<F16>> = Arc::new(PreparedMatrixRegistry::new(4));
    registry.get_or_prepare(key, || Smat::prepare(&a, cfg.clone()));
    registry
        .peek(&key)
        .unwrap()
        .apply_updates(&[MatrixUpdate::Update {
            row: 0,
            col: 0,
            value: F16::from_f64(7.0),
        }]);

    // Two rendezvous points: the compactor signals it has started reading
    // the old handle, then waits until the eviction has happened before it
    // finishes the prepare and attempts to publish.
    let started = Arc::new(Barrier::new(2));
    let evicted = Arc::new(Barrier::new(2));
    let prepared_ok = Arc::new(AtomicBool::new(false));
    let (s, e, p) = (
        Arc::clone(&started),
        Arc::clone(&evicted),
        Arc::clone(&prepared_ok),
    );
    let spawned = registry.compact_prepare(key, move |old| {
        s.wait();
        e.wait();
        // The registry entry is gone by now; the pinned clone must still
        // be fully usable (merged_csr walks base + overlay).
        let merged = old.merged_csr();
        p.store(merged.nnz() > 0, Ordering::SeqCst);
        Smat::prepare(&merged, old.config().clone())
    });
    assert!(spawned, "compaction must start on a resident tenant");
    started.wait();
    assert!(registry.invalidate(&key), "evict mid-compaction");
    evicted.wait();
    registry.wait_compactions();

    assert!(
        prepared_ok.load(Ordering::SeqCst),
        "the compactor's pinned handle must survive the eviction"
    );
    assert!(
        registry.peek(&key).is_none(),
        "publishing after eviction would resurrect a forgotten tenant"
    );
    assert_eq!(registry.stats().compactions, 0, "nothing was published");
}

#[test]
fn a_compaction_killed_mid_flight_leaves_the_old_epoch_serving_byte_identically() {
    // Chaos arm: the prepare dies partway through. The tenant must keep
    // serving the pre-compaction handle (old epoch, overlay corrections
    // intact), two replays of the same request must be byte-identical, and
    // the single-flight guard must reset so a later compaction succeeds.
    let cfg = SmatConfig::default();
    let a = matrix(96, 3);
    let key = key_of(&a, &cfg);
    let registry: Arc<PreparedMatrixRegistry<F16>> = Arc::new(PreparedMatrixRegistry::new(4));
    registry.get_or_prepare(key, || Smat::prepare(&a, cfg.clone()));
    let handle = registry.peek(&key).unwrap();
    handle.apply_updates(&[
        MatrixUpdate::Update {
            row: 2,
            col: 2,
            value: F16::from_f64(5.0),
        },
        MatrixUpdate::Delete { row: 4, col: 12 },
    ]);
    let b = rhs(96, 8, 2);
    let before = handle.spmm(&b).c;

    let spawned = registry.compact_prepare(key, |_old| {
        panic!("fault injected mid-compaction");
    });
    assert!(spawned);
    registry.wait_compactions();

    let after = registry.peek(&key).expect("tenant still resident");
    assert!(
        after.ptr_eq(&handle),
        "the failed compaction must not have swapped the handle"
    );
    assert_eq!(after.overlay_epoch(), 2, "old epoch keeps serving");
    assert_eq!(after.spmm(&b).c, before, "replay is byte-identical");
    assert_eq!(after.spmm(&b).c, before, "and stays so on a second replay");
    assert_eq!(
        registry.stats().compactions,
        0,
        "a dead compaction counts nothing"
    );

    // The Unflag drop guard ran during the panic unwind: a retry compacts
    // normally and folds the overlay.
    let retried = registry.compact_prepare(key, |old| {
        Smat::prepare(&old.merged_csr(), old.config().clone())
    });
    assert!(retried, "single-flight guard must be clear after the panic");
    registry.wait_compactions();
    assert_eq!(registry.stats().compactions, 1);
    let fresh = registry.peek(&key).unwrap();
    assert_eq!(fresh.overlay_snapshot().correction_terms(), 0);
    assert_eq!(fresh.spmm(&b).c, before, "the fold preserves the product");
}

#[test]
fn concurrent_mutators_racing_auto_compaction_converge_to_the_oracle() {
    // Eight threads mutate disjoint cells of one tenant while the
    // structural trigger fires background compactions underneath them.
    // After quiescing, the served product must equal the oracle with every
    // cell applied — the mutate retry loop and the rebase between them may
    // not lose a single update.
    let server: Arc<Server<F16>> = Arc::new(Server::new(ServerConfig {
        devices: 2,
        compaction: CompactionPolicy {
            auto: true,
            min_overlay_cells: 1,
            overlay_nnz_fraction: 0.0,
            horizon: 256,
        },
        ..ServerConfig::default()
    }));
    let a = matrix(96, 0);
    let key = server.register(&a);

    const THREADS: usize = 8;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let (server, barrier) = (Arc::clone(&server), Arc::clone(&barrier));
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..4 {
                    let op = MatrixUpdate::Update {
                        row: t * 2,
                        col: i * 7,
                        value: F16::from_f64((t + i + 1) as f64),
                    };
                    server.mutate(key, std::slice::from_ref(&op)).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.quiesce_compactions();

    let mut overrides: Vec<(usize, usize, f64)> = (0..THREADS)
        .flat_map(|t| (0..4).map(move |i| (t * 2, i * 7, (t + i + 1) as f64)))
        .collect();
    overrides.sort_unstable_by_key(|&(r, c, _)| (r, c));
    let merged = Coo::with_overrides(&a, &overrides).to_csr();
    let b = rhs(96, 16, 5);
    assert_eq!(
        block_on(server.submit(key, b.clone())).unwrap().c,
        merged.spmm_reference(&b),
        "every concurrently applied update must be visible"
    );
    let stats = server.stats();
    assert_eq!(stats.mutations, (THREADS * 4) as u64);
    // Across swaps the epoch is merged with `max` (a retried op counts on
    // both sides, an op folded by a compaction counts on the retired one),
    // so the exact value is schedule-dependent — but it can never exceed
    // the op count and never return to zero while updates are live.
    let epoch = server.registry().peek(&key).unwrap().overlay_epoch();
    assert!(
        (1..=(THREADS * 4) as u64).contains(&epoch),
        "epoch {epoch} out of range"
    );
}

#[test]
fn mutating_an_evicted_tenant_reports_unknown_not_stale_state() {
    let server: Server<F16> = Server::new(ServerConfig {
        devices: 1,
        ..ServerConfig::default()
    });
    let a = matrix(64, 0);
    let key = server.register(&a);
    assert!(server.invalidate(&key));
    assert!(matches!(
        server.mutate(key, &[MatrixUpdate::Delete { row: 0, col: 0 }],),
        Err(ServeError::UnknownMatrix)
    ));
}
