//! Integration tests of the cost-model-driven admission planner: planned
//! registrations serve bitwise-identical products to the same
//! configurations pinned manually, pinned registrations bypass the
//! planner, shards plan independently, and observed launches drive the
//! online refit loop.

use std::sync::Arc;

use smat::SmatConfig;
use smat_formats::{Csr, Dense, Element, F16};
use smat_serve::{block_on, Calibration, PlanSpace, Planner, Server, ServerConfig};
use smat_shard::estimated_csr_bytes;
use smat_workloads::{calibration_bands, random_uniform};

fn rhs(k: usize, n: usize, salt: usize) -> Dense<F16> {
    Dense::from_fn(k, n, |i, j| {
        F16::from_f64(((i + 2 * j + salt) % 5) as f64 - 2.0)
    })
}

fn calibration() -> Calibration {
    Calibration::fit_on(&calibration_bands::<F16>(96), 8, &SmatConfig::default())
}

fn planned_config(cal: Calibration) -> ServerConfig {
    ServerConfig {
        devices: 2,
        planner: Some(Arc::new(Planner::with_calibration(
            PlanSpace::default(),
            cal,
        ))),
        ..ServerConfig::default()
    }
}

#[test]
fn planned_serving_is_bitwise_identical_to_manually_pinned_configs() {
    let cal = calibration();
    let base = SmatConfig::default();
    let mats: Vec<Csr<F16>> = (0..3u64)
        .map(|s| random_uniform(128, 128, 0.9, s))
        .collect();

    // Manual arm: decide offline with an identical calibration (decisions
    // are deterministic for a fixed calibration) and pin each choice.
    let offline = Planner::with_calibration(PlanSpace::default(), cal);
    let manual: Server<F16> = Server::new(ServerConfig {
        devices: 2,
        ..ServerConfig::default()
    });
    let manual_keys: Vec<_> = mats
        .iter()
        .map(|a| {
            let d = offline.decide(a, manual_config_width(), &base);
            manual.register_with_config(a, d.apply(&base))
        })
        .collect();

    // Planned arm: the server's own planner chooses at admission.
    let planned: Server<F16> = Server::new(planned_config(cal));
    let planned_keys: Vec<_> = mats.iter().map(|a| planned.register(a)).collect();

    for i in 0..9 {
        let (a, m) = (&mats[i % 3], i % 3);
        let b = rhs(128, 8, i);
        let want = a.spmm_reference(&b);
        let rp = block_on(planned.submit(planned_keys[m], b.clone())).expect("planned serve");
        let rm = block_on(manual.submit(manual_keys[m], b)).expect("pinned serve");
        assert_eq!(rp.c, want, "planned response must be exact");
        assert_eq!(
            rp.c, rm.c,
            "planned serving must be bitwise identical to the same \
             configuration chosen manually"
        );
        assert!(
            rp.predicted_ms.is_some_and(|p| p.is_finite() && p > 0.0),
            "planned response carries its prediction: {:?}",
            rp.predicted_ms
        );
        assert!(
            rm.predicted_ms.is_none(),
            "a pinned registration has no plan to grade"
        );
    }

    let stats = planned.stats();
    assert_eq!(stats.planned_requests, 9);
    assert!(stats.plan_predictions >= 1);
    assert!(
        stats.plan_mean_rel_error.is_finite(),
        "rel error: {}",
        stats.plan_mean_rel_error
    );
    assert!(stats.plan_observations >= 9, "{}", stats.plan_observations);
    let manual_stats = manual.stats();
    assert_eq!(manual_stats.planned_requests, 0);
    assert_eq!(manual_stats.plan_predictions, 0);
}

/// The planning width of the planned arm: the server plans at its column
/// budget, so the manual arm must decide at the same width to reproduce
/// the decision.
fn manual_config_width() -> usize {
    ServerConfig::default().column_budget
}

#[test]
fn pinned_registration_bypasses_the_planner() {
    let server: Server<F16> = Server::new(planned_config(calibration()));
    let a: Csr<F16> = random_uniform(96, 96, 0.9, 5);
    let key = server.register_with_config(&a, SmatConfig::default());
    let b = rhs(96, 8, 0);
    let want = a.spmm_reference(&b);
    let resp = block_on(server.submit(key, b)).expect("pinned serve");
    assert_eq!(resp.c, want);
    assert!(resp.predicted_ms.is_none());
    let stats = server.stats();
    assert_eq!(stats.planned_requests, 0);
    assert_eq!(stats.plan_predictions, 0);
    assert_eq!(stats.plan_observations, 0, "no feedback without a plan");
}

#[test]
fn warm_prepare_plans_and_parked_submissions_get_predictions() {
    let server: Server<F16> = Server::new(planned_config(calibration()));
    let a: Csr<F16> = random_uniform(128, 128, 0.92, 9);
    // Warm in the background and submit immediately: the request parks on
    // the in-flight (planned) prepare and completes with its prediction.
    let key = server.warm_prepare(&a);
    let b = rhs(128, 8, 3);
    let want = a.spmm_reference(&b);
    let resp = block_on(server.submit(key, b)).expect("parked planned serve");
    assert_eq!(resp.c, want);
    assert!(resp.predicted_ms.is_some());
    assert_eq!(server.stats().planned_requests, 1);
}

#[test]
fn sharded_registration_plans_each_shard_and_stays_exact() {
    let a: Csr<F16> = random_uniform(256, 128, 0.88, 42);
    let max_bytes = estimated_csr_bytes(&a).div_ceil(3);
    let server: Server<F16> = Server::new(ServerConfig {
        devices: 3,
        shard_max_bytes: Some(max_bytes),
        ..planned_config(calibration())
    });
    let key = server.register(&a);
    assert_eq!(
        server.shard_plan(&key).expect("sharded").nshards(),
        3,
        "operand must actually shard"
    );
    for i in 0..2 {
        let b = rhs(128, 8, i);
        let want = a.spmm_reference(&b);
        let resp = block_on(server.submit(key, b)).expect("sharded planned serve");
        assert_eq!(
            resp.c, want,
            "per-shard planning must preserve bitwise exactness"
        );
        assert!(
            resp.predicted_ms.is_some_and(|p| p.is_finite() && p > 0.0),
            "join sums the shard predictions: {:?}",
            resp.predicted_ms
        );
    }
    let stats = server.stats();
    // Every shard sub-request ran under a planner-chosen configuration.
    assert_eq!(stats.planned_requests, 6);
    assert_eq!(stats.completed, 2);
    assert!(stats.plan_mean_rel_error.is_finite());
}

#[test]
fn observed_launches_drive_online_refits() {
    let server: Server<F16> = Server::new(planned_config(calibration()));
    // Two matrices with different block counts: the observation window
    // spans distinct model x-values, so the spread guard admits refits.
    let a0: Csr<F16> = random_uniform(128, 128, 0.9, 1);
    let a1: Csr<F16> = random_uniform(160, 160, 0.95, 2);
    let k0 = server.register(&a0);
    let k1 = server.register(&a1);
    for i in 0..16 {
        let (a, k, n) = if i % 2 == 0 {
            (&a0, k0, 128)
        } else {
            (&a1, k1, 160)
        };
        let b = rhs(n, 8, i);
        let want = a.spmm_reference(&b);
        let resp = block_on(server.submit(k, b)).expect("served");
        assert_eq!(resp.c, want);
    }
    let stats = server.stats();
    assert_eq!(stats.plan_observations, 16);
    assert!(
        stats.plan_refits >= 1,
        "16 observations across two shapes must refit: {}",
        stats.plan_refits
    );
    assert!(stats.plan_mean_rel_error.is_finite());
    assert_eq!(stats.planned_requests, 16);
}
