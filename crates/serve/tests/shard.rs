//! Integration tests of the two-level scheduler: sharded registration,
//! fan-out/join serving, placement, warm-prepare parking, and chaos
//! recovery with replay determinism.

use smat_formats::{Csr, Dense, Element, F16};
use smat_gpusim::FaultConfig;
use smat_serve::{block_on, ChaosStats, RecoveryPolicy, Server, ServerConfig, ServerStats};
use smat_shard::estimated_csr_bytes;
use smat_workloads::random_uniform;

fn rhs(k: usize, n: usize, salt: usize) -> Dense<F16> {
    Dense::from_fn(k, n, |i, j| {
        F16::from_f64(((i + 2 * j + salt) % 5) as f64 - 2.0)
    })
}

/// A matrix big enough to split into `nshards` under the returned budget.
fn sharded_operand(nshards: usize, seed: u64) -> (Csr<F16>, usize) {
    let a: Csr<F16> = random_uniform(256, 128, 0.88, seed);
    let max_bytes = estimated_csr_bytes(&a).div_ceil(nshards);
    (a, max_bytes)
}

#[test]
fn sharded_serving_is_bitwise_identical_across_three_devices() {
    let (a, max_bytes) = sharded_operand(3, 42);
    let mut server: Server<F16> = Server::new(ServerConfig {
        devices: 3,
        shard_max_bytes: Some(max_bytes),
        ..ServerConfig::default()
    });
    let key = server.register(&a);
    let plan = server.shard_plan(&key).expect("key registered as sharded");
    assert_eq!(plan.nshards(), 3);

    // Pause so every fan-out's sub-requests enqueue against stable loads:
    // placement (and the dispatch counters below) become deterministic.
    server.pause();
    let futs: Vec<_> = (0..6)
        .map(|i| {
            let b = rhs(128, 8, i);
            let want = a.spmm_reference(&b);
            (server.submit(key, b), want)
        })
        .collect();
    server.resume();
    for (fut, want) in futs {
        let resp = block_on(fut).expect("sharded request served");
        assert_eq!(resp.c, want, "sharded response must be bitwise identical");
    }

    let stats = server.stats();
    assert_eq!(stats.submitted, 6, "each parent counts once");
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.fanout_requests, 6);
    assert_eq!(stats.shard_subrequests, 18);
    assert_eq!(stats.failed, 0);
    // From equal loads the least-loaded sort places shard i on device i:
    // every device receives exactly one sub-request per fan-out.
    for d in &stats.devices {
        assert_eq!(d.dispatched, 6, "device {} dispatch count", d.device);
    }
    server.shutdown();
    let stats = server.stats();
    for d in &stats.devices {
        assert_eq!(
            d.dispatched, d.completed,
            "device {} lost a sub-request",
            d.device
        );
    }
}

#[test]
fn small_matrices_bypass_the_shard_table() {
    let a: Csr<F16> = random_uniform(64, 64, 0.9, 3);
    let server: Server<F16> = Server::new(ServerConfig {
        devices: 2,
        // Budget far above the operand: registration stays unsharded.
        shard_max_bytes: Some(64 << 20),
        ..ServerConfig::default()
    });
    let key = server.register(&a);
    assert!(server.shard_plan(&key).is_none());
    let b = rhs(64, 8, 0);
    let want = a.spmm_reference(&b);
    let resp = block_on(server.submit(key, b)).expect("served directly");
    assert_eq!(resp.c, want);
    let stats = server.stats();
    assert_eq!(stats.fanout_requests, 0);
    assert_eq!(stats.shard_subrequests, 0);
    assert_eq!(stats.submitted, 1);
}

#[test]
fn submissions_park_on_an_in_flight_sharded_warm_prepare() {
    let (a, max_bytes) = sharded_operand(3, 7);
    let server: Server<F16> = Server::new(ServerConfig {
        devices: 3,
        shard_max_bytes: Some(max_bytes),
        ..ServerConfig::default()
    });
    // Warm in the background and submit immediately: the request must park
    // on the shard entry and fan out when preparation lands, not bounce.
    let key = server.warm_prepare(&a);
    let b = rhs(128, 16, 1);
    let want = a.spmm_reference(&b);
    let resp = block_on(server.submit(key, b)).expect("parked fan-out served");
    assert_eq!(resp.c, want);
    let stats = server.stats();
    assert_eq!(stats.fanout_requests, 1);
    assert_eq!(stats.completed, 1);
    assert!(server.shard_plan(&key).is_some(), "entry published");
}

#[test]
fn sharded_shape_mismatch_is_rejected_before_any_dispatch() {
    let (a, max_bytes) = sharded_operand(3, 11);
    let server: Server<F16> = Server::new(ServerConfig {
        devices: 3,
        shard_max_bytes: Some(max_bytes),
        ..ServerConfig::default()
    });
    let key = server.register(&a);
    match block_on(server.submit(key, rhs(64, 8, 0))) {
        Err(smat_serve::ServeError::ShapeMismatch {
            expected_rows,
            got_rows,
        }) => {
            assert_eq!(expected_rows, 128);
            assert_eq!(got_rows, 64);
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.submitted, 0);
    assert_eq!(stats.shard_subrequests, 0, "no orphan sub-requests");
    assert!(stats.devices.iter().all(|d| d.dispatched == 0));
}

/// One full chaos run over a sharded matrix: serial submissions fix every
/// work id, so the fault/recovery schedule is a pure function of the seed.
fn chaos_run(seed: u64) -> (Vec<Dense<F16>>, ChaosStats, ServerStats) {
    let (a, max_bytes) = sharded_operand(3, 21);
    let mut server: Server<F16> = Server::new(ServerConfig {
        devices: 3,
        shard_max_bytes: Some(max_bytes),
        chaos: Some(FaultConfig::blended(seed, 0.35)),
        recovery: RecoveryPolicy {
            backoff_base_us: 0,
            fallback_attempts: 16,
            ..RecoveryPolicy::default()
        },
        ..ServerConfig::default()
    });
    let key = server.register(&a);
    let mut responses = Vec::new();
    for i in 0..10 {
        let b = rhs(128, 8, i);
        let want = a.spmm_reference(&b);
        // Drained submission windows: the fan-out enqueues against an idle
        // pool, so shard→device placement — and with it the entire fault
        // and recovery schedule — is identical run to run.
        server.pause();
        let fut = server.submit(key, b);
        server.resume();
        let resp = block_on(fut).expect("recovery absorbs the faults");
        assert_eq!(
            resp.c, want,
            "faulted sharded serving returned a wrong product"
        );
        responses.push(resp.c);
    }
    server.shutdown();
    let stats = server.stats();
    (responses, stats.chaos, stats)
}

#[test]
fn losing_a_device_mid_fanout_hedges_only_the_lost_shard() {
    let (responses, chaos, stats) = chaos_run(2024);
    assert_eq!(responses.len(), 10);
    assert_eq!(stats.completed, 10);
    assert_eq!(stats.failed, 0, "every fan-out must recover");
    assert!(chaos.faults_injected > 0, "{chaos:?}");
    assert!(
        chaos.hedges >= 1,
        "a faulted shard must hedge to a peer device: {chaos:?}"
    );
    // Recovery is per sub-request: the healthy shards of a fan-out are
    // never re-dispatched, so hedges stay below the sub-request count.
    assert!(chaos.hedges < stats.shard_subrequests, "{chaos:?}");
    // No sub-request may be lost to the ladder: every dispatch completes.
    for d in &stats.devices {
        assert_eq!(
            d.dispatched, d.completed,
            "device {} lost a sub-request under chaos",
            d.device
        );
    }
}

#[test]
fn chaos_fanout_replays_deterministically() {
    let (responses_a, chaos_a, _) = chaos_run(2024);
    let (responses_b, chaos_b, _) = chaos_run(2024);
    assert_eq!(
        chaos_a, chaos_b,
        "replay must reproduce the chaos counters exactly"
    );
    assert_eq!(responses_a, responses_b, "replay must reproduce every bit");
}
