//! Fault-recovery policy for the serving engine: bounded retry with
//! seeded-jitter backoff, per-device circuit breakers, deterministic hedge
//! targeting, and the scalar degradation ladder's knobs.
//!
//! The recovery machinery is designed around the same invariant as the
//! fault layer itself ([`smat_gpusim::fault`]): every decision that can
//! change *what gets computed where* is a pure function of request content
//! and the chaos seed, never of wall-clock time or thread interleaving.
//! Retry keys, hedge targets, fallback device rotation, and backoff jitter
//! all derive from the batch's work id, so two replays of the same trace
//! with the same seed walk the exact same recovery ladder. The only
//! interleaving-dependent state is the circuit breakers — they bias
//! *admission ordering* (a scheduling hint, harmless to correctness) and
//! are settled between the drained submission windows a deterministic
//! replay uses.

use std::sync::atomic::{AtomicU64, Ordering};

use smat_gpusim::FaultKind;
use smat_sanitize::sync::{AtomicBool, AtomicU32};

use crate::stats::ChaosStats;

/// Knobs of the recovery ladder a faulted batch climbs:
///
/// 1. retry the Tensor Core launch on the owning device (with backoff);
/// 2. after [`hedge_after`](RecoveryPolicy::hedge_after) failures, hedge
///    the remaining retries to a deterministically chosen second device;
/// 3. after [`max_attempts`](RecoveryPolicy::max_attempts) TC failures,
///    degrade to the scalar `baselines::cusparse` path, rotating devices
///    per attempt, up to
///    [`fallback_attempts`](RecoveryPolicy::fallback_attempts) tries.
///
/// Only [`SimError::FaultInjected`](smat_gpusim::SimError) climbs the
/// ladder; real errors (OOM, preflight) fail the batch immediately, as
/// before.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Tensor Core launch attempts per batch (≥ 1) before degrading.
    pub max_attempts: u32,
    /// Failed TC attempts before the batch is hedged to a second device.
    /// Set `>= max_attempts` to disable hedging.
    pub hedge_after: u32,
    /// Base backoff before retry `k` is `backoff_base_us · 2^k`
    /// microseconds, scaled by seeded jitter in `[0.5, 1.0)`.
    pub backoff_base_us: u64,
    /// Upper bound on a single backoff sleep, microseconds.
    pub backoff_cap_us: u64,
    /// Consecutive failures that trip a device's circuit breaker open.
    pub breaker_threshold: u32,
    /// Whether the scalar degradation rung is enabled at all.
    pub fallback: bool,
    /// Scalar-path attempts (rotating over devices) before giving up.
    pub fallback_attempts: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 4,
            hedge_after: 2,
            backoff_base_us: 20,
            backoff_cap_us: 2_000,
            breaker_threshold: 3,
            fallback: true,
            fallback_attempts: 8,
        }
    }
}

impl RecoveryPolicy {
    /// Backoff for retry `attempt` of `work_id`, in microseconds:
    /// exponential in the attempt, scaled by jitter derived from the fault
    /// plan seed (so replays back off identically), capped at
    /// [`backoff_cap_us`](RecoveryPolicy::backoff_cap_us).
    pub fn backoff_us(&self, jitter01: f64, attempt: u32) -> u64 {
        let exp = self
            .backoff_base_us
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.backoff_cap_us);
        (exp as f64 * (0.5 + 0.5 * jitter01)).round() as u64
    }
}

/// A per-device circuit breaker: `threshold` consecutive fault-injected
/// failures open it; any success closes it. Open breakers are deprioritized
/// by least-loaded dispatch (a flapping device stops attracting new work)
/// and surfaced in [`DeviceStats`](crate::stats::DeviceStats).
///
/// The server keeps each breaker single-writer: only the owning device's
/// worker records outcomes on it (home-lane attempts and own-device scalar
/// attempts), never hedge attempts landing from another worker. With one
/// writer, the consecutive-failure count — and hence every breaker trip —
/// replays deterministically for a replayed trace.
///
/// The state is held in checked `smat-sanitize` atomics, so the
/// single-writer transition protocol is explorable by the model checker
/// (`tests/model_check.rs` proves a trip fires exactly once per open, and
/// that a *multi*-writer breaker would violate that invariant).
#[derive(Debug, Default)]
pub struct CircuitBreaker {
    consecutive: AtomicU32,
    open: AtomicBool,
}

impl CircuitBreaker {
    /// A closed breaker with no failure history.
    pub fn new() -> Self {
        CircuitBreaker::default()
    }

    /// Whether the breaker is currently open (device deprioritized).
    pub fn is_open(&self) -> bool {
        self.open.load(Ordering::Relaxed)
    }

    /// Records a fault-injected failure; returns `true` iff this failure
    /// tripped the breaker open (closed → open transition).
    pub fn record_failure(&self, threshold: u32) -> bool {
        let seen = self.consecutive.fetch_add(1, Ordering::Relaxed) + 1;
        seen >= threshold && !self.open.swap(true, Ordering::Relaxed)
    }

    /// Records a successful launch; returns `true` iff this success closed
    /// a previously open breaker.
    pub fn record_success(&self) -> bool {
        self.consecutive.store(0, Ordering::Relaxed);
        self.open.swap(false, Ordering::Relaxed)
    }
}

/// Pool-wide chaos counters (atomic accumulation side).
#[derive(Debug, Default)]
pub struct ChaosCounters {
    faults_injected: AtomicU64,
    faults_transient: AtomicU64,
    faults_ecc: AtomicU64,
    faults_offline: AtomicU64,
    retries: AtomicU64,
    hedges: AtomicU64,
    breaker_trips: AtomicU64,
    degraded_completions: AtomicU64,
}

impl ChaosCounters {
    /// Counts one observed (injected and detected) fault of `kind`.
    pub fn count_fault(&self, kind: FaultKind) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
        let per_kind = match kind {
            FaultKind::TransientLaunchFailure => &self.faults_transient,
            FaultKind::EccCorruption => &self.faults_ecc,
            FaultKind::DeviceOffline => &self.faults_offline,
        };
        per_kind.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one retry (TC or scalar rung).
    pub fn count_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one hedge re-dispatch.
    pub fn count_hedge(&self) {
        self.hedges.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one breaker trip (closed → open transition).
    pub fn count_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` requests completed through the scalar degradation path.
    pub fn count_degraded(&self, n: u64) {
        self.degraded_completions.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot into the serializable stats form.
    pub fn snapshot(&self) -> ChaosStats {
        ChaosStats {
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            faults_transient: self.faults_transient.load(Ordering::Relaxed),
            faults_ecc: self.faults_ecc.load(Ordering::Relaxed),
            faults_offline: self.faults_offline.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            degraded_completions: self.degraded_completions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_once_at_threshold_and_closes_on_success() {
        let b = CircuitBreaker::new();
        assert!(!b.is_open());
        assert!(!b.record_failure(3));
        assert!(!b.record_failure(3));
        assert!(b.record_failure(3), "third consecutive failure trips");
        assert!(b.is_open());
        assert!(!b.record_failure(3), "already open: no second trip");
        assert!(b.record_success(), "success closes an open breaker");
        assert!(!b.is_open());
        assert!(!b.record_success(), "already closed");
        // Counter reset: three more failures are needed to trip again.
        assert!(!b.record_failure(3));
        assert!(!b.record_failure(3));
        assert!(b.record_failure(3));
    }

    #[test]
    fn backoff_is_exponential_jittered_and_capped() {
        let p = RecoveryPolicy::default();
        // Zero jitter: half the nominal value. Full jitter: the nominal.
        assert_eq!(p.backoff_us(0.0, 0), 10);
        assert_eq!(p.backoff_us(0.0, 1), 20);
        assert_eq!(p.backoff_us(0.0, 2), 40);
        assert!(p.backoff_us(0.999, 0) >= 19);
        // Deep attempts hit the cap (scaled by jitter).
        assert!(p.backoff_us(0.999, 30) <= p.backoff_cap_us);
        assert_eq!(p.backoff_us(0.0, 30), p.backoff_cap_us / 2);
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = ChaosCounters::default();
        c.count_fault(FaultKind::TransientLaunchFailure);
        c.count_fault(FaultKind::TransientLaunchFailure);
        c.count_fault(FaultKind::EccCorruption);
        c.count_fault(FaultKind::DeviceOffline);
        c.count_retry();
        c.count_hedge();
        c.count_breaker_trip();
        c.count_degraded(3);
        let s = c.snapshot();
        assert_eq!(s.faults_injected, 4);
        assert_eq!(s.faults_transient, 2);
        assert_eq!(s.faults_ecc, 1);
        assert_eq!(s.faults_offline, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.hedges, 1);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.degraded_completions, 3);
        assert!(s.any_activity());
    }
}
