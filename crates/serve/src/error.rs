//! Typed serving errors: admission-control rejections and execution
//! failures, reusing `smat-diag` findings for pre-flight rejections.

use smat_diag::Diagnostic;
use smat_gpusim::SimError;

/// Why the admission controller refused a request before execution.
#[derive(Clone, Debug)]
pub enum RejectReason {
    /// Every device queue was at capacity — backpressure. Retry later.
    QueueFull {
        /// Pending requests across the pool at rejection time.
        depth: usize,
        /// Total pool capacity (per-queue capacity × devices).
        capacity: usize,
    },
    /// The request's deadline expired before its batch reached a device.
    Deadline {
        /// How far past the deadline the request was when dropped, in
        /// milliseconds of host wall clock.
        late_ms: f64,
    },
    /// The static pre-flight pass found error-severity findings for this
    /// (matrix, n) plan; the launch would be rejected by the pipeline, so
    /// the request is refused at admission instead of wasting queue slots.
    Preflight {
        /// The findings (at least one of error severity).
        diagnostics: Vec<Diagnostic>,
    },
}

impl RejectReason {
    /// Stable label used in stats and logs.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue-full",
            RejectReason::Deadline { .. } => "deadline",
            RejectReason::Preflight { .. } => "preflight",
        }
    }
}

/// Error type of [`Server::submit`](crate::Server::submit) futures.
#[derive(Clone, Debug)]
pub enum ServeError {
    /// Refused by admission control (typed reason inside).
    Rejected(RejectReason),
    /// The request's B panel row count does not match the matrix.
    ShapeMismatch {
        /// Rows the registered matrix requires of B.
        expected_rows: usize,
        /// Rows the submitted panel has.
        got_rows: usize,
    },
    /// The simulated device failed the launch (e.g. out of memory).
    Sim(SimError),
    /// The server shut down before the request completed.
    ShutDown,
    /// The referenced matrix key is not registered.
    UnknownMatrix,
    /// A mutation targeted a cell outside the matrix bounds.
    UpdateOutOfBounds {
        /// Registered matrix rows.
        nrows: usize,
        /// Registered matrix columns.
        ncols: usize,
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
    },
    /// The key names a sharded registration, which serves immutable row
    /// shards; in-place mutation is only supported for unsharded tenants.
    MutationUnsupported,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(RejectReason::QueueFull { depth, capacity }) => {
                write!(f, "rejected: queue full ({depth}/{capacity} pending)")
            }
            ServeError::Rejected(RejectReason::Deadline { late_ms }) => {
                write!(f, "rejected: deadline missed by {late_ms:.3} ms")
            }
            ServeError::Rejected(RejectReason::Preflight { diagnostics }) => {
                write!(f, "rejected: pre-flight ({} findings)", diagnostics.len())
            }
            ServeError::ShapeMismatch {
                expected_rows,
                got_rows,
            } => write!(f, "B must have {expected_rows} rows, got {got_rows}"),
            ServeError::Sim(e) => write!(f, "simulated launch failed: {e}"),
            ServeError::ShutDown => write!(f, "server shut down before completion"),
            ServeError::UnknownMatrix => write!(f, "matrix key not registered"),
            ServeError::UpdateOutOfBounds {
                nrows,
                ncols,
                row,
                col,
            } => write!(
                f,
                "update targets ({row},{col}) outside the {nrows}x{ncols} matrix"
            ),
            ServeError::MutationUnsupported => {
                write!(f, "sharded registrations do not support mutation")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_display_are_stable() {
        let q = RejectReason::QueueFull {
            depth: 4,
            capacity: 4,
        };
        assert_eq!(q.label(), "queue-full");
        assert_eq!(
            ServeError::Rejected(q).to_string(),
            "rejected: queue full (4/4 pending)"
        );
        let d = RejectReason::Deadline { late_ms: 1.5 };
        assert_eq!(d.label(), "deadline");
        let p = RejectReason::Preflight {
            diagnostics: vec![],
        };
        assert_eq!(p.label(), "preflight");
        assert!(ServeError::ShutDown.to_string().contains("shut down"));
        assert_eq!(
            ServeError::UpdateOutOfBounds {
                nrows: 4,
                ncols: 8,
                row: 9,
                col: 1
            }
            .to_string(),
            "update targets (9,1) outside the 4x8 matrix"
        );
        assert!(ServeError::MutationUnsupported
            .to_string()
            .contains("sharded"));
    }
}
