//! The request batcher: coalesces same-matrix requests into one wide SpMM.
//!
//! SpMM cost has a per-launch constant (`T_init` in the paper's model,
//! Eq. (1)) and a per-column part; concatenating the B panels of several
//! requests amortizes the constant and the shared A-tile staging across the
//! batch. Column `j` of the product depends only on column `j` of `B`, so
//! splitting the wide `C` back per request is *bitwise* identical to
//! running each request alone — a property the proptest suite pins down.

use std::collections::VecDeque;

use smat::{OverlaySnapshot, RunReport, Smat};
use smat_baselines::CusparseLike;
use smat_formats::{Dense, Element};
use smat_gpusim::{Gpu, SimError};

/// Executes one batched SpMM for several same-matrix requests: concatenates
/// the panels, launches once on `gpu`, and splits the output back in input
/// order. Returns one `C` per input panel plus the shared launch report.
///
/// `overlay` is the epoch-pinned delta the batch admitted under (batches
/// are same-epoch by construction — the batcher keys on `(matrix key,
/// epoch)`); the prepared base runs on the Tensor Core path and the
/// overlay's corrections merge in afterwards, bitwise-deterministically.
///
/// # Panics
/// Panics if `panels` is empty or their row counts disagree.
pub fn spmm_batched<T: Element>(
    smat: &Smat<T>,
    gpu: &Gpu,
    panels: &[&Dense<T>],
    overlay: &OverlaySnapshot,
) -> Result<(Vec<Dense<T>>, RunReport), SimError> {
    if panels.len() == 1 {
        // Nothing to coalesce; skip the concat/split copies.
        let run = smat.try_spmm_on_pinned(gpu, panels[0], overlay)?;
        return Ok((vec![run.c], run.report));
    }
    let widths: Vec<usize> = panels.iter().map(|p| p.ncols()).collect();
    let wide = Dense::hconcat(panels);
    let run = smat.try_spmm_on_pinned(gpu, &wide, overlay)?;
    Ok((run.c.split_cols(&widths), run.report))
}

/// The scalar degradation rung: executes the same batched product with the
/// `baselines::cusparse` vector-CSR kernel over the prepared matrix's
/// memoized CSR reconstruction ([`Smat::fallback_csr`]) — no Tensor Cores,
/// no blocking, but also none of the TC kernel's failure surface left to
/// climb. The output is bitwise identical to the TC path: both accumulate
/// each output element over the matrix entries of a row in ascending-`k`
/// order in the element type's accumulator precision.
///
/// Returns one `C` per input panel (original row order, like
/// [`spmm_batched`]) plus the scalar launch's simulated milliseconds.
///
/// # Panics
/// Panics if `panels` is empty or their row counts disagree.
pub fn spmm_scalar_fallback<T: Element>(
    smat: &Smat<T>,
    gpu: &Gpu,
    panels: &[&Dense<T>],
    overlay: &OverlaySnapshot,
) -> Result<(Vec<Dense<T>>, f64), SimError> {
    let csr = smat.fallback_csr();
    let widths: Vec<usize> = panels.iter().map(|p| p.ncols()).collect();
    let wide;
    let joined: &Dense<T> = if panels.len() == 1 {
        panels[0]
    } else {
        wide = Dense::hconcat(panels);
        &wide
    };
    // The fallback CSR lives in the permuted space: transform B in, and
    // the output row order back out, exactly as the TC pipeline does.
    let permuted = smat.permute_rhs(joined);
    let b_eff = permuted.as_ref().unwrap_or(joined);
    let (launch, c_permuted) = CusparseLike::new(gpu, &csr).spmm(b_eff)?;
    let mut c = smat.restore_row_order(&c_permuted);
    // Overlay corrections apply in original coordinates — after the row
    // restore, against the un-permuted B — exactly like the TC path, so
    // degraded completions stay bitwise indistinguishable.
    overlay.apply_corrections(&mut c, joined, 1.0);
    let cs = if panels.len() == 1 {
        vec![c]
    } else {
        c.split_cols(&widths)
    };
    Ok((cs, launch.time_ms))
}

/// Pops the head of `queue` plus every later same-key request that fits the
/// remaining column budget, preserving queue order among what stays.
///
/// The head is always taken, even when it alone exceeds `budget` — a
/// too-wide request must still run (alone) rather than starve. Requests for
/// *other* matrices are skipped, not reordered: the batch is same-matrix by
/// construction so one prepared handle serves the whole launch.
pub fn take_batch<R, K: PartialEq>(
    queue: &mut VecDeque<R>,
    key: impl Fn(&R) -> K,
    cols: impl Fn(&R) -> usize,
    budget: usize,
) -> Vec<R> {
    let Some(head) = queue.pop_front() else {
        return Vec::new();
    };
    let head_key = key(&head);
    let mut total = cols(&head);
    let mut batch = vec![head];
    let mut i = 0;
    while i < queue.len() {
        if key(&queue[i]) == head_key && total + cols(&queue[i]) <= budget {
            let r = queue.remove(i).expect("index in bounds");
            total += cols(&r);
            batch.push(r);
        } else {
            i += 1;
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat::SmatConfig;
    use smat_formats::{Coo, Csr, F16};

    fn matrix(n: usize) -> Csr<F16> {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            for j in 0..6 {
                coo.push(
                    r,
                    (r * 3 + j * 11) % n,
                    F16::from_f64(((r + j) % 5) as f64 - 2.0),
                );
            }
        }
        coo.to_csr()
    }

    #[test]
    fn batched_split_equals_per_request_runs() {
        let a = matrix(96);
        let smat = Smat::prepare(&a, SmatConfig::default());
        let gpu = Gpu::new(smat.config().device.clone());
        let b1 = Dense::from_fn(96, 8, |i, j| F16::from_f64(((i + j) % 3) as f64));
        let b2 = Dense::from_fn(96, 16, |i, j| F16::from_f64(((i * j) % 4) as f64 - 1.0));
        let b3 = Dense::from_fn(96, 5, |i, j| F16::from_f64(((2 * i + j) % 5) as f64));
        let (cs, report) =
            spmm_batched(&smat, &gpu, &[&b1, &b2, &b3], &OverlaySnapshot::empty()).unwrap();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0], smat.spmm(&b1).c);
        assert_eq!(cs[1], smat.spmm(&b2).c);
        assert_eq!(cs[2], smat.spmm(&b3).c);
        assert!(report.elapsed_ms() > 0.0);
    }

    #[test]
    fn batching_amortizes_launch_overhead() {
        let a = matrix(128);
        let smat = Smat::prepare(&a, SmatConfig::default());
        let gpu = Gpu::new(smat.config().device.clone());
        let b = Dense::from_fn(128, 8, |i, j| F16::from_f64(((i + j) % 3) as f64));
        let (_, one_batched) =
            spmm_batched(&smat, &gpu, &[&b, &b, &b, &b], &OverlaySnapshot::empty()).unwrap();
        let solo = smat.spmm(&b).report;
        assert!(
            one_batched.elapsed_ms() < 4.0 * solo.elapsed_ms(),
            "batched launch {} ms must beat 4 solo launches {} ms",
            one_batched.elapsed_ms(),
            4.0 * solo.elapsed_ms()
        );
    }

    #[test]
    fn scalar_fallback_is_bitwise_identical_to_tc_batch() {
        let a = matrix(96);
        let smat = Smat::prepare(&a, SmatConfig::default());
        let gpu = Gpu::new(smat.config().device.clone());
        let b1 = Dense::from_fn(96, 8, |i, j| F16::from_f64(((i + j) % 3) as f64));
        let b2 = Dense::from_fn(96, 16, |i, j| F16::from_f64(((i * j) % 4) as f64 - 1.0));
        let empty = OverlaySnapshot::empty();
        let (tc, _) = spmm_batched(&smat, &gpu, &[&b1, &b2], &empty).unwrap();
        let (scalar, sim_ms) = spmm_scalar_fallback(&smat, &gpu, &[&b1, &b2], &empty).unwrap();
        assert_eq!(scalar, tc, "degraded completions must be indistinguishable");
        assert!(sim_ms > 0.0);
        // Single-panel shortcut agrees too.
        let (solo, _) = spmm_scalar_fallback(&smat, &gpu, &[&b1], &empty).unwrap();
        assert_eq!(solo[0], tc[0]);
    }

    #[test]
    fn overlay_batches_agree_across_tc_and_scalar_paths() {
        // Mutate, pin the snapshot, and check: batched TC + corrections,
        // the scalar rung, and a from-scratch rebuild of the merged matrix
        // all produce the same bytes.
        let a = matrix(96);
        let smat = Smat::prepare(&a, SmatConfig::default());
        smat.apply_updates(&[
            smat::MatrixUpdate::Update {
                row: 0,
                col: 3,
                value: F16::from_f64(4.0),
            },
            smat::MatrixUpdate::Insert {
                row: 50,
                col: 77,
                value: F16::from_f64(-2.0),
            },
            smat::MatrixUpdate::Delete { row: 10, col: 30 },
        ]);
        let overlay = smat.overlay_snapshot();
        let gpu = Gpu::new(smat.config().device.clone());
        let b1 = Dense::from_fn(96, 8, |i, j| F16::from_f64(((i + j) % 3) as f64));
        let b2 = Dense::from_fn(96, 16, |i, j| F16::from_f64(((i * j) % 4) as f64 - 1.0));
        let (tc, _) = spmm_batched(&smat, &gpu, &[&b1, &b2], &overlay).unwrap();
        let (scalar, _) = spmm_scalar_fallback(&smat, &gpu, &[&b1, &b2], &overlay).unwrap();
        assert_eq!(scalar, tc, "degraded overlay path must match TC");
        let merged = smat.merged_csr();
        assert_eq!(tc[0], merged.spmm_reference(&b1));
        assert_eq!(tc[1], merged.spmm_reference(&b2));
        // The pinned empty snapshot still computes the pre-mutation result.
        let (old, _) = spmm_batched(&smat, &gpu, &[&b1], &OverlaySnapshot::empty()).unwrap();
        assert_eq!(old[0], a.spmm_reference(&b1));
    }

    #[test]
    fn take_batch_coalesces_same_key_within_budget() {
        // (key, cols) pairs.
        let mut q: VecDeque<(u32, usize)> =
            [(1, 8), (2, 8), (1, 16), (1, 32), (2, 8), (1, 8)].into();
        let batch = take_batch(&mut q, |r| r.0, |r| r.1, 32);
        // Head (1,8) + (1,16) fit in 32; (1,32) would overflow; (1,8) fits.
        assert_eq!(batch, vec![(1, 8), (1, 16), (1, 8)]);
        // Order of the remainder is preserved.
        assert_eq!(q, VecDeque::from([(2, 8), (1, 32), (2, 8)]));
    }

    #[test]
    fn take_batch_never_starves_an_oversized_head() {
        let mut q: VecDeque<(u32, usize)> = [(1, 100), (1, 8)].into();
        let batch = take_batch(&mut q, |r| r.0, |r| r.1, 32);
        assert_eq!(batch, vec![(1, 100)], "oversized head runs alone");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn take_batch_on_empty_queue_is_empty() {
        let mut q: VecDeque<(u32, usize)> = VecDeque::new();
        assert!(take_batch(&mut q, |r| r.0, |r| r.1, 32).is_empty());
    }
}
