//! The publish-then-drain park slot: the one-shot fill-in cell behind
//! [`PreparedMatrixRegistry`](crate::registry::PreparedMatrixRegistry).
//!
//! A [`ParkSlot`] holds one value that is produced at most once
//! ([`ParkSlot::fulfill`]) and consumed by callers that either observe it
//! ready or *park* a completion closure on it ([`ParkSlot::park`]). The
//! protocol is race-free by a publication-order argument:
//!
//! * the fulfiller stores the value and sets `published` (release) *before*
//!   taking the waiter lock to drain;
//! * a parker loads `published` (acquire) *while holding* the waiter lock.
//!
//! Either the parker sees the flag and runs inline, or its pushed waiter is
//! in the list before the fulfiller's drain takes the lock — never lost.
//! (The intentionally inverted drain-then-publish variant is a model-checker
//! fixture in `smat-sanitize`; the model tests in `tests/model_check.rs`
//! verify this slot under exhaustive interleaving.)
//!
//! Lock order: `running` and `waiters` are leaf locks — neither is ever
//! acquired while the other (or any caller lock) is held, so the slot
//! contributes no edges to the lock-order graph.
//!
//! `fulfill` is panic-safe: if `produce` unwinds, the `running` flag is
//! reset and the next fulfiller retries, so a panicked prepare leaves the
//! slot re-fulfillable (and its parked waiters servable) instead of wedged.

use std::sync::atomic::Ordering;
use std::sync::OnceLock;

use smat_sanitize::sync::{AtomicBool, Condvar, Mutex};

/// A parked completion closure, run with the published value.
pub type Waiter<V> = Box<dyn FnOnce(V) + Send>;

/// A one-shot value cell with parked-waiter draining; see the module docs
/// for the publish-then-drain protocol.
pub struct ParkSlot<V> {
    /// Storage for the produced value. Readiness is signaled by
    /// `published`, stored (release) strictly after the cell is set.
    value: OnceLock<V>,
    published: AtomicBool,
    /// Whether some thread is currently running `produce`. Leaf lock.
    running: Mutex<bool>,
    running_cv: Condvar,
    /// Completion closures parked until publication. Leaf lock.
    waiters: Mutex<Vec<Waiter<V>>>,
}

/// Resets `running` (and wakes blocked fulfillers) when `produce` unwinds.
/// Forgotten on the success path; its `Drop` runs only during a panic, and
/// only touches the uncontended leaf `running` lock, which is safe even
/// while unwinding inside a model execution (`unlock` never blocks there).
struct ResetOnUnwind<'a, V> {
    slot: &'a ParkSlot<V>,
}

impl<V> Drop for ResetOnUnwind<'_, V> {
    fn drop(&mut self) {
        // POLICY (poisoning): recover. `running` guards a single bool this
        // very guard keeps consistent across unwinds; there is no torn
        // state a poison flag could be protecting.
        *self.slot.running.lock_or_recover() = false;
        self.slot.running_cv.notify_all();
    }
}

impl<V: Clone> ParkSlot<V> {
    /// An empty, unpublished slot.
    pub fn new() -> Self {
        ParkSlot {
            value: OnceLock::new(),
            published: AtomicBool::new(false),
            running: Mutex::labeled("parkslot.running", false),
            running_cv: Condvar::new(),
            waiters: Mutex::labeled("parkslot.waiters", Vec::new()),
        }
    }

    /// Whether the value has been published.
    pub fn is_ready(&self) -> bool {
        self.published.load(Ordering::Acquire)
    }

    /// The published value, if ready.
    pub fn get(&self) -> Option<V> {
        if self.is_ready() {
            Some(self.value.get().expect("published implies set").clone())
        } else {
            None
        }
    }

    /// Ensures the slot is fulfilled and drained: runs `produce` if no
    /// value is published and nobody else is producing, otherwise waits for
    /// the in-flight producer; then drains every parked waiter with the
    /// published value. Returns `true` iff *this* call ran `produce`.
    ///
    /// If `produce` panics, the panic propagates to this caller after the
    /// slot is restored to a re-fulfillable state (waiters stay parked for
    /// the next fulfiller).
    pub fn fulfill(&self, produce: impl FnOnce() -> V) -> bool {
        let mut ran = false;
        if !self.is_ready() {
            // POLICY (poisoning): recover. A producer that panicked has
            // already reset `running` via its unwind guard, so the bool
            // under a poisoned lock is still protocol-consistent.
            let mut running = self.running.lock_or_recover();
            loop {
                if self.is_ready() {
                    break;
                }
                if !*running {
                    *running = true;
                    drop(running);
                    let reset = ResetOnUnwind { slot: self };
                    let v = produce();
                    std::mem::forget(reset);
                    let _ = self.value.set(v);
                    // Publish *before* draining — the fulfiller half of the
                    // race-free parking protocol (module docs).
                    self.published.store(true, Ordering::Release);
                    *self.running.lock_or_recover() = false;
                    self.running_cv.notify_all();
                    ran = true;
                    break;
                }
                running = self.running_cv.wait(running);
            }
        }
        self.drain();
        ran
    }

    /// Runs `waiter` inline if the value is published, otherwise parks it
    /// for the fulfiller's drain. Returns `true` iff it ran inline.
    pub fn park(&self, waiter: Waiter<V>) -> bool {
        // POLICY (poisoning): recover. The waiter list is only ever pushed
        // to or taken whole; a panic inside a *drained* waiter unwinds with
        // the lock already released, so the list cannot be torn.
        let mut waiters = self.waiters.lock_or_recover();
        // The parker half of the protocol: load `published` while holding
        // the waiter lock.
        if self.is_ready() {
            drop(waiters);
            waiter(self.value.get().expect("published implies set").clone());
            true
        } else {
            waiters.push(waiter);
            false
        }
    }

    /// Drains parked waiters after publication. Idempotent: the list is
    /// taken whole, so concurrent drains split the waiters between them.
    fn drain(&self) {
        let parked = std::mem::take(&mut *self.waiters.lock_or_recover());
        if parked.is_empty() {
            return;
        }
        let v = self.value.get().expect("drained only after publish");
        for w in parked {
            w(v.clone());
        }
    }
}

impl<V: Clone> Default for ParkSlot<V> {
    fn default() -> Self {
        ParkSlot::new()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    use super::*;

    #[test]
    fn fulfill_publishes_once_and_reports_who_ran() {
        let slot: ParkSlot<u32> = ParkSlot::new();
        assert!(!slot.is_ready());
        assert_eq!(slot.get(), None);
        assert!(slot.fulfill(|| 7));
        assert!(slot.is_ready());
        assert_eq!(slot.get(), Some(7));
        assert!(!slot.fulfill(|| panic!("must not re-produce")));
        assert_eq!(slot.get(), Some(7));
    }

    #[test]
    fn parked_waiters_are_drained_and_late_parkers_run_inline() {
        let slot: ParkSlot<u32> = ParkSlot::new();
        let seen = Arc::new(AtomicU32::new(0));
        let s = Arc::clone(&seen);
        assert!(!slot.park(Box::new(move |v| {
            s.fetch_add(v, Ordering::SeqCst);
        })));
        assert!(slot.fulfill(|| 5));
        assert_eq!(seen.load(Ordering::SeqCst), 5);
        let s = Arc::clone(&seen);
        assert!(slot.park(Box::new(move |v| {
            s.fetch_add(v, Ordering::SeqCst);
        })));
        assert_eq!(seen.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn panicked_produce_leaves_the_slot_refulfillable() {
        let slot: Arc<ParkSlot<u32>> = Arc::new(ParkSlot::new());
        let seen = Arc::new(AtomicU32::new(0));
        let s = Arc::clone(&seen);
        assert!(!slot.park(Box::new(move |v| {
            s.fetch_add(v, Ordering::SeqCst);
        })));
        let s2 = Arc::clone(&slot);
        let panicked = std::thread::spawn(move || {
            s2.fulfill(|| panic!("prepare blew up"));
        })
        .join();
        assert!(panicked.is_err(), "the produce panic must propagate");
        assert!(!slot.is_ready(), "a panicked produce publishes nothing");
        assert_eq!(seen.load(Ordering::SeqCst), 0, "waiter still parked");
        // The retry both produces and drains the surviving waiter.
        assert!(slot.fulfill(|| 9));
        assert_eq!(slot.get(), Some(9));
        assert_eq!(seen.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn concurrent_fulfillers_agree_on_one_producer() {
        for _ in 0..20 {
            let slot: Arc<ParkSlot<u32>> = Arc::new(ParkSlot::new());
            let runs = Arc::new(AtomicU32::new(0));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let (slot, runs) = (Arc::clone(&slot), Arc::clone(&runs));
                    std::thread::spawn(move || {
                        slot.fulfill(|| {
                            runs.fetch_add(1, Ordering::SeqCst);
                            42
                        })
                    })
                })
                .collect();
            let ran: u32 = handles
                .into_iter()
                .map(|h| u32::from(h.join().unwrap()))
                .sum();
            assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one produce");
            assert_eq!(ran, 1, "exactly one fulfiller reports having run it");
            assert_eq!(slot.get(), Some(42));
        }
    }
}
