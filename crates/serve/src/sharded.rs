//! Shard-aware serving state: the matrix-level half of the two-level
//! scheduler.
//!
//! When a registered matrix exceeds the configured shard byte budget
//! ([`crate::ServerConfig::shard_max_bytes`]), it never becomes a single
//! registry entry. Instead the [`ShardTable`] holds, per *parent* key, a
//! [`ParkSlot`] publishing a [`ShardedEntry`]: the partition plan plus one
//! prepared handle per shard, each of which went through the ordinary
//! registry (`get_or_prepare`) under its own shard fingerprint and
//! therefore owns its own plan-cache line. Submissions for the parent key
//! either observe the entry ready and fan out inline, or park on the slot
//! exactly like unsharded requests park on a warm prepare — never
//! blocking, never duplicating a prepare.
//!
//! The prepared shard handles are pinned inside the entry, so LRU eviction
//! of shard keys from the registry can never invalidate an in-flight
//! fan-out.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use smat::{Planner, Smat, SmatConfig};
use smat_formats::{Csr, Element, MatrixFingerprint};
use smat_sanitize::sync::Mutex;
use smat_shard::{ShardPlan, ShardPolicy};

use crate::parkslot::ParkSlot;
use crate::registry::{MatrixKey, PreparedMatrixRegistry};

/// A sharded matrix resident in the serving tier: the plan plus every
/// shard's registry key and prepared handle, in shard order.
pub(crate) struct ShardedEntry<T> {
    /// The partition (row ranges, nnz, byte estimates).
    pub plan: Arc<ShardPlan>,
    /// Per-shard registry keys (shard fingerprint + config digest).
    pub keys: Arc<Vec<MatrixKey>>,
    /// Per-shard prepared handles, pinned for the entry's lifetime.
    pub smats: Arc<Vec<Smat<T>>>,
}

impl<T> Clone for ShardedEntry<T> {
    fn clone(&self) -> Self {
        ShardedEntry {
            plan: Arc::clone(&self.plan),
            keys: Arc::clone(&self.keys),
            smats: Arc::clone(&self.smats),
        }
    }
}

/// Parent-key → sharded-entry slots, plus the background warm threads
/// preparing them.
pub(crate) struct ShardTable<T> {
    /// Leaf lock: held only to clone a slot `Arc` in or out.
    slots: Mutex<HashMap<MatrixKey, Arc<ParkSlot<ShardedEntry<T>>>>>,
    /// Background shard-prepare threads, joined on drop.
    warm: Mutex<Vec<JoinHandle<()>>>,
}

impl<T: Element> ShardTable<T> {
    pub fn new() -> Self {
        ShardTable {
            slots: Mutex::labeled("server.shard.slots", HashMap::new()),
            warm: Mutex::labeled("server.shard.warm", Vec::new()),
        }
    }

    /// The slot for `key` if one exists (i.e. the key was registered as
    /// sharded). Never inserts: the submit path must not grow the table
    /// for unsharded keys.
    pub fn lookup(&self, key: &MatrixKey) -> Option<Arc<ParkSlot<ShardedEntry<T>>>> {
        // POLICY (poisoning): recover. The map is insert/lookup only.
        self.slots.lock_or_recover().get(key).map(Arc::clone)
    }

    /// The slot for `key`, inserting an empty one if absent (registration
    /// path).
    pub fn slot(&self, key: MatrixKey) -> Arc<ParkSlot<ShardedEntry<T>>> {
        // POLICY (poisoning): recover (see `lookup`).
        Arc::clone(
            self.slots
                .lock_or_recover()
                .entry(key)
                .or_insert_with(|| Arc::new(ParkSlot::new())),
        )
    }

    /// The published plan for `key`, if the entry is ready.
    pub fn plan(&self, key: &MatrixKey) -> Option<Arc<ShardPlan>> {
        self.lookup(key)
            .and_then(|slot| slot.get())
            .map(|entry| entry.plan)
    }

    /// Forgets the sharded registration for `key`, if any. In-flight
    /// fan-outs keep their pinned entry; the table just stops resolving the
    /// parent key (mirrors registry invalidation for unsharded tenants).
    pub fn remove(&self, key: &MatrixKey) -> bool {
        // POLICY (poisoning): recover (see `lookup`).
        self.slots.lock_or_recover().remove(key).is_some()
    }

    /// Records a background shard-prepare thread for joining.
    pub fn push_warm(&self, handle: JoinHandle<()>) {
        // POLICY (poisoning): recover. Push/drain only.
        self.warm.lock_or_recover().push(handle);
    }

    /// Joins every background shard-prepare thread (idempotent).
    pub fn join_warm(&self) {
        let handles = std::mem::take(&mut *self.warm.lock_or_recover());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl<T> Drop for ShardTable<T> {
    fn drop(&mut self) {
        for h in std::mem::take(self.warm.get_mut()) {
            let _ = h.join();
        }
    }
}

/// The active shard policy, if the configuration enables sharding.
/// `Some(0)` is treated as disabled (mirrors the example's `0 = off` CLI
/// convention).
pub(crate) fn shard_policy(shard_max_bytes: Option<usize>) -> Option<ShardPolicy> {
    match shard_max_bytes {
        Some(max_bytes) if max_bytes > 0 => Some(ShardPolicy { max_bytes }),
        _ => None,
    }
}

/// Prepares every shard of `a` through the registry and publishes the
/// entry on `slot`. Runs at most one producer per slot (duplicate
/// registrations are no-ops beyond the partition pass); each shard's
/// prepare deduplicates through the registry, so a shard shared with an
/// earlier registration is a registry hit, not a second prepare. Returns
/// `true` iff this call ran the preparation.
///
/// With a `planner`, each shard is planned *independently* on its own row
/// slice at `plan_width` columns — a skewed tail shard can land on a
/// different block shape or reordering than the dense head. Shard keys
/// stay derived from the base config digest (see [`crate::Server::register`]
/// for why), so equal shards deduplicate regardless of planning.
pub(crate) fn fulfill_entry<T: Element>(
    slot: &ParkSlot<ShardedEntry<T>>,
    registry: &PreparedMatrixRegistry<T>,
    a: &Csr<T>,
    plan: ShardPlan,
    cfg: &SmatConfig,
    planner: Option<&Arc<Planner>>,
    plan_width: usize,
) -> bool {
    slot.fulfill(|| {
        let plan = Arc::new(plan);
        let mut keys = Vec::with_capacity(plan.nshards());
        let mut smats = Vec::with_capacity(plan.nshards());
        for d in &plan.shards {
            let shard_csr = a.slice_rows(d.row_start, d.row_end);
            let key = MatrixKey::new(MatrixFingerprint::of_csr(&shard_csr), cfg);
            let prep_cfg = cfg.clone();
            let planner = planner.map(Arc::clone);
            let (smat, _hit) = registry.get_or_prepare(key, move || match planner {
                Some(p) => {
                    let decision = p.decide(&shard_csr, plan_width, &prep_cfg);
                    Smat::prepare_with_plan(&shard_csr, decision.apply(&prep_cfg), decision)
                }
                None => Smat::prepare(&shard_csr, prep_cfg),
            });
            keys.push(key);
            smats.push(smat);
        }
        ShardedEntry {
            plan,
            keys: Arc::new(keys),
            smats: Arc::new(smats),
        }
    })
}
