//! Executor-independent async primitives: a oneshot channel whose receiver
//! is a [`Future`], and a minimal [`block_on`].
//!
//! The workspace vendors no async runtime, so the serving engine completes
//! requests over plain threads and hands results back through this channel.
//! The receiver integrates with any executor (it stores and wakes the
//! caller's [`Waker`]) and also supports direct blocking consumption via
//! [`Receiver::wait`] for synchronous callers like the CLI example.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

use smat_sanitize::sync::{Condvar, Mutex};

enum State<T> {
    /// Not yet fulfilled; holds the most recent waker to notify.
    Pending(Option<Waker>),
    /// Fulfilled, value not yet consumed.
    Ready(T),
    /// Value consumed by the receiver.
    Taken,
    /// Sender dropped without sending.
    Closed,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

impl<T> Shared<T> {
    fn fulfill(&self, next: State<T>) {
        // POLICY (poisoning): recover. The state machine is written with
        // single `replace`/assign steps; no panic can leave it between
        // states, so a poisoned flag carries no information here.
        let mut st = self.state.lock_or_recover();
        if let State::Pending(waker) = &mut *st {
            let waker = waker.take();
            *st = next;
            drop(st);
            self.cv.notify_all();
            if let Some(w) = waker {
                w.wake();
            }
        }
    }
}

/// Sending half: fulfills the paired [`Receiver`] exactly once.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Delivers `v` to the receiver, waking any waiting task or thread.
    pub fn send(self, v: T) {
        self.shared.fulfill(State::Ready(v));
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        // If `send` ran, the state is no longer Pending and this is a no-op.
        self.shared.fulfill(State::Closed);
    }
}

/// Receiving half: a [`Future`] resolving to `Some(value)`, or `None` if
/// the sender was dropped without sending.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// An already-fulfilled receiver (for immediate rejections).
    pub fn ready(v: T) -> Self {
        Receiver {
            shared: Arc::new(Shared {
                state: Mutex::labeled("oneshot.state", State::Ready(v)),
                cv: Condvar::labeled("oneshot.cv"),
            }),
        }
    }

    /// Blocks the calling thread until the value arrives (or the sender is
    /// dropped), without needing an executor.
    pub fn wait(self) -> Option<T> {
        // Lock-order check: blocking here while holding any other checked
        // lock is a lost-wakeup hazard (C003).
        smat_sanitize::check_park("oneshot::Receiver::wait");
        // POLICY (poisoning): recover (see `Shared::fulfill`).
        let mut st = self.shared.state.lock_or_recover();
        loop {
            match std::mem::replace(&mut *st, State::Taken) {
                State::Ready(v) => return Some(v),
                State::Closed => return None,
                pending @ State::Pending(_) => {
                    *st = pending;
                    st = self.shared.cv.wait(st);
                }
                State::Taken => unreachable!("oneshot value taken twice"),
            }
        }
    }
}

impl<T> Future for Receiver<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // POLICY (poisoning): recover (see `Shared::fulfill`).
        let mut st = self.shared.state.lock_or_recover();
        match std::mem::replace(&mut *st, State::Taken) {
            State::Ready(v) => Poll::Ready(Some(v)),
            State::Closed => Poll::Ready(None),
            State::Pending(_) => {
                *st = State::Pending(Some(cx.waker().clone()));
                Poll::Pending
            }
            State::Taken => panic!("oneshot future polled after completion"),
        }
    }
}

/// Creates a connected sender/receiver pair.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::labeled("oneshot.state", State::Pending(None)),
        cv: Condvar::labeled("oneshot.cv"),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

struct ThreadWaker(Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives a future to completion on the calling thread (park/unpark-based
/// waker; no runtime required).
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => {
                // Lock-order check: parking while holding a checked lock
                // would stall everyone contending on it (C003).
                smat_sanitize::check_park("oneshot::block_on");
                std::thread::park();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn send_then_wait() {
        let (tx, rx) = channel();
        tx.send(7);
        assert_eq!(rx.wait(), Some(7));
    }

    #[test]
    fn wait_blocks_until_cross_thread_send() {
        let (tx, rx) = channel();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send("late");
        });
        assert_eq!(rx.wait(), Some("late"));
        h.join().unwrap();
    }

    #[test]
    fn block_on_polls_to_completion() {
        let (tx, rx) = channel();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(99);
        });
        assert_eq!(block_on(rx), Some(99));
        h.join().unwrap();
    }

    #[test]
    fn dropped_sender_resolves_to_none() {
        let (tx, rx) = channel::<u32>();
        drop(tx);
        assert_eq!(block_on(rx), None);
    }

    #[test]
    fn ready_receiver_is_immediate() {
        assert_eq!(block_on(Receiver::ready(5)), Some(5));
        assert_eq!(Receiver::ready(6).wait(), Some(6));
    }

    #[test]
    fn send_after_receiver_started_waiting_wakes_it() {
        // Regression shape: waker registered before the send must be woken.
        let (tx, rx) = channel();
        let waiter = std::thread::spawn(move || block_on(rx));
        std::thread::sleep(Duration::from_millis(30));
        tx.send(1u8);
        assert_eq!(waiter.join().unwrap(), Some(1));
    }
}
