//! The plan cache: memoized launch plans per (prepared matrix, RHS width).
//!
//! For a fixed prepared matrix, everything the executor derives from the
//! right-hand-side width `n` — the launch geometry of
//! [`smat::build_launch_config`] and the static pre-flight verdict — is a
//! pure function of `(matrix, config, n)`. The cache computes it once per
//! pair, so repeat requests (the dominant serving case) skip both the
//! schedule analysis and the admission decision work, and inadmissible
//! plans are refused before they occupy queue slots.
//!
//! Dynamic matrices make "matrix" a moving target: every overlay mutation
//! changes the effective content. The cache therefore keys on the tenant's
//! [`MatrixKey`] with its fingerprint stamped by the *overlay epoch* the
//! request admitted under ([`smat_formats::MatrixFingerprint::with_epoch`])
//! — a plan
//! built against epoch `e` can never be applied at any other epoch, so a
//! mutated matrix structurally cannot launch under a stale plan. The epoch
//! is pinned at admission (not re-read), matching the execution path's
//! snapshot pinning.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use smat_sanitize::sync::Mutex;

use serde::Serialize;
use smat::{OverlaySnapshot, Smat};
use smat_diag::{Diagnostic, DiagnosticsExt};
use smat_formats::Element;
use smat_gpusim::Gpu;

use crate::lru::LruMap;
use crate::registry::MatrixKey;

/// A memoized launch plan for one (matrix, n) pair.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Right-hand-side width this plan covers.
    pub n: usize,
    /// Kernel label of the launch ("T+B+C" etc.).
    pub label: String,
    /// Resident device bytes the launch needs.
    pub footprint_bytes: usize,
    /// Shared memory per thread block.
    pub shared_bytes_per_block: usize,
    /// Pre-flight findings for this width (shared with the prepared
    /// handle's own memo, see [`Smat::preflight_cached`]).
    pub diagnostics: Arc<Vec<Diagnostic>>,
    /// Whether the plan is launchable (no error-severity findings).
    pub admissible: bool,
}

/// Counter snapshot of plan-cache activity.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PlanStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Plans built.
    pub misses: u64,
    /// Resident plans.
    pub entries: usize,
}

impl PlanStats {
    /// `hits / (hits + misses)`, 1.0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Size-bounded LRU of launch plans keyed by (matrix key, n).
pub struct PlanCache {
    plans: Mutex<LruMap<(MatrixKey, usize), Arc<Plan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache bounded to `capacity` plans.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            plans: Mutex::labeled("plans.cache", LruMap::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the plan for (`key`, `n`) at the handle's *current* overlay
    /// epoch, building it on first use. Serving paths that pinned a
    /// snapshot at admission use [`PlanCache::get_or_build_pinned`] so the
    /// plan matches the epoch the request executes on.
    pub fn get_or_build<T: Element>(&self, key: MatrixKey, n: usize, smat: &Smat<T>) -> Arc<Plan> {
        self.get_or_build_pinned(key, n, smat, &smat.overlay_snapshot())
    }

    /// Returns the plan for (`key`, `n`) under a pinned overlay snapshot.
    /// The cache key carries `overlay.epoch()` inside the fingerprint, so
    /// entries built before a mutation are unreachable after it.
    pub fn get_or_build_pinned<T: Element>(
        &self,
        key: MatrixKey,
        n: usize,
        smat: &Smat<T>,
        overlay: &OverlaySnapshot,
    ) -> Arc<Plan> {
        let key = MatrixKey {
            fingerprint: key.fingerprint.with_epoch(overlay.epoch()),
            ..key
        };
        // POLICY (poisoning): recover. The LRU map only sees panic-free
        // get/insert calls under the lock (plans are built outside it), so
        // a poisoned flag cannot indicate a torn map.
        if let Some(plan) = self.plans.lock_or_recover().get(&(key, n)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(plan);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Built outside the lock: racing builders compute identical plans
        // and the last insert wins.
        let plan = Arc::new(build_plan(n, smat, overlay));
        self.plans
            .lock_or_recover()
            .insert((key, n), Arc::clone(&plan));
        plan
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanStats {
        PlanStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.plans.lock_or_recover().len(),
        }
    }
}

fn build_plan<T: Element>(n: usize, smat: &Smat<T>, overlay: &OverlaySnapshot) -> Plan {
    let cfg = smat.config();
    let gpu = Gpu::new(cfg.device.clone());
    let launch = smat::build_launch_config(&gpu, smat.bcsr(), n, cfg.opts, cfg.schedule);
    let diagnostics = smat.preflight_cached_at(n, overlay);
    let admissible = !diagnostics.has_errors();
    Plan {
        n,
        label: launch.label,
        footprint_bytes: launch.footprint_bytes,
        shared_bytes_per_block: launch.shared_bytes_per_block,
        diagnostics,
        admissible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat::{PreflightMode, SmatConfig};
    use smat_formats::{Coo, Csr, MatrixFingerprint, F16};

    fn matrix() -> Csr<F16> {
        let mut coo = Coo::new(64, 64);
        for i in 0..64 {
            coo.push(i, (i * 7) % 64, F16::from_f64(1.0));
        }
        coo.to_csr()
    }

    #[test]
    fn plans_are_memoized_per_width() {
        let a = matrix();
        let cfg = SmatConfig::default();
        let key = MatrixKey::new(MatrixFingerprint::of_csr(&a), &cfg);
        let smat = Smat::prepare(&a, cfg);
        let cache = PlanCache::new(8);
        let p8 = cache.get_or_build(key, 8, &smat);
        let p8_again = cache.get_or_build(key, 8, &smat);
        assert!(Arc::ptr_eq(&p8, &p8_again));
        let p16 = cache.get_or_build(key, 16, &smat);
        assert!(!Arc::ptr_eq(&p8, &p16));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 2));
        assert!(p8.admissible, "{:?}", p8.diagnostics);
        assert_eq!(p8.label, "smat[T+B+C]");
        assert!(p8.footprint_bytes > 0);
        assert!(p16.footprint_bytes > p8.footprint_bytes, "wider B, C");
    }

    #[test]
    fn plan_shares_the_handles_preflight_memo() {
        let a = matrix();
        let cfg = SmatConfig::default();
        let key = MatrixKey::new(MatrixFingerprint::of_csr(&a), &cfg);
        let smat = Smat::prepare(&a, cfg);
        let cache = PlanCache::new(8);
        let plan = cache.get_or_build(key, 8, &smat);
        assert!(Arc::ptr_eq(&plan.diagnostics, &smat.preflight_cached(8)));
    }

    #[test]
    fn oversubscribed_plan_is_inadmissible() {
        let a = matrix();
        let cfg = SmatConfig {
            block_h: 96,
            block_w: 96,
            device: smat_gpusim::DeviceConfig::tiny_test_device(),
            preflight: PreflightMode::Force,
            ..SmatConfig::default()
        };
        let key = MatrixKey::new(MatrixFingerprint::of_csr(&a), &cfg);
        let smat = Smat::prepare(&a, cfg);
        let plan = PlanCache::new(4).get_or_build(key, 8, &smat);
        assert!(!plan.admissible);
        assert!(plan.diagnostics.has_errors());
    }

    #[test]
    fn mutated_matrix_never_reuses_a_stale_plan() {
        // Satellite regression: the cache key carries the overlay epoch, so
        // a mutation makes every pre-mutation entry unreachable — a stale
        // plan (and its stale pre-flight verdict) can never gate a launch
        // against the mutated matrix.
        let a = matrix();
        let cfg = SmatConfig::default();
        let key = MatrixKey::new(MatrixFingerprint::of_csr(&a), &cfg);
        let smat = Smat::prepare(&a, cfg);
        let cache = PlanCache::new(8);
        let before = cache.get_or_build(key, 8, &smat);
        let pinned = smat.overlay_snapshot();
        smat.apply_updates(&[smat::MatrixUpdate::Update {
            row: 0,
            col: 0,
            value: F16::from_f64(5.0),
        }]);
        // Same (key, n) after the mutation: a fresh entry, not the stale
        // one.
        let after = cache.get_or_build(key, 8, &smat);
        assert!(
            !Arc::ptr_eq(&before, &after),
            "epoch 1 must not see the epoch-0 plan"
        );
        assert_eq!(cache.stats().misses, 2);
        // A request that pinned the epoch-0 snapshot at admission still
        // resolves its own (cached) plan.
        let replay = cache.get_or_build_pinned(key, 8, &smat, &pinned);
        assert!(Arc::ptr_eq(&before, &replay));
        assert_eq!(cache.stats().hits, 1);
        // The plan's diagnostics come from the epoch-pinned preflight memo.
        assert!(Arc::ptr_eq(
            &after.diagnostics,
            &smat.preflight_cached_at(8, &smat.overlay_snapshot())
        ));
    }

    #[test]
    fn lru_bound_applies_to_plans() {
        let a = matrix();
        let cfg = SmatConfig::default();
        let key = MatrixKey::new(MatrixFingerprint::of_csr(&a), &cfg);
        let smat = Smat::prepare(&a, cfg);
        let cache = PlanCache::new(2);
        cache.get_or_build(key, 1, &smat);
        cache.get_or_build(key, 2, &smat);
        cache.get_or_build(key, 3, &smat);
        assert_eq!(cache.stats().entries, 2);
        // n=1 was the LRU victim: rebuilding it is a miss.
        cache.get_or_build(key, 1, &smat);
        assert_eq!(cache.stats().misses, 4);
    }
}
