//! The serving engine: admission control, least-loaded device dispatch,
//! same-matrix batching, and async completion.
//!
//! One worker thread owns each simulated device. [`Server::submit`] resolves
//! the prepared handle from the registry, consults the plan cache (refusing
//! inadmissible plans before they occupy queue slots), picks the
//! least-loaded device whose bounded queue has room, and returns a future.
//! The worker coalesces same-matrix requests up to the column budget into
//! one wide launch ([`crate::batch::spmm_batched`]) and fulfills each
//! request with its slice of the output.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use smat_sanitize::sync::{Condvar, Mutex};
use std::task::{Context, Poll};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smat::{MatrixUpdate, OverlaySnapshot, Planner, Smat, SmatConfig};
use smat_formats::{Csr, Dense, Element, MatrixFingerprint};
use smat_gpusim::{compose_key, FaultConfig, FaultPlan, Gpu, SimError};
use smat_shard::{partition, FanoutJoin, ShardPlan};

use crate::batch::{spmm_batched, spmm_scalar_fallback, take_batch};
use crate::chaos::{ChaosCounters, CircuitBreaker, RecoveryPolicy};
use crate::error::{RejectReason, ServeError};
use crate::oneshot::{self, Receiver};
use crate::plan::PlanCache;
use crate::registry::{MatrixKey, ParkResult, PreparedMatrixRegistry};
use crate::sharded::{fulfill_entry, shard_policy, ShardTable, ShardedEntry};
use crate::stats::{DeviceStats, LatencyStats, ServerStats};

/// Serving engine parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Preparation/execution configuration shared by every matrix
    /// (including the simulated device model the pool instantiates).
    pub smat: SmatConfig,
    /// Simulated devices in the pool (one worker thread each).
    pub devices: usize,
    /// Bounded queue depth per device, in requests; admission returns
    /// [`RejectReason::QueueFull`] when every queue is at capacity.
    pub queue_capacity: usize,
    /// Column budget per batched launch: same-matrix requests are coalesced
    /// until their B panels reach this many columns.
    pub column_budget: usize,
    /// Prepared matrices kept resident (LRU beyond this).
    pub registry_capacity: usize,
    /// Launch plans kept resident (LRU beyond this).
    pub plan_capacity: usize,
    /// Deadline applied to requests submitted without an explicit one;
    /// `None` means no deadline.
    pub default_deadline: Option<Duration>,
    /// Deterministic fault injection over the device pool. `None` (the
    /// default) serves fault-free; `Some` builds one shared
    /// [`FaultPlan`] every device consults, keyed per attempt by the batch
    /// lead request's sequence number so the fault schedule is independent
    /// of thread interleaving.
    pub chaos: Option<FaultConfig>,
    /// Retry/hedge/breaker/degradation parameters (active only when faults
    /// actually occur; a fault-free run never enters the recovery ladder).
    pub recovery: RecoveryPolicy,
    /// Shard byte budget for registered matrices. `Some(n)` with `n > 0`
    /// partitions any matrix whose estimated CSR footprint exceeds `n`
    /// into nnz-balanced row shards, each prepared and cached
    /// independently; submissions against the parent key fan out across
    /// the pool and the per-shard products are row-concatenated (bitwise
    /// identical to unsharded execution). `None` (the default) and
    /// `Some(0)` disable sharding.
    pub shard_max_bytes: Option<usize>,
    /// Cost-model-driven admission planner. `None` (the default) prepares
    /// every registration under [`ServerConfig::smat`] verbatim. `Some`
    /// lets the planner choose `{block shape, reordering, scalar-vs-TC}`
    /// per registered matrix (per shard for sharded ones), scored with the
    /// calibrated perf model at a planning width of
    /// [`ServerConfig::column_budget`] columns — the width a saturated
    /// batched launch runs at. Observed launch times flow back into the
    /// planner for online refits, and every prediction is checked against
    /// the launch it planned (`plan_mean_rel_error` in the stats).
    /// Tenants that pin a configuration via
    /// [`Server::register_with_config`] bypass the planner entirely.
    pub planner: Option<Arc<Planner>>,
    /// When to fold a mutated tenant's overlay back into a prepared base
    /// (see [`Server::mutate`] and [`Server::compact`]).
    pub compaction: CompactionPolicy,
}

/// Background-compaction policy for dynamic matrices.
///
/// Every [`Server::mutate`] call accumulates into the tenant's COO overlay;
/// requests keep serving (base on the Tensor Core path, overlay corrections
/// on the scalar path) but each correction term costs scalar work per
/// launch. Compaction re-prepares `base ⊕ overlay` on a background thread
/// and atomically swaps the registry handle — serving never blocks, and
/// in-flight requests finish on the snapshot they admitted under.
///
/// The trigger prefers the calibrated cost model
/// ([`Planner::should_compact`]): compact when the overlay's per-launch
/// scalar surcharge, amortized over `horizon` launches, exceeds the
/// predicted one-time re-preparation cost. Without a calibrated planner the
/// structural fallback fires when the overlay reaches
/// `max(min_overlay_cells, overlay_nnz_fraction · base nnz)` correction
/// terms. Both triggers are pure functions of matrix content, so the
/// decision replays deterministically.
#[derive(Clone, Copy, Debug)]
pub struct CompactionPolicy {
    /// Consider compaction automatically after every mutation batch.
    /// `false` leaves compaction to explicit [`Server::compact`] calls.
    pub auto: bool,
    /// Structural-fallback floor: never auto-compact below this many
    /// overlay correction terms (amortization is hopeless for tiny deltas).
    pub min_overlay_cells: usize,
    /// Structural-fallback fraction of the base nnz at which the overlay is
    /// considered heavy enough to fold in.
    pub overlay_nnz_fraction: f64,
    /// Launches the cost model amortizes the re-preparation over.
    pub horizon: u64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            auto: true,
            min_overlay_cells: 64,
            overlay_nnz_fraction: 0.02,
            horizon: 256,
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            smat: SmatConfig::default(),
            devices: 2,
            queue_capacity: 256,
            column_budget: 64,
            registry_capacity: 8,
            plan_capacity: 128,
            default_deadline: None,
            chaos: None,
            recovery: RecoveryPolicy::default(),
            shard_max_bytes: None,
            planner: None,
            compaction: CompactionPolicy::default(),
        }
    }
}

/// A fulfilled request: the product plus execution metadata.
#[derive(Clone, Debug)]
pub struct ServeResponse<T> {
    /// `C = A·B` for this request's panel, in original row order.
    pub c: Dense<T>,
    /// Pool device that executed the batch.
    pub device: usize,
    /// Requests served by the shared launch (including this one).
    pub batched_with: usize,
    /// Total B columns of the shared launch.
    pub batch_cols: usize,
    /// Simulated kernel milliseconds of the shared launch.
    pub sim_ms: f64,
    /// Host submit→completion latency in milliseconds.
    pub wall_ms: f64,
    /// Whether this response was produced by the scalar degradation path
    /// (bitwise identical to the Tensor Core result; only the timing
    /// differs).
    pub degraded: bool,
    /// Launch attempts the batch needed (1 on the fault-free fast path).
    pub attempts: u32,
    /// The planner's predicted kernel milliseconds for the shared launch,
    /// recorded before the observation fed back into the model. `None`
    /// when the server runs without an admission planner, for pinned
    /// registrations, and for degraded completions (a scalar-path timing
    /// is not a sample of the planned mode). For sharded requests this is
    /// the sum over shard launches, `None` if any shard lacked one.
    /// Together with `sim_ms` this is the per-request
    /// predicted-vs-actual record.
    pub predicted_ms: Option<f64>,
}

/// Future returned by [`Server::submit`].
pub struct ResponseFuture<T> {
    rx: Receiver<Result<ServeResponse<T>, ServeError>>,
}

impl<T> ResponseFuture<T> {
    /// Blocks the calling thread until the response arrives — the
    /// executor-free consumption path for synchronous callers.
    pub fn wait(self) -> Result<ServeResponse<T>, ServeError> {
        self.rx.wait().unwrap_or(Err(ServeError::ShutDown))
    }
}

impl<T> Future for ResponseFuture<T> {
    type Output = Result<ServeResponse<T>, ServeError>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match Pin::new(&mut self.rx).poll(cx) {
            Poll::Ready(Some(res)) => Poll::Ready(res),
            Poll::Ready(None) => Poll::Ready(Err(ServeError::ShutDown)),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Where a request's terminal result goes: straight to the submitter, or
/// into the join of a sharded fan-out.
///
/// The distinction also gates the pool-level request counters
/// (`submitted`, `completed`, the `rejected_*` family, `failed`,
/// latencies): a fanned-out request counts **once**, at the parent level —
/// sub-requests only feed the per-device `dispatched`/`completed` pair and
/// the batching counters, so `submitted`/`completed` keep meaning
/// "requests the caller sees" whether or not sharding is on.
enum Responder<T> {
    /// An unsharded request: resolve the submitter's future directly.
    Direct(oneshot::Sender<Result<ServeResponse<T>, ServeError>>),
    /// One shard of a fan-out: deliver into the join (idempotent per
    /// shard; the join resolves the parent once every shard landed).
    Shard {
        join: Arc<FanoutJoin<Result<ServeResponse<T>, ServeError>>>,
        shard: usize,
    },
}

impl<T: Send> Responder<T> {
    /// Delivers the terminal result.
    fn send(self, result: Result<ServeResponse<T>, ServeError>) {
        match self {
            Responder::Direct(tx) => tx.send(result),
            Responder::Shard { join, shard } => {
                join.complete(shard, result);
            }
        }
    }

    /// Whether this request owns the pool-level request counters.
    fn is_direct(&self) -> bool {
        matches!(self, Responder::Direct(_))
    }
}

/// One in-queue request.
struct Request<T> {
    key: MatrixKey,
    smat: Smat<T>,
    /// The overlay snapshot pinned at admission. The batcher keys on
    /// `(key, overlay.epoch())` so a batch is same-epoch by construction,
    /// and execution applies exactly this delta — a mutation (or a
    /// background compaction swap) landing after admission cannot change
    /// what an in-flight request computes.
    overlay: Arc<OverlaySnapshot>,
    b: Dense<T>,
    deadline: Option<Instant>,
    enq: Instant,
    /// Monotone per-server submission id — the request's identity on trace
    /// timelines (batch membership, lifecycle spans).
    seq: u64,
    responder: Responder<T>,
}

/// Per-device state shared between the submitter and one worker.
struct DeviceState<T> {
    queue: Mutex<VecDeque<Request<T>>>,
    cv: Condvar,
    /// Outstanding B columns (queued + in flight) — the load metric of
    /// least-loaded dispatch.
    load_cols: AtomicUsize,
    /// Requests (direct and shard sub-requests) enqueued to this device.
    dispatched: AtomicU64,
    /// Terminal responses delivered by this device's worker. At quiescence
    /// `dispatched == completed`, or a request was lost.
    completed: AtomicU64,
    launches: AtomicU64,
    served: AtomicU64,
    cols: AtomicU64,
    /// Simulated kernel time, in integer nanoseconds (atomic accumulation
    /// keeps per-device totals independent of completion interleaving).
    sim_ns: AtomicU64,
    /// Host execution time, nanoseconds.
    busy_ns: AtomicU64,
}

impl<T> DeviceState<T> {
    fn new() -> Self {
        DeviceState {
            queue: Mutex::labeled("server.device.queue", VecDeque::new()),
            cv: Condvar::labeled("server.device.cv"),
            load_cols: AtomicUsize::new(0),
            dispatched: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            launches: AtomicU64::new(0),
            served: AtomicU64::new(0),
            cols: AtomicU64::new(0),
            sim_ns: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
        }
    }
}

/// Pool-wide counters.
#[derive(Default)]
struct Central {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_deadline: AtomicU64,
    rejected_preflight: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch: AtomicU64,
    /// Sharded parent requests fanned out by the matrix-level scheduler.
    fanouts: AtomicU64,
    /// Per-shard sub-requests those fan-outs emitted.
    shard_subrequests: AtomicU64,
    /// Mutation batches applied through [`Server::mutate`].
    mutations: AtomicU64,
    /// Trace identity source: every submission (accepted or not) draws a
    /// seq. Not exported in stats — the `submitted` counter keeps its
    /// accepted-only semantics.
    next_seq: AtomicU64,
    latencies: Mutex<Vec<f64>>,
    /// Requests completed under a planner-chosen configuration whose
    /// prediction was checked against the observed launch time.
    planned: AtomicU64,
    /// Accumulated (Σ relative error, check count) of plan predictions
    /// against observed launch times.
    plan_err: Mutex<(f64, u64)>,
}

struct PoolShared<T> {
    devices: Vec<DeviceState<T>>,
    /// One simulated GPU per device. Workers execute on their own entry;
    /// hedged and rotated-fallback attempts execute on a *peer's* entry,
    /// which is safe because `Gpu::launch` takes `&self` and the fault
    /// schedule is keyed by request content, not launch interleaving.
    gpus: Vec<Gpu>,
    /// One circuit breaker per device.
    breakers: Vec<CircuitBreaker>,
    /// The shared fault plan (present iff chaos is configured).
    fault_plan: Option<Arc<FaultPlan>>,
    recovery: RecoveryPolicy,
    chaos: ChaosCounters,
    central: Central,
    /// The admission planner (mirrors [`ServerConfig::planner`]); workers
    /// feed observed launch times back through it.
    planner: Option<Arc<Planner>>,
    shutdown: AtomicBool,
    paused: AtomicBool,
    column_budget: usize,
    started: Instant,
    /// Nanoseconds spent in completed pause windows. Together with
    /// `pause_began` this forms the "unpaused clock" occupancy divides by,
    /// so deterministic-replay pauses don't deflate device occupancy.
    paused_ns: AtomicU64,
    /// Start of the currently open pause window, if paused.
    pause_began: Mutex<Option<Instant>>,
}

/// The async SpMM serving engine. See the crate docs for the architecture.
pub struct Server<T: Element> {
    shared: Arc<PoolShared<T>>,
    registry: Arc<PreparedMatrixRegistry<T>>,
    plans: Arc<PlanCache>,
    /// Matrix-level scheduler state: parent keys that were registered as
    /// sharded, each with its partition plan and pinned shard handles.
    sharded: ShardTable<T>,
    config: ServerConfig,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Element> Server<T> {
    /// Starts the engine: spawns one worker thread per configured device.
    ///
    /// # Panics
    /// Panics if `devices`, `queue_capacity`, or `column_budget` is zero.
    pub fn new(config: ServerConfig) -> Self {
        assert!(config.devices > 0, "pool needs at least one device");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.column_budget > 0, "column budget must be positive");
        assert!(
            config.recovery.max_attempts > 0,
            "recovery needs at least one launch attempt"
        );
        let fault_plan = config.chaos.map(|cfg| Arc::new(FaultPlan::new(cfg)));
        let gpus: Vec<Gpu> = (0..config.devices)
            .map(|idx| {
                let mut gpu = Gpu::new(config.smat.device.clone()).with_trace_device(idx);
                if let Some(plan) = &fault_plan {
                    gpu = gpu.with_fault_plan(Arc::clone(plan));
                }
                gpu
            })
            .collect();
        let shared = Arc::new(PoolShared {
            devices: (0..config.devices).map(|_| DeviceState::new()).collect(),
            gpus,
            breakers: (0..config.devices).map(|_| CircuitBreaker::new()).collect(),
            fault_plan,
            recovery: config.recovery,
            chaos: ChaosCounters::default(),
            central: Central::default(),
            planner: config.planner.clone(),
            shutdown: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            column_budget: config.column_budget,
            started: Instant::now(),
            paused_ns: AtomicU64::new(0),
            pause_began: Mutex::labeled("server.pause_began", None),
        });
        let workers = (0..config.devices)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("smat-serve-dev{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn worker")
            })
            .collect();
        Server {
            shared,
            registry: Arc::new(PreparedMatrixRegistry::new(config.registry_capacity)),
            plans: Arc::new(PlanCache::new(config.plan_capacity)),
            sharded: ShardTable::new(),
            config,
            workers,
        }
    }

    /// Registers a matrix: fingerprints it and runs the one-time
    /// preprocessing unless an equal matrix is already resident. Returns
    /// the key for [`Server::submit`]. Duplicate registrations of the same
    /// matrix are registry hits and cost one fingerprint pass, not a
    /// prepare.
    ///
    /// When [`ServerConfig::shard_max_bytes`] is set and the matrix
    /// exceeds the budget, it is partitioned instead: each shard is
    /// prepared under its own fingerprint (deduplicated through the same
    /// registry) and submissions against the returned key fan out across
    /// the pool.
    pub fn register(&self, a: &Csr<T>) -> MatrixKey {
        // With an admission planner, the key still identifies
        // (matrix, base config): deciding before key derivation would make
        // key computation as expensive as planning, and equal matrices
        // must keep deduplicating regardless of when they were planned.
        // The prepared handle carries the planned configuration.
        let key = MatrixKey::new(MatrixFingerprint::of_csr(a), &self.config.smat);
        if let Some(policy) = shard_policy(self.config.shard_max_bytes) {
            let plan = partition(a, &policy);
            if plan.is_sharded() {
                let slot = self.sharded.slot(key);
                fulfill_entry(
                    &slot,
                    &self.registry,
                    a,
                    plan,
                    &self.config.smat,
                    self.config.planner.as_ref(),
                    self.config.column_budget,
                );
                return key;
            }
        }
        let cfg = self.config.smat.clone();
        let planner = self.config.planner.clone();
        let width = self.config.column_budget;
        self.registry.get_or_prepare(key, || match planner {
            Some(p) => {
                let d = p.decide(a, width, &cfg);
                Smat::prepare_with_plan(a, d.apply(&cfg), d)
            }
            None => Smat::prepare(a, cfg),
        });
        key
    }

    /// Registers `a` under an explicit pinned configuration, bypassing
    /// both the admission planner and sharding. The key is derived from
    /// `cfg`'s digest, so the same matrix pinned under different
    /// configurations coexists in the registry (and is distinct from its
    /// planner-managed registration). Tenants that know their
    /// configuration use this; everyone else goes through
    /// [`Server::register`] and lets the planner choose.
    pub fn register_with_config(&self, a: &Csr<T>, cfg: SmatConfig) -> MatrixKey {
        let key = MatrixKey::new(MatrixFingerprint::of_csr(a), &cfg);
        self.registry.get_or_prepare(key, || Smat::prepare(a, cfg));
        key
    }

    /// Begins preparing `a` on a background thread and returns its key
    /// immediately. Submissions that arrive while preparation is in flight
    /// park on it (see [`Server::submit`]) instead of being rejected, so a
    /// tenant can warm a matrix and start streaming requests without a
    /// registration barrier. Beyond the fingerprint pass this is a no-op if
    /// an equal matrix is already resident or already being prepared.
    pub fn warm_prepare(&self, a: &Csr<T>) -> MatrixKey {
        let key = MatrixKey::new(MatrixFingerprint::of_csr(a), &self.config.smat);
        if let Some(policy) = shard_policy(self.config.shard_max_bytes) {
            let plan = partition(a, &policy);
            if plan.is_sharded() {
                let slot = self.sharded.slot(key);
                if !slot.is_ready() {
                    let registry = Arc::clone(&self.registry);
                    let cfg = self.config.smat.clone();
                    let planner = self.config.planner.clone();
                    let width = self.config.column_budget;
                    let a = a.clone();
                    let handle = std::thread::Builder::new()
                        .name("smat-serve-shard-warm".into())
                        .spawn(move || {
                            fulfill_entry(
                                &slot,
                                &registry,
                                &a,
                                plan,
                                &cfg,
                                planner.as_ref(),
                                width,
                            );
                        })
                        .expect("spawn shard warm thread");
                    self.sharded.push_warm(handle);
                }
                return key;
            }
        }
        let cfg = self.config.smat.clone();
        let planner = self.config.planner.clone();
        let width = self.config.column_budget;
        let a = a.clone();
        self.registry.warm_prepare(key, move || match planner {
            Some(p) => {
                let d = p.decide(&a, width, &cfg);
                Smat::prepare_with_plan(&a, d.apply(&cfg), d)
            }
            None => Smat::prepare(&a, cfg),
        });
        key
    }

    /// The partition plan behind `key`, if it was registered as sharded
    /// and its shards have finished preparing.
    pub fn shard_plan(&self, key: &MatrixKey) -> Option<Arc<ShardPlan>> {
        self.sharded.plan(key)
    }

    /// Applies a batch of cell mutations to the registered matrix `key` and
    /// returns the overlay epoch the batch landed at.
    ///
    /// The updates accumulate in the tenant's COO overlay: subsequent
    /// submissions admit under the new epoch and compute against
    /// `base ⊕ overlay` (bitwise identical to a from-scratch re-prepare of
    /// the mutated matrix), while requests already admitted finish on the
    /// snapshot they pinned. Nothing re-prepares inline — when the policy
    /// says the overlay has grown past the amortization point, a background
    /// compaction folds it into a fresh prepared handle and atomically
    /// swaps it in ([`Server::compact`]).
    ///
    /// Every update carries absolute cell state (an explicit value, or
    /// deletion), so re-applying a batch is idempotent; the swap race with
    /// a concurrent compaction is resolved by re-applying to the fresh
    /// handle, never by blocking either side.
    ///
    /// Errors: [`ServeError::UnknownMatrix`] for unregistered keys,
    /// [`ServeError::MutationUnsupported`] for sharded registrations (shard
    /// fingerprints are content-derived; mutating them is future work), and
    /// [`ServeError::UpdateOutOfBounds`] if any update targets a cell
    /// outside the matrix — checked up front, so a rejected batch mutates
    /// nothing.
    pub fn mutate(&self, key: MatrixKey, ops: &[MatrixUpdate<T>]) -> Result<u64, ServeError> {
        if self.sharded.lookup(&key).is_some() {
            return Err(ServeError::MutationUnsupported);
        }
        // `peek`, not `get`: mutation is not a serving lookup and must not
        // perturb LRU recency or the hit/miss counters.
        let Some(mut handle) = self.registry.peek(&key) else {
            return Err(ServeError::UnknownMatrix);
        };
        let fp = handle.fingerprint();
        for op in ops {
            let (row, col) = op.cell();
            if row >= fp.nrows || col >= fp.ncols {
                return Err(ServeError::UpdateOutOfBounds {
                    nrows: fp.nrows,
                    ncols: fp.ncols,
                    row,
                    col,
                });
            }
        }
        if ops.is_empty() {
            return Ok(handle.overlay_epoch());
        }
        // Apply, then confirm the handle is still the resident one. A
        // background compaction publishing between the peek and the apply
        // would strand the updates on the retired handle (the compactor's
        // rebase only carries what it observed) — re-apply to the fresh
        // handle; absolute-state updates make the double-apply harmless.
        let epoch = loop {
            let epoch = handle.apply_updates(ops);
            match self.registry.peek(&key) {
                Some(cur) if cur.ptr_eq(&handle) => break epoch,
                Some(cur) => handle = cur,
                // Evicted mid-mutation: the updates rode the retired handle
                // out. The tenant is gone either way.
                None => break epoch,
            }
        };
        self.shared
            .central
            .mutations
            .fetch_add(1, Ordering::Relaxed);
        if self.config.compaction.auto && self.overlay_past_amortization(&handle) {
            self.compact(key);
        }
        Ok(epoch)
    }

    /// Whether `handle`'s overlay has grown past the re-preparation
    /// amortization point under the configured policy. Prefers the
    /// calibrated cost model; falls back to the structural threshold when
    /// the planner is absent or uncalibrated. Pure function of matrix
    /// content — deterministic across replays.
    fn overlay_past_amortization(&self, handle: &Smat<T>) -> bool {
        let terms = handle.overlay_snapshot().correction_terms();
        if terms == 0 {
            return false;
        }
        let policy = &self.config.compaction;
        let model = self.config.planner.as_ref().and_then(|p| {
            p.should_compact(
                handle.bcsr().nblocks(),
                terms,
                self.config.column_budget,
                policy.horizon,
            )
        });
        model.unwrap_or_else(|| {
            let floor = policy
                .min_overlay_cells
                .max((policy.overlay_nnz_fraction * handle.fingerprint().nnz as f64) as usize)
                .max(1);
            terms >= floor
        })
    }

    /// Starts a background compaction of `key`: re-prepares
    /// `base ⊕ overlay` off-thread (reusing the warm-prepare park/publish
    /// machinery) and atomically swaps the registry handle. Serving never
    /// blocks — submissions keep admitting against the old handle until the
    /// swap, and in-flight requests finish on the snapshot they pinned.
    /// Mutations racing the swap are rebased onto the fresh handle.
    ///
    /// Returns `false` (without spawning) if the key is not resident or a
    /// compaction for it is already in flight. With an admission planner
    /// the merged matrix is re-planned from the base configuration;
    /// otherwise it re-prepares under the old handle's configuration.
    pub fn compact(&self, key: MatrixKey) -> bool {
        let cfg = self.config.smat.clone();
        let planner = self.config.planner.clone();
        let width = self.config.column_budget;
        self.registry.compact_prepare(key, move |old| {
            let merged = old.merged_csr();
            match planner {
                Some(p) => {
                    let d = p.decide(&merged, width, &cfg);
                    Smat::prepare_with_plan(&merged, d.apply(&cfg), d)
                }
                None => Smat::prepare(&merged, old.config().clone()),
            }
        })
    }

    /// Blocks until every in-flight background compaction has finished
    /// (published or bailed). Replay drivers call this at window boundaries
    /// so epoch swaps land at deterministic points in the trace.
    pub fn quiesce_compactions(&self) {
        self.registry.wait_compactions();
    }

    /// Drops the registration for `key` (sharded or not). In-flight
    /// requests and compactions keep their pinned handles; new submissions
    /// see [`ServeError::UnknownMatrix`]. Returns whether anything was
    /// removed.
    pub fn invalidate(&self, key: &MatrixKey) -> bool {
        let was_sharded = self.sharded.remove(key);
        self.registry.invalidate(key) || was_sharded
    }

    /// Submits `C = A·B` for the registered matrix `key` with the
    /// configured default deadline. Returns a future resolving to the
    /// response (or a typed rejection). Admission control runs inline:
    /// immediate rejections (unknown key, shape mismatch, inadmissible
    /// plan, every queue full) resolve the future without queueing.
    pub fn submit(&self, key: MatrixKey, b: Dense<T>) -> ResponseFuture<T> {
        self.submit_with_deadline(key, b, self.config.default_deadline)
    }

    /// [`Server::submit`] with an explicit per-request deadline measured
    /// from now; the request is dropped with [`RejectReason::Deadline`] if
    /// it has not reached a device within the budget.
    pub fn submit_with_deadline(
        &self,
        key: MatrixKey,
        b: Dense<T>,
        deadline: Option<Duration>,
    ) -> ResponseFuture<T> {
        let seq = self.shared.central.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut adm_span = smat_trace::span("admission", "serve");
        adm_span.arg("seq", seq);
        adm_span.arg("cols", b.ncols() as u64);
        let (tx, rx) = oneshot::channel();
        let fut = ResponseFuture { rx };
        if self.shared.shutdown.load(Ordering::Acquire) {
            adm_span.arg("outcome", "shutdown");
            tx.send(Err(ServeError::ShutDown));
            return fut;
        }
        // The deadline is fixed at submit time, so time spent parked on an
        // in-flight preparation counts against the request's budget.
        let now = Instant::now();
        let deadline = deadline.map(|d| now + d);
        // Sharded keys are resolved by the matrix-level scheduler, never
        // the registry directly (a parent key has no registry entry, and a
        // probe there would count a spurious miss). If the shard entry is
        // still preparing, the fan-out parks on it exactly like unsharded
        // submissions park on a warm prepare.
        if let Some(slot) = self.sharded.lookup(&key) {
            let shared = Arc::clone(&self.shared);
            let plans = Arc::clone(&self.plans);
            let queue_capacity = self.config.queue_capacity;
            let inline = slot.park(Box::new(move |entry: ShardedEntry<T>| {
                fan_out(
                    &shared,
                    &plans,
                    queue_capacity,
                    &entry,
                    b,
                    deadline,
                    now,
                    seq,
                    tx,
                );
            }));
            adm_span.arg(
                "outcome",
                if inline {
                    "fanned_out"
                } else {
                    "parked_sharded"
                },
            );
            return fut;
        }
        if let Some(smat) = self.registry.get(&key) {
            admit_prepared(
                &self.shared,
                &self.plans,
                self.config.queue_capacity,
                key,
                smat,
                b,
                deadline,
                now,
                seq,
                Responder::Direct(tx),
                &mut adm_span,
            );
            return fut;
        }
        // Not resident: the key may be mid-preparation (a warm_prepare or a
        // concurrent register). Park the admission tail on the in-flight
        // prepare — never block the submitter, never duplicate the prepare.
        // The sender lives in a shared cell so the Absent arm can still
        // reject with the typed error after the waiter was dropped unused.
        let shared = Arc::clone(&self.shared);
        let plans = Arc::clone(&self.plans);
        let queue_capacity = self.config.queue_capacity;
        let tx_cell = Arc::new(Mutex::labeled("server.parked_tx", Some(tx)));
        let tx_park = Arc::clone(&tx_cell);
        match self.registry.get_or_park(&key, move |smat| {
            // POLICY (poisoning): recover. The cell holds a `take`-once
            // Option; either arm observing a poisoned lock still sees a
            // consistent taken/untaken state.
            let Some(tx) = tx_park.lock_or_recover().take() else {
                return;
            };
            // Deferred admission runs on whichever thread fulfilled the
            // preparation; it gets its own span segment on that timeline.
            let mut span = smat_trace::span("admission", "serve");
            span.arg("seq", seq);
            span.arg("deferred", 1u64);
            admit_prepared(
                &shared,
                &plans,
                queue_capacity,
                key,
                smat,
                b,
                deadline,
                now,
                seq,
                Responder::Direct(tx),
                &mut span,
            );
        }) {
            // Raced to ready: the waiter already ran inline above.
            ParkResult::Ready => {}
            ParkResult::Parked => adm_span.arg("outcome", "parked"),
            ParkResult::Absent => {
                adm_span.arg("outcome", "unknown_matrix");
                if let Some(tx) = tx_cell.lock_or_recover().take() {
                    tx.send(Err(ServeError::UnknownMatrix));
                }
            }
        }
        fut
    }

    /// Pauses dispatch: workers stop pulling from their queues (in-flight
    /// batches finish). Admission keeps accepting until queues fill, which
    /// makes backpressure and batch composition reproducible — tests and
    /// the trace-replay example pause, submit, then [`Server::resume`].
    pub fn pause(&self) {
        // POLICY (poisoning): recover. The pause window is a single Option
        // assignment; there is no multi-step state to tear.
        let mut began = self.shared.pause_began.lock_or_recover();
        if began.is_none() {
            *began = Some(Instant::now());
        }
        self.shared.paused.store(true, Ordering::Release);
    }

    /// Resumes dispatch after [`Server::pause`]. The pause window is
    /// credited to the paused clock so occupancy keeps dividing by time the
    /// server was actually allowed to run.
    pub fn resume(&self) {
        {
            let mut began = self.shared.pause_began.lock_or_recover();
            if let Some(t0) = began.take() {
                self.shared
                    .paused_ns
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }
        self.shared.paused.store(false, Ordering::Release);
        for dev in &self.shared.devices {
            dev.cv.notify_all();
        }
    }

    /// The prepared-matrix registry (for stats or explicit invalidation).
    pub fn registry(&self) -> &PreparedMatrixRegistry<T> {
        &self.registry
    }

    /// Snapshot of every counter.
    pub fn stats(&self) -> ServerStats {
        let wall_ms = self.shared.started.elapsed().as_secs_f64() * 1e3;
        // The unpaused clock: wall time minus completed pause windows minus
        // the currently open one. Occupancy divides by this, so replay
        // pauses don't deflate it.
        let paused_ms = {
            let mut p = self.shared.paused_ns.load(Ordering::Relaxed) as f64 / 1e6;
            if let Some(t0) = *self.shared.pause_began.lock_or_recover() {
                p += t0.elapsed().as_secs_f64() * 1e3;
            }
            p
        };
        let active_ms = (wall_ms - paused_ms).max(0.0);
        let c = &self.shared.central;
        let registry = self.registry.stats();
        // POLICY (poisoning): recover. Two-scalar accumulator.
        let (plan_err_sum, plan_predictions) = *c.plan_err.lock_or_recover();
        let devices: Vec<DeviceStats> = self
            .shared
            .devices
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let busy_ms = d.busy_ns.load(Ordering::Relaxed) as f64 / 1e6;
                DeviceStats {
                    device: i,
                    dispatched: d.dispatched.load(Ordering::Relaxed),
                    completed: d.completed.load(Ordering::Relaxed),
                    launches: d.launches.load(Ordering::Relaxed),
                    served: d.served.load(Ordering::Relaxed),
                    cols: d.cols.load(Ordering::Relaxed),
                    sim_ms: d.sim_ns.load(Ordering::Relaxed) as f64 / 1e6,
                    busy_ms,
                    occupancy: if active_ms > 0.0 {
                        busy_ms / active_ms
                    } else {
                        0.0
                    },
                    queue_depth: d.queue.lock_or_recover().len(),
                    breaker_open: self.shared.breakers[i].is_open(),
                }
            })
            .collect();
        ServerStats {
            wall_ms,
            active_ms,
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            rejected_queue_full: c.rejected_queue_full.load(Ordering::Relaxed),
            rejected_deadline: c.rejected_deadline.load(Ordering::Relaxed),
            rejected_preflight: c.rejected_preflight.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            batched_requests: c.batched_requests.load(Ordering::Relaxed),
            max_batch: c.max_batch.load(Ordering::Relaxed),
            mutations: c.mutations.load(Ordering::Relaxed),
            compactions: registry.compactions,
            fanout_requests: c.fanouts.load(Ordering::Relaxed),
            shard_subrequests: c.shard_subrequests.load(Ordering::Relaxed),
            queue_depth: devices.iter().map(|d| d.queue_depth).sum(),
            sim_ms_total: devices.iter().map(|d| d.sim_ms).sum(),
            planned_requests: c.planned.load(Ordering::Relaxed),
            plan_predictions,
            plan_mean_rel_error: if plan_predictions == 0 {
                0.0
            } else {
                plan_err_sum / plan_predictions as f64
            },
            plan_refits: self.shared.planner.as_ref().map_or(0, |p| p.refits()),
            plan_observations: self.shared.planner.as_ref().map_or(0, |p| p.observations()),
            registry,
            plans: self.plans.stats(),
            chaos: self.shared.chaos.snapshot(),
            latency: LatencyStats::from_samples(&c.latencies.lock_or_recover()),
            devices,
        }
    }

    /// Handle to the process-wide tracing recorder.
    ///
    /// The recorder is global (spans from every server and the simulator
    /// share one stream); the handle is exposed here so callers holding a
    /// `Server` can enable tracing and drain events without depending on
    /// `smat-trace` directly. Drain only after [`Server::shutdown`] (or a
    /// quiescent pause): worker threads flush their span buffers when their
    /// outermost span closes, so a drain mid-flight can miss open spans.
    pub fn trace_handle(&self) -> smat_trace::TraceHandle {
        smat_trace::TraceHandle::new()
    }

    /// Stops accepting work, drains every queue, and joins the workers.
    /// Called automatically on drop.
    pub fn shutdown(&mut self) {
        // Background shard prepares first: their parked submissions fan out
        // on the warm thread and land in queues before the drain begins.
        self.sharded.join_warm();
        // Then background compactions, so no swap publishes mid-teardown.
        self.registry.wait_compactions();
        self.shared.shutdown.store(true, Ordering::Release);
        for dev in &self.shared.devices {
            dev.cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl<T: Element> Drop for Server<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Admission tail shared by the inline, parked, and fan-out submit paths:
/// shape check, plan pre-flight, least-loaded enqueue, typed backpressure.
/// Runs on the submitting thread when the prepared handle is resident, and
/// on the preparing thread for requests that parked on a warm prepare.
/// Every rejection resolves the request's responder directly. Pool-level
/// request counters fire only for [`Responder::Direct`] requests; shard
/// sub-requests count once at the parent (see [`fan_out`]). Returns
/// whether the request reached a queue.
#[allow(clippy::too_many_arguments)]
fn admit_prepared<T: Element>(
    shared: &PoolShared<T>,
    plans: &PlanCache,
    queue_capacity: usize,
    key: MatrixKey,
    smat: Smat<T>,
    b: Dense<T>,
    deadline: Option<Instant>,
    enq: Instant,
    seq: u64,
    responder: Responder<T>,
    adm_span: &mut smat_trace::SpanGuard,
) -> bool {
    // Re-checked here because deferred admission may run after shutdown
    // began; workers ignore their queues once the drain completes.
    if shared.shutdown.load(Ordering::Acquire) {
        adm_span.arg("outcome", "shutdown");
        responder.send(Err(ServeError::ShutDown));
        return false;
    }
    if b.nrows() != smat.input_ncols() {
        adm_span.arg("outcome", "shape_mismatch");
        responder.send(Err(ServeError::ShapeMismatch {
            expected_rows: smat.input_ncols(),
            got_rows: b.nrows(),
        }));
        return false;
    }
    // Pin the overlay epoch now: the plan, the batch key, and the executed
    // correction set all derive from this snapshot, so the request finishes
    // on the epoch it admitted under even if a mutation or a compaction
    // swap lands while it waits in queue.
    let overlay = smat.overlay_snapshot();
    let plan = plans.get_or_build_pinned(key, b.ncols(), &smat, &overlay);
    if !plan.admissible {
        if responder.is_direct() {
            shared
                .central
                .rejected_preflight
                .fetch_add(1, Ordering::Relaxed);
        }
        adm_span.arg("outcome", "preflight_rejected");
        responder.send(Err(ServeError::Rejected(RejectReason::Preflight {
            diagnostics: plan.diagnostics.as_ref().clone(),
        })));
        return false;
    }

    // Least-loaded dispatch: try devices by outstanding column count.
    // Devices with an open circuit breaker sort last — a flapping device
    // stops attracting new work until a success closes it.
    let mut order: Vec<usize> = (0..shared.devices.len()).collect();
    order.sort_by_key(|&i| {
        (
            shared.breakers[i].is_open(),
            shared.devices[i].load_cols.load(Ordering::Relaxed),
            i,
        )
    });
    let ncols = b.ncols();
    let direct = responder.is_direct();
    let mut request = Some(Request {
        key,
        smat,
        overlay,
        b,
        deadline,
        enq,
        seq,
        responder,
    });
    for &i in &order {
        let dev = &shared.devices[i];
        // POLICY (poisoning): recover. Queues hold whole `Request` values;
        // push/pop are panic-free, so a poisoned flag can only come from a
        // panic elsewhere in a worker's iteration, not a torn queue.
        let mut q = dev.queue.lock_or_recover();
        if q.len() >= queue_capacity {
            continue;
        }
        q.push_back(request.take().expect("request still in hand"));
        drop(q);
        dev.load_cols.fetch_add(ncols, Ordering::Relaxed);
        dev.dispatched.fetch_add(1, Ordering::Relaxed);
        if direct {
            shared.central.submitted.fetch_add(1, Ordering::Relaxed);
        }
        dev.cv.notify_one();
        adm_span.arg("outcome", "enqueued");
        adm_span.arg("device", i as u64);
        return true;
    }
    // Every queue at capacity: backpressure. Reclaim the responder from
    // the unenqueued request so the caller gets the typed rejection rather
    // than the sender-drop ShutDown.
    let Request { responder, .. } = request.take().expect("request still in hand");
    let depth: usize = shared
        .devices
        .iter()
        .map(|d| d.queue.lock_or_recover().len())
        .sum();
    if responder.is_direct() {
        shared
            .central
            .rejected_queue_full
            .fetch_add(1, Ordering::Relaxed);
    }
    adm_span.arg("outcome", "queue_full");
    let capacity = queue_capacity * shared.devices.len();
    responder.send(Err(ServeError::Rejected(RejectReason::QueueFull {
        depth,
        capacity,
    })));
    false
}

/// The matrix-level half of the two-level scheduler: turns one submission
/// against a sharded key into per-shard sub-requests placed by the
/// ordinary least-loaded device dispatch, joined by a [`FanoutJoin`].
///
/// Admission is all-or-nothing *before* any queue slot is taken: shutdown,
/// shape, and every shard's plan pre-flight are checked up front, so a
/// rejected fan-out never leaves orphan sub-requests behind. After that,
/// individual shards can still bounce on `QueueFull` or expire on
/// deadline; those errors flow into the join and the parent resolves with
/// the first failure in shard order (deterministic for a fixed trace).
/// The parent counts once in `submitted` iff every sub-request enqueued.
#[allow(clippy::too_many_arguments)]
fn fan_out<T: Element>(
    shared: &Arc<PoolShared<T>>,
    plans: &Arc<PlanCache>,
    queue_capacity: usize,
    entry: &ShardedEntry<T>,
    b: Dense<T>,
    deadline: Option<Instant>,
    enq: Instant,
    parent_seq: u64,
    tx: oneshot::Sender<Result<ServeResponse<T>, ServeError>>,
) {
    let mut span = smat_trace::span("fanout", "serve");
    span.arg("seq", parent_seq);
    span.arg("shards", entry.plan.nshards() as u64);
    if shared.shutdown.load(Ordering::Acquire) {
        span.arg("outcome", "shutdown");
        tx.send(Err(ServeError::ShutDown));
        return;
    }
    if b.nrows() != entry.plan.ncols {
        span.arg("outcome", "shape_mismatch");
        tx.send(Err(ServeError::ShapeMismatch {
            expected_rows: entry.plan.ncols,
            got_rows: b.nrows(),
        }));
        return;
    }
    for (i, smat) in entry.smats.iter().enumerate() {
        let plan = plans.get_or_build(entry.keys[i], b.ncols(), smat);
        if !plan.admissible {
            shared
                .central
                .rejected_preflight
                .fetch_add(1, Ordering::Relaxed);
            span.arg("outcome", "preflight_rejected");
            span.arg("shard", i as u64);
            tx.send(Err(ServeError::Rejected(RejectReason::Preflight {
                diagnostics: plan.diagnostics.as_ref().clone(),
            })));
            return;
        }
    }

    let n = entry.plan.nshards();
    shared.central.fanouts.fetch_add(1, Ordering::Relaxed);
    shared
        .central
        .shard_subrequests
        .fetch_add(n as u64, Ordering::Relaxed);
    span.arg("outcome", "dispatched");
    drop(span);
    let join = make_join(shared, n, enq, parent_seq, tx);
    // Sub-requests enqueue in shard order, drawing fresh seqs; least-
    // loaded dispatch then spreads them round-robin from an idle pool
    // (each enqueue bumps the chosen device's load before the next sort).
    let mut all_enqueued = true;
    for (i, smat) in entry.smats.iter().enumerate() {
        let sub_seq = shared.central.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut sub_span = smat_trace::span("admission", "serve");
        sub_span.arg("seq", sub_seq);
        sub_span.arg("parent", parent_seq);
        sub_span.arg("shard", i as u64);
        all_enqueued &= admit_prepared(
            shared,
            plans,
            queue_capacity,
            entry.keys[i],
            smat.clone(),
            b.clone(),
            deadline,
            enq,
            sub_seq,
            Responder::Shard {
                join: Arc::clone(&join),
                shard: i,
            },
            &mut sub_span,
        );
    }
    if all_enqueued {
        shared.central.submitted.fetch_add(1, Ordering::Relaxed);
    }
}

/// Builds the join for one fan-out: the callback runs on whichever worker
/// delivers the last shard, row-concatenates the partial products in shard
/// order, settles the parent-level counters the sub-requests skipped, and
/// resolves the submitter's future.
fn make_join<T: Element>(
    shared: &Arc<PoolShared<T>>,
    n: usize,
    enq: Instant,
    parent_seq: u64,
    tx: oneshot::Sender<Result<ServeResponse<T>, ServeError>>,
) -> Arc<FanoutJoin<Result<ServeResponse<T>, ServeError>>> {
    let shared = Arc::clone(shared);
    Arc::new(FanoutJoin::new(
        n,
        Box::new(move |parts| {
            let central = &shared.central;
            let mut responses = Vec::with_capacity(parts.len());
            for part in parts {
                match part {
                    Ok(r) => responses.push(r),
                    Err(e) => {
                        // First failure in shard order fails the parent,
                        // with the request-level counter its sub-request
                        // deliberately skipped.
                        match &e {
                            ServeError::Rejected(RejectReason::QueueFull { .. }) => {
                                central.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                            }
                            ServeError::Rejected(RejectReason::Deadline { .. }) => {
                                central.rejected_deadline.fetch_add(1, Ordering::Relaxed);
                            }
                            ServeError::Rejected(RejectReason::Preflight { .. }) => {
                                central.rejected_preflight.fetch_add(1, Ordering::Relaxed);
                            }
                            ServeError::Sim(_) => {
                                central.failed.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => {}
                        }
                        tx.send(Err(e));
                        return;
                    }
                }
            }
            // Exactness: shard products are whole-row slices of the
            // unsharded product, so concatenation in shard order *is* the
            // unsharded result, bitwise (see smat-shard's crate docs).
            let c = Dense::vconcat(&responses.iter().map(|r| &r.c).collect::<Vec<_>>());
            let wall_ms = enq.elapsed().as_secs_f64() * 1e3;
            let resp = ServeResponse {
                c,
                device: responses[0].device,
                batched_with: responses.iter().map(|r| r.batched_with).max().unwrap_or(1),
                batch_cols: responses.iter().map(|r| r.batch_cols).max().unwrap_or(0),
                sim_ms: responses.iter().map(|r| r.sim_ms).sum(),
                wall_ms,
                degraded: responses.iter().any(|r| r.degraded),
                attempts: responses.iter().map(|r| r.attempts).max().unwrap_or(1),
                // Sum of the shard predictions; `None` as soon as any
                // shard lacked one (Option's `Sum` short-circuits).
                predicted_ms: responses.iter().map(|r| r.predicted_ms).sum(),
            };
            central.completed.fetch_add(1, Ordering::Relaxed);
            // POLICY (poisoning): recover. Append-only sample vector.
            central.latencies.lock_or_recover().push(wall_ms);
            smat_trace::complete_from(
                "join",
                "serve",
                enq,
                vec![("seq", parent_seq.into()), ("shards", (n as u64).into())],
            );
            tx.send(Ok(resp));
        }),
    ))
}

fn worker_loop<T: Element>(shared: &PoolShared<T>, idx: usize) {
    let dev = &shared.devices[idx];
    loop {
        let batch = {
            // POLICY (poisoning): recover (see `admit_prepared`).
            let mut q = dev.queue.lock_or_recover();
            loop {
                let shutting_down = shared.shutdown.load(Ordering::Acquire);
                if q.is_empty() {
                    if shutting_down {
                        return; // queue drained, engine stopping
                    }
                } else if shutting_down || !shared.paused.load(Ordering::Acquire) {
                    break;
                }
                q = dev.cv.wait(q);
            }
            take_batch(
                &mut q,
                // Same-epoch by construction: one pinned overlay serves the
                // whole launch.
                |r: &Request<T>| (r.key, r.overlay.epoch()),
                |r| r.b.ncols(),
                shared.column_budget,
            )
        };
        execute_batch(shared, dev, idx, batch);
    }
}

/// How a batch finally completed after climbing the recovery ladder.
struct RecoveryOutcome<T> {
    /// One product per input panel, original row order.
    cs: Vec<Dense<T>>,
    /// Simulated milliseconds of the successful launch.
    sim_ms: f64,
    /// Device the successful launch executed on.
    exec: usize,
    /// Total launch attempts consumed (TC + scalar).
    attempts: u32,
    /// Whether the scalar degradation rung produced the result.
    degraded: bool,
}

/// Emits a serve-side chaos instant (retry/hedge/breaker/degraded events).
fn chaos_instant(name: &str, device: usize, work_id: u64, attempt: u32) {
    if smat_trace::enabled() {
        smat_trace::instant(
            name,
            "chaos",
            vec![
                ("device", (device as u64).into()),
                ("work_id", work_id.into()),
                ("attempt", (attempt as u64).into()),
            ],
        );
    }
}

/// Executes one batch with the full recovery ladder:
///
/// 1. Tensor Core attempts on the owning device, each with a fresh
///    content-derived fault key (`compose_key(work_id, attempt, lane)`),
///    separated by seeded-jitter exponential backoff;
/// 2. after `hedge_after` failures, the remaining TC attempts are hedged
///    to the (deterministically chosen) next device in the pool;
/// 3. after `max_attempts` TC failures, the scalar `cusparse`-like rung
///    runs, rotating over devices attempt by attempt.
///
/// Only [`SimError::FaultInjected`] climbs the ladder; every other error
/// (OOM, preflight) propagates immediately as before. The work id is the
/// batch lead request's submission seq — pure request content — so the
/// entire fault/recovery schedule replays identically for a replayed
/// trace regardless of worker interleaving.
fn run_with_recovery<T: Element>(
    shared: &PoolShared<T>,
    home: usize,
    smat: &Smat<T>,
    overlay: &OverlaySnapshot,
    panels: &[&Dense<T>],
    work_id: u64,
) -> Result<RecoveryOutcome<T>, SimError> {
    let policy = &shared.recovery;
    let ndev = shared.gpus.len();
    let mut exec = home;
    let mut hedged = false;
    let mut attempt: u32 = 0;
    let mut last_err = None;

    // Rung 1 + 2: Tensor Core attempts, hedging after `hedge_after`.
    while attempt < policy.max_attempts {
        if !hedged && attempt >= policy.hedge_after && ndev > 1 {
            exec = (home + 1) % ndev;
            hedged = true;
            shared.chaos.count_hedge();
            chaos_instant("hedge", exec, work_id, attempt);
        }
        let lane = u32::from(exec != home);
        let gpu = attempt_gpu(shared, exec, work_id, attempt, lane);
        match spmm_batched(smat, &gpu, panels, overlay) {
            Ok((cs, report)) => {
                if exec == home && shared.breakers[exec].record_success() {
                    chaos_instant("breaker_close", exec, work_id, attempt);
                }
                return Ok(RecoveryOutcome {
                    cs,
                    sim_ms: report.elapsed_ms(),
                    exec,
                    attempts: attempt + 1,
                    degraded: false,
                });
            }
            Err(SimError::FaultInjected { kind, .. }) => {
                record_fault(shared, exec, home, kind, work_id, attempt);
                last_err = Some(SimError::FaultInjected {
                    kind,
                    device: exec,
                    key: compose_key(work_id, attempt, lane),
                });
                attempt += 1;
                if attempt < policy.max_attempts
                    || (policy.fallback && policy.fallback_attempts > 0)
                {
                    shared.chaos.count_retry();
                    chaos_instant("retry", exec, work_id, attempt);
                    backoff(shared, work_id, attempt);
                }
            }
            Err(e) => return Err(e),
        }
    }

    // Rung 3: scalar degradation, rotating over devices.
    if policy.fallback {
        for f in 0..policy.fallback_attempts {
            let target = (exec + f as usize) % ndev;
            let total = policy.max_attempts + f;
            let gpu = attempt_gpu(shared, target, work_id, total, 2);
            match spmm_scalar_fallback(smat, &gpu, panels, overlay) {
                Ok((cs, sim_ms)) => {
                    if target == home && shared.breakers[target].record_success() {
                        chaos_instant("breaker_close", target, work_id, total);
                    }
                    shared.chaos.count_degraded(panels.len() as u64);
                    chaos_instant("degraded", target, work_id, total);
                    return Ok(RecoveryOutcome {
                        cs,
                        sim_ms,
                        exec: target,
                        attempts: total + 1,
                        degraded: true,
                    });
                }
                Err(SimError::FaultInjected { kind, .. }) => {
                    record_fault(shared, target, home, kind, work_id, total);
                    last_err = Some(SimError::FaultInjected {
                        kind,
                        device: target,
                        key: compose_key(work_id, total, 2),
                    });
                    if f + 1 < policy.fallback_attempts {
                        shared.chaos.count_retry();
                        chaos_instant("retry", target, work_id, total + 1);
                        backoff(shared, work_id, total + 1);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
    Err(last_err.expect("ladder exhausted implies at least one fault"))
}

/// The pool GPU for one attempt, with the attempt's fault key pinned.
fn attempt_gpu<T>(
    shared: &PoolShared<T>,
    device: usize,
    work_id: u64,
    attempt: u32,
    lane: u32,
) -> Gpu {
    let gpu = &shared.gpus[device];
    if shared.fault_plan.is_some() {
        gpu.clone()
            .with_fault_key(compose_key(work_id, attempt, lane))
    } else {
        gpu.clone()
    }
}

/// Counts a fault and, when the faulted device is the observing worker's
/// own (`device == home`), updates its breaker (tripping if due).
///
/// Breakers are single-writer by construction: only a device's own worker
/// ever records outcomes on its breaker, from home-lane TC attempts and
/// own-device scalar attempts. Hedge-lane outcomes feed the fault counters
/// but not the foreign device's breaker — a cross-thread record there would
/// make the "consecutive failures" count (and `breaker_trips`) depend on
/// worker interleaving, breaking the replay-determinism contract.
fn record_fault<T>(
    shared: &PoolShared<T>,
    device: usize,
    home: usize,
    kind: smat_gpusim::FaultKind,
    work_id: u64,
    attempt: u32,
) {
    shared.chaos.count_fault(kind);
    if device == home && shared.breakers[device].record_failure(shared.recovery.breaker_threshold) {
        shared.chaos.count_breaker_trip();
        chaos_instant("breaker_open", device, work_id, attempt);
    }
}

/// Sleeps the seeded-jitter exponential backoff before retry `attempt`.
fn backoff<T>(shared: &PoolShared<T>, work_id: u64, attempt: u32) {
    let Some(plan) = &shared.fault_plan else {
        return;
    };
    let us = shared
        .recovery
        .backoff_us(plan.jitter(work_id, attempt), attempt);
    if us > 0 {
        std::thread::sleep(Duration::from_micros(us));
    }
}

fn execute_batch<T: Element>(
    shared: &PoolShared<T>,
    dev: &DeviceState<T>,
    idx: usize,
    batch: Vec<Request<T>>,
) {
    let central = &shared.central;
    let now = Instant::now();
    if smat_trace::enabled() {
        // Queue wait ends the moment the batch is taken off the queue,
        // whether or not the request survives the deadline check.
        for r in &batch {
            smat_trace::complete_from(
                "queue_wait",
                "serve",
                r.enq,
                vec![("seq", r.seq.into()), ("device", (idx as u64).into())],
            );
        }
    }
    let mut expired = Vec::new();
    let mut live = Vec::with_capacity(batch.len());
    for r in batch {
        match r.deadline {
            Some(d) if now > d => expired.push(r),
            _ => live.push(r),
        }
    }
    // Load is released *before* any response is sent: a submitter woken by
    // a completion must already observe the lower load, or least-loaded
    // dispatch would race the bookkeeping and devices would drift between
    // otherwise-identical replays.
    let expired_cols: usize = expired.iter().map(|r| r.b.ncols()).sum();
    dev.load_cols.fetch_sub(expired_cols, Ordering::Relaxed);
    for r in expired {
        if r.responder.is_direct() {
            central.rejected_deadline.fetch_add(1, Ordering::Relaxed);
        }
        let late_ms = now
            .duration_since(r.deadline.expect("expired"))
            .as_secs_f64()
            * 1e3;
        dev.completed.fetch_add(1, Ordering::Relaxed);
        r.responder
            .send(Err(ServeError::Rejected(RejectReason::Deadline {
                late_ms,
            })));
    }

    if !live.is_empty() {
        let t0 = Instant::now();
        let panels: Vec<&Dense<T>> = live.iter().map(|r| &r.b).collect();
        let batch_cols: usize = panels.iter().map(|p| p.ncols()).sum();
        if smat_trace::enabled() {
            let members = live
                .iter()
                .map(|r| r.seq.to_string())
                .collect::<Vec<_>>()
                .join(",");
            smat_trace::instant(
                "batch_form",
                "serve",
                vec![
                    ("device", (idx as u64).into()),
                    ("requests", (live.len() as u64).into()),
                    ("cols", (batch_cols as u64).into()),
                    ("members", members.into()),
                ],
            );
        }
        let mut launch_span = smat_trace::span("launch", "serve");
        launch_span.arg("device", idx as u64);
        launch_span.arg("requests", live.len() as u64);
        launch_span.arg("cols", batch_cols as u64);
        // The batch's work identity for fault keys is the lead request's
        // submission seq — pure request content, stable across replays.
        let work_id = live[0].seq;
        let result = run_with_recovery(
            shared,
            idx,
            &live[0].smat,
            &live[0].overlay,
            &panels,
            work_id,
        );
        if let Ok(out) = &result {
            launch_span.arg("sim_ms", out.sim_ms);
            launch_span.arg("attempts", out.attempts as u64);
            if out.degraded {
                launch_span.arg("degraded", 1u64);
            }
        }
        drop(launch_span);
        dev.busy_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        dev.load_cols.fetch_sub(batch_cols, Ordering::Relaxed);
        match result {
            Ok(out) => {
                let n_live = live.len();
                // Throughput accounting stays with the owning device (its
                // worker carried the batch), even when a hedge or rotation
                // executed elsewhere; the response reports the executor.
                dev.launches.fetch_add(1, Ordering::Relaxed);
                dev.served.fetch_add(n_live as u64, Ordering::Relaxed);
                dev.cols.fetch_add(batch_cols as u64, Ordering::Relaxed);
                dev.sim_ns
                    .fetch_add((out.sim_ms * 1e6).round() as u64, Ordering::Relaxed);
                central.batches.fetch_add(1, Ordering::Relaxed);
                central
                    .batched_requests
                    .fetch_add(n_live as u64, Ordering::Relaxed);
                central
                    .max_batch
                    .fetch_max(n_live as u64, Ordering::Relaxed);
                // `completed` counts requests the caller sees: shard
                // sub-results settle the parent's count in the join.
                let n_direct = live.iter().filter(|r| r.responder.is_direct()).count() as u64;
                central.completed.fetch_add(n_direct, Ordering::Relaxed);
                // Cost-model feedback: grade the plan's prediction against
                // the observed launch, then feed the observation back for
                // online refit — predict *before* observe, so a launch
                // never trains the model that grades it. Degraded
                // completions are scalar-path timings of a TC-planned
                // configuration, not a sample of the planned mode.
                let mut predicted_ms = None;
                if let (Some(planner), Some(decision)) =
                    (&shared.planner, live[0].smat.plan_decision())
                {
                    if !out.degraded && out.sim_ms > 0.0 {
                        let pred = planner
                            .predict(decision.use_tc, decision.n_e, batch_cols)
                            .unwrap_or(decision.predicted_ms);
                        central.planned.fetch_add(n_live as u64, Ordering::Relaxed);
                        {
                            // POLICY (poisoning): recover. Two-scalar
                            // accumulator; both fields update under one
                            // guard.
                            let mut err = central.plan_err.lock_or_recover();
                            err.0 += (pred - out.sim_ms).abs() / out.sim_ms;
                            err.1 += 1;
                        }
                        planner.observe(decision.use_tc, decision.n_e, batch_cols, out.sim_ms);
                        if smat_trace::enabled() {
                            smat_trace::instant(
                                "plan_feedback",
                                "planner",
                                vec![
                                    ("device", (idx as u64).into()),
                                    ("predicted_ms", pred.into()),
                                    ("sim_ms", out.sim_ms.into()),
                                ],
                            );
                        }
                        predicted_ms = Some(pred);
                    }
                }
                // Latency samples land before any response is sent: a shard
                // responder finishing a fan-out runs the join callback
                // inline, which takes this same lock for the parent sample.
                let stamped: Vec<(Request<T>, Dense<T>, f64)> = live
                    .into_iter()
                    .zip(out.cs)
                    .map(|(r, c)| {
                        let wall_ms = r.enq.elapsed().as_secs_f64() * 1e3;
                        (r, c, wall_ms)
                    })
                    .collect();
                {
                    // POLICY (poisoning): recover. The sample vector is
                    // append-only; a panic between pushes loses nothing.
                    let mut latencies = central.latencies.lock_or_recover();
                    for (r, _, wall_ms) in &stamped {
                        if r.responder.is_direct() {
                            latencies.push(*wall_ms);
                        }
                    }
                }
                for (r, c, wall_ms) in stamped {
                    smat_trace::complete_from(
                        "complete",
                        "serve",
                        r.enq,
                        vec![("seq", r.seq.into()), ("device", (out.exec as u64).into())],
                    );
                    dev.completed.fetch_add(1, Ordering::Relaxed);
                    r.responder.send(Ok(ServeResponse {
                        c,
                        device: out.exec,
                        batched_with: n_live,
                        batch_cols,
                        sim_ms: out.sim_ms,
                        wall_ms,
                        degraded: out.degraded,
                        attempts: out.attempts,
                        predicted_ms,
                    }));
                }
            }
            Err(e) => {
                for r in live {
                    if r.responder.is_direct() {
                        central.failed.fetch_add(1, Ordering::Relaxed);
                    }
                    dev.completed.fetch_add(1, Ordering::Relaxed);
                    r.responder.send(Err(ServeError::Sim(e.clone())));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oneshot::block_on;
    use smat_formats::{Coo, F16};

    fn matrix(n: usize, shift: usize) -> Csr<F16> {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            for j in 0..4 {
                coo.push(
                    r,
                    (r + j * 7 + shift) % n,
                    F16::from_f64(((r + j) % 5) as f64 - 2.0),
                );
            }
        }
        coo.to_csr()
    }

    fn rhs(k: usize, n: usize, salt: usize) -> Dense<F16> {
        Dense::from_fn(k, n, |i, j| {
            F16::from_f64(((i + 2 * j + salt) % 5) as f64 - 2.0)
        })
    }

    #[test]
    fn serves_correct_products_across_devices() {
        let server: Server<F16> = Server::new(ServerConfig {
            devices: 2,
            ..ServerConfig::default()
        });
        let a0 = matrix(64, 0);
        let a1 = matrix(64, 3);
        let k0 = server.register(&a0);
        let k1 = server.register(&a1);
        let futures: Vec<_> = (0..24)
            .map(|i| {
                let (a, k) = if i % 2 == 0 { (&a0, k0) } else { (&a1, k1) };
                let b = rhs(64, 8, i);
                let want = a.spmm_reference(&b);
                (server.submit(k, b), want)
            })
            .collect();
        for (fut, want) in futures {
            let resp = block_on(fut).expect("request served");
            assert_eq!(resp.c, want);
            assert!(resp.device < 2);
            assert!(resp.batched_with >= 1);
        }
        let stats = server.stats();
        assert_eq!(stats.completed, 24);
        assert_eq!(stats.submitted, 24);
        assert_eq!(stats.registry.prepares, 2);
        assert!(stats.registry.hits >= 24, "each submit is a registry hit");
    }

    #[test]
    fn unknown_key_and_shape_mismatch_fail_fast() {
        let server: Server<F16> = Server::new(ServerConfig::default());
        let a = matrix(64, 0);
        let key = server.register(&a);
        let bogus = MatrixKey {
            fingerprint: MatrixFingerprint::of_csr(&matrix(32, 1)),
            config_digest: key.config_digest,
        };
        assert!(matches!(
            server.submit(bogus, rhs(32, 8, 0)).wait(),
            Err(ServeError::UnknownMatrix)
        ));
        assert!(matches!(
            server.submit(key, rhs(16, 8, 0)).wait(),
            Err(ServeError::ShapeMismatch {
                expected_rows: 64,
                got_rows: 16
            })
        ));
    }

    #[test]
    fn paused_server_applies_backpressure_then_drains() {
        let server: Server<F16> = Server::new(ServerConfig {
            devices: 2,
            queue_capacity: 3,
            ..ServerConfig::default()
        });
        let a = matrix(64, 0);
        let key = server.register(&a);
        server.pause();
        // 2 devices × 3 slots = 6 accepted, the 7th bounces.
        let accepted: Vec<_> = (0..6).map(|i| server.submit(key, rhs(64, 8, i))).collect();
        match server.submit(key, rhs(64, 8, 9)).wait() {
            Err(ServeError::Rejected(RejectReason::QueueFull { depth, capacity })) => {
                assert_eq!(depth, 6);
                assert_eq!(capacity, 6);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.queue_depth, 6);
        assert_eq!(stats.rejected_queue_full, 1);
        server.resume();
        for fut in accepted {
            assert!(fut.wait().is_ok());
        }
        assert_eq!(server.stats().completed, 6);
    }

    #[test]
    fn occupancy_excludes_paused_time() {
        let server: Server<F16> = Server::new(ServerConfig {
            devices: 1,
            ..ServerConfig::default()
        });
        let a = matrix(64, 0);
        let key = server.register(&a);
        assert!(server.submit(key, rhs(64, 32, 0)).wait().is_ok());
        let before = server.stats();
        let occ_before = before.devices[0].occupancy;
        assert!(occ_before > 0.0, "device did work, occupancy must be > 0");
        // A long pause with zero work in flight. Before the unpaused-clock
        // fix the denominator kept growing through the pause, so occupancy
        // decayed by ~the pause/wall ratio (here >2x). With the fix the
        // denominator is frozen while paused and occupancy only drifts by
        // the (microsecond-scale) cost of taking the snapshots themselves.
        server.pause();
        std::thread::sleep(Duration::from_millis(250));
        let during = server.stats();
        server.resume();
        assert!(
            during.devices[0].occupancy >= occ_before * 0.8,
            "occupancy collapsed across an idle pause: {} -> {}",
            occ_before,
            during.devices[0].occupancy
        );
        assert!(
            during.wall_ms - during.active_ms >= 240.0,
            "pause window not credited: wall {} ms, active {} ms",
            during.wall_ms,
            during.active_ms
        );
        // Nested pause() calls collapse into one window; resume closes it.
        server.pause();
        server.pause();
        server.resume();
        let after = server.stats();
        assert!(after.active_ms <= after.wall_ms);
    }

    #[test]
    fn expired_deadlines_are_rejected_not_executed() {
        let server: Server<F16> = Server::new(ServerConfig::default());
        let a = matrix(64, 0);
        let key = server.register(&a);
        server.pause();
        let doomed = server.submit_with_deadline(key, rhs(64, 8, 0), Some(Duration::ZERO));
        let fine = server.submit_with_deadline(key, rhs(64, 16, 1), Some(Duration::from_secs(60)));
        // Ensure the zero deadline is strictly in the past once dispatched.
        std::thread::sleep(Duration::from_millis(5));
        server.resume();
        match doomed.wait() {
            Err(ServeError::Rejected(RejectReason::Deadline { late_ms })) => {
                assert!(late_ms > 0.0);
            }
            other => panic!("expected Deadline, got {other:?}"),
        }
        assert!(fine.wait().is_ok());
        let stats = server.stats();
        assert_eq!(stats.rejected_deadline, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn pause_batches_same_matrix_requests() {
        let server: Server<F16> = Server::new(ServerConfig {
            devices: 1,
            column_budget: 64,
            ..ServerConfig::default()
        });
        let a = matrix(64, 0);
        let key = server.register(&a);
        server.pause();
        let futs: Vec<_> = (0..4).map(|i| server.submit(key, rhs(64, 8, i))).collect();
        server.resume();
        let responses: Vec<_> = futs.into_iter().map(|f| f.wait().unwrap()).collect();
        // All four fit one 32-column batch on the single device.
        assert!(responses.iter().all(|r| r.batched_with == 4));
        assert!(responses.iter().all(|r| r.batch_cols == 32));
        let stats = server.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batched_requests, 4);
        assert_eq!(stats.max_batch, 4);
        assert!((stats.mean_batch() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn preflight_inadmissible_plan_is_refused_at_admission() {
        use smat::PreflightMode;
        let server: Server<F16> = Server::new(ServerConfig {
            smat: SmatConfig {
                block_h: 96,
                block_w: 96,
                device: smat_gpusim::DeviceConfig::tiny_test_device(),
                preflight: PreflightMode::Force,
                ..SmatConfig::default()
            },
            ..ServerConfig::default()
        });
        let a = matrix(96, 0);
        let key = server.register(&a);
        match server.submit(key, rhs(96, 8, 0)).wait() {
            Err(ServeError::Rejected(RejectReason::Preflight { diagnostics })) => {
                assert!(!diagnostics.is_empty());
            }
            other => panic!("expected Preflight rejection, got {other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.rejected_preflight, 1);
        assert_eq!(stats.submitted, 0, "never reached a queue");
    }

    #[test]
    fn chaos_requests_complete_correctly_with_nonzero_fault_counters() {
        let server: Server<F16> = Server::new(ServerConfig {
            devices: 2,
            chaos: Some(FaultConfig::blended(1234, 0.35)),
            ..ServerConfig::default()
        });
        let a = matrix(64, 0);
        let key = server.register(&a);
        let futures: Vec<_> = (0..40)
            .map(|i| {
                let b = rhs(64, 8, i);
                let want = a.spmm_reference(&b);
                (server.submit(key, b), want)
            })
            .collect();
        let mut max_attempts_seen = 0;
        for (fut, want) in futures {
            let resp = block_on(fut).expect("recovery must complete every request");
            assert_eq!(resp.c, want, "faulted serving returned a wrong product");
            max_attempts_seen = max_attempts_seen.max(resp.attempts);
        }
        let stats = server.stats();
        assert_eq!(stats.completed, 40);
        assert_eq!(stats.failed, 0);
        let chaos = stats.chaos;
        assert!(chaos.faults_injected > 0, "{chaos:?}");
        assert!(chaos.retries > 0, "{chaos:?}");
        assert_eq!(
            chaos.faults_injected,
            chaos.faults_transient + chaos.faults_ecc + chaos.faults_offline,
            "{chaos:?}"
        );
        assert!(max_attempts_seen > 1, "some batch must have retried");
    }

    #[test]
    fn chaos_free_server_reports_zero_chaos_activity() {
        let server: Server<F16> = Server::new(ServerConfig::default());
        let a = matrix(64, 0);
        let key = server.register(&a);
        for i in 0..6 {
            let resp = block_on(server.submit(key, rhs(64, 8, i))).unwrap();
            assert_eq!(resp.attempts, 1);
            assert!(!resp.degraded);
        }
        let stats = server.stats();
        assert!(!stats.chaos.any_activity(), "{:?}", stats.chaos);
        assert!(stats.devices.iter().all(|d| !d.breaker_open));
    }

    #[test]
    fn persistent_faults_degrade_to_scalar_path_and_trip_breaker() {
        // One plan governs every launch, scalar rung included, so a rate of
        // 1.0 would exhaust the ladder. At transient_rate 0.9 each batch
        // fails all 4 TC attempts (and degrades) with probability
        // 0.9^4 ≈ 66%; 64 scalar attempts make exhaustion vanishingly rare,
        // and submitting serially fixes every work id so the schedule under
        // seed 77 is identical run to run.
        let server: Server<F16> = Server::new(ServerConfig {
            devices: 1,
            chaos: Some(FaultConfig {
                seed: 77,
                transient_rate: 0.9,
                ..FaultConfig::default()
            }),
            recovery: RecoveryPolicy {
                backoff_base_us: 0,
                fallback_attempts: 64,
                ..RecoveryPolicy::default()
            },
            ..ServerConfig::default()
        });
        let a = matrix(64, 0);
        let key = server.register(&a);
        let mut degraded = 0u64;
        for i in 0..20 {
            let b = rhs(64, 8, i);
            let want = a.spmm_reference(&b);
            let resp = block_on(server.submit(key, b)).expect("scalar rung must absorb TC faults");
            assert_eq!(resp.c, want, "degraded result differs from reference");
            degraded += u64::from(resp.degraded);
        }
        let stats = server.stats();
        assert!(degraded > 0, "no batch degraded at 90% TC fault rate");
        assert_eq!(stats.chaos.degraded_completions, degraded);
        assert!(
            stats.chaos.breaker_trips > 0,
            "persistent faults must trip the breaker: {:?}",
            stats.chaos
        );
    }

    #[test]
    fn hedging_moves_attempts_to_the_next_device() {
        // transient_rate 1.0 faults every launch on every device: the TC
        // rung hedges to device 1 (counted), the scalar rung fails too, and
        // the ladder exhausts into the typed last fault.
        let server: Server<F16> = Server::new(ServerConfig {
            devices: 2,
            chaos: Some(FaultConfig {
                seed: 5,
                transient_rate: 1.0,
                ..FaultConfig::default()
            }),
            recovery: RecoveryPolicy {
                backoff_base_us: 0,
                fallback_attempts: 2,
                ..RecoveryPolicy::default()
            },
            ..ServerConfig::default()
        });
        let a = matrix(64, 0);
        let key = server.register(&a);
        let res = block_on(server.submit(key, rhs(64, 8, 0)));
        match res {
            Err(ServeError::Sim(SimError::FaultInjected { .. })) => {}
            other => panic!("expected exhausted ladder to surface the fault, got {other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.failed, 1);
        assert!(stats.chaos.hedges >= 1, "{:?}", stats.chaos);
        assert_eq!(
            stats.chaos.faults_injected,
            // 4 TC attempts + 2 scalar attempts, all faulted.
            6,
            "{:?}",
            stats.chaos
        );
        assert!(
            stats.devices.iter().any(|d| d.breaker_open),
            "certain faults must leave a breaker open"
        );
    }

    #[test]
    fn mutate_serves_the_updated_product_and_bumps_epoch() {
        let server: Server<F16> = Server::new(ServerConfig {
            devices: 1,
            // Keep compaction manual so the test exercises the pure overlay
            // serving path.
            compaction: CompactionPolicy {
                auto: false,
                ..CompactionPolicy::default()
            },
            ..ServerConfig::default()
        });
        let a = matrix(64, 0);
        let key = server.register(&a);
        let b = rhs(64, 8, 1);
        assert_eq!(
            block_on(server.submit(key, b.clone())).unwrap().c,
            a.spmm_reference(&b)
        );
        let epoch = server
            .mutate(
                key,
                &[
                    MatrixUpdate::Update {
                        row: 0,
                        col: 0,
                        value: F16::from_f64(3.0),
                    },
                    MatrixUpdate::Delete { row: 5, col: 5 },
                ],
            )
            .unwrap();
        assert_eq!(epoch, 2, "epoch advances by the op count");
        let merged = server.registry().peek(&key).unwrap().merged_csr();
        let resp = block_on(server.submit(key, b.clone())).unwrap();
        assert_eq!(
            resp.c,
            merged.spmm_reference(&b),
            "post-mutation serving must equal the merged matrix"
        );
        let stats = server.stats();
        assert_eq!(stats.mutations, 1);
        assert_eq!(stats.compactions, 0);
        // Empty batches are free: no epoch movement, no mutation counted.
        assert_eq!(server.mutate(key, &[]).unwrap(), 2);
        assert_eq!(server.stats().mutations, 1);
    }

    #[test]
    fn in_flight_requests_finish_on_their_admission_epoch() {
        let server: Server<F16> = Server::new(ServerConfig {
            devices: 1,
            compaction: CompactionPolicy {
                auto: false,
                ..CompactionPolicy::default()
            },
            ..ServerConfig::default()
        });
        let a = matrix(64, 0);
        let key = server.register(&a);
        server.pause();
        // Admitted (and epoch-pinned) before the mutation lands...
        let pinned = server.submit(key, rhs(64, 8, 0));
        server
            .mutate(
                key,
                &[MatrixUpdate::Insert {
                    row: 1,
                    col: 2,
                    value: F16::from_f64(-7.0),
                }],
            )
            .unwrap();
        // ...and one admitted after it.
        let fresh = server.submit(key, rhs(64, 8, 0));
        server.resume();
        let merged = server.registry().peek(&key).unwrap().merged_csr();
        assert_eq!(
            pinned.wait().unwrap().c,
            a.spmm_reference(&rhs(64, 8, 0)),
            "a request admitted at epoch 0 must compute the epoch-0 product"
        );
        assert_eq!(
            fresh.wait().unwrap().c,
            merged.spmm_reference(&rhs(64, 8, 0))
        );
    }

    #[test]
    fn mutations_on_sharded_unknown_or_out_of_bounds_are_rejected() {
        let server: Server<F16> = Server::new(ServerConfig {
            shard_max_bytes: Some(1),
            ..ServerConfig::default()
        });
        let a = matrix(64, 0);
        let sharded_key = server.register(&a);
        let up = MatrixUpdate::Update {
            row: 0,
            col: 0,
            value: F16::from_f64(1.0),
        };
        assert!(matches!(
            server.mutate(sharded_key, std::slice::from_ref(&up)),
            Err(ServeError::MutationUnsupported)
        ));
        let unsharded: Server<F16> = Server::new(ServerConfig::default());
        let key = unsharded.register(&a);
        let bogus = MatrixKey {
            fingerprint: MatrixFingerprint::of_csr(&matrix(32, 1)),
            config_digest: key.config_digest,
        };
        assert!(matches!(
            unsharded.mutate(bogus, std::slice::from_ref(&up)),
            Err(ServeError::UnknownMatrix)
        ));
        // Out-of-bounds rejects the whole batch before any op applies.
        let bad = [up, MatrixUpdate::Delete { row: 2, col: 64 }];
        assert!(matches!(
            unsharded.mutate(key, &bad),
            Err(ServeError::UpdateOutOfBounds {
                nrows: 64,
                ncols: 64,
                row: 2,
                col: 64
            })
        ));
        assert_eq!(
            unsharded.registry().peek(&key).unwrap().overlay_epoch(),
            0,
            "a rejected batch must mutate nothing"
        );
        assert_eq!(unsharded.stats().mutations, 0);
    }

    #[test]
    fn compaction_folds_the_overlay_and_serving_stays_correct() {
        let server: Server<F16> = Server::new(ServerConfig {
            devices: 1,
            // Structural trigger at a single overlay cell: the first
            // mutation schedules a background compaction (no planner, so
            // the model path defers to the fallback threshold).
            compaction: CompactionPolicy {
                auto: true,
                min_overlay_cells: 1,
                overlay_nnz_fraction: 0.0,
                horizon: 256,
            },
            ..ServerConfig::default()
        });
        let a = matrix(64, 0);
        let key = server.register(&a);
        server
            .mutate(
                key,
                &[MatrixUpdate::Update {
                    row: 3,
                    col: 3,
                    value: F16::from_f64(9.0),
                }],
            )
            .unwrap();
        server.quiesce_compactions();
        let stats = server.stats();
        assert_eq!(stats.mutations, 1);
        assert_eq!(stats.compactions, 1, "auto-compaction must have published");
        let handle = server.registry().peek(&key).unwrap();
        assert_eq!(
            handle.overlay_snapshot().correction_terms(),
            0,
            "the folded base absorbs every correction"
        );
        assert_eq!(handle.overlay_epoch(), 1, "the swap carries the epoch");
        // The swapped handle serves the mutated product (oracle built by
        // the formats-level override merge, independent of the pipeline).
        let b = rhs(64, 16, 3);
        let merged = Coo::with_overrides(&a, &[(3, 3, 9.0)]).to_csr();
        assert_eq!(
            block_on(server.submit(key, b.clone())).unwrap().c,
            merged.spmm_reference(&b)
        );
        // Invalidation forgets the tenant entirely.
        assert!(server.invalidate(&key));
        assert!(matches!(
            server.submit(key, b).wait(),
            Err(ServeError::UnknownMatrix)
        ));
        assert!(!server.invalidate(&key), "second invalidation is a no-op");
    }

    #[test]
    fn shutdown_drains_accepted_work() {
        let mut server: Server<F16> = Server::new(ServerConfig::default());
        let a = matrix(64, 0);
        let key = server.register(&a);
        server.pause();
        let futs: Vec<_> = (0..8).map(|i| server.submit(key, rhs(64, 8, i))).collect();
        // Shutdown while paused: workers must drain the queues regardless.
        server.shutdown();
        for fut in futs {
            assert!(fut.wait().is_ok(), "accepted requests complete on drain");
        }
        assert!(matches!(
            server.submit(key, rhs(64, 8, 0)).wait(),
            Err(ServeError::ShutDown)
        ));
    }
}
