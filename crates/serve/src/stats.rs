//! Serving statistics: counter snapshots and latency percentiles.
//!
//! [`ServerStats`] splits into two kinds of fields. Counters driven purely
//! by the request stream (submissions, completions, cache hits) are
//! deterministic for a fixed trace submitted from one thread; fields driven
//! by host scheduling (wall-clock latency percentiles, batch composition,
//! per-device occupancy) are not, and the serving example keeps them out of
//! its reproducibility check.

use serde::Serialize;

use crate::plan::PlanStats;
use crate::registry::RegistryStats;

/// Wall-clock latency summary over completed requests.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct LatencyStats {
    /// Completed requests measured.
    pub count: usize,
    /// Median submit→completion latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
    /// Slowest request in milliseconds.
    pub max_ms: f64,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
}

impl LatencyStats {
    /// Summarizes a set of latency samples (order-insensitive).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        LatencyStats {
            count: sorted.len(),
            p50_ms: percentile(&sorted, 50.0),
            p99_ms: percentile(&sorted, 99.0),
            max_ms: *sorted.last().expect("non-empty"),
            mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
        }
    }
}

/// Nearest-rank percentile over pre-sorted samples: `⌈p/100·N⌉ − 1` as a
/// zero-based index. The previous `round(p/100·(N−1))` variant sat between
/// nearest-rank and linear interpolation and overshot by one sample on even
/// counts (p50 of 1..=100 came out 51, not 50).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One simulated device's view of the run.
#[derive(Clone, Debug, Serialize)]
pub struct DeviceStats {
    /// Device index in the pool.
    pub device: usize,
    /// Kernel launches executed (== batches dispatched to this device).
    pub launches: u64,
    /// Requests completed by this device.
    pub served: u64,
    /// B columns processed by this device.
    pub cols: u64,
    /// Simulated kernel milliseconds accumulated.
    pub sim_ms: f64,
    /// Host milliseconds this device's worker spent executing.
    pub busy_ms: f64,
    /// `busy_ms` over the server's *active* (unpaused) lifetime so far.
    ///
    /// Time spent inside [`Server::pause`](crate::Server::pause) windows is
    /// excluded from the denominator: a replay driver that pauses dispatch
    /// between submission windows would otherwise see occupancy decay
    /// toward zero even while every device was saturated whenever it was
    /// allowed to run.
    pub occupancy: f64,
    /// Requests (direct and per-shard sub-requests alike) the matrix-level
    /// scheduler enqueued to this device.
    pub dispatched: u64,
    /// Terminal responses this device's worker delivered for dispatched
    /// requests — success, failure, or deadline expiry. At quiescence
    /// `dispatched == completed` on every device, or a request was lost.
    pub completed: u64,
    /// Requests waiting in this device's queue right now.
    pub queue_depth: usize,
    /// Whether this device's circuit breaker is currently open (the device
    /// accumulated [`RecoveryPolicy::breaker_threshold`](crate::RecoveryPolicy::breaker_threshold)
    /// consecutive injected failures and is deprioritized by dispatch).
    pub breaker_open: bool,
}

/// Fault-injection and recovery counters, all zero when the server runs
/// without a chaos configuration.
///
/// Determinism contract: when the request trace is replayed through
/// drained submission windows (the `examples/serve.rs` discipline) with the
/// same [`FaultConfig`](smat_gpusim::FaultConfig), every field here is
/// byte-for-byte reproducible — the fault schedule is a pure function of
/// (seed, device, request content), see `smat_gpusim::fault`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ChaosStats {
    /// Faults injected into launches and detected by the serving layer
    /// (sum of the three per-kind counters; timing-only stragglers are not
    /// observable here and are traced by the simulator instead).
    pub faults_injected: u64,
    /// Transient launch refusals observed.
    pub faults_transient: u64,
    /// ECC-style detected result corruptions observed.
    pub faults_ecc: u64,
    /// Launches refused because the device was in an offline window.
    pub faults_offline: u64,
    /// Launch re-attempts (Tensor Core retries plus scalar-rung retries).
    pub retries: u64,
    /// Batches hedged to a second device mid-recovery.
    pub hedges: u64,
    /// Circuit-breaker trips (closed → open transitions) across the pool.
    pub breaker_trips: u64,
    /// Requests completed through the scalar degradation path.
    pub degraded_completions: u64,
}

impl ChaosStats {
    /// Whether any fault-handling machinery fired at all.
    pub fn any_activity(&self) -> bool {
        *self != ChaosStats::default()
    }
}

/// Snapshot of the whole serving engine.
///
/// Determinism contract: for a fixed request trace submitted from a single
/// thread, the counter fields (`submitted`, `completed`, the `rejected_*`
/// family, `failed`, the registry/plan cache counters, and — under drained
/// submission windows — the whole [`ChaosStats`] block) are
/// reproducible run to run. Everything timed against the host clock
/// (`wall_ms`, `active_ms`, `latency`, per-device `busy_ms`/`occupancy`)
/// and everything shaped by worker scheduling (`batches`, `max_batch`,
/// per-device `served`/`cols` splits) is not; reproducibility checks must
/// compare only the first group. `examples/serve.rs` encodes exactly that
/// split in its `DeterministicSummary`.
#[derive(Clone, Debug, Serialize)]
pub struct ServerStats {
    /// Host milliseconds since the server was constructed.
    pub wall_ms: f64,
    /// `wall_ms` minus time spent paused — the occupancy denominator.
    pub active_ms: f64,
    /// Requests accepted into a queue.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests refused with `QueueFull`.
    pub rejected_queue_full: u64,
    /// Requests refused with `Deadline`.
    pub rejected_deadline: u64,
    /// Requests refused with `Preflight`.
    pub rejected_preflight: u64,
    /// Requests that reached a device and failed there (e.g. simulated OOM).
    pub failed: u64,
    /// Kernel launches across the pool (each serves one batch).
    pub batches: u64,
    /// Requests served through those batches (≥ `batches`).
    pub batched_requests: u64,
    /// Largest batch observed, in requests.
    pub max_batch: u64,
    /// Mutation batches applied through [`Server::mutate`](crate::Server)
    /// (each may carry many cell updates; the overlay epoch advances by the
    /// op count). Driven purely by the request stream — part of the
    /// deterministic counter group.
    pub mutations: u64,
    /// Background compactions that published a fresh handle (mirrors
    /// [`RegistryStats::compactions`]). Deterministic under drained replay:
    /// the compaction *decision* is a pure function of matrix content and
    /// the calibrated model, and the driver quiesces compactions at window
    /// boundaries.
    pub compactions: u64,
    /// Sharded requests fanned out across the pool by the matrix-level
    /// scheduler (each counts once in `submitted`/`completed`).
    pub fanout_requests: u64,
    /// Per-shard sub-requests those fan-outs emitted (not counted in
    /// `submitted`; they surface per-device in [`DeviceStats::dispatched`]).
    pub shard_subrequests: u64,
    /// Total requests waiting across all queues right now.
    pub queue_depth: usize,
    /// Total simulated kernel milliseconds across the pool.
    pub sim_ms_total: f64,
    /// Requests completed under a planner-chosen configuration whose
    /// prediction was checked against the observed launch time. Zero
    /// without an admission planner and for pinned registrations. A pure
    /// request-stream counter under drained replay (degradation, the only
    /// exclusion, is content-deterministic there) — part of the
    /// deterministic group.
    pub planned_requests: u64,
    /// Prediction checks performed — one per planned, non-degraded batch.
    /// Depends on batch composition; *not* deterministic.
    pub plan_predictions: u64,
    /// Mean relative error `|predicted − observed| / observed` over those
    /// checks (`0.0` when none ran). The falsifiability stat of the
    /// admission planner: each check predicts the batch's total width, so
    /// the value depends on batch composition and is *not* part of the
    /// deterministic counter group.
    pub plan_mean_rel_error: f64,
    /// Online perf-model refits the planner has performed.
    pub plan_refits: u64,
    /// Observed launch samples the planner accepted into refit windows.
    pub plan_observations: u64,
    /// Prepared-matrix registry counters.
    pub registry: RegistryStats,
    /// Plan-cache counters.
    pub plans: PlanStats,
    /// Fault-injection and recovery counters (all zero without chaos).
    pub chaos: ChaosStats,
    /// Wall-clock latency summary.
    pub latency: LatencyStats,
    /// Per-device breakdown.
    pub devices: Vec<DeviceStats>,
}

impl ServerStats {
    /// Mean requests per launch — the amortization factor batching bought.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let l = LatencyStats::from_samples(&samples);
        assert_eq!(l.count, 100);
        assert_eq!(l.p50_ms, 50.0); // nearest rank: ⌈0.50·100⌉ = 50th sample
        assert_eq!(l.p99_ms, 99.0); // ⌈0.99·100⌉ = 99th sample
        assert_eq!(l.max_ms, 100.0);
        assert!((l.mean_ms - 50.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank_boundaries() {
        // N=4: p50 → ⌈2⌉ = 2nd sample, p75 → 3rd, p100 → 4th, tiny p → 1st.
        let samples = [10.0, 20.0, 30.0, 40.0];
        let l = LatencyStats::from_samples(&samples);
        assert_eq!(l.p50_ms, 20.0);
        assert_eq!(percentile(&samples, 75.0), 30.0);
        assert_eq!(percentile(&samples, 100.0), 40.0);
        assert_eq!(percentile(&samples, 0.1), 10.0);
        // Single sample: every percentile is that sample.
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn latency_of_empty_sample_set_is_zeroed() {
        let l = LatencyStats::from_samples(&[]);
        assert_eq!(l.count, 0);
        assert_eq!(l.p99_ms, 0.0);
    }

    #[test]
    fn latency_is_order_insensitive() {
        let a = LatencyStats::from_samples(&[3.0, 1.0, 2.0]);
        let b = LatencyStats::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a.p50_ms, b.p50_ms);
        assert_eq!(a.p50_ms, 2.0);
    }
}
