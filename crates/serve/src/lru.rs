//! A small, deterministic least-recently-used map.
//!
//! Backs both the prepared-matrix registry and the plan cache. Recency is a
//! monotone logical tick bumped on every insert and hit — no wall-clock
//! involvement, so eviction order is a pure function of the access
//! sequence (which keeps the serving example's end state reproducible).

use std::collections::HashMap;
use std::hash::Hash;

/// Bounded map evicting the least-recently-used entry on overflow.
#[derive(Debug)]
pub struct LruMap<K, V> {
    map: HashMap<K, (V, u64)>,
    capacity: usize,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// An empty map holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruMap {
            map: HashMap::new(),
            capacity,
            tick: 0,
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `k`, marking it most recently used on a hit.
    pub fn get(&mut self, k: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(k) {
            Some((v, last)) => {
                *last = tick;
                Some(v)
            }
            None => None,
        }
    }

    /// Looks up `k` without touching recency (for stats/tests).
    pub fn peek(&self, k: &K) -> Option<&V> {
        self.map.get(k).map(|(v, _)| v)
    }

    /// Inserts `k → v` as most recently used. If this pushes the map over
    /// capacity, the least-recently-used *other* entry is evicted and
    /// returned.
    pub fn insert(&mut self, k: K, v: V) -> Option<(K, V)> {
        self.tick += 1;
        self.map.insert(k.clone(), (v, self.tick));
        if self.map.len() <= self.capacity {
            return None;
        }
        // Evict the stalest entry; the just-inserted key carries the newest
        // tick so it can never be the victim (capacity >= 1).
        let victim = self
            .map
            .iter()
            .min_by_key(|(_, (_, t))| *t)
            .map(|(key, _)| key.clone())
            .expect("over-capacity map is non-empty");
        self.map.remove(&victim).map(|(value, _)| (victim, value))
    }

    /// Removes `k`, returning its value.
    pub fn remove(&mut self, k: &K) -> Option<V> {
        self.map.remove(k).map(|(v, _)| v)
    }

    /// Iterates over entries in unspecified order (no recency update).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(k, (v, _))| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_in_insert_order() {
        let mut m = LruMap::new(2);
        assert!(m.insert("a", 1).is_none());
        assert!(m.insert("b", 2).is_none());
        let evicted = m.insert("c", 3);
        assert_eq!(evicted, Some(("a", 1)));
        assert_eq!(m.len(), 2);
        assert!(m.peek(&"b").is_some() && m.peek(&"c").is_some());
    }

    #[test]
    fn get_refreshes_recency() {
        let mut m = LruMap::new(2);
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get(&"a"), Some(&1)); // a is now fresher than b
        let evicted = m.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
    }

    #[test]
    fn peek_does_not_refresh() {
        let mut m = LruMap::new(2);
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.peek(&"a"), Some(&1)); // no recency bump
        assert_eq!(m.insert("c", 3), Some(("a", 1)));
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut m = LruMap::new(2);
        m.insert("a", 1);
        m.insert("b", 2);
        assert!(m.insert("a", 10).is_none());
        assert_eq!(m.peek(&"a"), Some(&10));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn capacity_one_keeps_newest() {
        let mut m = LruMap::new(1);
        m.insert(1, "x");
        assert_eq!(m.insert(2, "y"), Some((1, "x")));
        assert_eq!(m.peek(&2), Some(&"y"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: LruMap<u32, u32> = LruMap::new(0);
    }
}
