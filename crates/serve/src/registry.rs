//! The prepared-matrix registry: a concurrent, size-bounded LRU of [`Smat`]
//! handles keyed by matrix fingerprint + configuration digest.
//!
//! Preprocessing (reordering + BCSR conversion) is the expensive one-time
//! `T_init` of the paper's cost model; the registry computes it once per
//! distinct (matrix, config) and shares the [`Arc`]-backed handle across
//! every request that names the same matrix. Get-or-prepare is
//! duplicate-free under contention: racing callers agree on one slot and
//! exactly one runs the prepare closure while the rest block on it.
//!
//! [`PreparedMatrixRegistry::warm_prepare`] moves the preparation onto a
//! background thread entirely: the key becomes *resident-but-preparing*
//! immediately, and callers that need the handle either observe the typed
//! [`AdmissionState::Preparing`] and park a completion closure
//! ([`PreparedMatrixRegistry::get_or_park`]) or block until ready
//! ([`PreparedMatrixRegistry::wait_ready`]). Parking is race-free through
//! the publish-then-drain protocol of [`ParkSlot`] (see
//! [`crate::parkslot`]); that protocol is verified under exhaustive
//! interleaving by the model tests in `tests/model_check.rs`.
//!
//! Every lock here is a checked `smat-sanitize` primitive, so lock-order
//! analysis covers the registry when enabled. The registry lock
//! (`registry.entries`) is a leaf: it is never held across a prepare, a
//! waiter drain, or any slot lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::Serialize;
use smat::{Smat, SmatConfig};
use smat_formats::{Element, Fnv1a, MatrixFingerprint};
use smat_sanitize::sync::Mutex;

use crate::lru::LruMap;
use crate::parkslot::ParkSlot;

/// Registry key: content fingerprint of the matrix plus a digest of the
/// preparation configuration (different block shapes or reorderings must
/// not share a prepared handle).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub struct MatrixKey {
    /// Content identity of the input matrix.
    pub fingerprint: MatrixFingerprint,
    /// Digest of the [`SmatConfig`] used to prepare it.
    pub config_digest: u64,
}

impl MatrixKey {
    /// Key for `fingerprint` prepared under `config`.
    pub fn new(fingerprint: MatrixFingerprint, config: &SmatConfig) -> Self {
        MatrixKey {
            fingerprint,
            config_digest: config_digest(config),
        }
    }
}

/// Deterministic 64-bit digest of a preparation configuration.
///
/// Hashes the `Debug` rendering, which spells out every field (block shape,
/// reorder algorithm + parameters, opt flags, accumulation, schedule,
/// device constants, preflight mode) as plain numbers and enum names — no
/// addresses, no map iteration order — so the digest is stable across runs.
pub fn config_digest(config: &SmatConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write(format!("{config:?}").as_bytes());
    h.finish()
}

/// Readiness of a registry key, as seen by admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum AdmissionState {
    /// The prepared handle is available now.
    Ready,
    /// The key is resident but its preparation (warm or foreground) has not
    /// finished; requests should park rather than re-prepare or block.
    Preparing,
    /// The key is unknown to the registry.
    Absent,
}

/// Outcome of [`PreparedMatrixRegistry::get_or_park`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParkResult {
    /// The handle was ready; the waiter ran inline on the calling thread
    /// before this returned.
    Ready,
    /// Preparation is in flight; the waiter will run with the handle when
    /// it completes (possibly on the preparing thread).
    Parked,
    /// The key is unknown; the waiter was dropped unused.
    Absent,
}

/// Counter snapshot of registry activity.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RegistryStats {
    /// Lookups that found the key resident.
    pub hits: u64,
    /// Lookups that did not (each get-or-prepare miss admits a new entry).
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Prepare closures actually executed (≤ misses under contention).
    pub prepares: u64,
    /// Background preparations launched by `warm_prepare`.
    pub warm_prepares: u64,
    /// Waiters parked on an in-flight preparation.
    pub parked: u64,
    /// Background compactions that published a fresh handle (a
    /// `compact_prepare` whose prepare succeeded *and* found its tenant
    /// still resident at publish time).
    pub compactions: u64,
    /// Resident entries right now.
    pub entries: usize,
    /// Configured bound.
    pub capacity: usize,
}

impl RegistryStats {
    /// `hits / (hits + misses)`, 1.0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One registry slot: a publish-then-drain cell for the prepared handle.
type Slot<T> = Arc<ParkSlot<Smat<T>>>;

/// Concurrent, size-bounded LRU of prepared matrices.
pub struct PreparedMatrixRegistry<T> {
    /// `Arc` so compaction threads can publish into the map without owning
    /// the registry (which would deadlock the joining `Drop`).
    entries: Arc<Mutex<LruMap<MatrixKey, Slot<T>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Shared with warm-prepare threads (which must not own the registry,
    /// or joining them in `Drop` could deadlock).
    prepares: Arc<AtomicU64>,
    warm_prepares: AtomicU64,
    parked: AtomicU64,
    /// Fresh handles published by background compactions.
    compactions: Arc<AtomicU64>,
    /// Keys with a compaction in flight — the single-flight guard of
    /// [`PreparedMatrixRegistry::compact_prepare`].
    compacting: Arc<Mutex<Vec<MatrixKey>>>,
    warm_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    compact_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Fulfills the slot (running `prepare` only if this caller wins the
/// producer race) and drains parked waiters. A *completed* prepare is
/// counted before the handle is published, so any caller woken by the
/// publication already observes it in the stats; a panicked prepare is
/// never counted.
fn fulfill<T: Element>(
    slot: &ParkSlot<Smat<T>>,
    prepares: &AtomicU64,
    prepare: impl FnOnce() -> Smat<T>,
) {
    slot.fulfill(|| {
        let smat = prepare();
        prepares.fetch_add(1, Ordering::Relaxed);
        smat
    });
}

impl<T: Element> PreparedMatrixRegistry<T> {
    /// An empty registry bounded to `capacity` prepared matrices.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        PreparedMatrixRegistry {
            entries: Arc::new(Mutex::labeled("registry.entries", LruMap::new(capacity))),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            prepares: Arc::new(AtomicU64::new(0)),
            warm_prepares: AtomicU64::new(0),
            parked: AtomicU64::new(0),
            compactions: Arc::new(AtomicU64::new(0)),
            compacting: Arc::new(Mutex::labeled("registry.compacting", Vec::new())),
            warm_threads: Mutex::labeled("registry.warm_threads", Vec::new()),
            compact_threads: Mutex::labeled("registry.compact_threads", Vec::new()),
        }
    }

    /// Looks up or inserts the slot for `key`, under the registry lock.
    fn slot_of(&self, key: MatrixKey) -> (Slot<T>, bool) {
        // POLICY (poisoning): recover. The LRU map is only mutated through
        // panic-free operations (lookups, insertions of already-built
        // values); a poisoning panic can only have come from a *caller*
        // unwinding through a counter update, never mid-mutation.
        let mut entries = self.entries.lock_or_recover();
        if let Some(slot) = entries.get(&key) {
            (Arc::clone(slot), true)
        } else {
            let slot: Slot<T> = Arc::new(ParkSlot::new());
            if entries.insert(key, Arc::clone(&slot)).is_some() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            (slot, false)
        }
    }

    /// Returns the prepared handle for `key`, running `prepare` only if the
    /// key is absent. Under contention exactly one caller executes
    /// `prepare`; the others block until the handle is ready and share it.
    ///
    /// The boolean is `true` on a hit (the key was already resident —
    /// including "resident but still being prepared by another caller or a
    /// warm-prepare thread"). The prepare itself runs outside the registry
    /// lock, so a slow prepare never blocks lookups of other keys.
    ///
    /// If `prepare` panics the panic propagates, but the slot stays
    /// admissible: the key remains [`AdmissionState::Preparing`] and the
    /// next `get_or_prepare` (or warm fulfiller) retries the preparation
    /// and serves any waiters parked in the meantime.
    pub fn get_or_prepare(
        &self,
        key: MatrixKey,
        prepare: impl FnOnce() -> Smat<T>,
    ) -> (Smat<T>, bool) {
        let (slot, hit) = self.slot_of(key);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        fulfill(&slot, &self.prepares, prepare);
        (slot.get().expect("fulfilled above"), hit)
    }

    /// Starts preparing `key` on a background thread and returns
    /// immediately. The key becomes resident at once (in the
    /// [`AdmissionState::Preparing`] state), so later `get_or_prepare` /
    /// `get_or_park` calls attach to the in-flight preparation instead of
    /// duplicating it.
    ///
    /// Returns `false` without spawning if the key is already resident
    /// (ready or preparing). Background threads are joined when the
    /// registry drops.
    pub fn warm_prepare(
        &self,
        key: MatrixKey,
        prepare: impl FnOnce() -> Smat<T> + Send + 'static,
    ) -> bool {
        let (slot, existed) = self.slot_of(key);
        if existed {
            return false;
        }
        self.warm_prepares.fetch_add(1, Ordering::Relaxed);
        let prepares = Arc::clone(&self.prepares);
        let handle = std::thread::spawn(move || fulfill(&slot, &prepares, prepare));
        // POLICY (poisoning): recover. The handle list is push/drain only;
        // a panic cannot leave it torn.
        self.warm_threads.lock_or_recover().push(handle);
        true
    }

    /// Readiness of `key` without preparing, bumping LRU recency, or
    /// touching the hit/miss counters.
    pub fn admission_state(&self, key: &MatrixKey) -> AdmissionState {
        // POLICY (poisoning): recover (see `slot_of`).
        let entries = self.entries.lock_or_recover();
        match entries.peek(key) {
            None => AdmissionState::Absent,
            Some(slot) if slot.is_ready() => AdmissionState::Ready,
            Some(_) => AdmissionState::Preparing,
        }
    }

    /// Non-blocking admission: runs `waiter` with the handle — inline if
    /// the key is ready, or when the in-flight preparation completes
    /// (possibly on the preparing thread) if it is still preparing. If the
    /// key is absent the waiter is dropped unused. The caller never blocks
    /// on a preparation.
    pub fn get_or_park(
        &self,
        key: &MatrixKey,
        waiter: impl FnOnce(Smat<T>) + Send + 'static,
    ) -> ParkResult {
        let slot = {
            // POLICY (poisoning): recover (see `slot_of`).
            let mut entries = self.entries.lock_or_recover();
            entries.get(key).map(Arc::clone)
        };
        let Some(slot) = slot else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return ParkResult::Absent;
        };
        // Race-free by the slot's publish-then-drain protocol: the waiter
        // either runs inline or is guaranteed to be drained — never lost.
        if slot.park(Box::new(waiter)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            ParkResult::Ready
        } else {
            self.parked.fetch_add(1, Ordering::Relaxed);
            ParkResult::Parked
        }
    }

    /// Blocks until `key` is ready and returns its handle, or `None` if the
    /// key is not resident. Intended for warm-up barriers (tests, CLI
    /// `--warm-prepare`) — serving paths should use
    /// [`PreparedMatrixRegistry::get_or_park`] instead.
    pub fn wait_ready(&self, key: &MatrixKey) -> Option<Smat<T>> {
        let (tx, rx) = crate::oneshot::channel();
        match self.get_or_park(key, move |smat| tx.send(smat)) {
            ParkResult::Absent => None,
            ParkResult::Ready | ParkResult::Parked => rx.wait(),
        }
    }

    /// Looks up `key` without preparing. A `Some` result counts as a hit, a
    /// `None` as a miss. Returns `None` also while the entry is still being
    /// prepared by a concurrent `get_or_prepare` or a warm-prepare thread
    /// (use [`PreparedMatrixRegistry::get_or_park`] to attach to one).
    pub fn get(&self, key: &MatrixKey) -> Option<Smat<T>> {
        let slot = {
            // POLICY (poisoning): recover (see `slot_of`).
            let mut entries = self.entries.lock_or_recover();
            entries.get(key).map(Arc::clone)
        };
        match slot.as_ref().and_then(|s| s.get()) {
            Some(smat) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(smat)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks up `key` without preparing, bumping LRU recency, or touching
    /// the hit/miss counters — the lookup the mutation path uses, where a
    /// retry loop re-reading the current handle must not distort cache
    /// statistics or recency. Returns `None` while the entry is still
    /// preparing.
    pub fn peek(&self, key: &MatrixKey) -> Option<Smat<T>> {
        // POLICY (poisoning): recover (see `slot_of`).
        self.entries
            .lock_or_recover()
            .peek(key)
            .and_then(|s| s.get())
    }

    /// Re-prepares `key` on a background thread from its *current* handle
    /// (base ⊕ overlay) and atomically swaps the fresh handle in — the
    /// compaction path of dynamic matrices. Returns `false` without
    /// spawning if the key is not resident-and-ready or a compaction for it
    /// is already in flight (single-flight per key).
    ///
    /// Protocol guarantees, verified by `tests/model_check.rs` and the
    /// chaos suite:
    ///
    /// * **Serving never blocks**: the old handle keeps serving until the
    ///   swap; in-flight requests pinned to it finish on the overlay epoch
    ///   they admitted under.
    /// * **No lost update**: after publishing, the compactor reads the old
    ///   handle's *final* overlay snapshot and rebases it onto the fresh
    ///   handle ([`Smat::rebase_overlay`], insert-if-absent — an override
    ///   a racing mutator already retried onto the fresh handle is strictly
    ///   newer and wins). A mutation that raced the swap either landed in
    ///   that final snapshot or was retried by its mutator's own
    ///   current-handle check; it cannot vanish.
    /// * **No resurrection**: the fresh handle is published only if the
    ///   tenant is still resident *with the same handle* at publish time —
    ///   an eviction or re-registration mid-compaction discards the fresh
    ///   handle instead of resurrecting a forgotten tenant.
    /// * **Eviction-safe**: the compactor owns a clone of the old handle,
    ///   so LRU eviction mid-compaction can never free the matrix under
    ///   the running `prepare` (the shard-handle pinning rule).
    /// * **Fault-isolated**: a panicking `prepare` leaves the old handle
    ///   serving, clears the single-flight guard, and counts nothing.
    pub fn compact_prepare(
        &self,
        key: MatrixKey,
        prepare: impl FnOnce(&Smat<T>) -> Smat<T> + Send + 'static,
    ) -> bool {
        let Some(old) = self.peek(&key) else {
            return false;
        };
        {
            // POLICY (poisoning): recover. Push/retain-only key list.
            let mut compacting = self.compacting.lock_or_recover();
            if compacting.contains(&key) {
                return false;
            }
            compacting.push(key);
        }
        let entries = Arc::clone(&self.entries);
        let compacting = Arc::clone(&self.compacting);
        let compactions = Arc::clone(&self.compactions);
        let handle = std::thread::Builder::new()
            .name("smat-serve-compact".into())
            .spawn(move || {
                /// Clears the single-flight guard on every exit path,
                /// panicking `prepare` included.
                struct Unflag(Arc<Mutex<Vec<MatrixKey>>>, MatrixKey);
                impl Drop for Unflag {
                    fn drop(&mut self) {
                        self.0.lock_or_recover().retain(|k| *k != self.1);
                    }
                }
                let _unflag = Unflag(compacting, key);
                let fresh = prepare(&old);
                let published = {
                    // POLICY (poisoning): recover (see `slot_of`).
                    let mut map = entries.lock_or_recover();
                    match map.peek(&key).and_then(|s| s.get()) {
                        Some(current) if current.ptr_eq(&old) => {
                            let slot: Slot<T> = Arc::new(ParkSlot::new());
                            let publish = fresh.clone();
                            slot.fulfill(move || publish);
                            // Same-key insert replaces the slot without an
                            // LRU eviction; parked waiters on the old slot
                            // still drain with the old handle — correct,
                            // they admitted under its epoch.
                            map.insert(key, slot);
                            true
                        }
                        _ => false,
                    }
                };
                if published {
                    // Read the old handle's overlay only *after* the swap
                    // is visible: any mutation ordered before a mutator's
                    // current-handle re-check is in this snapshot, and any
                    // ordered after was retried onto `fresh` directly.
                    let last = old.overlay_snapshot();
                    fresh.rebase_overlay(last.cells(), last.epoch());
                    compactions.fetch_add(1, Ordering::Relaxed);
                }
            })
            .expect("spawn compaction thread");
        // POLICY (poisoning): recover. Push/drain only.
        self.compact_threads.lock_or_recover().push(handle);
        true
    }

    /// Blocks until every in-flight background compaction has finished
    /// (published or abandoned). The replay driver calls this at window
    /// boundaries so compaction timing never leaks into batch composition.
    /// A compaction that panicked is joined here too; its panic is
    /// discarded (the old handle simply kept serving).
    pub fn wait_compactions(&self) {
        let handles = std::mem::take(&mut *self.compact_threads.lock_or_recover());
        for h in handles {
            let _ = h.join();
        }
    }

    /// Evicts `key` explicitly. In-flight requests holding the handle keep
    /// it alive; the registry just forgets it. An in-flight warm prepare of
    /// the key still completes and serves its parked waiters (they hold the
    /// slot, not the registry entry).
    pub fn invalidate(&self, key: &MatrixKey) -> bool {
        // POLICY (poisoning): recover (see `slot_of`).
        let removed = self.entries.lock_or_recover().remove(key).is_some();
        if removed {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.lock_or_recover().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RegistryStats {
        let entries = self.entries.lock_or_recover();
        RegistryStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            prepares: self.prepares.load(Ordering::Relaxed),
            warm_prepares: self.warm_prepares.load(Ordering::Relaxed),
            parked: self.parked.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            entries: entries.len(),
            capacity: entries.capacity(),
        }
    }
}

impl<T> Drop for PreparedMatrixRegistry<T> {
    fn drop(&mut self) {
        // A warm thread whose prepare panicked is joined here too; its
        // panic was already delivered (the join error is discarded) and the
        // slot it abandoned was left re-fulfillable.
        for h in self.warm_threads.get_mut().drain(..) {
            let _ = h.join();
        }
        for h in self.compact_threads.get_mut().drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::{Coo, Csr, F16};

    fn matrix(shift: usize) -> Csr<F16> {
        let mut coo = Coo::new(64, 64);
        for i in 0..64 {
            coo.push(i, (i * 5 + shift) % 64, F16::from_f64(1.0));
        }
        coo.to_csr()
    }

    fn key_of(a: &Csr<F16>, cfg: &SmatConfig) -> MatrixKey {
        MatrixKey::new(MatrixFingerprint::of_csr(a), cfg)
    }

    #[test]
    fn prepare_runs_once_and_is_shared() {
        let cfg = SmatConfig::default();
        let a = matrix(0);
        let key = key_of(&a, &cfg);
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(4);
        let (first, hit1) = reg.get_or_prepare(key, || Smat::prepare(&a, cfg.clone()));
        assert!(!hit1);
        let (second, hit2) = reg.get_or_prepare(key, || panic!("must not re-prepare"));
        assert!(hit2);
        assert!(std::ptr::eq(first.bcsr(), second.bcsr()), "shared handle");
        let s = reg.stats();
        assert_eq!((s.hits, s.misses, s.prepares), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_configs_get_distinct_entries() {
        let a = matrix(0);
        let cfg16 = SmatConfig::default();
        let cfg8 = SmatConfig {
            block_w: 8,
            ..SmatConfig::default()
        };
        assert_ne!(key_of(&a, &cfg16), key_of(&a, &cfg8));
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(4);
        reg.get_or_prepare(key_of(&a, &cfg16), || Smat::prepare(&a, cfg16.clone()));
        reg.get_or_prepare(key_of(&a, &cfg8), || Smat::prepare(&a, cfg8.clone()));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.stats().prepares, 2);
    }

    #[test]
    fn lru_bound_evicts_stalest_matrix() {
        let cfg = SmatConfig::default();
        let (a0, a1, a2) = (matrix(0), matrix(1), matrix(2));
        let (k0, k1, k2) = (key_of(&a0, &cfg), key_of(&a1, &cfg), key_of(&a2, &cfg));
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(2);
        reg.get_or_prepare(k0, || Smat::prepare(&a0, cfg.clone()));
        reg.get_or_prepare(k1, || Smat::prepare(&a1, cfg.clone()));
        // Touch k0 so k1 is the LRU victim.
        assert!(reg.get(&k0).is_some());
        reg.get_or_prepare(k2, || Smat::prepare(&a2, cfg.clone()));
        assert_eq!(reg.stats().evictions, 1);
        assert!(reg.get(&k0).is_some(), "recently used entry survives");
        assert!(reg.get(&k1).is_none(), "stalest entry was evicted");
        assert!(reg.get(&k2).is_some());
    }

    #[test]
    fn invalidate_forgets_but_inflight_handles_survive() {
        let cfg = SmatConfig::default();
        let a = matrix(0);
        let key = key_of(&a, &cfg);
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(2);
        let (handle, _) = reg.get_or_prepare(key, || Smat::prepare(&a, cfg.clone()));
        assert!(reg.invalidate(&key));
        assert!(!reg.invalidate(&key), "second invalidate is a no-op");
        assert!(reg.get(&key).is_none());
        // The evicted handle still works.
        let b = smat_formats::Dense::from_fn(64, 8, |i, j| F16::from_f64(((i + j) % 3) as f64));
        assert_eq!(handle.spmm(&b).c, a.spmm_reference(&b));
    }

    #[test]
    fn config_digest_is_sensitive_to_fields() {
        let base = SmatConfig::default();
        assert_eq!(config_digest(&base), config_digest(&SmatConfig::default()));
        let other = SmatConfig {
            block_h: 8,
            block_w: 8,
            ..SmatConfig::default()
        };
        assert_ne!(config_digest(&base), config_digest(&other));
    }

    #[test]
    fn warm_prepare_transitions_absent_preparing_ready() {
        let cfg = SmatConfig::default();
        let a = matrix(0);
        let key = key_of(&a, &cfg);
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(4);
        assert_eq!(reg.admission_state(&key), AdmissionState::Absent);

        // Hold the prepare in a barrier so the Preparing state is
        // observable deterministically.
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&gate);
        let a2 = a.clone();
        let cfg2 = cfg.clone();
        assert!(reg.warm_prepare(key, move || {
            g.wait();
            Smat::prepare(&a2, cfg2)
        }));
        assert_eq!(reg.admission_state(&key), AdmissionState::Preparing);
        assert!(
            !reg.warm_prepare(key, || panic!("duplicate warm prepare")),
            "second warm_prepare must be a no-op"
        );
        gate.wait();
        let handle = reg.wait_ready(&key).expect("resident");
        assert_eq!(reg.admission_state(&key), AdmissionState::Ready);
        let s = reg.stats();
        assert_eq!((s.warm_prepares, s.prepares), (1, 1));
        let b = smat_formats::Dense::from_fn(64, 8, |i, j| F16::from_f64(((i + j) % 3) as f64));
        assert_eq!(handle.spmm(&b).c, a.spmm_reference(&b));
    }

    #[test]
    fn parked_waiters_receive_the_shared_handle() {
        let cfg = SmatConfig::default();
        let a = matrix(1);
        let key = key_of(&a, &cfg);
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(4);
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&gate);
        let (a2, cfg2) = (a.clone(), cfg.clone());
        reg.warm_prepare(key, move || {
            g.wait();
            Smat::prepare(&a2, cfg2)
        });

        // Park two waiters mid-prepare; both must observe the same Arc.
        let seen: Arc<Mutex<Vec<Smat<F16>>>> = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..2 {
            let sink = Arc::clone(&seen);
            let r = reg.get_or_park(&key, move |smat| sink.lock().unwrap().push(smat));
            assert!(matches!(r, ParkResult::Parked));
        }
        assert_eq!(reg.stats().parked, 2);
        gate.wait();
        let direct = reg.wait_ready(&key).unwrap();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2);
        for s in seen.iter() {
            assert!(
                std::ptr::eq(s.bcsr(), direct.bcsr()),
                "waiters share one prepared handle"
            );
        }
        // After readiness, get_or_park runs the waiter inline.
        let ran = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        assert_eq!(
            reg.get_or_park(&key, move |_| r2.store(true, Ordering::SeqCst)),
            ParkResult::Ready
        );
        assert!(ran.load(Ordering::SeqCst), "waiter must run inline");
    }

    #[test]
    fn get_or_prepare_attaches_to_inflight_warm_prepare() {
        let cfg = SmatConfig::default();
        let a = matrix(2);
        let key = key_of(&a, &cfg);
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(4);
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&gate);
        let (a2, cfg2) = (a.clone(), cfg.clone());
        reg.warm_prepare(key, move || {
            g.wait();
            Smat::prepare(&a2, cfg2)
        });
        gate.wait();
        // This may race the warm thread's fulfillment, but must never run
        // its own closure.
        let (handle, hit) = reg.get_or_prepare(key, || panic!("duplicate prepare"));
        assert!(hit, "warm-prepared key counts as resident");
        assert_eq!(reg.stats().prepares, 1);
        let b = smat_formats::Dense::from_fn(64, 8, |i, j| F16::from_f64(((i + j) % 3) as f64));
        assert_eq!(handle.spmm(&b).c, a.spmm_reference(&b));
    }

    #[test]
    fn panicked_prepare_leaves_the_key_admissible() {
        let cfg = SmatConfig::default();
        let a = matrix(3);
        let key = key_of(&a, &cfg);
        let reg: Arc<PreparedMatrixRegistry<F16>> = Arc::new(PreparedMatrixRegistry::new(4));
        let r2 = Arc::clone(&reg);
        let res = std::thread::spawn(move || {
            r2.get_or_prepare(key, || panic!("prepare blew up"));
        })
        .join();
        assert!(res.is_err(), "the prepare panic must propagate");
        // The key is resident-but-preparing, not wedged or corrupt: waiters
        // can still park on it, and nothing was published.
        assert_eq!(reg.admission_state(&key), AdmissionState::Preparing);
        let seen: Arc<Mutex<Vec<Smat<F16>>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        assert_eq!(
            reg.get_or_park(&key, move |s| sink.lock_or_recover().push(s)),
            ParkResult::Parked
        );
        // The retry prepares, publishes, and drains the surviving waiter.
        let (handle, hit) = reg.get_or_prepare(key, || Smat::prepare(&a, cfg.clone()));
        assert!(hit, "the slot survived the panic");
        assert_eq!(reg.admission_state(&key), AdmissionState::Ready);
        assert_eq!(
            reg.stats().prepares,
            1,
            "only the successful prepare counts"
        );
        let seen = seen.lock_or_recover();
        assert_eq!(seen.len(), 1);
        assert!(std::ptr::eq(seen[0].bcsr(), handle.bcsr()));
    }

    #[test]
    fn panicked_warm_prepare_is_recovered_by_the_next_caller() {
        let cfg = SmatConfig::default();
        let a = matrix(4);
        let key = key_of(&a, &cfg);
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(4);
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&gate);
        assert!(reg.warm_prepare(key, move || {
            g.wait();
            panic!("warm prepare blew up");
        }));
        gate.wait();
        // Possibly racing the warm thread's unwind: if its producer flag is
        // still set we wait for the unwind guard's reset, then retry.
        let (handle, hit) = reg.get_or_prepare(key, || Smat::prepare(&a, cfg.clone()));
        assert!(hit);
        assert_eq!(reg.admission_state(&key), AdmissionState::Ready);
        let s = reg.stats();
        assert_eq!(
            (s.warm_prepares, s.prepares),
            (1, 1),
            "the panicked warm prepare is not counted as executed"
        );
        let b = smat_formats::Dense::from_fn(64, 8, |i, j| F16::from_f64(((i + j) % 3) as f64));
        assert_eq!(handle.spmm(&b).c, a.spmm_reference(&b));
        // Drop joins the panicked warm thread, discarding its panic.
    }

    #[test]
    fn compact_prepare_swaps_the_handle_and_counts() {
        let cfg = SmatConfig::default();
        let a = matrix(0);
        let key = key_of(&a, &cfg);
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(4);
        let (old, _) = reg.get_or_prepare(key, || Smat::prepare(&a, cfg.clone()));
        // Mutate, then compact: the fresh handle must serve base ⊕ overlay
        // with an empty (folded-in) overlay.
        old.apply_updates(&[smat::MatrixUpdate::Update {
            row: 0,
            col: 1,
            value: F16::from_f64(7.0),
        }]);
        let merged = old.merged_csr();
        assert!(reg.compact_prepare(key, |h| {
            Smat::prepare(&h.merged_csr(), h.config().clone())
        }));
        reg.wait_compactions();
        let fresh = reg.get(&key).expect("tenant still resident");
        assert!(!fresh.ptr_eq(&old), "the handle was swapped");
        assert_eq!(
            fresh.overlay_snapshot().correction_terms(),
            0,
            "the override is folded into the fresh base"
        );
        assert_eq!(
            fresh.overlay_epoch(),
            old.overlay_epoch(),
            "the rebase carries the epoch forward"
        );
        let b = smat_formats::Dense::from_fn(64, 8, |i, j| F16::from_f64(((i + j) % 3) as f64));
        assert_eq!(fresh.spmm(&b).c, merged.spmm_reference(&b));
        let s = reg.stats();
        assert_eq!(s.compactions, 1);
        assert_eq!(s.evictions, 0, "a swap is not an eviction");
    }

    #[test]
    fn compact_prepare_is_single_flight_and_needs_residency() {
        let cfg = SmatConfig::default();
        let a = matrix(1);
        let key = key_of(&a, &cfg);
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(4);
        assert!(
            !reg.compact_prepare(key, |_| panic!("nothing to compact")),
            "absent tenants cannot compact"
        );
        reg.get_or_prepare(key, || Smat::prepare(&a, cfg.clone()));
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&gate);
        assert!(reg.compact_prepare(key, move |h| {
            g.wait();
            Smat::prepare(&h.merged_csr(), h.config().clone())
        }));
        assert!(
            !reg.compact_prepare(key, |_| panic!("duplicate compaction")),
            "second compaction of the same key must be refused"
        );
        gate.wait();
        reg.wait_compactions();
        assert_eq!(reg.stats().compactions, 1);
        // The guard cleared: a new compaction is admissible again.
        assert!(reg.compact_prepare(key, |h| Smat::prepare(&h.merged_csr(), h.config().clone())));
        reg.wait_compactions();
        assert_eq!(reg.stats().compactions, 2);
    }

    #[test]
    fn eviction_during_compaction_pins_the_handle_and_skips_publish() {
        // Satellite regression: evicting a tenant mid-compaction must
        // neither free the handle under the compactor nor resurrect the
        // tenant when the compactor finishes.
        let cfg = SmatConfig::default();
        let a = matrix(2);
        let key = key_of(&a, &cfg);
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(4);
        let (old, _) = reg.get_or_prepare(key, || Smat::prepare(&a, cfg.clone()));
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&gate);
        assert!(reg.compact_prepare(key, move |h| {
            g.wait(); // hold the prepare until the eviction lands
                      // The pinned handle is fully usable mid-eviction.
            Smat::prepare(&h.merged_csr(), h.config().clone())
        }));
        assert!(reg.invalidate(&key), "tenant evicted mid-compaction");
        gate.wait();
        reg.wait_compactions();
        assert!(
            reg.get(&key).is_none(),
            "a finished compaction must not resurrect an evicted tenant"
        );
        assert_eq!(
            reg.stats().compactions,
            0,
            "abandoned publishes don't count"
        );
        // The old handle survived the whole episode (the compactor's pin).
        let b = smat_formats::Dense::from_fn(64, 8, |i, j| F16::from_f64(((i + j) % 3) as f64));
        assert_eq!(old.spmm(&b).c, a.spmm_reference(&b));
    }

    #[test]
    fn panicked_compaction_leaves_the_old_handle_serving() {
        let cfg = SmatConfig::default();
        let a = matrix(3);
        let key = key_of(&a, &cfg);
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(4);
        let (old, _) = reg.get_or_prepare(key, || Smat::prepare(&a, cfg.clone()));
        assert!(reg.compact_prepare(key, |_| panic!("compaction blew up")));
        reg.wait_compactions();
        let current = reg.get(&key).expect("tenant still resident");
        assert!(current.ptr_eq(&old), "the old handle still serves");
        assert_eq!(reg.stats().compactions, 0);
        // The single-flight guard was cleared by the unwind: retry works.
        assert!(reg.compact_prepare(key, |h| Smat::prepare(&h.merged_csr(), h.config().clone())));
        reg.wait_compactions();
        assert_eq!(reg.stats().compactions, 1);
    }

    #[test]
    fn peek_is_counter_and_recency_neutral() {
        let cfg = SmatConfig::default();
        let a = matrix(4);
        let key = key_of(&a, &cfg);
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(4);
        assert!(reg.peek(&key).is_none());
        reg.get_or_prepare(key, || Smat::prepare(&a, cfg.clone()));
        let before = reg.stats();
        assert!(reg.peek(&key).is_some());
        let after = reg.stats();
        assert_eq!((before.hits, before.misses), (after.hits, after.misses));
    }

    #[test]
    fn wait_ready_on_absent_key_is_none() {
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(2);
        let key = key_of(&matrix(0), &SmatConfig::default());
        assert!(reg.wait_ready(&key).is_none());
        assert_eq!(
            reg.get_or_park(&key, |_| panic!("no slot to park on")),
            ParkResult::Absent
        );
    }
}
