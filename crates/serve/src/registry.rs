//! The prepared-matrix registry: a concurrent, size-bounded LRU of [`Smat`]
//! handles keyed by matrix fingerprint + configuration digest.
//!
//! Preprocessing (reordering + BCSR conversion) is the expensive one-time
//! `T_init` of the paper's cost model; the registry computes it once per
//! distinct (matrix, config) and shares the [`Arc`]-backed handle across
//! every request that names the same matrix. Get-or-prepare is
//! duplicate-free under contention: racing callers agree on one
//! [`OnceLock`] slot and exactly one runs the prepare closure while the
//! rest block on it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::Serialize;
use smat::{Smat, SmatConfig};
use smat_formats::{Element, Fnv1a, MatrixFingerprint};

use crate::lru::LruMap;

/// Registry key: content fingerprint of the matrix plus a digest of the
/// preparation configuration (different block shapes or reorderings must
/// not share a prepared handle).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub struct MatrixKey {
    /// Content identity of the input matrix.
    pub fingerprint: MatrixFingerprint,
    /// Digest of the [`SmatConfig`] used to prepare it.
    pub config_digest: u64,
}

impl MatrixKey {
    /// Key for `fingerprint` prepared under `config`.
    pub fn new(fingerprint: MatrixFingerprint, config: &SmatConfig) -> Self {
        MatrixKey {
            fingerprint,
            config_digest: config_digest(config),
        }
    }
}

/// Deterministic 64-bit digest of a preparation configuration.
///
/// Hashes the `Debug` rendering, which spells out every field (block shape,
/// reorder algorithm + parameters, opt flags, accumulation, schedule,
/// device constants, preflight mode) as plain numbers and enum names — no
/// addresses, no map iteration order — so the digest is stable across runs.
pub fn config_digest(config: &SmatConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write(format!("{config:?}").as_bytes());
    h.finish()
}

/// Counter snapshot of registry activity.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RegistryStats {
    /// Lookups that found the key resident.
    pub hits: u64,
    /// Lookups that did not (each get-or-prepare miss admits a new entry).
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Prepare closures actually executed (≤ misses under contention).
    pub prepares: u64,
    /// Resident entries right now.
    pub entries: usize,
    /// Configured bound.
    pub capacity: usize,
}

impl RegistryStats {
    /// `hits / (hits + misses)`, 1.0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type Slot<T> = Arc<OnceLock<Smat<T>>>;

/// Concurrent, size-bounded LRU of prepared matrices.
pub struct PreparedMatrixRegistry<T> {
    entries: Mutex<LruMap<MatrixKey, Slot<T>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    prepares: AtomicU64,
}

impl<T: Element> PreparedMatrixRegistry<T> {
    /// An empty registry bounded to `capacity` prepared matrices.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        PreparedMatrixRegistry {
            entries: Mutex::new(LruMap::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            prepares: AtomicU64::new(0),
        }
    }

    /// Returns the prepared handle for `key`, running `prepare` only if the
    /// key is absent. Under contention exactly one caller executes
    /// `prepare`; the others block until the handle is ready and share it.
    ///
    /// The boolean is `true` on a hit (the key was already resident —
    /// including "resident but still being prepared by another caller").
    /// The prepare itself runs outside the registry lock, so a slow prepare
    /// never blocks lookups of other keys.
    pub fn get_or_prepare(
        &self,
        key: MatrixKey,
        prepare: impl FnOnce() -> Smat<T>,
    ) -> (Smat<T>, bool) {
        let (slot, hit) = {
            let mut entries = self.entries.lock().unwrap();
            if let Some(slot) = entries.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(slot), true)
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let slot: Slot<T> = Arc::new(OnceLock::new());
                if entries.insert(key, Arc::clone(&slot)).is_some() {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                (slot, false)
            }
        };
        let smat = slot.get_or_init(|| {
            self.prepares.fetch_add(1, Ordering::Relaxed);
            prepare()
        });
        (smat.clone(), hit)
    }

    /// Looks up `key` without preparing. A `Some` result counts as a hit, a
    /// `None` as a miss. Returns `None` also while the entry is still being
    /// prepared by a concurrent `get_or_prepare` (the serving path always
    /// registers before submitting, so this only happens on misuse).
    pub fn get(&self, key: &MatrixKey) -> Option<Smat<T>> {
        let slot = {
            let mut entries = self.entries.lock().unwrap();
            entries.get(key).map(Arc::clone)
        };
        match slot.as_ref().and_then(|s| s.get()) {
            Some(smat) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(smat.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Evicts `key` explicitly. In-flight requests holding the handle keep
    /// it alive; the registry just forgets it.
    pub fn invalidate(&self, key: &MatrixKey) -> bool {
        let removed = self.entries.lock().unwrap().remove(key).is_some();
        if removed {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RegistryStats {
        let entries = self.entries.lock().unwrap();
        RegistryStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            prepares: self.prepares.load(Ordering::Relaxed),
            entries: entries.len(),
            capacity: entries.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::{Coo, Csr, F16};

    fn matrix(shift: usize) -> Csr<F16> {
        let mut coo = Coo::new(64, 64);
        for i in 0..64 {
            coo.push(i, (i * 5 + shift) % 64, F16::from_f64(1.0));
        }
        coo.to_csr()
    }

    fn key_of(a: &Csr<F16>, cfg: &SmatConfig) -> MatrixKey {
        MatrixKey::new(MatrixFingerprint::of_csr(a), cfg)
    }

    #[test]
    fn prepare_runs_once_and_is_shared() {
        let cfg = SmatConfig::default();
        let a = matrix(0);
        let key = key_of(&a, &cfg);
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(4);
        let (first, hit1) = reg.get_or_prepare(key, || Smat::prepare(&a, cfg.clone()));
        assert!(!hit1);
        let (second, hit2) = reg.get_or_prepare(key, || panic!("must not re-prepare"));
        assert!(hit2);
        assert!(std::ptr::eq(first.bcsr(), second.bcsr()), "shared handle");
        let s = reg.stats();
        assert_eq!((s.hits, s.misses, s.prepares), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_configs_get_distinct_entries() {
        let a = matrix(0);
        let cfg16 = SmatConfig::default();
        let cfg8 = SmatConfig {
            block_w: 8,
            ..SmatConfig::default()
        };
        assert_ne!(key_of(&a, &cfg16), key_of(&a, &cfg8));
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(4);
        reg.get_or_prepare(key_of(&a, &cfg16), || Smat::prepare(&a, cfg16.clone()));
        reg.get_or_prepare(key_of(&a, &cfg8), || Smat::prepare(&a, cfg8.clone()));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.stats().prepares, 2);
    }

    #[test]
    fn lru_bound_evicts_stalest_matrix() {
        let cfg = SmatConfig::default();
        let (a0, a1, a2) = (matrix(0), matrix(1), matrix(2));
        let (k0, k1, k2) = (key_of(&a0, &cfg), key_of(&a1, &cfg), key_of(&a2, &cfg));
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(2);
        reg.get_or_prepare(k0, || Smat::prepare(&a0, cfg.clone()));
        reg.get_or_prepare(k1, || Smat::prepare(&a1, cfg.clone()));
        // Touch k0 so k1 is the LRU victim.
        assert!(reg.get(&k0).is_some());
        reg.get_or_prepare(k2, || Smat::prepare(&a2, cfg.clone()));
        assert_eq!(reg.stats().evictions, 1);
        assert!(reg.get(&k0).is_some(), "recently used entry survives");
        assert!(reg.get(&k1).is_none(), "stalest entry was evicted");
        assert!(reg.get(&k2).is_some());
    }

    #[test]
    fn invalidate_forgets_but_inflight_handles_survive() {
        let cfg = SmatConfig::default();
        let a = matrix(0);
        let key = key_of(&a, &cfg);
        let reg: PreparedMatrixRegistry<F16> = PreparedMatrixRegistry::new(2);
        let (handle, _) = reg.get_or_prepare(key, || Smat::prepare(&a, cfg.clone()));
        assert!(reg.invalidate(&key));
        assert!(!reg.invalidate(&key), "second invalidate is a no-op");
        assert!(reg.get(&key).is_none());
        // The evicted handle still works.
        let b = smat_formats::Dense::from_fn(64, 8, |i, j| F16::from_f64(((i + j) % 3) as f64));
        assert_eq!(handle.spmm(&b).c, a.spmm_reference(&b));
    }

    #[test]
    fn config_digest_is_sensitive_to_fields() {
        let base = SmatConfig::default();
        assert_eq!(config_digest(&base), config_digest(&SmatConfig::default()));
        let other = SmatConfig {
            block_h: 8,
            block_w: 8,
            ..SmatConfig::default()
        };
        assert_ne!(config_digest(&base), config_digest(&other));
    }
}
