//! `smat-serve`: a multi-tenant SpMM serving engine over simulated devices.
//!
//! The paper's pipeline splits SpMM into an expensive one-time inspection
//! (row reordering + BCSR conversion, `T_init` in its cost model) and a
//! cheap repeatable execution (`T_e`). This crate builds the serving layer
//! that exploits that split end to end:
//!
//! * [`PreparedMatrixRegistry`] — a concurrent, size-bounded LRU of
//!   prepared [`smat::Smat`] handles keyed by
//!   [`MatrixFingerprint`](smat_formats::MatrixFingerprint) + config
//!   digest, so each distinct matrix pays `T_init` once and every tenant
//!   shares the handle.
//! * [`PlanCache`] — memoized launch geometry + static pre-flight verdict
//!   per (matrix, RHS width); inadmissible plans are refused at admission.
//! * [`Server`] — a device-pool scheduler: one worker thread per simulated
//!   device, bounded submission queues with typed backpressure
//!   ([`RejectReason`]), per-request deadlines, and least-loaded dispatch.
//! * [`batch`] — same-matrix requests are coalesced into one wide launch
//!   (bitwise identical to per-request execution) to amortize the
//!   per-launch constant.
//! * sharding — a two-level scheduler for matrices too big for one
//!   device: registration under [`ServerConfig::shard_max_bytes`]
//!   partitions the operand into nnz-balanced row shards (`smat-shard`),
//!   each prepared under its own fingerprint; a submission against the
//!   parent key fans out one sub-request per shard through the ordinary
//!   device-level dispatch and a checked join ([`FanoutJoin`])
//!   row-concatenates the partial products — bitwise identical to
//!   unsharded execution, with per-shard recovery under chaos.
//! * planning — an optional cost-model-driven admission planner
//!   ([`ServerConfig::planner`]): registrations without a pinned
//!   configuration are scored with the calibrated Eq. 1 perf model
//!   ([`smat::Planner`]) to choose `{block shape, reordering,
//!   scalar-vs-TC}` per matrix (per shard for sharded ones); observed
//!   launch times flow back for online refits and every prediction is
//!   graded against the launch it planned
//!   ([`ServerStats::plan_mean_rel_error`]).
//! * [`chaos`] — fault survival over the seeded fault-injection layer of
//!   `smat-gpusim`: bounded retry with seeded-jitter backoff, per-device
//!   circuit breakers that eject flapping devices from dispatch,
//!   deterministic hedged re-dispatch, and graceful degradation to the
//!   scalar `baselines::cusparse` path — all surfaced in
//!   [`ChaosStats`] and as `chaos`-category trace events.
//! * dynamic matrices — registered tenants accept in-place cell mutations
//!   ([`Server::mutate`]): updates accumulate in a COO overlay on the
//!   prepared handle, requests pin the overlay epoch at admission (plans,
//!   batches, and execution all key on it, so a mutated matrix can never
//!   launch under a stale plan), and when the calibrated cost model prices
//!   the overlay's scalar surcharge above the re-preparation cost
//!   ([`CompactionPolicy`]), a background compaction re-prepares
//!   `base ⊕ overlay` and atomically swaps the registry handle — serving
//!   never blocks, and in-flight requests finish on the epoch they
//!   admitted under.
//! * concurrency verification — every lock, condvar, and protocol-bearing
//!   atomic in this crate is a checked `smat-sanitize` primitive, so
//!   lock-order analysis covers the engine when enabled (zero overhead
//!   otherwise), and the core protocols ([`ParkSlot`] publish-then-drain,
//!   warm-prepare single-producer, breaker single-writer) are verified
//!   under exhaustive interleaving by the model tests in
//!   `tests/model_check.rs`.
//!
//! Requests complete through an executor-independent future
//! ([`ResponseFuture`]); synchronous callers use its
//! [`wait`](ResponseFuture::wait) or [`block_on`]. See `examples/serve.rs`
//! at the workspace root for a trace-replay driver and DESIGN.md §10 for
//! the architecture discussion.

pub mod batch;
pub mod chaos;
pub mod error;
pub mod lru;
pub mod oneshot;
pub mod parkslot;
pub mod plan;
pub mod registry;
pub mod server;
mod sharded;
pub mod stats;

pub use batch::{spmm_batched, spmm_scalar_fallback, take_batch};
pub use chaos::{ChaosCounters, CircuitBreaker, RecoveryPolicy};
pub use error::{RejectReason, ServeError};
pub use lru::LruMap;
pub use oneshot::block_on;
pub use parkslot::ParkSlot;
pub use plan::{Plan, PlanCache, PlanStats};
pub use registry::{
    config_digest, AdmissionState, MatrixKey, ParkResult, PreparedMatrixRegistry, RegistryStats,
};
pub use server::{CompactionPolicy, ResponseFuture, ServeResponse, Server, ServerConfig};
pub use smat::{
    Calibration, MatrixUpdate, OverlaySnapshot, PlanDecision, PlanSource, PlanSpace, Planner,
};
pub use smat_shard::{FanoutJoin, ShardPlan, ShardPolicy};
pub use smat_trace::TraceHandle;
pub use stats::{ChaosStats, DeviceStats, LatencyStats, ServerStats};
