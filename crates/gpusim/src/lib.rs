//! # smat-gpusim
//!
//! A functional + analytical-timing simulator of the NVIDIA A100 execution
//! model, standing in for the real GPU in this reproduction (the machine has
//! no CUDA device — see DESIGN.md §2 for the substitution argument).
//!
//! Three layers:
//!
//! * **Functional Tensor Core** — [`mma::mma_tile`] executes MMA
//!   instructions with exact low-precision rounding semantics;
//!   [`frag`] pins the per-lane PTX register layouts of `mma.m16n8k16` and
//!   proves the tile path equivalent to a 32-lane execution.
//! * **Accounting** — kernels record instructions, shared-memory
//!   transactions (with bank-conflict expansion) and sector-rounded global
//!   traffic in [`Counters`] through a [`WarpCtx`].
//! * **Timing** — [`Gpu::launch`] maps warps to SMs with the static
//!   round-robin schedule of a fixed CUDA grid and converts per-SM counter
//!   sums into cycles using the datasheet-derived constants in
//!   [`DeviceConfig`]; kernel time is the slowest SM (load imbalance is
//!   first-class, as in the paper's `dc2` discussion).
//!
//! A fourth, orthogonal layer is **fault injection**: a seeded
//! [`FaultPlan`] attached via [`Gpu::with_fault_plan`] deterministically
//! injects transient launch failures, ECC-style result corruption, per-SM
//! stragglers, and device-offline windows into [`Gpu::launch`]
//! ([`engine::SimError::FaultInjected`]), so resilience machinery can be
//! tested reproducibly. See the [`fault`] module and DESIGN.md §12.

#![forbid(unsafe_code)]

pub mod counters;
pub mod device;
pub mod engine;
pub mod fault;
pub mod frag;
pub mod mma;
pub mod smem;

pub use counters::{shared_transactions, Counters};
pub use device::DeviceConfig;
pub use engine::{
    Bound, BoundProfile, CopyMode, Gpu, LaunchConfig, LaunchResult, SimError, WarpCtx,
};
pub use fault::{
    compose_key, work_of_key, FaultConfig, FaultDecision, FaultKind, FaultPlan, Straggler,
};
pub use mma::{mma_tile, mma_tile_wide, MmaShape};
pub use smem::{SharedTile, SmemLayout};
