//! # smat-gpusim
//!
//! A functional + analytical-timing simulator of the NVIDIA A100 execution
//! model, standing in for the real GPU in this reproduction (the machine has
//! no CUDA device — see DESIGN.md §2 for the substitution argument).
//!
//! Three layers:
//!
//! * **Functional Tensor Core** — [`mma::mma_tile`] executes MMA
//!   instructions with exact low-precision rounding semantics;
//!   [`frag`] pins the per-lane PTX register layouts of `mma.m16n8k16` and
//!   proves the tile path equivalent to a 32-lane execution.
//! * **Accounting** — kernels record instructions, shared-memory
//!   transactions (with bank-conflict expansion) and sector-rounded global
//!   traffic in [`Counters`] through a [`WarpCtx`].
//! * **Timing** — [`Gpu::launch`] maps warps to SMs with the static
//!   round-robin schedule of a fixed CUDA grid and converts per-SM counter
//!   sums into cycles using the datasheet-derived constants in
//!   [`DeviceConfig`]; kernel time is the slowest SM (load imbalance is
//!   first-class, as in the paper's `dc2` discussion).

#![forbid(unsafe_code)]

pub mod counters;
pub mod device;
pub mod engine;
pub mod frag;
pub mod mma;
pub mod smem;

pub use counters::{shared_transactions, Counters};
pub use device::DeviceConfig;
pub use engine::{
    Bound, BoundProfile, CopyMode, Gpu, LaunchConfig, LaunchResult, SimError, WarpCtx,
};
pub use mma::{mma_tile, mma_tile_wide, MmaShape};
pub use smem::{SharedTile, SmemLayout};
