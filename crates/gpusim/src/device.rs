//! Device model: the hardware parameters of the simulated GPU.
//!
//! Defaults describe the NVIDIA A100-SXM4-40GB used in the paper's
//! evaluation (§V-B), with per-cycle capacities derived from public
//! datasheet numbers. All timing produced by the simulator is an analytical
//! function of these constants and of the instruction/byte counters the
//! kernels accumulate — see `engine.rs` for the composition.

use serde::Serialize;

/// Hardware parameters of the simulated device.
///
/// Derivations for the A100-SXM4-40GB defaults:
///
/// * 108 SMs at 1.410 GHz.
/// * Dense FP16 Tensor Core peak 312 TFLOP/s. One `mma.m16n8k16` performs
///   16·8·16·2 = 4096 FLOP, so peak corresponds to one MMA per SM every
///   `4096 · 108 · 1.41e9 / 312e12 ≈ 2` cycles → [`cycles_per_mma`] = 2.
/// * FP32 CUDA-core peak 19.5 TFLOP/s with 64 FP32 lanes per SM: a 32-lane
///   warp FMA (64 FLOP) retires every 0.5 cycles → [`cycles_per_warp_fma`].
/// * HBM2 bandwidth 1555 GB/s → `1555e9 / (108 · 1.41e9) ≈ 10.2` bytes per
///   SM-cycle → [`global_bytes_per_cycle`].
/// * Shared memory: 32 banks × 4 B per cycle → one 128 B warp transaction
///   per cycle.
/// * Global load latency ≈ 400 cycles (microbenchmarked on Ampere in
///   Abdelkhalik et al., HPEC'22 — reference 2 of the paper).
///
/// [`cycles_per_mma`]: DeviceConfig::cycles_per_mma
/// [`cycles_per_warp_fma`]: DeviceConfig::cycles_per_warp_fma
/// [`global_bytes_per_cycle`]: DeviceConfig::global_bytes_per_cycle
#[derive(Clone, Debug, Serialize)]
pub struct DeviceConfig {
    /// Human-readable device name, recorded in experiment output.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Warp width in lanes.
    pub warp_size: usize,
    /// Warp schedulers per SM (concurrent instruction issue slots).
    pub schedulers_per_sm: usize,
    /// Maximum warps resident per SM (occupancy ceiling).
    pub max_resident_warps: usize,
    /// Device memory capacity in bytes (40 GB HBM2); exceeding it makes a
    /// launch fail with a simulated out-of-memory error, which is how the
    /// Magicube baseline reproduces its real-world OOMs.
    pub global_mem_bytes: usize,
    /// Shared memory per SM in bytes (configurable up to 164 KB on A100).
    pub shared_mem_per_sm: usize,

    // --- throughput (SM-cycles per warp instruction / per byte) ---
    /// SM-cycles per Tensor Core MMA warp instruction (m16n8k16 class).
    pub cycles_per_mma: f64,
    /// SM-cycles per 32-lane CUDA-core FMA warp instruction.
    pub cycles_per_warp_fma: f64,
    /// SM-cycles per `ldmatrix` warp instruction.
    pub cycles_per_ldmatrix: f64,
    /// SM-cycles per 128-byte shared memory transaction (bank-conflict-free).
    pub cycles_per_shared_tx: f64,
    /// SM-cycles per generic ALU warp instruction (index arithmetic,
    /// predicate evaluation, loop control).
    pub cycles_per_alu: f64,
    /// Sustained global memory bytes per SM per cycle.
    pub global_bytes_per_cycle: f64,
    /// Minimum granularity of a global memory access in bytes (one sector):
    /// scattered gathers are rounded up to whole sectors.
    pub sector_bytes: usize,

    // --- latency ---
    /// Global memory load latency in cycles.
    pub global_latency: f64,
    /// Kernel launch + finalization overhead in cycles (the `T_init` of the
    /// paper's performance model, Eq. (1)).
    pub launch_overhead_cycles: f64,
}

impl DeviceConfig {
    /// The NVIDIA A100-SXM4-40GB model used throughout the evaluation.
    pub fn a100_sxm4_40gb() -> Self {
        DeviceConfig {
            name: "A100-SXM4-40GB (simulated)",
            num_sms: 108,
            clock_ghz: 1.41,
            warp_size: 32,
            schedulers_per_sm: 4,
            max_resident_warps: 64,
            global_mem_bytes: 40 * 1024 * 1024 * 1024,
            shared_mem_per_sm: 164 * 1024,
            cycles_per_mma: 2.0,
            cycles_per_warp_fma: 0.5,
            cycles_per_ldmatrix: 1.0,
            cycles_per_shared_tx: 1.0,
            cycles_per_alu: 0.25,
            global_bytes_per_cycle: 10.2,
            sector_bytes: 32,
            global_latency: 400.0,
            launch_overhead_cycles: 4000.0,
        }
    }

    /// The NVIDIA H100-SXM5-80GB: 132 SMs at 1.98 GHz, 989 TFLOP/s dense
    /// FP16 Tensor Core peak (one `mma.m16n8k16` per SM per
    /// `4096·132·1.98e9/989e12 ≈ 1.08` cycles), 3.35 TB/s HBM3
    /// (`≈ 12.8` B/SM-cycle), 228 KB shared memory per SM. Used by the
    /// device-sensitivity experiment to check that the model's conclusions
    /// are not A100 artifacts.
    pub fn h100_sxm5_80gb() -> Self {
        DeviceConfig {
            name: "H100-SXM5-80GB (simulated)",
            num_sms: 132,
            clock_ghz: 1.98,
            global_mem_bytes: 80 * 1024 * 1024 * 1024,
            shared_mem_per_sm: 228 * 1024,
            cycles_per_mma: 1.08,
            global_bytes_per_cycle: 12.8,
            ..Self::a100_sxm4_40gb()
        }
    }

    /// A deliberately tiny device (2 SMs, 1 MB of memory) used by tests to
    /// exercise occupancy limits and out-of-memory paths quickly.
    pub fn tiny_test_device() -> Self {
        DeviceConfig {
            name: "tiny-test-device",
            num_sms: 2,
            max_resident_warps: 4,
            global_mem_bytes: 1024 * 1024,
            shared_mem_per_sm: 16 * 1024,
            ..Self::a100_sxm4_40gb()
        }
    }

    /// Converts SM-cycles into milliseconds at the configured clock.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9) * 1e3
    }

    /// Dense FP16 Tensor Core peak in GFLOP/s implied by the constants
    /// (sanity anchor for the calibration tests).
    pub fn tc_peak_gflops(&self) -> f64 {
        let mma_flop = 16.0 * 8.0 * 16.0 * 2.0;
        mma_flop * self.num_sms as f64 * self.clock_ghz / self.cycles_per_mma
    }

    /// FP32 CUDA-core peak in GFLOP/s implied by the constants.
    pub fn fp32_peak_gflops(&self) -> f64 {
        let fma_flop = 2.0 * self.warp_size as f64;
        fma_flop * self.num_sms as f64 * self.clock_ghz / self.cycles_per_warp_fma
    }

    /// Global memory bandwidth in GB/s implied by the constants.
    pub fn mem_bandwidth_gbs(&self) -> f64 {
        self.global_bytes_per_cycle * self.num_sms as f64 * self.clock_ghz
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::a100_sxm4_40gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_constants_reproduce_datasheet_peaks() {
        let d = DeviceConfig::a100_sxm4_40gb();
        // 312 TFLOP/s FP16 TC peak, within 1%.
        let tc = d.tc_peak_gflops();
        assert!(
            (tc - 312_000.0).abs() / 312_000.0 < 0.01,
            "TC peak {tc} GFLOP/s"
        );
        // 19.5 TFLOP/s FP32 peak, within 1%.
        let fp32 = d.fp32_peak_gflops();
        assert!(
            (fp32 - 19_500.0).abs() / 19_500.0 < 0.01,
            "FP32 peak {fp32} GFLOP/s"
        );
        // ~1555 GB/s HBM bandwidth, within 1%.
        let bw = d.mem_bandwidth_gbs();
        assert!((bw - 1555.0).abs() / 1555.0 < 0.01, "bandwidth {bw} GB/s");
    }

    #[test]
    fn tc_to_cuda_core_ratio_is_16x() {
        let d = DeviceConfig::a100_sxm4_40gb();
        let ratio = d.tc_peak_gflops() / d.fp32_peak_gflops();
        assert!((ratio - 16.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn cycles_to_ms() {
        let d = DeviceConfig::a100_sxm4_40gb();
        let ms = d.cycles_to_ms(1.41e9);
        assert!((ms - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn h100_constants_reproduce_datasheet_peaks() {
        let d = DeviceConfig::h100_sxm5_80gb();
        let tc = d.tc_peak_gflops();
        assert!(
            (tc - 989_000.0).abs() / 989_000.0 < 0.02,
            "H100 TC peak {tc} GFLOP/s"
        );
        let bw = d.mem_bandwidth_gbs();
        assert!((bw - 3350.0).abs() / 3350.0 < 0.02, "H100 bandwidth {bw}");
        // Generational ratios: ~3.2x compute, ~2.2x bandwidth over A100.
        let a = DeviceConfig::a100_sxm4_40gb();
        assert!(tc / a.tc_peak_gflops() > 2.5);
        assert!(bw / a.mem_bandwidth_gbs() > 1.8);
    }

    #[test]
    fn tiny_device_is_small() {
        let d = DeviceConfig::tiny_test_device();
        assert_eq!(d.num_sms, 2);
        assert!(d.global_mem_bytes < DeviceConfig::a100_sxm4_40gb().global_mem_bytes);
    }
}
