//! Tile-level functional Tensor Core MMA.
//!
//! This is the fast path used by the simulated kernels: one call computes a
//! whole `m×n` accumulator tile from row-major `m×k` / `k×n` operand tiles
//! with Tensor Core accumulation semantics (wide accumulator along K, one
//! rounding on store). `frag.rs` proves this equivalent to a per-lane
//! 32-thread execution of `mma.sync.aligned.m16n8k16`.

use smat_formats::scalar::Element;

/// An MMA instruction shape `mMnNkK`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MmaShape {
    /// Rows of A and C.
    pub m: usize,
    /// Columns of B and C.
    pub n: usize,
    /// Reduction dimension.
    pub k: usize,
}

impl MmaShape {
    /// `mma.m16n8k16` — FP16/BF16 (the paper's Listing 1 instruction).
    pub const M16N8K16: MmaShape = MmaShape { m: 16, n: 8, k: 16 };
    /// `mma.m16n8k8` — FP16/TF32.
    pub const M16N8K8: MmaShape = MmaShape { m: 16, n: 8, k: 8 };
    /// `mma.m16n8k32` — INT8.
    pub const M16N8K32: MmaShape = MmaShape { m: 16, n: 8, k: 32 };
    /// `mma.m8n8k16` — INT8 (small variant).
    pub const M8N8K16: MmaShape = MmaShape { m: 8, n: 8, k: 16 };

    /// FLOP performed by one instruction of this shape (multiply + add).
    pub fn flop(&self) -> usize {
        2 * self.m * self.n * self.k
    }

    /// The MMA shapes the A100 Tensor Core supports for a given element
    /// type (by `Element::NAME`), mirroring the PTX ISA table. Returns the
    /// preferred (largest-K) shape first.
    pub fn supported_for(elem: &str) -> &'static [MmaShape] {
        match elem {
            "f16" | "bf16" => &[MmaShape::M16N8K16, MmaShape::M16N8K8],
            "i8" => &[MmaShape::M16N8K32, MmaShape::M8N8K16],
            "i16" => &[MmaShape::M16N8K16], // Magicube's int16 path: fp16-rate
            _ => &[],
        }
    }

    /// Whether a BCSR block of `h×w` can feed the A operand of this shape.
    pub fn fits_block(&self, h: usize, w: usize) -> bool {
        self.m == h && self.k == w
    }
}

/// Executes `D = A·B + C` on row-major tiles with Tensor Core semantics.
///
/// * `a`: `m×k` row-major, `b`: `k×n` row-major, `c`: `m×n` row-major
///   accumulator, updated in place.
/// * Products and the K-dimension sum are computed in `T::Accum`; the
///   result is rounded to `T` once per element, matching the hardware
///   datapath (and `frag::mma_sync_m16n8k16`).
///
/// # Panics
/// Panics if slice lengths do not match the shape.
pub fn mma_tile<T: Element>(shape: MmaShape, a: &[T], b: &[T], c: &mut [T]) {
    let (m, n, k) = (shape.m, shape.n, shape.k);
    assert_eq!(a.len(), m * k, "A tile must be m*k");
    assert_eq!(b.len(), k * n, "B tile must be k*n");
    assert_eq!(c.len(), m * n, "C tile must be m*n");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let mut acc = T::accum_zero();
            for (kk, &av) in arow.iter().enumerate() {
                acc = T::mul_acc(acc, av, b[kk * n + j]);
            }
            // Fold the existing accumulator in at wide precision.
            let folded = T::mul_acc(acc, c[i * n + j], T::from_f64(1.0));
            c[i * n + j] = T::from_accum(folded);
        }
    }
}

/// Executes `D = A·B + C` keeping the accumulator in wide precision
/// (`T::Accum`) across calls — the `f32`-accumulate MMA variants, and the
/// variant SMaT uses to chain block MMAs without intermediate rounding
/// until the epilogue.
pub fn mma_tile_wide<T: Element>(shape: MmaShape, a: &[T], b: &[T], c: &mut [T::Accum]) {
    let (m, n, k) = (shape.m, shape.n, shape.k);
    assert_eq!(a.len(), m * k, "A tile must be m*k");
    assert_eq!(b.len(), k * n, "B tile must be k*n");
    assert_eq!(c.len(), m * n, "C tile must be m*n");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let mut acc = c[i * n + j];
            for (kk, &av) in arow.iter().enumerate() {
                acc = T::mul_acc(acc, av, b[kk * n + j]);
            }
            c[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frag;
    use smat_formats::F16;

    #[test]
    fn shape_flop_counts() {
        assert_eq!(MmaShape::M16N8K16.flop(), 4096);
        assert_eq!(MmaShape::M16N8K8.flop(), 2048);
        assert_eq!(MmaShape::M16N8K32.flop(), 8192);
    }

    #[test]
    fn supported_shapes_per_type() {
        assert!(MmaShape::supported_for("f16").contains(&MmaShape::M16N8K16));
        assert!(MmaShape::supported_for("i8").contains(&MmaShape::M16N8K32));
        assert!(MmaShape::supported_for("f64").is_empty());
    }

    #[test]
    fn fits_block() {
        assert!(MmaShape::M16N8K16.fits_block(16, 16));
        assert!(!MmaShape::M16N8K16.fits_block(16, 8));
        assert!(MmaShape::M16N8K8.fits_block(16, 8));
    }

    #[test]
    fn tile_mma_matches_per_lane_fragment_mma() {
        let a_tile: Vec<F16> = (0..256)
            .map(|i| F16::from_f32(((i * 3) % 17) as f32 - 8.0))
            .collect();
        let b_tile: Vec<F16> = (0..128)
            .map(|i| F16::from_f32(((i * 11) % 9) as f32 - 4.0))
            .collect();
        let c_init: Vec<F16> = (0..128).map(|i| F16::from_f32((i % 5) as f32)).collect();

        let mut c_fast = c_init.clone();
        mma_tile(MmaShape::M16N8K16, &a_tile, &b_tile, &mut c_fast);

        let d = frag::mma_sync_m16n8k16(
            &frag::distribute_a(&a_tile),
            &frag::distribute_b(&b_tile),
            &frag::distribute_c(&c_init),
        );
        assert_eq!(frag::collect_c(&d), c_fast);
    }

    #[test]
    fn wide_accumulation_defers_rounding() {
        // With f16 accumulation, adding 1.0 to 2048 is lost at every step;
        // a wide (f32) accumulator keeps it.
        let shape = MmaShape { m: 1, n: 1, k: 2 };
        let a = [F16::from_f32(2048.0), F16::from_f32(1.0)];
        let b = [F16::ONE, F16::ONE];
        let mut wide = [0f32];
        mma_tile_wide::<F16>(shape, &a, &b, &mut wide);
        assert_eq!(wide[0], 2049.0);
        // Narrow path rounds to f16 when storing D.
        let mut narrow = [F16::ZERO];
        mma_tile(shape, &a, &b, &mut narrow);
        assert_eq!(narrow[0].to_f32(), 2048.0);
    }

    #[test]
    fn i8_path_accumulates_in_i32() {
        let shape = MmaShape { m: 2, n: 2, k: 4 };
        let a: Vec<i8> = vec![100, 100, 100, 100, 1, 2, 3, 4];
        let b: Vec<i8> = vec![100; 8];
        let mut c = vec![0i32; 4];
        mma_tile_wide::<i8>(shape, &a, &b, &mut c);
        assert_eq!(c[0], 40_000, "no i8 overflow in the accumulator");
        assert_eq!(c[2], 1000);
    }
}
