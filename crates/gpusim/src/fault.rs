//! Deterministic fault injection for the simulated device pool.
//!
//! A [`FaultPlan`] turns a `u64` seed plus rate knobs into a *pure function*
//! from `(device, fault key)` to a [`FaultDecision`]. There is no wall
//! clock, OS randomness, or hidden mutable state in the decision path: two
//! runs that present the same keys to the same plan observe the exact same
//! fault schedule, regardless of thread interleaving. That purity is what
//! makes chaos testing reproducible — a failing seed can be replayed
//! forever.
//!
//! Four fault classes are modeled, mirroring what real multi-GPU serving
//! fleets see:
//!
//! * **Transient launch failures** — the launch is refused before any work
//!   runs (driver hiccup, sticky ECC scrub, context corruption). Retryable.
//! * **ECC-style result corruption** — the kernel runs to completion, then
//!   the device reports the results as corrupted (detected double-bit
//!   error). The caller pays the kernel time and must retry.
//! * **Per-SM stragglers** — one SM runs a configurable factor slower
//!   (clock throttling, row-remap stalls). Timing-only: results are
//!   correct, but the launch's wall time inflates because kernel time is
//!   the slowest SM.
//! * **Device-offline windows** — contiguous spans of the *work-id space*
//!   during which every launch on a device fails (node drain, XID reset).
//!   Retrying on the same device inside the window keeps failing; recovery
//!   requires going elsewhere, which is what exercises circuit breakers and
//!   hedging upstream.
//!
//! Keys are composed with [`compose_key`] so that the work identity (e.g. a
//! request sequence number), the retry attempt, and the execution lane
//! (primary / hedge / fallback) each get independent draws, while the
//! offline decision depends only on the work identity — a retry of the same
//! work on an offline device stays offline.

use serde::Serialize;

/// Bit budget of the non-work portion of a composed key: [`compose_key`]
/// packs `attempt` and `lane` into the low `KEY_META_BITS` bits and the
/// work id above them.
pub const KEY_META_BITS: u32 = 12;

/// Rate knobs and seed of a fault plan. All rates are probabilities in
/// `[0, 1]`; the default is fault-free (every rate zero).
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct FaultConfig {
    /// Seed of every pseudo-random draw. Same seed ⇒ same schedule.
    pub seed: u64,
    /// Probability a launch is refused before running (retryable).
    pub transient_rate: f64,
    /// Probability a completed launch reports its results corrupted.
    pub ecc_rate: f64,
    /// Probability one SM of a launch runs `straggler_slowdown`× slower.
    pub straggler_rate: f64,
    /// Slowdown factor applied to the straggling SM's cycles.
    pub straggler_slowdown: f64,
    /// Probability a given (device, offline window) bucket is an outage.
    pub offline_rate: f64,
    /// Width of an offline window in work-id units: work ids
    /// `[k·w, (k+1)·w)` share one offline draw per device.
    pub offline_window: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            transient_rate: 0.0,
            ecc_rate: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: 4.0,
            offline_rate: 0.0,
            offline_window: 32,
        }
    }
}

impl FaultConfig {
    /// A blended profile derived from one headline `rate`: transient
    /// failures at `rate`, ECC corruption at half of it, stragglers at
    /// `rate`, and offline windows at a quarter of it — the mix used by the
    /// serving example's `--fault-rate` flag.
    pub fn blended(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            transient_rate: rate,
            ecc_rate: rate * 0.5,
            straggler_rate: rate,
            straggler_slowdown: 4.0,
            offline_rate: rate * 0.25,
            offline_window: 32,
        }
    }
}

/// The fault classes a launch can be hit with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum FaultKind {
    /// The launch was refused before any work ran. Retryable.
    TransientLaunchFailure,
    /// The kernel ran, then the device reported the results corrupted
    /// (detected, reported — never silently returned). Retryable.
    EccCorruption,
    /// The device is inside an offline window for this work id; every
    /// launch of the same work on this device fails until the window ends.
    DeviceOffline,
}

impl FaultKind {
    /// Stable label used in stats, traces, and logs.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::TransientLaunchFailure => "transient",
            FaultKind::EccCorruption => "ecc",
            FaultKind::DeviceOffline => "offline",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A straggler directive: slow one SM of the launch down.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Straggler {
    /// Salt the engine reduces modulo the SM count to pick the victim.
    pub sm_salt: u64,
    /// Factor the victim SM's busy cycles are multiplied by (> 1).
    pub slowdown: f64,
}

/// What the plan decided for one launch attempt.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultDecision {
    /// A fault that makes the launch fail, if any.
    pub outcome: Option<FaultKind>,
    /// A timing-only straggler, if any (also applied to faulted ECC
    /// launches, which run before failing).
    pub straggler: Option<Straggler>,
}

/// A seeded, deterministic fault schedule over `(device, key)` pairs.
///
/// Construction is cheap (the plan is just the config); every decision is
/// computed on demand from hashes, so the plan is `Sync` and can be shared
/// across a device pool behind one `Arc`.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

/// `splitmix64` finalizer — the standard 64-bit avalanche mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash of (seed, device, salt, key) → uniform u64.
fn draw(seed: u64, device: usize, salt: u64, key: u64) -> u64 {
    mix(mix(seed ^ salt) ^ mix(device as u64 ^ salt.rotate_left(17)) ^ mix(key))
}

/// Uniform `[0, 1)` from a hash.
fn u01(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Composes a fault key from a stable work identity, a retry attempt, and
/// an execution lane. The work id occupies the high bits (so offline
/// windows span contiguous work), attempt and lane the low
/// [`KEY_META_BITS`]: every retry and every lane draws an independent
/// transient/ECC/straggler verdict, while the offline verdict — keyed on
/// the work id alone — is shared by all of them.
pub fn compose_key(work_id: u64, attempt: u32, lane: u32) -> u64 {
    (work_id << KEY_META_BITS) | (u64::from(attempt & 0x3ff) << 2) | u64::from(lane & 0x3)
}

/// Recovers the work-id portion of a composed key.
pub fn work_of_key(key: u64) -> u64 {
    key >> KEY_META_BITS
}

impl FaultPlan {
    /// A plan over the given knobs.
    pub fn new(cfg: FaultConfig) -> Self {
        assert!(
            cfg.offline_window > 0,
            "offline window width must be positive"
        );
        FaultPlan { cfg }
    }

    /// The knobs this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The decision for one launch attempt on `device` with fault key
    /// `key`. Pure: same inputs, same decision, forever.
    pub fn decide(&self, device: usize, key: u64) -> FaultDecision {
        let c = &self.cfg;
        let bucket = work_of_key(key) / c.offline_window;
        let outcome = if u01(draw(c.seed, device, 0x0FF1_1CE0, bucket)) < c.offline_rate {
            Some(FaultKind::DeviceOffline)
        } else if u01(draw(c.seed, device, 0x7EA4_5187, key)) < c.transient_rate {
            Some(FaultKind::TransientLaunchFailure)
        } else if u01(draw(c.seed, device, 0xECC0_4321, key)) < c.ecc_rate {
            Some(FaultKind::EccCorruption)
        } else {
            None
        };
        let straggler_roll = draw(c.seed, device, 0x57A6_617E, key);
        let straggler = (u01(straggler_roll) < c.straggler_rate).then(|| Straggler {
            sm_salt: mix(straggler_roll),
            slowdown: c.straggler_slowdown,
        });
        FaultDecision { outcome, straggler }
    }

    /// Deterministic backoff jitter in `[0, 1)` for a retry of `work_id` at
    /// `attempt` — derived from the plan seed so replays back off
    /// identically.
    pub fn jitter(&self, work_id: u64, attempt: u32) -> f64 {
        u01(draw(
            self.cfg.seed,
            0,
            0xBAC0_FF00,
            compose_key(work_id, attempt, 0),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(rate: f64) -> FaultPlan {
        FaultPlan::new(FaultConfig::blended(42, rate))
    }

    #[test]
    fn decisions_are_pure_functions_of_inputs() {
        let p = plan(0.3);
        for key in 0..500u64 {
            assert_eq!(p.decide(0, key), p.decide(0, key));
            assert_eq!(p.decide(3, key), p.decide(3, key));
        }
        // A fresh plan with the same config agrees everywhere.
        let q = plan(0.3);
        for key in 0..500u64 {
            assert_eq!(p.decide(1, key), q.decide(1, key));
        }
    }

    #[test]
    fn zero_rates_never_fault() {
        let p = FaultPlan::new(FaultConfig::default());
        for device in 0..4 {
            for key in 0..1000u64 {
                assert_eq!(p.decide(device, key), FaultDecision::default());
            }
        }
    }

    #[test]
    fn rates_are_approximately_honored() {
        let cfg = FaultConfig {
            seed: 7,
            transient_rate: 0.2,
            ..FaultConfig::default()
        };
        let p = FaultPlan::new(cfg);
        let n = 20_000u64;
        let faults = (0..n).filter(|&k| p.decide(0, k).outcome.is_some()).count() as f64;
        let rate = faults / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn offline_windows_cover_contiguous_work_and_all_attempts() {
        let cfg = FaultConfig {
            seed: 3,
            offline_rate: 0.3,
            offline_window: 16,
            ..FaultConfig::default()
        };
        let p = FaultPlan::new(cfg);
        // Every work id in one window shares the verdict, on every attempt
        // and lane.
        for bucket in 0..50u64 {
            let first = p.decide(1, compose_key(bucket * 16, 0, 0)).outcome;
            for w in 0..16u64 {
                for attempt in 0..4 {
                    for lane in 0..3 {
                        let d = p.decide(1, compose_key(bucket * 16 + w, attempt, lane));
                        assert_eq!(d.outcome, first, "bucket {bucket} w {w}");
                    }
                }
            }
        }
        // And some buckets are offline while others are not.
        let verdicts: Vec<bool> = (0..50u64)
            .map(|b| p.decide(1, compose_key(b * 16, 0, 0)).outcome.is_some())
            .collect();
        assert!(verdicts.iter().any(|&v| v));
        assert!(verdicts.iter().any(|&v| !v));
    }

    #[test]
    fn devices_draw_independent_schedules() {
        let p = plan(0.4);
        let schedule = |device| -> Vec<Option<FaultKind>> {
            (0..200u64)
                .map(|k| p.decide(device, compose_key(k, 0, 0)).outcome)
                .collect()
        };
        assert_ne!(schedule(0), schedule(1));
    }

    #[test]
    fn retries_redraw_transient_but_not_offline() {
        let cfg = FaultConfig {
            seed: 11,
            transient_rate: 0.5,
            ..FaultConfig::default()
        };
        let p = FaultPlan::new(cfg);
        // With a 0.5 transient rate, some work must see attempt 0 fail and
        // attempt 1 succeed — i.e. attempts draw independently.
        let recovered = (0..200u64).any(|w| {
            p.decide(0, compose_key(w, 0, 0)).outcome.is_some()
                && p.decide(0, compose_key(w, 1, 0)).outcome.is_none()
        });
        assert!(recovered, "no retry ever recovered at 50% transient rate");
    }

    #[test]
    fn key_composition_roundtrips_work_id() {
        for w in [0u64, 1, 17, 1 << 40] {
            for a in [0u32, 1, 9, 1023] {
                for l in 0..3 {
                    assert_eq!(work_of_key(compose_key(w, a, l)), w);
                }
            }
        }
        // Distinct attempts and lanes give distinct keys.
        assert_ne!(compose_key(5, 0, 0), compose_key(5, 1, 0));
        assert_ne!(compose_key(5, 0, 0), compose_key(5, 0, 1));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = plan(0.1);
        for w in 0..50u64 {
            for a in 0..4 {
                let j = p.jitter(w, a);
                assert!((0.0..1.0).contains(&j));
                assert_eq!(j, p.jitter(w, a));
            }
        }
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(FaultKind::TransientLaunchFailure.label(), "transient");
        assert_eq!(FaultKind::EccCorruption.to_string(), "ecc");
        assert_eq!(FaultKind::DeviceOffline.label(), "offline");
    }
}
