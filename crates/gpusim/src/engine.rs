//! Kernel launch machinery: warp contexts, the warp→SM static schedule, and
//! the analytical timing composition.
//!
//! Simulated kernels are written at warp granularity: a closure receives a
//! [`WarpCtx`] and performs both the *functional* work (producing its output
//! tile) and the *accounting* work (recording instructions and bytes). The
//! launcher maps warps to SMs with the same static round-robin schedule the
//! CUDA kernel's fixed grid implies, sums counters per SM, and converts them
//! to cycles. The kernel's wall time is the *slowest SM* — which is exactly
//! what makes highly skewed matrices like `dc2` pathological for a static
//! 2D schedule (§VI-B of the paper).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rayon::prelude::*;

use crate::counters::Counters;
use crate::device::DeviceConfig;
use crate::fault::{FaultKind, FaultPlan, Straggler};

/// Simulation errors surfaced to callers.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The working set does not fit in device memory. Carries the needed
    /// and available byte counts.
    OutOfMemory {
        /// Bytes the launch would need resident.
        needed: usize,
        /// Device capacity.
        available: usize,
    },
    /// A per-block shared memory request exceeds the SM's capacity.
    SharedMemoryExceeded {
        /// Bytes requested per block.
        needed: usize,
        /// SM shared memory capacity.
        available: usize,
    },
    /// A static pre-flight pass rejected the launch before the simulator
    /// executed. Carries every finding of the pass (at least one of which
    /// is error severity).
    PreflightRejected {
        /// The findings, in pass order.
        diagnostics: Vec<smat_diag::Diagnostic>,
    },
    /// The active [`FaultPlan`] injected a fault into this launch. The
    /// launch produced no (usable) result: transient/offline faults fail
    /// before any work runs; ECC faults run the kernel, pay its simulated
    /// time, then report the results corrupted. Retryable by policy.
    FaultInjected {
        /// The injected fault class.
        kind: FaultKind,
        /// Device index (trace identity) the fault landed on.
        device: usize,
        /// The fault key the decision was drawn for — replaying the same
        /// plan with this key reproduces the fault.
        key: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::OutOfMemory { needed, available } => write!(
                f,
                "simulated device out of memory: need {needed} bytes, have {available}"
            ),
            SimError::SharedMemoryExceeded { needed, available } => write!(
                f,
                "shared memory request {needed} bytes exceeds SM capacity {available}"
            ),
            SimError::PreflightRejected { diagnostics } => {
                use smat_diag::DiagnosticsExt;
                write!(
                    f,
                    "pre-flight rejected the launch with {} error(s):",
                    diagnostics.error_count()
                )?;
                for d in diagnostics.iter().filter(|d| d.is_error()) {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            SimError::FaultInjected { kind, device, key } => write!(
                f,
                "injected {kind} fault on device {device} (fault key {key:#x})"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// How data movement overlaps with computation — the paper's **C**
/// optimization toggle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CopyMode {
    /// Two-step copies through registers; global latency is exposed on every
    /// dependent load round, mitigated only by warp occupancy.
    Synchronous,
    /// `cuda::memcpy_async` double buffering: DMA engines move data while
    /// Tensor Cores compute; compute and memory pipelines overlap and only a
    /// pipeline prologue of one latency remains.
    AsyncPipelined,
}

/// Per-launch configuration.
#[derive(Clone, Debug)]
pub struct LaunchConfig {
    /// Copy/overlap mode (the **C** toggle).
    pub copy_mode: CopyMode,
    /// Label recorded in results (kernel name).
    pub label: String,
    /// Resident bytes this launch needs in device memory (operands, outputs,
    /// format payloads). Checked against capacity before running.
    pub footprint_bytes: usize,
    /// Shared memory required per thread block.
    pub shared_bytes_per_block: usize,
    /// Optional explicit warp→SM assignment (`assignment[warp_id] = sm`).
    /// `None` uses the static round-robin schedule of a fixed CUDA grid;
    /// schedulers that pre-balance work (persistent kernels, work queues)
    /// provide their own mapping.
    pub assignment: Option<Vec<usize>>,
}

impl Default for LaunchConfig {
    fn default() -> Self {
        LaunchConfig {
            copy_mode: CopyMode::AsyncPipelined,
            label: String::new(),
            footprint_bytes: 0,
            shared_bytes_per_block: 0,
            assignment: None,
        }
    }
}

/// Cycle breakdown of the busiest SM — the roofline view of one launch.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BoundProfile {
    /// Instruction-issue/execute cycles (MMA, FMA, ldmatrix, shared, ALU).
    pub comp_cycles: f64,
    /// Global-memory bandwidth cycles.
    pub mem_cycles: f64,
    /// Exposed global latency cycles (zero under async pipelining).
    pub exposure_cycles: f64,
}

impl BoundProfile {
    /// The dominant resource of this launch.
    pub fn bound(&self) -> Bound {
        if self.exposure_cycles > self.comp_cycles && self.exposure_cycles > self.mem_cycles {
            Bound::Latency
        } else if self.mem_cycles >= self.comp_cycles {
            Bound::Bandwidth
        } else {
            Bound::Compute
        }
    }
}

/// Roofline classification of a launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// Instruction throughput limits the kernel.
    Compute,
    /// DRAM bandwidth limits the kernel.
    Bandwidth,
    /// Exposed memory latency limits the kernel.
    Latency,
}

impl std::fmt::Display for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bound::Compute => write!(f, "compute-bound"),
            Bound::Bandwidth => write!(f, "bandwidth-bound"),
            Bound::Latency => write!(f, "latency-bound"),
        }
    }
}

/// Mutable per-warp simulation context handed to kernels.
#[derive(Debug)]
pub struct WarpCtx<'a> {
    /// Flat warp index within the launch grid.
    pub warp_id: usize,
    /// Device parameters (read-only; e.g. for sector size).
    pub cfg: &'a DeviceConfig,
    /// Activity counters for this warp.
    pub counters: Counters,
}

impl<'a> WarpCtx<'a> {
    fn new(warp_id: usize, cfg: &'a DeviceConfig) -> Self {
        WarpCtx {
            warp_id,
            cfg,
            counters: Counters::default(),
        }
    }

    /// Records `n` Tensor Core MMA warp instructions.
    #[inline]
    pub fn mma(&mut self, n: u64) {
        self.counters.mma += n;
    }

    /// Records `n` CUDA-core FMA warp instructions.
    #[inline]
    pub fn fma(&mut self, n: u64) {
        self.counters.fma += n;
    }

    /// Records `n` `ldmatrix` warp instructions.
    #[inline]
    pub fn ldmatrix(&mut self, n: u64) {
        self.counters.ldmatrix += n;
    }

    /// Records `n` generic ALU warp instructions.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.counters.alu += n;
    }

    /// Records `n` conflict-free shared memory transactions.
    #[inline]
    pub fn shared_tx(&mut self, n: u64) {
        self.counters.shared_tx += n;
    }

    /// Records one warp-wide shared access from explicit per-lane byte
    /// addresses, expanding bank conflicts.
    pub fn shared_access(&mut self, addrs: &[u64]) {
        self.counters.shared_tx += crate::counters::shared_transactions(addrs);
    }

    /// Records a contiguous global read/write of `bytes`, rounded up to
    /// whole 32-byte sectors, as one dependent load round.
    pub fn global_contiguous(&mut self, bytes: u64) {
        let sector = self.cfg.sector_bytes as u64;
        self.counters.global_bytes += bytes.div_ceil(sector) * sector;
        self.counters.global_rounds += 1;
    }

    /// Records a scattered gather of `n_accesses` independent elements of
    /// `bytes_each`: every access is charged at least one full sector (the
    /// overfetch that punishes irregular CSR column gathers), and the whole
    /// gather counts as `ceil(n/32)` dependent rounds (one per warp-wide
    /// load instruction).
    pub fn global_gather(&mut self, n_accesses: u64, bytes_each: u64) {
        let sector = self.cfg.sector_bytes as u64;
        let per_access = bytes_each.div_ceil(sector) * sector;
        self.counters.global_bytes += n_accesses * per_access;
        self.counters.global_rounds += n_accesses.div_ceil(32);
    }

    /// Records useful FLOP (for GFLOP/s reporting; padding work excluded).
    #[inline]
    pub fn useful_flop(&mut self, n: u64) {
        self.counters.flop_useful += n;
    }
}

/// Timing and counter summary of one simulated kernel launch.
#[derive(Clone, Debug)]
pub struct LaunchResult {
    /// Kernel label from the config.
    pub label: String,
    /// Wall cycles of the slowest SM plus launch overhead.
    pub cycles: f64,
    /// `cycles` converted at the device clock.
    pub time_ms: f64,
    /// Per-SM busy cycles (for load-imbalance diagnostics).
    pub per_sm_cycles: Vec<f64>,
    /// Counter totals over all warps.
    pub totals: Counters,
    /// Number of warps launched.
    pub warps: usize,
    /// Roofline breakdown of the busiest SM.
    pub profile: BoundProfile,
}

impl LaunchResult {
    /// Effective performance over the *useful* FLOP recorded by the kernel.
    pub fn gflops(&self) -> f64 {
        if self.time_ms <= 0.0 {
            return 0.0;
        }
        self.totals.flop_useful as f64 / (self.time_ms * 1e-3) / 1e9
    }

    /// Load imbalance: slowest SM busy time over the mean busy time of the
    /// SMs that received work (1.0 is perfectly balanced).
    pub fn sm_imbalance(&self) -> f64 {
        let busy: Vec<f64> = self
            .per_sm_cycles
            .iter()
            .copied()
            .filter(|&c| c > 0.0)
            .collect();
        if busy.is_empty() {
            return 1.0;
        }
        let sum: f64 = busy.iter().sum();
        let max = busy.iter().cloned().fold(0.0, f64::max);
        max / (sum / busy.len() as f64)
    }
}

/// The simulated GPU.
#[derive(Clone, Debug, Default)]
pub struct Gpu {
    /// Device parameters.
    pub cfg: DeviceConfig,
    /// Identity of this device on trace timelines (`smat-trace` device
    /// track) and in fault decisions. Single-device runs keep the default
    /// 0; device pools assign the pool index so launches land on
    /// per-device tracks and draw per-device fault schedules.
    pub trace_device: usize,
    /// Active fault plan, if any. `None` (the default) is fault-free and
    /// adds no per-launch cost.
    fault_plan: Option<Arc<FaultPlan>>,
    /// Pinned fault key for the next launches. When `None`, launches draw
    /// keys from `fault_ordinal` (0, 1, 2, … per device clone lineage),
    /// which is deterministic for a single-threaded caller; concurrent
    /// callers that need interleaving-independent schedules pin a
    /// content-derived key per attempt via [`Gpu::with_fault_key`].
    fault_key: Option<u64>,
    /// Launch ordinal used when no key is pinned. Shared across clones so
    /// a clone lineage numbers its launches consistently.
    fault_ordinal: Arc<AtomicU64>,
}

impl Gpu {
    /// A GPU with the default A100 configuration.
    pub fn a100() -> Self {
        Gpu::new(DeviceConfig::a100_sxm4_40gb())
    }

    /// A GPU with the given device configuration.
    pub fn new(cfg: DeviceConfig) -> Self {
        Gpu {
            cfg,
            ..Gpu::default()
        }
    }

    /// Sets the device index used for trace timelines and fault decisions
    /// (builder style).
    pub fn with_trace_device(mut self, device: usize) -> Self {
        self.trace_device = device;
        self
    }

    /// A pool of `n` identically configured devices with pool-index trace
    /// identities: device `i` traces to device track `i` and draws device-
    /// `i` fault schedules. This is the multi-device substrate the sharded
    /// executor and the serving tier fan out over.
    pub fn pool(cfg: DeviceConfig, n: usize) -> Vec<Gpu> {
        (0..n)
            .map(|i| Gpu::new(cfg.clone()).with_trace_device(i))
            .collect()
    }

    /// Attaches a fault plan: subsequent launches consult it and may fail
    /// with [`SimError::FaultInjected`] (builder style).
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Pins the fault key the next launches draw their decision from
    /// (builder style). Pinned keys make the fault schedule a pure
    /// function of caller-supplied content, independent of launch order or
    /// thread interleaving; callers issue a fresh key per attempt (see
    /// [`crate::fault::compose_key`]).
    pub fn with_fault_key(mut self, key: u64) -> Self {
        self.fault_key = Some(key);
        self
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault_plan.as_ref()
    }

    /// Validates launch resources (device memory footprint, per-block shared
    /// memory) without running anything.
    pub fn check_resources(&self, cfg: &LaunchConfig) -> Result<(), SimError> {
        if cfg.footprint_bytes > self.cfg.global_mem_bytes {
            return Err(SimError::OutOfMemory {
                needed: cfg.footprint_bytes,
                available: self.cfg.global_mem_bytes,
            });
        }
        if cfg.shared_bytes_per_block > self.cfg.shared_mem_per_sm {
            return Err(SimError::SharedMemoryExceeded {
                needed: cfg.shared_bytes_per_block,
                available: self.cfg.shared_mem_per_sm,
            });
        }
        Ok(())
    }

    /// Launches `n_warps` warps of `kernel`, collecting each warp's output
    /// and counters, and computes the analytical kernel time.
    ///
    /// Warps run data-parallel on the host (rayon); the warp→SM assignment
    /// used for *timing* is the static round-robin schedule
    /// `sm = warp_id % num_sms`, matching the fixed 2D grid of the CUDA
    /// implementation.
    pub fn launch<W, F>(
        &self,
        n_warps: usize,
        cfg: &LaunchConfig,
        kernel: F,
    ) -> Result<(LaunchResult, Vec<W>), SimError>
    where
        W: Send,
        F: Fn(&mut WarpCtx) -> W + Sync,
    {
        self.check_resources(cfg)?;

        // Consult the fault plan, if any. Transient and offline faults fail
        // the launch before any work runs; ECC corruption lets the kernel
        // run (and pays its simulated time) before reporting the results
        // corrupted; a straggler only inflates one SM's cycles.
        let fault = self.fault_plan.as_ref().map(|plan| {
            let key = self
                .fault_key
                .unwrap_or_else(|| self.fault_ordinal.fetch_add(1, Ordering::Relaxed));
            (key, plan.decide(self.trace_device, key))
        });
        let straggler = fault.as_ref().and_then(|(_, d)| d.straggler);
        if let Some((key, decision)) = &fault {
            if let Some(kind) = decision.outcome {
                if kind != FaultKind::EccCorruption {
                    self.trace_fault(kind, *key, cfg);
                    return Err(SimError::FaultInjected {
                        kind,
                        device: self.trace_device,
                        key: *key,
                    });
                }
            }
        }

        let results: Vec<(Counters, W)> = (0..n_warps)
            .into_par_iter()
            .map(|warp_id| {
                let mut ctx = WarpCtx::new(warp_id, &self.cfg);
                let out = kernel(&mut ctx);
                (ctx.counters, out)
            })
            .collect();

        let (result, outputs) = self.finish(n_warps, cfg, results, straggler);

        if let Some((key, decision)) = &fault {
            if let Some(kind @ FaultKind::EccCorruption) = decision.outcome {
                self.trace_fault(kind, *key, cfg);
                return Err(SimError::FaultInjected {
                    kind,
                    device: self.trace_device,
                    key: *key,
                });
            }
        }
        Ok((result, outputs))
    }

    fn finish<W>(
        &self,
        n_warps: usize,
        cfg: &LaunchConfig,
        results: Vec<(Counters, W)>,
        straggler: Option<Straggler>,
    ) -> (LaunchResult, Vec<W>) {
        let d = &self.cfg;
        let nsm = d.num_sms;
        let mut per_sm = vec![Counters::default(); nsm];
        let mut per_sm_warps = vec![0usize; nsm];
        let mut totals = Counters::default();
        let mut outputs = Vec::with_capacity(results.len());
        for (warp_id, (c, w)) in results.into_iter().enumerate() {
            let sm = match &cfg.assignment {
                Some(a) => a[warp_id] % nsm,
                None => warp_id % nsm,
            };
            per_sm[sm].add(&c);
            per_sm_warps[sm] += 1;
            totals.add(&c);
            outputs.push(w);
        }

        let profiles: Vec<BoundProfile> = per_sm
            .iter()
            .zip(&per_sm_warps)
            .map(|(c, &w)| self.sm_profile(c, w, cfg.copy_mode))
            .collect();
        let mut per_sm_cycles: Vec<f64> = profiles
            .iter()
            .map(|p| self.profile_cycles(p, cfg.copy_mode))
            .collect();
        // Straggler fault: one SM (picked by the plan's salt) runs its
        // whole share `slowdown`× slower. Timing-only — results are
        // unaffected, but kernel time is the slowest SM, so a straggler on
        // a loaded SM stretches the launch.
        if let Some(s) = straggler {
            let victim = (s.sm_salt % nsm as u64) as usize;
            per_sm_cycles[victim] *= s.slowdown;
        }
        let (busiest_idx, busiest) =
            per_sm_cycles
                .iter()
                .enumerate()
                .fold(
                    (0, 0.0f64),
                    |acc, (i, &c)| if c > acc.1 { (i, c) } else { acc },
                );
        let cycles = busiest + d.launch_overhead_cycles;

        let result = LaunchResult {
            label: cfg.label.clone(),
            cycles,
            time_ms: d.cycles_to_ms(cycles),
            per_sm_cycles,
            totals,
            warps: n_warps,
            profile: profiles.get(busiest_idx).copied().unwrap_or_default(),
        };
        if smat_trace::enabled() {
            self.trace_launch(&result);
        }
        (result, outputs)
    }

    /// Records an injected fault as an instant event in the `chaos` trace
    /// category, so a Perfetto view shows the fault next to the recovery.
    fn trace_fault(&self, kind: FaultKind, key: u64, cfg: &LaunchConfig) {
        if smat_trace::enabled() {
            smat_trace::instant(
                "fault_injected",
                "chaos",
                vec![
                    ("kind", kind.label().into()),
                    ("device", (self.trace_device as u64).into()),
                    ("key", key.into()),
                    ("kernel", cfg.label.clone().into()),
                ],
            );
        }
    }

    /// Records the launch on this device's simulated-time trace track: one
    /// device-span covering the whole kernel plus one busy segment per SM
    /// that received work (derived from the same cycle counters the timing
    /// model uses, so the trace and the reported time agree by
    /// construction).
    fn trace_launch(&self, result: &LaunchResult) {
        let per_sm_busy_ns: Vec<u64> = result
            .per_sm_cycles
            .iter()
            .map(|&c| (self.cfg.cycles_to_ms(c) * 1e6).round() as u64)
            .collect();
        smat_trace::record_launch(
            self.trace_device,
            &result.label,
            (result.time_ms * 1e6).round() as u64,
            &per_sm_busy_ns,
            vec![
                ("warps", (result.warps as u64).into()),
                ("cycles", result.cycles.into()),
                ("mma", result.totals.mma.into()),
                ("global_bytes", result.totals.global_bytes.into()),
                ("imbalance", result.sm_imbalance().into()),
                ("bound", result.profile.bound().to_string().into()),
            ],
        );
    }

    /// Converts one SM's aggregated counters into its cycle breakdown.
    ///
    /// * `comp` — issue/execute cycles of all compute and shared-memory
    ///   instructions at the per-SM throughputs of [`DeviceConfig`];
    /// * `mem`  — global traffic at the per-SM sustained bandwidth;
    /// * latency exposure — each dependent load round stalls its warp for
    ///   `global_latency` cycles; with `R` resident warps the SM overlaps
    ///   `R` stalls, so `rounds · L / R` remains exposed. `memcpy_async`
    ///   double buffering replaces this with a single pipeline prologue and
    ///   lets compute and memory overlap (`max` instead of `+`).
    fn sm_profile(&self, c: &Counters, warps: usize, mode: CopyMode) -> BoundProfile {
        if warps == 0 {
            return BoundProfile::default();
        }
        let d = &self.cfg;
        let comp = c.mma as f64 * d.cycles_per_mma
            + c.fma as f64 * d.cycles_per_warp_fma
            + c.ldmatrix as f64 * d.cycles_per_ldmatrix
            + c.shared_tx as f64 * d.cycles_per_shared_tx
            + c.alu as f64 * d.cycles_per_alu;
        let mem = c.global_bytes as f64 / d.global_bytes_per_cycle;
        let resident = warps.min(d.max_resident_warps).max(1) as f64;
        let exposure = match mode {
            CopyMode::Synchronous => c.global_rounds as f64 * d.global_latency / resident,
            CopyMode::AsyncPipelined => d.global_latency, // pipeline prologue
        };
        BoundProfile {
            comp_cycles: comp,
            mem_cycles: mem,
            exposure_cycles: exposure,
        }
    }

    /// Composes a breakdown into busy cycles under the given copy mode.
    fn profile_cycles(&self, p: &BoundProfile, mode: CopyMode) -> f64 {
        if *p == BoundProfile::default() {
            return 0.0;
        }
        match mode {
            CopyMode::Synchronous => p.comp_cycles + p.mem_cycles + p.exposure_cycles,
            CopyMode::AsyncPipelined => p.comp_cycles.max(p.mem_cycles) + p.exposure_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> Gpu {
        Gpu::a100()
    }

    #[test]
    fn launch_collects_outputs_in_order() {
        let (res, outs) = gpu()
            .launch(64, &LaunchConfig::default(), |ctx| {
                ctx.mma(1);
                ctx.warp_id * 10
            })
            .unwrap();
        assert_eq!(outs.len(), 64);
        assert_eq!(outs[5], 50);
        assert_eq!(res.totals.mma, 64);
        assert_eq!(res.warps, 64);
    }

    #[test]
    fn oom_is_reported() {
        let cfg = LaunchConfig {
            footprint_bytes: usize::MAX,
            ..Default::default()
        };
        let err = gpu().launch(1, &cfg, |_| ()).unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }));
    }

    #[test]
    fn shared_overflow_is_reported() {
        let cfg = LaunchConfig {
            shared_bytes_per_block: 10 * 1024 * 1024,
            ..Default::default()
        };
        let err = gpu().launch(1, &cfg, |_| ()).unwrap_err();
        assert!(matches!(err, SimError::SharedMemoryExceeded { .. }));
    }

    #[test]
    fn more_work_takes_longer() {
        let run = |mmas: u64| {
            gpu()
                .launch(108 * 8, &LaunchConfig::default(), |ctx| ctx.mma(mmas))
                .unwrap()
                .0
                .cycles
        };
        assert!(run(1000) > run(10));
    }

    #[test]
    fn async_copy_overlaps_compute_and_memory() {
        let work = |mode| {
            let cfg = LaunchConfig {
                copy_mode: mode,
                ..Default::default()
            };
            gpu()
                .launch(108, &cfg, |ctx| {
                    ctx.mma(1000);
                    ctx.global_contiguous(100_000);
                    ctx.counters.global_rounds += 99; // 100 rounds total
                })
                .unwrap()
                .0
                .cycles
        };
        let sync = work(CopyMode::Synchronous);
        let asynchronous = work(CopyMode::AsyncPipelined);
        assert!(
            asynchronous < sync,
            "async ({asynchronous}) must beat sync ({sync})"
        );
    }

    #[test]
    fn imbalanced_warps_bound_kernel_time() {
        // One heavy warp among many light ones: the slowest SM dominates.
        let (res, _) = gpu()
            .launch(108 * 2, &LaunchConfig::default(), |ctx| {
                if ctx.warp_id == 0 {
                    ctx.mma(100_000);
                } else {
                    ctx.mma(10);
                }
            })
            .unwrap();
        assert!(
            res.sm_imbalance() > 10.0,
            "imbalance {}",
            res.sm_imbalance()
        );
        // Wall time tracks the heavy SM, not the average.
        assert!(res.cycles > 100_000.0 * gpu().cfg.cycles_per_mma * 0.99);
    }

    #[test]
    fn gflops_uses_useful_flop_only() {
        let (res, _) = gpu()
            .launch(108, &LaunchConfig::default(), |ctx| {
                ctx.mma(100);
                ctx.useful_flop(1_000_000);
            })
            .unwrap();
        let expect = 1_000_000.0 * 108.0 / (res.time_ms * 1e-3) / 1e9;
        assert!((res.gflops() - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn occupancy_hides_latency_in_sync_mode() {
        let run = |warps: usize| {
            let cfg = LaunchConfig {
                copy_mode: CopyMode::Synchronous,
                ..Default::default()
            };
            let per_warp_rounds = 64;
            let (res, _) = gpu()
                .launch(warps, &cfg, |ctx| {
                    ctx.counters.global_rounds += per_warp_rounds;
                    ctx.global_contiguous(128);
                })
                .unwrap();
            res.cycles / warps as f64
        };
        // With many resident warps the per-warp cost of latency shrinks.
        assert!(run(108 * 32) < run(108));
    }

    #[test]
    fn explicit_assignment_rebalances_hot_warps() {
        // 216 warps, two hot ones that round-robin onto the same SM.
        let hot = |id: usize| id == 0 || id == 108;
        let run = |assignment: Option<Vec<usize>>| {
            let cfg = LaunchConfig {
                assignment,
                ..Default::default()
            };
            gpu()
                .launch(216, &cfg, |ctx| {
                    ctx.mma(if hot(ctx.warp_id) { 50_000 } else { 10 });
                })
                .unwrap()
                .0
        };
        let static_rr = run(None);
        // Balanced: put the two hot warps on different SMs.
        let mut map: Vec<usize> = (0..216).map(|w| w % 108).collect();
        map[108] = 1;
        map[1] = 0;
        let balanced = run(Some(map));
        assert!(
            balanced.cycles < static_rr.cycles,
            "balanced {} vs static {}",
            balanced.cycles,
            static_rr.cycles
        );
        assert!(balanced.sm_imbalance() < static_rr.sm_imbalance());
    }

    #[test]
    fn bound_classification() {
        let gpu = gpu();
        // Pure MMA work: compute bound.
        let (res, _) = gpu
            .launch(108, &LaunchConfig::default(), |ctx| ctx.mma(100_000))
            .unwrap();
        assert_eq!(res.profile.bound(), Bound::Compute);
        // Pure streaming: bandwidth bound.
        let (res, _) = gpu
            .launch(108, &LaunchConfig::default(), |ctx| {
                ctx.global_contiguous(50_000_000);
            })
            .unwrap();
        assert_eq!(res.profile.bound(), Bound::Bandwidth);
        // Few dependent rounds, little work, synchronous: latency bound.
        let cfg = LaunchConfig {
            copy_mode: CopyMode::Synchronous,
            ..Default::default()
        };
        let (res, _) = gpu
            .launch(108, &cfg, |ctx| {
                ctx.counters.global_rounds += 1000;
                ctx.global_contiguous(32);
            })
            .unwrap();
        assert_eq!(res.profile.bound(), Bound::Latency);
    }

    #[test]
    fn bound_display_strings() {
        assert_eq!(Bound::Compute.to_string(), "compute-bound");
        assert_eq!(Bound::Bandwidth.to_string(), "bandwidth-bound");
        assert_eq!(Bound::Latency.to_string(), "latency-bound");
    }

    #[test]
    fn profile_components_sum_to_sync_cycles() {
        let cfg = LaunchConfig {
            copy_mode: CopyMode::Synchronous,
            ..Default::default()
        };
        let gpu = gpu();
        let (res, _) = gpu
            .launch(108, &cfg, |ctx| {
                ctx.mma(10);
                ctx.global_contiguous(1000);
            })
            .unwrap();
        let p = res.profile;
        let expect =
            p.comp_cycles + p.mem_cycles + p.exposure_cycles + gpu.cfg.launch_overhead_cycles;
        assert!((res.cycles - expect).abs() < 1e-9);
    }

    #[test]
    fn sector_rounding_charges_full_sectors() {
        let (res, _) = gpu()
            .launch(1, &LaunchConfig::default(), |ctx| {
                ctx.global_contiguous(1); // 1 byte -> one 32B sector
            })
            .unwrap();
        assert_eq!(res.totals.global_bytes, 32);
    }

    #[test]
    fn fault_free_plan_never_interferes() {
        let plan = Arc::new(FaultPlan::new(crate::fault::FaultConfig::default()));
        let gpu = gpu().with_fault_plan(plan);
        for _ in 0..20 {
            gpu.launch(64, &LaunchConfig::default(), |ctx| ctx.mma(1))
                .unwrap();
        }
    }

    #[test]
    fn pinned_key_reproduces_the_same_fault() {
        let cfg = crate::fault::FaultConfig {
            seed: 9,
            transient_rate: 0.5,
            ..Default::default()
        };
        let plan = Arc::new(FaultPlan::new(cfg));
        // Find a key that faults, then check it faults identically forever
        // while other keys may succeed.
        let faulting_key = (0..200u64)
            .find(|&k| plan.decide(0, k).outcome.is_some())
            .expect("50% rate must fault some key");
        let gpu = gpu()
            .with_fault_plan(Arc::clone(&plan))
            .with_fault_key(faulting_key);
        for _ in 0..5 {
            let err = gpu
                .launch(8, &LaunchConfig::default(), |ctx| ctx.mma(1))
                .unwrap_err();
            assert_eq!(
                err,
                SimError::FaultInjected {
                    kind: FaultKind::TransientLaunchFailure,
                    device: 0,
                    key: faulting_key,
                }
            );
        }
        let ok_key = (0..200u64)
            .find(|&k| plan.decide(0, k).outcome.is_none())
            .expect("50% rate must pass some key");
        gpu.clone()
            .with_fault_key(ok_key)
            .launch(8, &LaunchConfig::default(), |ctx| ctx.mma(1))
            .unwrap();
    }

    #[test]
    fn ecc_fault_runs_the_kernel_before_failing() {
        use std::sync::atomic::AtomicUsize;
        let cfg = crate::fault::FaultConfig {
            seed: 4,
            ecc_rate: 1.0,
            ..Default::default()
        };
        let gpu = gpu()
            .with_fault_plan(Arc::new(FaultPlan::new(cfg)))
            .with_fault_key(0);
        let ran = AtomicUsize::new(0);
        let err = gpu
            .launch(16, &LaunchConfig::default(), |ctx| {
                ran.fetch_add(1, Ordering::Relaxed);
                ctx.mma(1);
            })
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::FaultInjected {
                kind: FaultKind::EccCorruption,
                ..
            }
        ));
        assert_eq!(ran.load(Ordering::Relaxed), 16, "ECC must run the kernel");
    }

    #[test]
    fn transient_fault_fails_before_running_the_kernel() {
        use std::sync::atomic::AtomicUsize;
        let cfg = crate::fault::FaultConfig {
            seed: 4,
            transient_rate: 1.0,
            ..Default::default()
        };
        let gpu = gpu()
            .with_fault_plan(Arc::new(FaultPlan::new(cfg)))
            .with_fault_key(0);
        let ran = AtomicUsize::new(0);
        let err = gpu
            .launch(16, &LaunchConfig::default(), |ctx| {
                ran.fetch_add(1, Ordering::Relaxed);
                ctx.mma(1);
            })
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::FaultInjected {
                kind: FaultKind::TransientLaunchFailure,
                ..
            }
        ));
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn straggler_inflates_kernel_time_without_touching_results() {
        let base = gpu();
        let clean = base
            .launch(108 * 4, &LaunchConfig::default(), |ctx| {
                ctx.mma(1000);
                ctx.warp_id
            })
            .unwrap();
        let cfg = crate::fault::FaultConfig {
            seed: 2,
            straggler_rate: 1.0,
            straggler_slowdown: 4.0,
            ..Default::default()
        };
        let slow = base
            .clone()
            .with_fault_plan(Arc::new(FaultPlan::new(cfg)))
            .with_fault_key(0)
            .launch(108 * 4, &LaunchConfig::default(), |ctx| {
                ctx.mma(1000);
                ctx.warp_id
            })
            .unwrap();
        assert_eq!(clean.1, slow.1, "straggler must not change outputs");
        assert!(
            slow.0.cycles > clean.0.cycles * 2.0,
            "straggler ({}) must inflate clean time ({})",
            slow.0.cycles,
            clean.0.cycles
        );
    }

    #[test]
    fn unkeyed_launches_draw_sequential_ordinals() {
        // Without a pinned key the ordinal advances per launch, so a 100%
        // transient plan faults every launch with increasing keys.
        let cfg = crate::fault::FaultConfig {
            seed: 1,
            transient_rate: 1.0,
            ..Default::default()
        };
        let gpu = gpu().with_fault_plan(Arc::new(FaultPlan::new(cfg)));
        for expect in 0..3u64 {
            let err = gpu.launch(1, &LaunchConfig::default(), |_| ()).unwrap_err();
            let SimError::FaultInjected { key, .. } = err else {
                panic!("expected fault");
            };
            assert_eq!(key, expect);
        }
    }

    #[test]
    fn fault_display_names_the_device_and_kind() {
        let err = SimError::FaultInjected {
            kind: FaultKind::DeviceOffline,
            device: 3,
            key: 0x2a,
        };
        assert_eq!(
            err.to_string(),
            "injected offline fault on device 3 (fault key 0x2a)"
        );
    }

    #[test]
    fn gather_charges_sector_per_element() {
        let (res, _) = gpu()
            .launch(1, &LaunchConfig::default(), |ctx| {
                ctx.global_gather(10, 2); // 10 scattered f16 loads
            })
            .unwrap();
        assert_eq!(res.totals.global_bytes, 10 * 32);
        assert_eq!(res.totals.global_rounds, 1);
    }
}
