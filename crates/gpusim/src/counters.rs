//! Instruction and memory-traffic counters accumulated by simulated kernels.

use serde::Serialize;

/// Per-warp (and, summed, per-kernel) activity counters. Every simulated
/// kernel records *what it did*; `timing.rs` turns the counts into cycles
/// using the device constants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct Counters {
    /// Tensor Core MMA warp instructions.
    pub mma: u64,
    /// CUDA-core FMA warp instructions (32 lanes each).
    pub fma: u64,
    /// `ldmatrix` warp instructions.
    pub ldmatrix: u64,
    /// 128-byte shared-memory transactions, bank conflicts already expanded.
    pub shared_tx: u64,
    /// Global memory traffic in bytes, sector-rounded.
    pub global_bytes: u64,
    /// Dependent global load rounds: each round exposes one global latency
    /// unless hidden by async copy / occupancy.
    pub global_rounds: u64,
    /// Generic ALU warp instructions (indexing, predicates, loop control).
    pub alu: u64,
    /// Useful floating-point operations (2·nnz·N for SpMM), set by the
    /// kernel for GFLOP/s reporting. Padding FLOP are *not* useful.
    pub flop_useful: u64,
}

impl Counters {
    /// Element-wise sum.
    pub fn add(&mut self, other: &Counters) {
        self.mma += other.mma;
        self.fma += other.fma;
        self.ldmatrix += other.ldmatrix;
        self.shared_tx += other.shared_tx;
        self.global_bytes += other.global_bytes;
        self.global_rounds += other.global_rounds;
        self.alu += other.alu;
        self.flop_useful += other.flop_useful;
    }

    /// Total FLOP actually executed on Tensor Cores assuming `flop_per_mma`
    /// per instruction (includes padding work).
    pub fn tc_flop(&self, flop_per_mma: u64) -> u64 {
        self.mma * flop_per_mma
    }
}

/// Computes the number of shared-memory transactions needed by one warp-wide
/// access, given the 32 per-lane byte addresses.
///
/// A100 shared memory has 32 banks of 4-byte words. Lanes hitting different
/// words in the same bank serialize into extra transactions; lanes reading
/// the same word broadcast in one. The result is the maximum, over banks, of
/// the number of distinct words addressed in that bank (minimum 1 for any
/// non-empty access).
pub fn shared_transactions(addrs: &[u64]) -> u64 {
    if addrs.is_empty() {
        return 0;
    }
    // 32 banks; collect distinct word addresses per bank.
    let mut per_bank: [Vec<u64>; 32] = core::array::from_fn(|_| Vec::new());
    for &a in addrs {
        let word = a / 4;
        let bank = (word % 32) as usize;
        if !per_bank[bank].contains(&word) {
            per_bank[bank].push(word);
        }
    }
    per_bank
        .iter()
        .map(|v| v.len() as u64)
        .max()
        .unwrap_or(0)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sums_fields() {
        let mut a = Counters {
            mma: 1,
            fma: 2,
            global_bytes: 100,
            ..Default::default()
        };
        let b = Counters {
            mma: 3,
            shared_tx: 5,
            global_bytes: 28,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.mma, 4);
        assert_eq!(a.fma, 2);
        assert_eq!(a.shared_tx, 5);
        assert_eq!(a.global_bytes, 128);
    }

    #[test]
    fn conflict_free_stride_4_is_one_transaction() {
        // 32 lanes reading consecutive 4-byte words: one word per bank.
        let addrs: Vec<u64> = (0..32).map(|l| l * 4).collect();
        assert_eq!(shared_transactions(&addrs), 1);
    }

    #[test]
    fn same_word_broadcast_is_one_transaction() {
        let addrs = vec![64u64; 32];
        assert_eq!(shared_transactions(&addrs), 1);
    }

    #[test]
    fn stride_128_bytes_is_32_way_conflict() {
        // All lanes hit bank 0 with distinct words: fully serialized.
        let addrs: Vec<u64> = (0..32).map(|l| l * 128).collect();
        assert_eq!(shared_transactions(&addrs), 32);
    }

    #[test]
    fn two_way_conflict() {
        // Lanes 0..16 words 0..16, lanes 16..32 words 32..48: each bank gets
        // two distinct words.
        let addrs: Vec<u64> = (0..32)
            .map(|l| if l < 16 { l * 4 } else { (l - 16) * 4 + 32 * 4 })
            .collect();
        assert_eq!(shared_transactions(&addrs), 2);
    }

    #[test]
    fn half_warp_access_is_still_one_transaction() {
        let addrs: Vec<u64> = (0..16).map(|l| l * 4).collect();
        assert_eq!(shared_transactions(&addrs), 1);
    }

    #[test]
    fn tc_flop_counts_padding_work() {
        let c = Counters {
            mma: 10,
            flop_useful: 1000,
            ..Default::default()
        };
        assert_eq!(c.tc_flop(4096), 40_960);
        assert!(c.tc_flop(4096) > c.flop_useful);
    }
}
