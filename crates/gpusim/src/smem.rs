//! Shared-memory staging layouts and `ldmatrix` bank-conflict analysis.
//!
//! §II-A3 of the paper: "memory alignment and software pipelining play an
//! important role" — concretely, a 16×16 FP16 tile staged row-major into
//! shared memory causes multi-way bank conflicts when `ldmatrix` reads it
//! back (rows 32 bytes apart revisit the same banks). The standard cures
//! are an XOR swizzle of the chunk address (effective for wide tiles) or a
//! skewed/padded row stride (the fix for narrow MMA operands). This module
//! models all three layouts, computes the exact transaction counts the
//! hardware would issue, and provides a functional staging buffer so
//! kernels can verify the remappings are value-preserving.

use crate::counters::shared_transactions;

/// How a tile is laid out in shared memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SmemLayout {
    /// Naive row-major: element `(r, c)` at byte `r·row_stride + c·elem`.
    RowMajor,
    /// XOR swizzle: the 16-byte chunk index within a row is XORed with the
    /// low bits of the row, spreading rows across banks (the cutlass /
    /// CUDA-samples pattern). Effective when a row spans ≥ 8 chunks; a
    /// 32-byte-wide tile has only 2 chunks and cannot be fixed this way.
    XorSwizzle,
    /// Skewed row stride: each row is padded by one 16-byte chunk, shifting
    /// successive rows across banks — the classic remedy for *narrow* tiles
    /// like the 16×16 FP16 MMA operand.
    Padded,
}

/// A staged tile of `rows × cols` 2-byte elements in simulated shared
/// memory, supporting both layouts.
#[derive(Clone, Debug)]
pub struct SharedTile {
    rows: usize,
    cols: usize,
    layout: SmemLayout,
    /// Backing bytes, addressed by the layout functions.
    data: Vec<u16>,
}

impl SharedTile {
    /// Allocates a tile. `cols` should be a multiple of 8 halves (16 bytes)
    /// so rows decompose into whole chunks.
    pub fn new(rows: usize, cols: usize, layout: SmemLayout) -> Self {
        let stride_halves = match layout {
            SmemLayout::Padded => cols + 8, // one 16-byte skew chunk
            _ => cols,
        };
        SharedTile {
            rows,
            cols,
            layout,
            data: vec![0u16; rows * stride_halves],
        }
    }

    #[inline]
    fn row_stride_bytes(&self) -> u64 {
        match self.layout {
            SmemLayout::Padded => ((self.cols + 8) * 2) as u64,
            _ => (self.cols * 2) as u64,
        }
    }

    /// Byte address of element `(r, c)` under the configured layout.
    pub fn addr(&self, r: usize, c: usize) -> u64 {
        debug_assert!(r < self.rows && c < self.cols);
        let base = r as u64 * self.row_stride_bytes();
        match self.layout {
            SmemLayout::RowMajor => base + (c * 2) as u64,
            SmemLayout::XorSwizzle => {
                // Swizzle 16-byte chunks: chunk index ^= low bits of row.
                let chunk = (c * 2 / 16) as u64;
                let within = (c * 2 % 16) as u64;
                let chunks_per_row = (self.row_stride_bytes() / 16).max(1);
                let swizzled = (chunk ^ (r as u64)) % chunks_per_row;
                base + swizzled * 16 + within
            }
            SmemLayout::Padded => base + (c * 2) as u64,
        }
    }

    /// Stores element `(r, c)`.
    pub fn store(&mut self, r: usize, c: usize, v: u16) {
        let a = self.addr(r, c) / 2;
        self.data[a as usize] = v;
    }

    /// Loads element `(r, c)`.
    pub fn load(&self, r: usize, c: usize) -> u16 {
        let a = self.addr(r, c) / 2;
        self.data[a as usize]
    }

    /// Transactions of one `ldmatrix.m8n8` phase reading 8 consecutive tile
    /// rows starting at `row0`, 16 bytes per row from column-chunk `chunk`
    /// (each lane supplies one row address; the hardware coalesces the
    /// 8×16 B into 128 B if the banks don't collide).
    pub fn ldmatrix_phase_transactions(&self, row0: usize, chunk: usize) -> u64 {
        let mut addrs = Vec::with_capacity(32);
        for r in row0..(row0 + 8).min(self.rows) {
            // The 16-byte row segment covers 4 consecutive 4-byte words.
            let base = self.addr(r, chunk * 8); // 8 halves = 16 bytes
            for w in 0..4 {
                addrs.push(base + w * 4);
            }
        }
        shared_transactions(&addrs)
    }

    /// Total transactions of an `ldmatrix.x4` reading a 16×16 FP16 operand
    /// (four 8×8 matrices = four phases).
    pub fn ldmatrix_x4_transactions(&self) -> u64 {
        assert!(self.rows >= 16 && self.cols >= 16, "x4 needs a 16x16 tile");
        let mut total = 0;
        for (row0, chunk) in [(0, 0), (8, 0), (0, 1), (8, 1)] {
            total += self.ldmatrix_phase_transactions(row0, chunk);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staged(layout: SmemLayout) -> SharedTile {
        let mut t = SharedTile::new(16, 16, layout);
        for r in 0..16 {
            for c in 0..16 {
                t.store(r, c, (r * 16 + c) as u16);
            }
        }
        t
    }

    #[test]
    fn row_major_16x16_ldmatrix_conflicts() {
        // Row stride 32 B = 8 words: rows 4 apart hit the same banks, so
        // each 8-row phase is a 2-way conflict -> 8 transactions for x4
        // instead of the ideal 4.
        let t = staged(SmemLayout::RowMajor);
        assert_eq!(t.ldmatrix_x4_transactions(), 8);
    }

    #[test]
    fn xor_swizzle_cannot_fix_narrow_tiles() {
        // A 16x16 FP16 tile has only 2 chunks per row: the XOR swizzle
        // degenerates to a parity flip and the 4-row bank period remains.
        let t = staged(SmemLayout::XorSwizzle);
        assert_eq!(t.ldmatrix_x4_transactions(), 8);
    }

    #[test]
    fn padded_stride_removes_conflicts_on_narrow_tiles() {
        // The 16-byte skew shifts each row by 4 banks: 8 consecutive rows
        // cover all 32 banks exactly once per phase.
        let t = staged(SmemLayout::Padded);
        assert_eq!(
            t.ldmatrix_x4_transactions(),
            4,
            "padded staging must be conflict-free (1 transaction/phase)"
        );
    }

    #[test]
    fn all_layouts_preserve_values() {
        let plain = staged(SmemLayout::RowMajor);
        for layout in [SmemLayout::XorSwizzle, SmemLayout::Padded] {
            let other = staged(layout);
            for r in 0..16 {
                for c in 0..16 {
                    assert_eq!(plain.load(r, c), other.load(r, c), "at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn swizzle_is_a_bijection_within_each_row() {
        // Every byte address must be used exactly once.
        let t = SharedTile::new(16, 16, SmemLayout::XorSwizzle);
        let mut seen = std::collections::HashSet::new();
        for r in 0..16 {
            for c in 0..16 {
                assert!(seen.insert(t.addr(r, c)), "collision at ({r},{c})");
            }
        }
    }

    #[test]
    fn wider_tiles_are_conflict_free_even_row_major() {
        // A 16x64 FP16 tile has a 128-byte row stride: each row occupies
        // all 32 banks once, and an ldmatrix phase over one 16-byte chunk
        // column still collides (same chunk -> same banks every row).
        let t = SharedTile::new(16, 64, SmemLayout::RowMajor);
        // 8 rows, same chunk: all rows hit the same 4 banks -> 8-way.
        assert_eq!(t.ldmatrix_phase_transactions(0, 0), 8);
        // Swizzle fixes it.
        let t = SharedTile::new(16, 64, SmemLayout::XorSwizzle);
        assert_eq!(t.ldmatrix_phase_transactions(0, 0), 1);
    }
}
