//! PTX-level register fragment layouts for `mma.sync.aligned.m16n8k16` and
//! `ldmatrix`, at per-lane granularity.
//!
//! The fast kernel path in this simulator operates on whole tiles (see
//! `mma.rs`); this module pins down the *exact* lane-to-element ownership
//! mandated by the PTX ISA for the instruction used in the paper's
//! Listing 1 (`HMMA16816`) and Listings 2–3 (`LDMATRIX_X2/_X4`), and the
//! test-suite proves the tile path equivalent to a faithful 32-lane
//! execution. This is the part of the substitution that keeps the simulated
//! Tensor Core honest.
//!
//! Layout reference (PTX ISA, "Matrix Fragments for mma.m16n8k16"):
//! with `groupID = lane >> 2` and `tid = lane & 3`,
//!
//! * A (16×16, row-major, 8 registers per lane `a0..a7`):
//!   `a0,a1 -> (groupID,       tid*2 + {0,1})`,
//!   `a2,a3 -> (groupID + 8,   tid*2 + {0,1})`,
//!   `a4,a5 -> (groupID,       tid*2 + 8 + {0,1})`,
//!   `a6,a7 -> (groupID + 8,   tid*2 + 8 + {0,1})`.
//! * B (16×8, col-major fragment, 4 registers `b0..b3`):
//!   `b0,b1 -> (tid*2 + {0,1},     groupID)`,
//!   `b2,b3 -> (tid*2 + 8 + {0,1}, groupID)`.
//! * C/D (16×8, 4 registers `c0..c3`):
//!   `c0,c1 -> (groupID,     tid*2 + {0,1})`,
//!   `c2,c3 -> (groupID + 8, tid*2 + {0,1})`.

use smat_formats::scalar::Element;

/// Number of lanes in a warp; fragment layouts are defined for exactly 32.
pub const WARP_LANES: usize = 32;

/// Coordinates (row, col) of the 8 A-fragment registers of `lane`.
pub fn a_fragment_coords(lane: usize) -> [(usize, usize); 8] {
    debug_assert!(lane < WARP_LANES);
    let g = lane >> 2;
    let t = lane & 3;
    [
        (g, t * 2),
        (g, t * 2 + 1),
        (g + 8, t * 2),
        (g + 8, t * 2 + 1),
        (g, t * 2 + 8),
        (g, t * 2 + 9),
        (g + 8, t * 2 + 8),
        (g + 8, t * 2 + 9),
    ]
}

/// Coordinates (row, col) of the 4 B-fragment registers of `lane`
/// (B is the 16×8 right-hand operand, indexed `(k, n)`).
pub fn b_fragment_coords(lane: usize) -> [(usize, usize); 4] {
    debug_assert!(lane < WARP_LANES);
    let g = lane >> 2;
    let t = lane & 3;
    [(t * 2, g), (t * 2 + 1, g), (t * 2 + 8, g), (t * 2 + 9, g)]
}

/// Coordinates (row, col) of the 4 C/D-fragment registers of `lane`
/// (C is the 16×8 accumulator).
pub fn c_fragment_coords(lane: usize) -> [(usize, usize); 4] {
    debug_assert!(lane < WARP_LANES);
    let g = lane >> 2;
    let t = lane & 3;
    [
        (g, t * 2),
        (g, t * 2 + 1),
        (g + 8, t * 2),
        (g + 8, t * 2 + 1),
    ]
}

/// Per-lane register file for one warp-wide m16n8k16 MMA.
#[derive(Clone, Debug)]
pub struct WarpFragments<T> {
    /// `a[lane][r]`: 8 A registers per lane.
    pub a: Vec<[T; 8]>,
    /// `b[lane][r]`: 4 B registers per lane.
    pub b: Vec<[T; 4]>,
    /// `c[lane][r]`: 4 accumulator registers per lane.
    pub c: Vec<[T; 4]>,
}

impl<T: Element> WarpFragments<T> {
    /// Distributes row-major tiles (`a`: 16×16, `b`: 16×8, `c`: 16×8) into
    /// per-lane registers.
    pub fn distribute(a_tile: &[T], b_tile: &[T], c_tile: &[T]) -> Self {
        WarpFragments {
            a: distribute_a(a_tile),
            b: distribute_b(b_tile),
            c: distribute_c(c_tile),
        }
    }

    /// Executes one `mma.sync.aligned.m16n8k16`, updating the accumulator
    /// registers in place.
    pub fn mma(&mut self) {
        self.c = mma_sync_m16n8k16(&self.a, &self.b, &self.c);
    }

    /// Gathers the accumulator registers back into a row-major 16×8 tile.
    pub fn c_tile(&self) -> Vec<T> {
        collect_c(&self.c)
    }
}

/// Distributes a row-major 16×16 A tile into per-lane registers, exactly as
/// two `ldmatrix.x4` + register shuffles would.
pub fn distribute_a<T: Element>(tile: &[T]) -> Vec<[T; 8]> {
    assert_eq!(tile.len(), 16 * 16);
    (0..WARP_LANES)
        .map(|lane| {
            let coords = a_fragment_coords(lane);
            core::array::from_fn(|r| tile[coords[r].0 * 16 + coords[r].1])
        })
        .collect()
}

/// Distributes a row-major 16×8 B tile (`(k, n)` indexing) into per-lane
/// registers, as `ldmatrix.x2.trans` would.
pub fn distribute_b<T: Element>(tile: &[T]) -> Vec<[T; 4]> {
    assert_eq!(tile.len(), 16 * 8);
    (0..WARP_LANES)
        .map(|lane| {
            let coords = b_fragment_coords(lane);
            core::array::from_fn(|r| tile[coords[r].0 * 8 + coords[r].1])
        })
        .collect()
}

/// Distributes a row-major 16×8 C tile into per-lane accumulators.
pub fn distribute_c<T: Element>(tile: &[T]) -> Vec<[T; 4]> {
    assert_eq!(tile.len(), 16 * 8);
    (0..WARP_LANES)
        .map(|lane| {
            let coords = c_fragment_coords(lane);
            core::array::from_fn(|r| tile[coords[r].0 * 8 + coords[r].1])
        })
        .collect()
}

/// Gathers per-lane accumulators back into a row-major 16×8 tile (the
/// epilogue store through shared memory in Algorithm 1, lines 10–11).
pub fn collect_c<T: Element>(frags: &[[T; 4]]) -> Vec<T> {
    assert_eq!(frags.len(), WARP_LANES);
    let mut tile = vec![T::zero(); 16 * 8];
    for (lane, regs) in frags.iter().enumerate() {
        for (r, &(row, col)) in c_fragment_coords(lane).iter().enumerate() {
            tile[row * 8 + col] = regs[r];
        }
    }
    tile
}

/// Executes one warp-synchronous `mma.sync.aligned.m16n8k16` across all 32
/// lanes at register granularity: every lane's `d` registers are computed
/// from the fragment registers *of the whole warp*, exactly as the hardware
/// broadcast network does. Accumulation follows the Tensor Core datapath:
/// products and the K-sum in accumulator precision, one rounding on store.
pub fn mma_sync_m16n8k16<T: Element>(a: &[[T; 8]], b: &[[T; 4]], c: &[[T; 4]]) -> Vec<[T; 4]> {
    assert_eq!(a.len(), WARP_LANES);
    assert_eq!(b.len(), WARP_LANES);
    assert_eq!(c.len(), WARP_LANES);

    // Reassemble the warp-wide operand view once; each lane then computes
    // its 4 outputs. (The hardware equivalently exchanges registers over the
    // TC operand network.)
    let mut a_tile = [T::zero(); 16 * 16];
    for (lane, regs) in a.iter().enumerate() {
        for (r, &(row, col)) in a_fragment_coords(lane).iter().enumerate() {
            a_tile[row * 16 + col] = regs[r];
        }
    }
    let mut b_tile = [T::zero(); 16 * 8];
    for (lane, regs) in b.iter().enumerate() {
        for (r, &(row, col)) in b_fragment_coords(lane).iter().enumerate() {
            b_tile[row * 8 + col] = regs[r];
        }
    }

    (0..WARP_LANES)
        .map(|lane| {
            let coords = c_fragment_coords(lane);
            core::array::from_fn(|r| {
                let (row, col) = coords[r];
                let mut acc = T::accum_zero();
                for k in 0..16 {
                    acc = T::mul_acc(acc, a_tile[row * 16 + k], b_tile[k * 8 + col]);
                }
                // c += a*b with the existing accumulator folded in at
                // accumulator precision.
                let folded = T::mul_acc(acc, c[lane][r], T::from_f64(1.0));
                T::from_accum(folded)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::F16;

    #[test]
    fn a_fragment_covers_tile_exactly_once() {
        let mut count = vec![0usize; 16 * 16];
        for lane in 0..WARP_LANES {
            for (r, c) in a_fragment_coords(lane) {
                assert!(r < 16 && c < 16);
                count[r * 16 + c] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1), "each element owned once");
    }

    #[test]
    fn b_fragment_covers_tile_exactly_once() {
        let mut count = vec![0usize; 16 * 8];
        for lane in 0..WARP_LANES {
            for (r, c) in b_fragment_coords(lane) {
                assert!(r < 16 && c < 8);
                count[r * 8 + c] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn c_fragment_covers_tile_exactly_once() {
        let mut count = vec![0usize; 16 * 8];
        for lane in 0..WARP_LANES {
            for (r, c) in c_fragment_coords(lane) {
                count[r * 8 + c] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn distribute_collect_roundtrip() {
        let tile: Vec<F16> = (0..128).map(|i| F16::from_f32(i as f32)).collect();
        let frags = distribute_c(&tile);
        assert_eq!(collect_c(&frags), tile);
    }

    #[test]
    fn warp_fragments_chain_two_mmas() {
        // Two chained MMAs accumulate: D = A*B + (A*B + C0).
        let a_tile: Vec<F16> = (0..256)
            .map(|i| F16::from_f32(((i % 5) as f32) - 2.0))
            .collect();
        let b_tile: Vec<F16> = (0..128)
            .map(|i| F16::from_f32(((i % 3) as f32) - 1.0))
            .collect();
        let c_tile: Vec<F16> = vec![F16::ONE; 128];
        let mut frags = WarpFragments::distribute(&a_tile, &b_tile, &c_tile);
        frags.mma();
        frags.mma();
        let got = frags.c_tile();
        // Reference: accumulate twice with per-MMA rounding.
        let mut want = c_tile.clone();
        crate::mma::mma_tile(crate::MmaShape::M16N8K16, &a_tile, &b_tile, &mut want);
        crate::mma::mma_tile(crate::MmaShape::M16N8K16, &a_tile, &b_tile, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn per_lane_mma_matches_scalar_reference() {
        let a_tile: Vec<F16> = (0..256)
            .map(|i| F16::from_f32(((i * 7) % 13) as f32 - 6.0))
            .collect();
        let b_tile: Vec<F16> = (0..128)
            .map(|i| F16::from_f32(((i * 5) % 11) as f32 - 5.0))
            .collect();
        let c_tile: Vec<F16> = (0..128).map(|i| F16::from_f32((i % 4) as f32)).collect();

        let d = mma_sync_m16n8k16(
            &distribute_a(&a_tile),
            &distribute_b(&b_tile),
            &distribute_c(&c_tile),
        );
        let d_tile = collect_c(&d);

        for row in 0..16 {
            for col in 0..8 {
                let mut acc = 0f32;
                for k in 0..16 {
                    acc += a_tile[row * 16 + k].to_f32() * b_tile[k * 8 + col].to_f32();
                }
                acc += c_tile[row * 8 + col].to_f32();
                let want = F16::from_f32(acc);
                assert_eq!(d_tile[row * 8 + col], want, "mismatch at ({row},{col})");
            }
        }
    }
}
