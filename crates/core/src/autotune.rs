//! Inspector-stage autotuning: pick the block shape and reordering scheme
//! for a given matrix by dry-running candidates on the simulated device.
//!
//! The paper fixes 16×16 blocks and Jaccard clustering; its own block-size
//! discussion (§II-B3: padding cost grows with block size, block count with
//! its inverse) implies the optimum is matrix-dependent. Since preparation
//! is a one-time inspector cost and the executor is launched many times,
//! spending a few simulated launches to choose the configuration is the
//! natural extension — this module implements that search.

use serde::Serialize;
use smat_formats::{Csr, Dense, Element};
use smat_reorder::ReorderAlgorithm;

use crate::config::SmatConfig;
use crate::pipeline::Smat;
use crate::planner::ReorderCache;

/// One evaluated candidate configuration.
#[derive(Clone, Debug, Serialize)]
pub struct Trial {
    /// Block height.
    pub block_h: usize,
    /// Block width.
    pub block_w: usize,
    /// Reordering scheme name (display form of `algorithm`).
    pub reorder: String,
    /// The full reordering scheme, parameters included. `reorder` alone is
    /// ambiguous: every `tau` of the Jaccard family shares one name.
    pub algorithm: ReorderAlgorithm,
    /// Simulated kernel time for the probe SpMM, in milliseconds.
    pub time_ms: f64,
    /// Stored blocks after preprocessing.
    pub nblocks: usize,
    /// Fraction of true nonzeros per stored block.
    pub fill_ratio: f64,
}

impl Trial {
    /// Whether this trial evaluated exactly the given candidate
    /// (block shape *and* full reordering scheme).
    fn matches(&self, block_h: usize, block_w: usize, algorithm: ReorderAlgorithm) -> bool {
        self.block_h == block_h && self.block_w == block_w && self.algorithm == algorithm
    }
}

/// Autotuning outcome: the winning configuration plus the full trial log.
#[derive(Clone, Debug)]
pub struct TuneReport {
    /// Best configuration found (lowest simulated time).
    pub best: SmatConfig,
    /// All trials, in evaluation order.
    pub trials: Vec<Trial>,
    /// Distinct permutations actually computed; at most
    /// `trials.len()`, and strictly fewer whenever the space crosses one
    /// algorithm with block shapes its permutation ignores (see
    /// [`ReorderAlgorithm::permutation_signature`]).
    pub reorders_computed: usize,
}

impl TuneReport {
    /// Simulated speedup of the winner over the paper's default
    /// configuration ([`SmatConfig::default`]: 16×16, Jaccard rows at
    /// `tau = 0.7`), if that exact configuration was evaluated.
    ///
    /// The default trial is matched on the *full* configuration — block
    /// shape and reordering scheme including parameters — and the
    /// denominator is the time of the trial corresponding to
    /// [`TuneReport::best`], so on ties the reported speedup describes the
    /// configuration actually returned.
    pub fn speedup_over_default(&self) -> Option<f64> {
        let d = SmatConfig::default();
        let default = self
            .trials
            .iter()
            .find(|t| t.matches(d.block_h, d.block_w, d.reorder))?;
        let winner = self
            .trials
            .iter()
            .find(|t| t.matches(self.best.block_h, self.best.block_w, self.best.reorder))?;
        Some(default.time_ms / winner.time_ms)
    }
}

/// Candidate search space.
#[derive(Clone, Debug)]
pub struct TuneSpace {
    /// Block shapes to try (each must map to a supported MMA fragment
    /// shape: `m = h`, `k = w`).
    pub block_shapes: Vec<(usize, usize)>,
    /// Reordering schemes to try.
    pub reorderings: Vec<ReorderAlgorithm>,
}

impl Default for TuneSpace {
    fn default() -> Self {
        TuneSpace {
            block_shapes: vec![(16, 16), (16, 8)],
            reorderings: vec![
                ReorderAlgorithm::Identity,
                ReorderAlgorithm::JaccardRows { tau: 0.7 },
                ReorderAlgorithm::GrayCode,
            ],
        }
    }
}

/// Tunes the SMaT configuration for matrix `a` and an SpMM with `n_cols`
/// output columns: prepares and probe-runs every candidate in `space`,
/// returning the fastest.
///
/// The permutation is computed once per effective signature and reused
/// across block shapes it does not depend on
/// ([`ReorderAlgorithm::permutation_signature`]), so tuning costs
/// O(distinct permutations) reorder passes rather than O(candidates) —
/// with identical trial results, since the reused permutation is exactly
/// what the per-candidate recomputation would produce.
///
/// # Panics
/// Panics if `space` is empty or a probe launch fails.
pub fn autotune<T: Element>(
    a: &Csr<T>,
    n_cols: usize,
    base: &SmatConfig,
    space: &TuneSpace,
) -> TuneReport {
    assert!(
        !space.block_shapes.is_empty() && !space.reorderings.is_empty(),
        "empty tuning space"
    );
    // A fixed probe right-hand side; values are irrelevant for timing.
    let probe = Dense::from_fn(a.ncols(), n_cols, |i, j| T::from_f64(((i + j) % 3) as f64));

    let mut cache = ReorderCache::new(a);
    let mut trials = Vec::new();
    let mut best: Option<(f64, SmatConfig)> = None;
    for &(h, w) in &space.block_shapes {
        for &alg in &space.reorderings {
            let cfg = SmatConfig {
                block_h: h,
                block_w: w,
                reorder: alg,
                ..base.clone()
            };
            let reordering = cache.reordering(alg, h, w);
            let engine = Smat::prepare_with_reordering(a, cfg.clone(), reordering);
            let run = engine.spmm(&probe);
            let t = run.report.elapsed_ms();
            trials.push(Trial {
                block_h: h,
                block_w: w,
                reorder: alg.name().to_string(),
                algorithm: alg,
                time_ms: t,
                nblocks: run.report.nblocks,
                fill_ratio: engine.bcsr().fill_ratio(),
            });
            if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
                best = Some((t, cfg));
            }
        }
    }

    TuneReport {
        best: best.expect("non-empty space").1,
        trials,
        reorders_computed: cache.computed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::{Coo, F16};

    fn scrambled_families(n: usize) -> Csr<F16> {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            let base = (r % 4) * (n / 4);
            for j in 0..6 {
                coo.push(r, (base + j * 16) % n, F16::from_f64(1.0));
            }
        }
        coo.to_csr()
    }

    #[test]
    fn explores_the_whole_space() {
        let a = scrambled_families(128);
        let report = autotune(&a, 8, &SmatConfig::default(), &TuneSpace::default());
        assert_eq!(report.trials.len(), 2 * 3);
        assert!(report.trials.iter().all(|t| t.time_ms > 0.0));
    }

    #[test]
    fn best_is_the_minimum_trial() {
        let a = scrambled_families(96);
        let report = autotune(&a, 8, &SmatConfig::default(), &TuneSpace::default());
        let min = report
            .trials
            .iter()
            .map(|t| t.time_ms)
            .fold(f64::INFINITY, f64::min);
        let best_trial = report
            .trials
            .iter()
            .find(|t| {
                t.block_h == report.best.block_h
                    && t.block_w == report.best.block_w
                    && t.reorder == report.best.reorder.name()
            })
            .expect("best config corresponds to a trial");
        assert_eq!(best_trial.time_ms, min);
    }

    #[test]
    fn reordering_wins_on_scrambled_input() {
        // On an interleaved-family matrix the tuner must not pick Identity.
        let a = scrambled_families(256);
        let report = autotune(&a, 8, &SmatConfig::default(), &TuneSpace::default());
        assert_ne!(
            report.best.reorder,
            ReorderAlgorithm::Identity,
            "trials: {:?}",
            report.trials
        );
    }

    #[test]
    fn speedup_over_default_reported() {
        let a = scrambled_families(128);
        let report = autotune(&a, 8, &SmatConfig::default(), &TuneSpace::default());
        let s = report.speedup_over_default().expect("default in space");
        assert!(s >= 1.0, "winner can't be slower than the default: {s}");
    }

    #[test]
    fn speedup_matches_default_by_full_config_and_best_trial_on_ties() {
        // A tied space that used to produce a wrong answer twice over:
        // a *non-default* tau shares the "jaccard-rows" name with the true
        // default, and the global minimum is a tie between two trials.
        let trial = |h: usize, w: usize, alg: ReorderAlgorithm, t: f64| Trial {
            block_h: h,
            block_w: w,
            reorder: alg.name().to_string(),
            algorithm: alg,
            time_ms: t,
            nblocks: 10,
            fill_ratio: 1.0,
        };
        let d = SmatConfig::default();
        let report = TuneReport {
            // The returned winner: Identity at 16×8, tied at 0.5 ms with
            // the fast non-default Jaccard below.
            best: SmatConfig {
                block_h: 16,
                block_w: 8,
                reorder: ReorderAlgorithm::Identity,
                ..d.clone()
            },
            trials: vec![
                // Name-only matching used to pick THIS trial as "the
                // default" (any tau counts as "jaccard-rows") → speedup 1.0.
                trial(16, 16, ReorderAlgorithm::JaccardRows { tau: 0.3 }, 0.5),
                // The actual default configuration.
                trial(16, 16, ReorderAlgorithm::smat_default(), 4.0),
                trial(16, 8, ReorderAlgorithm::Identity, 0.5),
            ],
            reorders_computed: 3,
        };
        let s = report
            .speedup_over_default()
            .expect("default was evaluated");
        assert_eq!(s, 8.0, "default (4.0) over the returned winner (0.5)");
    }

    #[test]
    fn speedup_is_none_when_exact_default_missing() {
        // Only a non-default tau of the default's *name* was evaluated.
        let alg = ReorderAlgorithm::JaccardRows { tau: 0.3 };
        let report = TuneReport {
            best: SmatConfig {
                reorder: alg,
                ..SmatConfig::default()
            },
            trials: vec![Trial {
                block_h: 16,
                block_w: 16,
                reorder: alg.name().to_string(),
                algorithm: alg,
                time_ms: 1.0,
                nblocks: 10,
                fill_ratio: 1.0,
            }],
            reorders_computed: 1,
        };
        assert!(report.speedup_over_default().is_none());
    }

    #[test]
    fn hoisted_reorders_pin_identical_trials() {
        // The hoisted tuner must produce bit-identical trials to a naive
        // per-candidate prepare (the simulator is deterministic), while
        // computing strictly fewer permutations than trials.
        let a = scrambled_families(128);
        let base = SmatConfig::default();
        let space = TuneSpace::default();
        let report = autotune(&a, 8, &base, &space);
        // Identity ignores both dims (1), JaccardRows depends on both (2),
        // GrayCode on w only (2) → 5 distinct permutations for 6 trials.
        assert_eq!(report.reorders_computed, 5);
        assert!(report.reorders_computed < report.trials.len());

        let probe = Dense::from_fn(a.ncols(), 8, |i, j| F16::from_f64(((i + j) % 3) as f64));
        let mut k = 0;
        for &(h, w) in &space.block_shapes {
            for &alg in &space.reorderings {
                let cfg = SmatConfig {
                    block_h: h,
                    block_w: w,
                    reorder: alg,
                    ..base.clone()
                };
                let engine = Smat::prepare(&a, cfg);
                let run = engine.spmm(&probe);
                let t = &report.trials[k];
                assert_eq!(t.time_ms.to_bits(), run.report.elapsed_ms().to_bits());
                assert_eq!(t.nblocks, run.report.nblocks);
                assert_eq!(t.fill_ratio.to_bits(), engine.bcsr().fill_ratio().to_bits());
                k += 1;
            }
        }
        assert_eq!(k, report.trials.len());
    }

    #[test]
    #[should_panic(expected = "empty tuning space")]
    fn rejects_empty_space() {
        let a = scrambled_families(32);
        let space = TuneSpace {
            block_shapes: vec![],
            reorderings: vec![],
        };
        let _ = autotune(&a, 8, &SmatConfig::default(), &space);
    }
}
