//! Inspector-stage autotuning: pick the block shape and reordering scheme
//! for a given matrix by dry-running candidates on the simulated device.
//!
//! The paper fixes 16×16 blocks and Jaccard clustering; its own block-size
//! discussion (§II-B3: padding cost grows with block size, block count with
//! its inverse) implies the optimum is matrix-dependent. Since preparation
//! is a one-time inspector cost and the executor is launched many times,
//! spending a few simulated launches to choose the configuration is the
//! natural extension — this module implements that search.

use serde::Serialize;
use smat_formats::{Csr, Dense, Element};
use smat_reorder::ReorderAlgorithm;

use crate::config::SmatConfig;
use crate::pipeline::Smat;

/// One evaluated candidate configuration.
#[derive(Clone, Debug, Serialize)]
pub struct Trial {
    /// Block height.
    pub block_h: usize,
    /// Block width.
    pub block_w: usize,
    /// Reordering scheme name.
    pub reorder: String,
    /// Simulated kernel time for the probe SpMM, in milliseconds.
    pub time_ms: f64,
    /// Stored blocks after preprocessing.
    pub nblocks: usize,
    /// Fraction of true nonzeros per stored block.
    pub fill_ratio: f64,
}

/// Autotuning outcome: the winning configuration plus the full trial log.
#[derive(Clone, Debug)]
pub struct TuneReport {
    /// Best configuration found (lowest simulated time).
    pub best: SmatConfig,
    /// All trials, in evaluation order.
    pub trials: Vec<Trial>,
}

impl TuneReport {
    /// Simulated speedup of the winner over the paper's default
    /// configuration (16×16, Jaccard rows), if the default was evaluated.
    pub fn speedup_over_default(&self) -> Option<f64> {
        let default = self
            .trials
            .iter()
            .find(|t| t.block_h == 16 && t.block_w == 16 && t.reorder == "jaccard-rows")?;
        let best = self
            .trials
            .iter()
            .map(|t| t.time_ms)
            .fold(f64::INFINITY, f64::min);
        Some(default.time_ms / best)
    }
}

/// Candidate search space.
#[derive(Clone, Debug)]
pub struct TuneSpace {
    /// Block shapes to try (each must map to a supported MMA fragment
    /// shape: `m = h`, `k = w`).
    pub block_shapes: Vec<(usize, usize)>,
    /// Reordering schemes to try.
    pub reorderings: Vec<ReorderAlgorithm>,
}

impl Default for TuneSpace {
    fn default() -> Self {
        TuneSpace {
            block_shapes: vec![(16, 16), (16, 8)],
            reorderings: vec![
                ReorderAlgorithm::Identity,
                ReorderAlgorithm::JaccardRows { tau: 0.7 },
                ReorderAlgorithm::GrayCode,
            ],
        }
    }
}

/// Tunes the SMaT configuration for matrix `a` and an SpMM with `n_cols`
/// output columns: prepares and probe-runs every candidate in `space`,
/// returning the fastest.
///
/// # Panics
/// Panics if `space` is empty or a probe launch fails.
pub fn autotune<T: Element>(
    a: &Csr<T>,
    n_cols: usize,
    base: &SmatConfig,
    space: &TuneSpace,
) -> TuneReport {
    assert!(
        !space.block_shapes.is_empty() && !space.reorderings.is_empty(),
        "empty tuning space"
    );
    // A fixed probe right-hand side; values are irrelevant for timing.
    let probe = Dense::from_fn(a.ncols(), n_cols, |i, j| T::from_f64(((i + j) % 3) as f64));

    let mut trials = Vec::new();
    let mut best: Option<(f64, SmatConfig)> = None;
    for &(h, w) in &space.block_shapes {
        for &alg in &space.reorderings {
            let cfg = SmatConfig {
                block_h: h,
                block_w: w,
                reorder: alg,
                ..base.clone()
            };
            let engine = Smat::prepare(a, cfg.clone());
            let run = engine.spmm(&probe);
            let t = run.report.elapsed_ms();
            trials.push(Trial {
                block_h: h,
                block_w: w,
                reorder: alg.name().to_string(),
                time_ms: t,
                nblocks: run.report.nblocks,
                fill_ratio: engine.bcsr().fill_ratio(),
            });
            if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
                best = Some((t, cfg));
            }
        }
    }

    TuneReport {
        best: best.expect("non-empty space").1,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::{Coo, F16};

    fn scrambled_families(n: usize) -> Csr<F16> {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            let base = (r % 4) * (n / 4);
            for j in 0..6 {
                coo.push(r, (base + j * 16) % n, F16::from_f64(1.0));
            }
        }
        coo.to_csr()
    }

    #[test]
    fn explores_the_whole_space() {
        let a = scrambled_families(128);
        let report = autotune(&a, 8, &SmatConfig::default(), &TuneSpace::default());
        assert_eq!(report.trials.len(), 2 * 3);
        assert!(report.trials.iter().all(|t| t.time_ms > 0.0));
    }

    #[test]
    fn best_is_the_minimum_trial() {
        let a = scrambled_families(96);
        let report = autotune(&a, 8, &SmatConfig::default(), &TuneSpace::default());
        let min = report
            .trials
            .iter()
            .map(|t| t.time_ms)
            .fold(f64::INFINITY, f64::min);
        let best_trial = report
            .trials
            .iter()
            .find(|t| {
                t.block_h == report.best.block_h
                    && t.block_w == report.best.block_w
                    && t.reorder == report.best.reorder.name()
            })
            .expect("best config corresponds to a trial");
        assert_eq!(best_trial.time_ms, min);
    }

    #[test]
    fn reordering_wins_on_scrambled_input() {
        // On an interleaved-family matrix the tuner must not pick Identity.
        let a = scrambled_families(256);
        let report = autotune(&a, 8, &SmatConfig::default(), &TuneSpace::default());
        assert_ne!(
            report.best.reorder,
            ReorderAlgorithm::Identity,
            "trials: {:?}",
            report.trials
        );
    }

    #[test]
    fn speedup_over_default_reported() {
        let a = scrambled_families(128);
        let report = autotune(&a, 8, &SmatConfig::default(), &TuneSpace::default());
        let s = report.speedup_over_default().expect("default in space");
        assert!(s >= 1.0, "winner can't be slower than the default: {s}");
    }

    #[test]
    #[should_panic(expected = "empty tuning space")]
    fn rejects_empty_space() {
        let a = scrambled_families(32);
        let space = TuneSpace {
            block_shapes: vec![],
            reorderings: vec![],
        };
        let _ = autotune(&a, 8, &SmatConfig::default(), &space);
    }
}
