//! Cost-model-driven admission planner.
//!
//! The paper fixes `{16×16 blocks, Jaccard rows, T+B+C}` for every matrix;
//! its own block-size discussion (§II-B3) and performance model (Eq. 1,
//! [`crate::perfmodel`]) imply the optimum is matrix-dependent. This module
//! closes the loop the ROADMAP calls the *serving-layer learning loop*:
//!
//! 1. **Decide** — at admission, enumerate a small candidate space
//!    `{block_h, block_w, reorder, scalar-vs-TC}`. Each candidate is scored
//!    with *cheap structure statistics* ([`smat_reorder::stats`]): the
//!    permutation is computed once per effective signature
//!    ([`ReorderAlgorithm::permutation_signature`]), the permuted matrix's
//!    block count `n_e` comes from [`count_blocks`] (no BCSR build, no
//!    launch), and the calibrated [`PerfModel`] predicts
//!    `T_tot = T_e · (n_e · ⌈n/8⌉) + T_init`. The winning candidate and its
//!    prediction become a [`PlanDecision`].
//! 2. **Probe fallback** — with no calibration, the planner dry-runs each
//!    candidate once ([`Smat::prepare_with_reordering`] + one simulated
//!    launch per execution mode) and *bootstraps* a calibration from those
//!    probe samples, so the expensive path runs at most once per planner.
//! 3. **Observe** — the serving layer feeds observed kernel times back via
//!    [`Planner::observe`]; the model is refit online over a sliding
//!    window, making every recorded prediction falsifiable
//!    (`plan_mean_rel_error` in the server stats).
//!
//! The model variable is `x = n_e · ⌈n/NTILE⌉`: the kernel executes one
//! elementary computation (block × B-tile MMA) per stored block per output
//! column tile, so Eq. 1's `n_e` generalizes across right-hand-side widths
//! by multiplying with the tile count.

use std::sync::Mutex;

use serde::Serialize;
use smat_formats::{Csr, Dense, Element};
use smat_gpusim::Gpu;
use smat_reorder::stats::count_blocks;
use smat_reorder::{reorder, ReorderAlgorithm, Reordering};

use crate::config::SmatConfig;
use crate::kernel::{smat_spmm_scheduled, Epilogue, NTILE};
use crate::perfmodel::{PerfModel, PerfSample};
use crate::pipeline::Smat;

/// Sliding-window capacity for online refit samples (per execution mode).
const OBSERVE_WINDOW: usize = 128;
/// Refit cadence: the model is refit every this many new observations in a
/// mode's window (provided the window is identifiable).
const REFIT_EVERY: usize = 8;
/// Minimum samples in a window before the first (re)fit.
const REFIT_MIN: usize = 8;

/// Candidate space the planner searches at admission.
#[derive(Clone, Debug)]
pub struct PlanSpace {
    /// Block shapes to consider; each must map to an MMA fragment shape the
    /// device supports (`m = h`, `k = w`), or its probe launch fails and
    /// the candidate is skipped.
    pub block_shapes: Vec<(usize, usize)>,
    /// Reordering schemes to consider.
    pub reorderings: Vec<ReorderAlgorithm>,
    /// Also consider the scalar (CUDA-core) execution mode. On skewed
    /// matrices with tiny fill the modeled TC advantage can invert.
    pub try_scalar: bool,
}

impl Default for PlanSpace {
    /// The f16-supported fragment shapes (`m16n8k16`, `m16n8k8`) crossed
    /// with the paper's default reordering, no reordering, and Gray code —
    /// the same space [`crate::autotune::TuneSpace`] defaults to — plus the
    /// scalar mode.
    fn default() -> Self {
        PlanSpace {
            block_shapes: vec![(16, 16), (16, 8)],
            reorderings: vec![
                ReorderAlgorithm::Identity,
                ReorderAlgorithm::JaccardRows { tau: 0.7 },
                ReorderAlgorithm::GrayCode,
            ],
            try_scalar: true,
        }
    }
}

/// How a [`PlanDecision`] was reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum PlanSource {
    /// Scored with the calibrated perf model over cheap structure stats.
    Calibrated,
    /// Measured by probe launches (no calibration existed yet);
    /// `predicted_ms` is the winner's measured probe time.
    Probe,
}

/// The planner's choice for one matrix, recorded *before* execution so the
/// prediction can be checked against observed launch times.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PlanDecision {
    /// Chosen BCSR block height.
    pub block_h: usize,
    /// Chosen BCSR block width.
    pub block_w: usize,
    /// Chosen preprocessing permutation.
    pub reorder: ReorderAlgorithm,
    /// Tensor-core (`true`) or scalar (`false`) execution.
    pub use_tc: bool,
    /// Predicted `T_tot` in milliseconds for the planning width
    /// (see [`Planner::decide`]'s `n_cols`).
    pub predicted_ms: f64,
    /// Block count `n_e` of the permuted matrix under the chosen shape —
    /// equals `bcsr.nblocks()` of the resulting prepare.
    pub n_e: usize,
    /// Whether the decision came from the model or from probe runs.
    pub source: PlanSource,
}

impl PlanDecision {
    /// Materializes the decision as a full [`SmatConfig`], inheriting
    /// everything the planner does not choose (accumulation mode, schedule,
    /// device, preflight policy) from `base`.
    pub fn apply(&self, base: &SmatConfig) -> SmatConfig {
        let mut opts = base.opts;
        opts.tc = self.use_tc;
        SmatConfig {
            block_h: self.block_h,
            block_w: self.block_w,
            reorder: self.reorder,
            opts,
            ..base.clone()
        }
    }

    /// The model variable for this decision at right-hand-side width `n`:
    /// `x = n_e · ⌈n/NTILE⌉`.
    pub fn model_x(&self, n: usize) -> f64 {
        self.n_e as f64 * n.div_ceil(NTILE).max(1) as f64
    }
}

/// A fitted model pair: one Eq. 1 line per execution mode.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Calibration {
    /// Model of the tensor-core kernel (`opts.tc = true`).
    pub tc: PerfModel,
    /// Model of the scalar kernel (`opts.tc = false`).
    pub scalar: PerfModel,
}

impl Calibration {
    /// The model for an execution mode.
    pub fn model(&self, use_tc: bool) -> &PerfModel {
        if use_tc {
            &self.tc
        } else {
            &self.scalar
        }
    }

    /// Fits both models by probe-running every matrix in `matrices` once
    /// per mode with `base`'s block shape and no reordering, against an
    /// `n_cols`-wide right-hand side — the paper's band-matrix fitting
    /// procedure (§III) with the caller choosing the suite
    /// (`smat_workloads::generators::calibration_bands` reproduces the
    /// paper's).
    ///
    /// # Panics
    /// Panics if fewer than two matrices produce distinct block counts (the
    /// slope is unidentifiable) or a probe launch fails.
    pub fn fit_on<T: Element>(matrices: &[Csr<T>], n_cols: usize, base: &SmatConfig) -> Self {
        let gpu = Gpu::new(base.device.clone());
        let mut tc_samples = Vec::with_capacity(matrices.len());
        let mut scalar_samples = Vec::with_capacity(matrices.len());
        for a in matrices {
            let cfg = SmatConfig {
                reorder: ReorderAlgorithm::Identity,
                ..base.clone()
            };
            let engine = Smat::prepare(a, cfg);
            let probe = probe_rhs::<T>(a.ncols(), n_cols);
            let x = engine.bcsr().nblocks() as f64 * n_cols.div_ceil(NTILE).max(1) as f64;
            for use_tc in [true, false] {
                let t = probe_launch(&gpu, &engine, &probe, use_tc, base)
                    .expect("calibration probe launch failed");
                let sample = PerfSample { n_e: x, t_ms: t };
                if use_tc {
                    tc_samples.push(sample);
                } else {
                    scalar_samples.push(sample);
                }
            }
        }
        Calibration {
            tc: PerfModel::fit(&tc_samples),
            scalar: PerfModel::fit(&scalar_samples),
        }
    }
}

/// Mutable planner state behind one lock: the current calibration plus the
/// per-mode observation windows feeding online refits.
#[derive(Debug, Default)]
struct PlannerState {
    calibration: Option<Calibration>,
    tc_window: Vec<PerfSample>,
    scalar_window: Vec<PerfSample>,
    observations: u64,
    refits: u64,
}

/// The admission planner. Cheap to share (`Arc<Planner>` in the serving
/// layer); all methods take `&self`.
#[derive(Debug)]
pub struct Planner {
    space: PlanSpace,
    state: Mutex<PlannerState>,
}

impl Planner {
    /// An uncalibrated planner: the first [`Planner::decide`] per planner
    /// runs probe launches and bootstraps the calibration from them.
    pub fn new(space: PlanSpace) -> Self {
        Planner {
            space,
            state: Mutex::new(PlannerState::default()),
        }
    }

    /// A planner with a pre-fitted calibration: every decision uses the
    /// cheap model-scored path from the start.
    pub fn with_calibration(space: PlanSpace, calibration: Calibration) -> Self {
        Planner {
            space,
            state: Mutex::new(PlannerState {
                calibration: Some(calibration),
                ..PlannerState::default()
            }),
        }
    }

    /// The candidate space this planner searches.
    pub fn space(&self) -> &PlanSpace {
        &self.space
    }

    /// The current calibration (updated by online refits), if any.
    pub fn calibration(&self) -> Option<Calibration> {
        self.lock_state().calibration
    }

    /// Observed samples fed back so far (accepted by [`Planner::observe`]).
    pub fn observations(&self) -> u64 {
        self.lock_state().observations
    }

    /// Online refits performed so far.
    pub fn refits(&self) -> u64 {
        self.lock_state().refits
    }

    /// Predicted `T_tot` in milliseconds for `n_e` blocks against an
    /// `n_cols`-wide right-hand side, under the current calibration.
    pub fn predict(&self, use_tc: bool, n_e: usize, n_cols: usize) -> Option<f64> {
        let x = n_e as f64 * n_cols.div_ceil(NTILE).max(1) as f64;
        self.lock_state()
            .calibration
            .map(|c| c.model(use_tc).predict(x))
    }

    /// The modeled per-request surcharge of executing `overlay_terms`
    /// scalar correction terms on top of the Tensor Core base, against an
    /// `n_cols`-wide right-hand side: the *marginal* scalar cost
    /// `T_e(scalar) · overlay_terms · ⌈n/NTILE⌉` (no launch constant — the
    /// overlay rides on an already-paid launch). `None` when uncalibrated.
    pub fn overlay_surcharge_ms(&self, overlay_terms: usize, n_cols: usize) -> Option<f64> {
        let x = overlay_terms as f64 * n_cols.div_ceil(NTILE).max(1) as f64;
        self.lock_state()
            .calibration
            .map(|c| c.model(false).t_e_ms * x)
    }

    /// Whether compacting a mutated matrix (re-preparing `base ⊕ overlay`)
    /// has crossed the amortization point: the overlay's scalar surcharge
    /// over the next `horizon` expected requests exceeds the modeled cost
    /// of one full Tensor Core pass over the `base_ne`-block base — the
    /// deterministic proxy for the prepare (both are one linear sweep of
    /// the matrix; using the model instead of a host wall clock keeps the
    /// decision a pure function of content, so replays are bitwise
    /// reproducible). `None` when uncalibrated — callers fall back to a
    /// structural threshold.
    pub fn should_compact(
        &self,
        base_ne: usize,
        overlay_terms: usize,
        n_cols: usize,
        horizon: u64,
    ) -> Option<bool> {
        let surcharge = self.overlay_surcharge_ms(overlay_terms, n_cols)?;
        let ntiles = n_cols.div_ceil(NTILE).max(1) as f64;
        let reprepare = self
            .lock_state()
            .calibration
            .map(|c| c.model(true).predict(base_ne as f64 * ntiles))?;
        Some(surcharge * horizon as f64 >= reprepare)
    }

    /// Chooses a configuration for matrix `a` and a planning width of
    /// `n_cols` output columns.
    ///
    /// With a calibration present this costs one permutation per effective
    /// signature plus one [`count_blocks`] pass per candidate — no BCSR
    /// build, no launch. Without one it probe-runs the candidates and
    /// bootstraps the calibration as a side effect.
    ///
    /// # Panics
    /// Panics if the space is empty or (in probe mode) no candidate admits
    /// a launch.
    pub fn decide<T: Element>(&self, a: &Csr<T>, n_cols: usize, base: &SmatConfig) -> PlanDecision {
        assert!(
            !self.space.block_shapes.is_empty() && !self.space.reorderings.is_empty(),
            "empty planning space"
        );
        let mut span = smat_trace::span("plan", "planner");
        span.arg("rows", a.nrows() as u64);
        span.arg("nnz", a.nnz() as u64);
        span.arg("n_cols", n_cols as u64);
        let calibration = self.lock_state().calibration;
        let decision = match calibration {
            Some(cal) => self.decide_calibrated(a, n_cols, &cal),
            None => self.decide_probe(a, n_cols, base),
        };
        span.arg("block_h", decision.block_h as u64);
        span.arg("block_w", decision.block_w as u64);
        span.arg("reorder", decision.reorder.name());
        span.arg("use_tc", decision.use_tc as u64);
        span.arg("n_e", decision.n_e as u64);
        span.arg("predicted_ms", decision.predicted_ms);
        span.arg(
            "source",
            match decision.source {
                PlanSource::Calibrated => "calibrated",
                PlanSource::Probe => "probe",
            },
        );
        decision
    }

    /// Feeds an observed kernel time back into the model: `t_ms` is the
    /// simulated launch time of an `n_cols`-wide SpMM over a prepare with
    /// `n_e` blocks in mode `use_tc`. Non-positive or non-finite times are
    /// ignored (degraded/fallback executions are not kernel samples).
    pub fn observe(&self, use_tc: bool, n_e: usize, n_cols: usize, t_ms: f64) {
        if !(t_ms.is_finite() && t_ms > 0.0) {
            return;
        }
        let x = n_e as f64 * n_cols.div_ceil(NTILE).max(1) as f64;
        let mut st = self.lock_state();
        st.observations += 1;
        let window = if use_tc {
            &mut st.tc_window
        } else {
            &mut st.scalar_window
        };
        window.push(PerfSample { n_e: x, t_ms });
        if window.len() > OBSERVE_WINDOW {
            let excess = window.len() - OBSERVE_WINDOW;
            window.drain(..excess);
        }
        if window.len() < REFIT_MIN || window.len() % REFIT_EVERY != 0 {
            return;
        }
        // Refit only when the window's x-spread is identifiable; a burst of
        // identical shapes must not wipe out the calibration.
        let (min_x, max_x) = window
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), s| {
                (lo.min(s.n_e), hi.max(s.n_e))
            });
        if max_x - min_x <= max_x.abs() * 1e-6 + 1e-12 {
            return;
        }
        let model = PerfModel::fit(window);
        match &mut st.calibration {
            Some(cal) => {
                if use_tc {
                    cal.tc = model;
                } else {
                    cal.scalar = model;
                }
            }
            // No calibration yet (never probed): bootstrap both modes from
            // this one — the other mode's line is replaced as soon as its
            // own window becomes identifiable.
            None => {
                st.calibration = Some(Calibration {
                    tc: model,
                    scalar: model,
                });
            }
        }
        st.refits += 1;
    }

    fn decide_calibrated<T: Element>(
        &self,
        a: &Csr<T>,
        n_cols: usize,
        cal: &Calibration,
    ) -> PlanDecision {
        let ntiles = n_cols.div_ceil(NTILE).max(1) as f64;
        let mut cache = ReorderCache::new(a);
        let mut best: Option<PlanDecision> = None;
        for &(h, w) in &self.space.block_shapes {
            for &alg in &self.space.reorderings {
                let n_e = count_blocks(cache.permuted(alg, h, w), h, w);
                for use_tc in self.modes() {
                    let predicted = cal.model(use_tc).predict(n_e as f64 * ntiles);
                    if best.as_ref().is_none_or(|b| predicted < b.predicted_ms) {
                        best = Some(PlanDecision {
                            block_h: h,
                            block_w: w,
                            reorder: alg,
                            use_tc,
                            predicted_ms: predicted,
                            n_e,
                            source: PlanSource::Calibrated,
                        });
                    }
                }
            }
        }
        best.expect("non-empty planning space")
    }

    fn decide_probe<T: Element>(
        &self,
        a: &Csr<T>,
        n_cols: usize,
        base: &SmatConfig,
    ) -> PlanDecision {
        let gpu = Gpu::new(base.device.clone());
        let probe = probe_rhs::<T>(a.ncols(), n_cols);
        let ntiles = n_cols.div_ceil(NTILE).max(1) as f64;
        let mut cache = ReorderCache::new(a);
        let mut tc_samples: Vec<PerfSample> = Vec::new();
        let mut scalar_samples: Vec<PerfSample> = Vec::new();
        let mut best: Option<PlanDecision> = None;
        for &(h, w) in &self.space.block_shapes {
            for &alg in &self.space.reorderings {
                let reordering = cache.reordering(alg, h, w);
                let cfg = SmatConfig {
                    block_h: h,
                    block_w: w,
                    reorder: alg,
                    ..base.clone()
                };
                let engine = Smat::prepare_with_reordering(a, cfg, reordering);
                let n_e = engine.bcsr().nblocks();
                for use_tc in self.modes() {
                    // A candidate whose fragment shape the device rejects is
                    // simply not a viable plan; skip it.
                    let Ok(t) = probe_launch(&gpu, &engine, &probe, use_tc, base) else {
                        continue;
                    };
                    let sample = PerfSample {
                        n_e: n_e as f64 * ntiles,
                        t_ms: t,
                    };
                    if use_tc {
                        tc_samples.push(sample);
                    } else {
                        scalar_samples.push(sample);
                    }
                    if best.as_ref().is_none_or(|b| t < b.predicted_ms) {
                        best = Some(PlanDecision {
                            block_h: h,
                            block_w: w,
                            reorder: alg,
                            use_tc,
                            predicted_ms: t,
                            n_e,
                            source: PlanSource::Probe,
                        });
                    }
                }
            }
        }
        let best = best.expect("no plan candidate admitted a probe launch");
        self.bootstrap(&tc_samples, &scalar_samples);
        best
    }

    /// Seeds the calibration from probe samples when none exists yet and
    /// the samples identify a slope. First writer wins: a concurrent
    /// probe's bootstrap is not overwritten.
    fn bootstrap(&self, tc: &[PerfSample], scalar: &[PerfSample]) {
        let fit = |samples: &[PerfSample]| -> Option<PerfModel> {
            if samples.len() < 2 {
                return None;
            }
            let (min_x, max_x) = samples
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), s| {
                    (lo.min(s.n_e), hi.max(s.n_e))
                });
            if max_x - min_x <= max_x.abs() * 1e-6 + 1e-12 {
                return None;
            }
            Some(PerfModel::fit(samples))
        };
        let (Some(tc_model), scalar_model) = (fit(tc), fit(scalar)) else {
            return;
        };
        let mut st = self.lock_state();
        if st.calibration.is_none() {
            st.calibration = Some(Calibration {
                tc: tc_model,
                scalar: scalar_model.unwrap_or(tc_model),
            });
        }
    }

    /// Execution modes to consider, TC first so exact prediction ties keep
    /// the tensor-core path.
    fn modes(&self) -> impl Iterator<Item = bool> {
        std::iter::once(true).chain(self.space.try_scalar.then_some(false))
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, PlannerState> {
        // Poisoning can only happen if a panic fires inside one of the
        // short critical sections above; the state is a plain value that
        // stays consistent, so recover rather than cascade.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The fixed probe right-hand side shared by probe decisions and
/// calibration fits; values are irrelevant for (simulated) timing.
fn probe_rhs<T: Element>(rows: usize, n_cols: usize) -> Dense<T> {
    Dense::from_fn(rows, n_cols.max(1), |i, j| {
        T::from_f64(((i + j) % 3) as f64)
    })
}

/// One probe launch of `engine`'s BCSR in the given execution mode,
/// returning the simulated time. Goes through the kernel directly so both
/// modes reuse a single prepare.
fn probe_launch<T: Element>(
    gpu: &Gpu,
    engine: &Smat<T>,
    probe: &Dense<T>,
    use_tc: bool,
    base: &SmatConfig,
) -> Result<f64, smat_gpusim::SimError> {
    let mut opts = base.opts;
    opts.tc = use_tc;
    let b_permuted;
    let b_eff = match engine.permute_rhs(probe) {
        Some(p) => {
            b_permuted = p;
            &b_permuted
        }
        None => probe,
    };
    let (launch, _) = smat_spmm_scheduled(
        gpu,
        engine.bcsr(),
        b_eff,
        opts,
        base.accum,
        Epilogue::default(),
        base.schedule,
    )?;
    Ok(launch.time_ms)
}

/// Memoizes `reorder()` products per effective permutation signature so a
/// candidate sweep computes each distinct permutation (and, on demand, the
/// permuted matrix) exactly once. Used by both the planner and
/// [`crate::autotune()`].
pub struct ReorderCache<'a, T> {
    a: &'a Csr<T>,
    entries: Vec<CacheEntry<T>>,
}

struct CacheEntry<T> {
    alg: ReorderAlgorithm,
    signature: (usize, usize),
    reordering: Reordering,
    permuted: Option<Csr<T>>,
}

impl<'a, T: Element> ReorderCache<'a, T> {
    /// A cache over matrix `a`.
    pub fn new(a: &'a Csr<T>) -> Self {
        ReorderCache {
            a,
            entries: Vec::new(),
        }
    }

    /// Number of distinct permutations computed so far.
    pub fn computed(&self) -> usize {
        self.entries.len()
    }

    fn entry_index(&mut self, alg: ReorderAlgorithm, block_h: usize, block_w: usize) -> usize {
        let signature = alg.permutation_signature(block_h, block_w);
        if let Some(i) = self
            .entries
            .iter()
            .position(|e| e.alg == alg && e.signature == signature)
        {
            return i;
        }
        let reordering = reorder(self.a, alg, block_h, block_w);
        self.entries.push(CacheEntry {
            alg,
            signature,
            reordering,
            permuted: None,
        });
        self.entries.len() - 1
    }

    /// The reordering for a candidate, computed on first use per signature.
    pub fn reordering(
        &mut self,
        alg: ReorderAlgorithm,
        block_h: usize,
        block_w: usize,
    ) -> Reordering {
        let i = self.entry_index(alg, block_h, block_w);
        self.entries[i].reordering.clone()
    }

    /// The permuted matrix for a candidate, computed (and cached) on first
    /// use per signature.
    pub fn permuted(&mut self, alg: ReorderAlgorithm, block_h: usize, block_w: usize) -> &Csr<T> {
        let i = self.entry_index(alg, block_h, block_w);
        if self.entries[i].permuted.is_none() {
            let permuted = self.entries[i].reordering.apply(self.a);
            self.entries[i].permuted = Some(permuted);
        }
        self.entries[i].permuted.as_ref().expect("just filled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::{Coo, F16};

    /// A band matrix with semi-bandwidth `b` (inline so core needs no
    /// workloads dependency; `smat_workloads::generators::band` is the
    /// public equivalent).
    fn band(n: usize, b: usize) -> Csr<F16> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(b)..(i + b + 1).min(n) {
                coo.push(i, j, F16::from_f64(1.0));
            }
        }
        coo.to_csr()
    }

    fn scrambled_families(n: usize) -> Csr<F16> {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            let base = (r % 4) * (n / 4);
            for j in 0..6 {
                coo.push(r, (base + j * 16) % n, F16::from_f64(1.0));
            }
        }
        coo.to_csr()
    }

    fn band_suite() -> Vec<Csr<F16>> {
        [2usize, 4, 8, 16, 24]
            .iter()
            .map(|&b| band(96, b))
            .collect()
    }

    fn calibrated_planner() -> Planner {
        let cal = Calibration::fit_on(&band_suite(), 8, &SmatConfig::default());
        Planner::with_calibration(PlanSpace::default(), cal)
    }

    #[test]
    fn calibration_fits_positive_slopes() {
        let cal = Calibration::fit_on(&band_suite(), 8, &SmatConfig::default());
        assert!(cal.tc.t_e_ms > 0.0, "tc slope: {}", cal.tc.t_e_ms);
        assert!(cal.scalar.t_e_ms > 0.0);
        assert!(
            cal.tc.r2 > 0.9,
            "band fit should be near-linear: {}",
            cal.tc.r2
        );
        // The scalar kernel pays more per elementary computation.
        assert!(cal.scalar.t_e_ms > cal.tc.t_e_ms);
    }

    #[test]
    fn calibrated_decision_is_deterministic_and_finite() {
        let planner = calibrated_planner();
        let a = scrambled_families(128);
        let d1 = planner.decide(&a, 8, &SmatConfig::default());
        let d2 = planner.decide(&a, 8, &SmatConfig::default());
        assert!(d1.predicted_ms.is_finite() && d1.predicted_ms > 0.0);
        assert!(d1.n_e > 0);
        assert_eq!(d1.source, PlanSource::Calibrated);
        assert_eq!((d1.block_h, d1.block_w), (d2.block_h, d2.block_w));
        assert_eq!(d1.reorder, d2.reorder);
        assert_eq!(d1.use_tc, d2.use_tc);
        assert_eq!(d1.predicted_ms.to_bits(), d2.predicted_ms.to_bits());
    }

    #[test]
    fn decision_n_e_matches_prepared_block_count() {
        let planner = calibrated_planner();
        let a = scrambled_families(96);
        let d = planner.decide(&a, 8, &SmatConfig::default());
        let engine = Smat::prepare(&a, d.apply(&SmatConfig::default()));
        assert_eq!(d.n_e, engine.bcsr().nblocks());
    }

    #[test]
    fn overlay_surcharge_is_marginal_and_linear_in_terms() {
        let planner = calibrated_planner();
        let one = planner.overlay_surcharge_ms(1, 8).unwrap();
        let ten = planner.overlay_surcharge_ms(10, 8).unwrap();
        assert!(one > 0.0);
        assert_eq!(ten.to_bits(), (10.0 * one).to_bits(), "no launch constant");
        assert_eq!(planner.overlay_surcharge_ms(0, 8).unwrap(), 0.0);
        // Uncalibrated planners decline to price the overlay.
        assert!(Planner::new(PlanSpace::default())
            .overlay_surcharge_ms(4, 8)
            .is_none());
    }

    #[test]
    fn should_compact_crosses_the_amortization_point() {
        let planner = calibrated_planner();
        // A tiny overlay on a large base over a short horizon: keep serving
        // the overlay.
        assert_eq!(planner.should_compact(4096, 1, 8, 1), Some(false));
        // A huge overlay over a long horizon on a small base: re-prepare.
        assert_eq!(planner.should_compact(8, 4096, 8, 1024), Some(true));
        // Monotone in the horizon: once compaction wins at horizon h, it
        // still wins at every longer horizon.
        let mut seen_true = false;
        for h in [1u64, 4, 16, 64, 256, 1024, 4096] {
            let d = planner.should_compact(64, 32, 8, h).unwrap();
            assert!(!seen_true || d, "decision regressed at horizon {h}");
            seen_true = d;
        }
        // Uncalibrated: no decision.
        assert!(Planner::new(PlanSpace::default())
            .should_compact(64, 32, 8, 16)
            .is_none());
        // Deterministic: bitwise-identical inputs, identical decision.
        assert_eq!(
            planner.should_compact(64, 32, 8, 16),
            planner.should_compact(64, 32, 8, 16)
        );
    }

    #[test]
    fn probe_fallback_decides_and_bootstraps_calibration() {
        let planner = Planner::new(PlanSpace::default());
        assert!(planner.calibration().is_none());
        let a = scrambled_families(128);
        let d = planner.decide(&a, 8, &SmatConfig::default());
        assert_eq!(d.source, PlanSource::Probe);
        assert!(d.predicted_ms.is_finite() && d.predicted_ms > 0.0);
        // The probe samples seeded a calibration: the next decision is
        // model-scored.
        assert!(planner.calibration().is_some());
        let d2 = planner.decide(&a, 8, &SmatConfig::default());
        assert_eq!(d2.source, PlanSource::Calibrated);
    }

    #[test]
    fn probe_decision_picks_the_measured_minimum() {
        // With try_scalar on, the scalar mode must never win a probe on a
        // clean blocked matrix (TC is strictly faster per block here).
        let planner = Planner::new(PlanSpace::default());
        let a = band(96, 8);
        let d = planner.decide(&a, 8, &SmatConfig::default());
        assert!(d.use_tc, "TC must win on a band matrix: {d:?}");
    }

    #[test]
    fn observe_refits_toward_a_synthetic_linear_workload() {
        // Start from a deliberately wrong calibration and feed samples from
        // a known line; the online refit must converge to it.
        let bad = PerfModel {
            t_e_ms: 123.0,
            t_init_ms: 9.9,
            r2: 0.0,
        };
        let planner = Planner::with_calibration(
            PlanSpace::default(),
            Calibration {
                tc: bad,
                scalar: bad,
            },
        );
        let true_te = 2.5e-4;
        let true_init = 0.75;
        for i in 1..=32usize {
            let n_e = 100 * i;
            let x = n_e as f64; // n_cols = 8 → one tile
            planner.observe(true, n_e, 8, true_te * x + true_init);
        }
        assert!(planner.refits() >= 1, "refits: {}", planner.refits());
        assert_eq!(planner.observations(), 32);
        let predicted = planner.predict(true, 2000, 8).expect("calibrated");
        let truth = true_te * 2000.0 + true_init;
        assert!(
            ((predicted - truth) / truth).abs() < 1e-6,
            "predicted {predicted} vs truth {truth}"
        );
        // The scalar model was untouched (still the bad line).
        let scalar = planner.calibration().unwrap().scalar;
        assert_eq!(scalar.t_e_ms, 123.0);
    }

    #[test]
    fn degenerate_observations_do_not_wipe_calibration() {
        let planner = calibrated_planner();
        let before = planner.calibration().unwrap().tc;
        // A burst of identical shapes and some garbage times.
        for _ in 0..64 {
            planner.observe(true, 500, 8, 1.0);
        }
        planner.observe(true, 500, 8, f64::NAN);
        planner.observe(true, 500, 8, 0.0);
        planner.observe(true, 500, 8, -3.0);
        let after = planner.calibration().unwrap().tc;
        assert_eq!(before.t_e_ms.to_bits(), after.t_e_ms.to_bits());
        assert_eq!(planner.refits(), 0);
        // Only the finite positive samples were counted.
        assert_eq!(planner.observations(), 64);
    }

    #[test]
    fn reorder_cache_computes_each_signature_once() {
        let a = scrambled_families(64);
        let mut cache = ReorderCache::new(&a);
        // GrayCode ignores block_h: two shapes sharing w → one entry.
        cache.reordering(ReorderAlgorithm::GrayCode, 16, 16);
        cache.reordering(ReorderAlgorithm::GrayCode, 8, 16);
        assert_eq!(cache.computed(), 1);
        // ...but a different w is a different signature.
        cache.reordering(ReorderAlgorithm::GrayCode, 16, 8);
        assert_eq!(cache.computed(), 2);
        // Identity ignores both dims.
        cache.reordering(ReorderAlgorithm::Identity, 16, 16);
        cache.reordering(ReorderAlgorithm::Identity, 4, 4);
        assert_eq!(cache.computed(), 3);
        // Jaccard depends on both.
        cache.reordering(ReorderAlgorithm::JaccardRows { tau: 0.7 }, 16, 16);
        cache.reordering(ReorderAlgorithm::JaccardRows { tau: 0.7 }, 16, 8);
        assert_eq!(cache.computed(), 5);
        // Same params again: cached.
        cache.permuted(ReorderAlgorithm::JaccardRows { tau: 0.7 }, 16, 16);
        assert_eq!(cache.computed(), 5);
        // Different tau is a different algorithm even at the same shape.
        cache.reordering(ReorderAlgorithm::JaccardRows { tau: 0.3 }, 16, 16);
        assert_eq!(cache.computed(), 6);
    }

    #[test]
    fn cached_reordering_matches_direct_computation() {
        let a = scrambled_families(96);
        let mut cache = ReorderCache::new(&a);
        for &(h, w) in &[(16usize, 16usize), (16, 8), (8, 16)] {
            for alg in [
                ReorderAlgorithm::Identity,
                ReorderAlgorithm::JaccardRows { tau: 0.7 },
                ReorderAlgorithm::GrayCode,
                ReorderAlgorithm::DegreeSort,
            ] {
                let cached = cache.reordering(alg, h, w);
                let direct = reorder(&a, alg, h, w);
                assert_eq!(
                    cached.row_perm.as_slice(),
                    direct.row_perm.as_slice(),
                    "{alg:?} at {h}x{w}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty planning space")]
    fn rejects_empty_space() {
        let planner = Planner::new(PlanSpace {
            block_shapes: vec![],
            reorderings: vec![],
            try_scalar: false,
        });
        let a = band(32, 2);
        let _ = planner.decide(&a, 8, &SmatConfig::default());
    }
}
