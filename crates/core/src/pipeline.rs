//! The end-to-end SMaT pipeline (Fig. 1 of the paper): CSR ingestion →
//! block-densifying permutation → BCSR conversion → kernel launch →
//! permutation-aware result assembly.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use smat_analyze::{analyze_launch, verify_bcsr, ScheduleSpec};
use smat_diag::{DiagCode, Diagnostic, DiagnosticsExt, Location};
use smat_formats::{Bcsr, BlockRowStats, Coo, Csr, Dense, Element, MatrixFingerprint, Permutation};
use smat_gpusim::{Gpu, LaunchResult, SimError};
use smat_reorder::{reorder, Reordering};

use crate::config::SmatConfig;
use crate::overlay::{MatrixUpdate, OverlayCell, OverlaySnapshot};
use crate::planner::PlanDecision;

/// A prepared SMaT engine: the preprocessing (permutation + BCSR
/// conversion) runs once in [`Smat::prepare`]; [`Smat::spmm`] can then be
/// called for any number of right-hand sides, exactly like the library's
/// inspector/executor split.
///
/// The handle is a cheap [`Arc`]-backed reference: [`Clone`] copies one
/// pointer, never the BCSR payload, so a prepared matrix can be shared
/// across threads and serving requests (`Smat<T>: Send + Sync` whenever the
/// element type is). All execution methods take `&self`.
pub struct Smat<T> {
    inner: Arc<SmatInner<T>>,
}

impl<T> Clone for Smat<T> {
    fn clone(&self) -> Self {
        Smat {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// The shared preprocessing product behind a [`Smat`] handle.
struct SmatInner<T> {
    config: SmatConfig,
    gpu: Gpu,
    reordering: Reordering,
    bcsr: Bcsr<T>,
    /// Block statistics before preprocessing (for reporting).
    stats_before: BlockRowStats,
    /// Block statistics after preprocessing.
    stats_after: BlockRowStats,
    /// Host wall-clock milliseconds spent in `prepare` (reordering + BCSR
    /// conversion) — the one-time inspector cost.
    prepare_wall_ms: f64,
    /// Per-stage breakdown of `prepare_wall_ms`.
    prepare_timings: PrepareTimings,
    ncols: usize,
    /// Content fingerprint of the *original* (pre-permutation) matrix.
    fingerprint: MatrixFingerprint,
    /// Memoized pre-flight findings per `(n, overlay epoch)`. The pass is
    /// a pure function of (BCSR, config, device, n, overlay), so repeat
    /// launches with the same width at the same epoch — the common serving
    /// case — reuse the diagnostics, while any mutation keys a fresh entry
    /// (a memo computed for the old epoch can never answer for the new
    /// payload).
    preflight_cache: Mutex<PreflightMemos>,
    /// Memoized CSR reconstruction of the permuted matrix (`P·A·Qᵀ`), the
    /// operand of the scalar degradation path. Built on first use: the
    /// fault-free serving path never pays for it.
    fallback_csr: OnceLock<Arc<Csr<T>>>,
    /// The COO delta overlay (see [`crate::overlay`]): current snapshot
    /// behind one short lock, swapped wholesale on mutation so pinned
    /// readers are never torn, plus the lazily built inverse permutations
    /// that map original coordinates into the permuted base for
    /// base-value lookups.
    overlay: Mutex<OverlayStore>,
}

/// Pre-flight memo table: `(n, overlay epoch)` → findings.
type PreflightMemos = HashMap<(usize, u64), Arc<Vec<Diagnostic>>>;

/// Mutable overlay state behind [`SmatInner::overlay`].
struct OverlayStore {
    snapshot: Arc<OverlaySnapshot>,
    /// `row_perm⁻¹`: original row → permuted row. Built on first mutation.
    inv_row: Option<Permutation>,
    /// `col_perm⁻¹` when a column permutation is active.
    inv_col: Option<Permutation>,
}

impl OverlayStore {
    fn new() -> Self {
        OverlayStore {
            snapshot: Arc::new(OverlaySnapshot::empty()),
            inv_row: None,
            inv_col: None,
        }
    }

    fn ensure_inverses(&mut self, reordering: &Reordering) {
        if self.inv_row.is_none() {
            self.inv_row = Some(reordering.row_perm.inverse());
            self.inv_col = reordering.col_perm.as_ref().map(Permutation::inverse);
        }
    }

    /// The prepared base value at original coordinate `(r, c)`, looked up
    /// through the permutation in the fallback CSR (`0.0` if unstored).
    fn base_value<T: Element>(&self, fallback: &Csr<T>, r: usize, c: usize) -> f64 {
        let rp = self.inv_row.as_ref().expect("inverses built").source_of(r);
        let cp = match &self.inv_col {
            Some(ic) => ic.source_of(c),
            None => c,
        };
        fallback.get(rp, cp).map_or(0.0, Element::to_f64)
    }
}

/// Per-stage wall-clock breakdown of [`Smat::prepare`] — the `T_init` term
/// of the paper's performance model, split by pipeline stage.
///
/// Each stage is timed around the work itself, with the stopwatch read
/// *before* trace-span arguments are recorded, so recorder overhead never
/// leaks into a stage number. `total_ms` is the end-to-end wall clock of
/// `prepare` and additionally covers fingerprinting, block statistics, and
/// trace bookkeeping between stages; the sub-timings therefore sum to at
/// most `total_ms` (asserted by a regression test), never more.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct PrepareTimings {
    /// Computing the block-densifying permutation.
    pub reorder_ms: f64,
    /// Applying the permutation to the CSR operand (gather/pack).
    pub pack_ms: f64,
    /// CSR → BCSR conversion (rayon-parallel two-pass).
    pub convert_ms: f64,
    /// End-to-end `prepare` wall clock (equals
    /// [`Smat::prepare_wall_ms`]).
    pub total_ms: f64,
    /// The admission planner's decision, when this prepare was planned
    /// (see [`crate::planner`]): the chosen configuration plus the
    /// predicted `T_tot` recorded *before* any execution, so the
    /// prediction is falsifiable against observed launch times.
    pub plan: Option<PlanDecision>,
}

impl PrepareTimings {
    /// Sum of the per-stage timings (excludes inter-stage bookkeeping).
    pub fn stages_ms(&self) -> f64 {
        self.reorder_ms + self.pack_ms + self.convert_ms
    }

    /// Adds another breakdown stage-by-stage. The sharded prepare path uses
    /// this to report pool-level `T_init` as the sum over per-shard
    /// prepares (shards prepare sequentially, so the sum is the wall
    /// clock).
    pub fn accumulate(&mut self, other: &PrepareTimings) {
        self.reorder_ms += other.reorder_ms;
        self.pack_ms += other.pack_ms;
        self.convert_ms += other.convert_ms;
        self.total_ms += other.total_ms;
        // Plan decisions are per-prepare, not additive: keep the first one
        // (the lead shard's). Per-shard decisions live on the individual
        // shard handles.
        self.plan = self.plan.or(other.plan);
    }
}

/// Result of one SpMM execution.
#[derive(Clone, Debug)]
pub struct SmatRun<T> {
    /// The product `C = A·B` in the *original* row order (the internal row
    /// permutation is undone during assembly).
    pub c: Dense<T>,
    /// Timing, counters, and preprocessing statistics.
    pub report: RunReport,
}

/// Execution report of one [`Smat::spmm`] call.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Simulated kernel launch result (timing, counters, per-SM cycles).
    pub launch: LaunchResult,
    /// Number of stored BCSR blocks (`n_e` of the performance model).
    pub nblocks: usize,
    /// Block statistics before preprocessing.
    pub stats_before: BlockRowStats,
    /// Block statistics after preprocessing.
    pub stats_after: BlockRowStats,
    /// Optimization label ("T+B+C" etc.).
    pub kernel_label: String,
}

impl RunReport {
    /// Simulated wall-clock time of the kernel in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.launch.time_ms
    }

    /// Effective GFLOP/s over the useful `2·nnz·N` FLOP.
    pub fn gflops(&self) -> f64 {
        self.launch.gflops()
    }

    /// Block-count reduction achieved by preprocessing.
    pub fn block_reduction(&self) -> f64 {
        if self.stats_after.nblocks == 0 {
            1.0
        } else {
            self.stats_before.nblocks as f64 / self.stats_after.nblocks as f64
        }
    }
}

impl<T: Element> Smat<T> {
    /// Runs the one-time preprocessing: computes the block-densifying
    /// permutation, permutes the matrix, and converts it to BCSR.
    pub fn prepare(a: &Csr<T>, config: SmatConfig) -> Self {
        Self::prepare_impl(a, config, None, None)
    }

    /// [`Smat::prepare`] with a precomputed [`Reordering`], skipping the
    /// reorder stage (`reorder_ms` is reported as 0). Callers sweeping a
    /// candidate space — autotune, the admission planner — compute each
    /// distinct permutation once (see
    /// [`ReorderAlgorithm::permutation_signature`](smat_reorder::ReorderAlgorithm::permutation_signature))
    /// and reuse it across block shapes that don't affect it.
    ///
    /// The caller is responsible for `reordering` being exactly what
    /// `reorder(a, config.reorder, config.block_h, config.block_w)` would
    /// produce; correctness (bitwise output identity) is preserved for any
    /// valid permutation of `a`, but reports would attribute block counts
    /// to the wrong scheme.
    pub fn prepare_with_reordering(a: &Csr<T>, config: SmatConfig, reordering: Reordering) -> Self {
        Self::prepare_impl(a, config, Some(reordering), None)
    }

    /// [`Smat::prepare`] with an admission-planner decision attached: the
    /// decision rides on [`PrepareTimings::plan`] and the prepare trace
    /// span, and is readable back via [`Smat::plan_decision`] so the
    /// serving layer can compare predicted against observed time.
    pub fn prepare_with_plan(a: &Csr<T>, config: SmatConfig, plan: PlanDecision) -> Self {
        Self::prepare_impl(a, config, None, Some(plan))
    }

    fn prepare_impl(
        a: &Csr<T>,
        config: SmatConfig,
        precomputed: Option<Reordering>,
        plan: Option<PlanDecision>,
    ) -> Self {
        let mut prep_span = smat_trace::span("prepare", "pipeline");
        prep_span.arg("rows", a.nrows() as u64);
        prep_span.arg("nnz", a.nnz() as u64);
        if let Some(p) = &plan {
            prep_span.arg("planned", 1u64);
            prep_span.arg("predicted_ms", p.predicted_ms);
        }
        let t0 = std::time::Instant::now();
        let fingerprint = MatrixFingerprint::of_csr(a);
        let stats_before = smat_reorder::stats::block_row_stats(a, config.block_h, config.block_w);
        // Each stage stopwatch is read before the span arguments are
        // recorded, so trace-recorder overhead stays out of the stage
        // numbers (it is still part of total_ms — see PrepareTimings).
        let (reordering, reorder_ms) = match precomputed {
            Some(r) => (r, 0.0),
            None => {
                let mut sp = smat_trace::span("reorder", "pipeline");
                let ts = std::time::Instant::now();
                let reordering = reorder(a, config.reorder, config.block_h, config.block_w);
                let reorder_ms = ts.elapsed().as_secs_f64() * 1e3;
                sp.arg("algorithm", config.reorder.name());
                (reordering, reorder_ms)
            }
        };
        let (permuted, pack_ms) = {
            let mut sp = smat_trace::span("pack", "pipeline");
            let ts = std::time::Instant::now();
            let permuted = reordering.apply(a);
            let pack_ms = ts.elapsed().as_secs_f64() * 1e3;
            sp.arg("rows", permuted.nrows() as u64);
            (permuted, pack_ms)
        };
        let stats_after =
            smat_reorder::stats::block_row_stats(&permuted, config.block_h, config.block_w);
        let (bcsr, convert_ms) = {
            let mut sp = smat_trace::span("bcsr_convert", "pipeline");
            sp.arg("blocks_before", stats_before.nblocks as u64);
            let ts = std::time::Instant::now();
            let bcsr = Bcsr::from_csr_parallel(&permuted, config.block_h, config.block_w);
            let convert_ms = ts.elapsed().as_secs_f64() * 1e3;
            sp.arg("blocks_after", bcsr.nblocks() as u64);
            (bcsr, convert_ms)
        };
        prep_span.arg("nblocks", bcsr.nblocks() as u64);
        let gpu = Gpu::new(config.device.clone());
        let total_ms = t0.elapsed().as_secs_f64() * 1e3;
        Smat {
            inner: Arc::new(SmatInner {
                config,
                gpu,
                reordering,
                bcsr,
                stats_before,
                stats_after,
                prepare_wall_ms: total_ms,
                prepare_timings: PrepareTimings {
                    reorder_ms,
                    pack_ms,
                    convert_ms,
                    total_ms,
                    plan,
                },
                ncols: a.ncols(),
                fingerprint,
                preflight_cache: Mutex::new(HashMap::new()),
                fallback_csr: OnceLock::new(),
                overlay: Mutex::new(OverlayStore::new()),
            }),
        }
    }

    /// Host wall-clock milliseconds the one-time preprocessing took
    /// (reordering + BCSR conversion). The paper amortizes this inspector
    /// cost over many executor calls; this number makes the trade explicit.
    pub fn prepare_wall_ms(&self) -> f64 {
        self.inner.prepare_wall_ms
    }

    /// Per-stage breakdown of the preprocessing wall clock
    /// (reorder / pack / convert); see [`PrepareTimings`] for what each
    /// stage covers and how trace overhead is accounted.
    pub fn prepare_timings(&self) -> PrepareTimings {
        self.inner.prepare_timings
    }

    /// The admission planner's decision this handle was prepared under, if
    /// any (set by [`Smat::prepare_with_plan`]). `None` for manually
    /// configured prepares.
    pub fn plan_decision(&self) -> Option<PlanDecision> {
        self.inner.prepare_timings.plan
    }

    /// The internal BCSR representation (after preprocessing).
    pub fn bcsr(&self) -> &Bcsr<T> {
        &self.inner.bcsr
    }

    /// The preprocessing permutations.
    pub fn reordering(&self) -> &Reordering {
        &self.inner.reordering
    }

    /// The active configuration.
    pub fn config(&self) -> &SmatConfig {
        &self.inner.config
    }

    /// Content fingerprint of the original input matrix (computed during
    /// [`Smat::prepare`]) — the registry key primitive of the serving layer.
    pub fn fingerprint(&self) -> MatrixFingerprint {
        self.inner.fingerprint
    }

    /// Column count of the prepared matrix `A`, i.e. the row count every
    /// right-hand side must have.
    pub fn input_ncols(&self) -> usize {
        self.inner.ncols
    }

    /// Number of handles currently sharing this prepared matrix (including
    /// this one). Used by registry eviction accounting and tests.
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Runs the static pre-flight pass for a launch with an `n`-column
    /// right-hand side, without executing anything: the BCSR invariant
    /// verifier plus the schedule hazard analyzer over the exact
    /// [`LaunchConfig`](smat_gpusim::LaunchConfig) the kernel would build.
    ///
    /// [`Smat::try_spmm`] calls this automatically according to
    /// [`SmatConfig::preflight`]; it is public so tools can inspect the
    /// findings (including warnings) without launching.
    ///
    /// Results are memoized per `n` on the prepared handle (the pass is a
    /// pure function of state fixed at prepare time), so serving paths that
    /// launch the same prepared matrix many times pay for the analysis
    /// once. This returns an owned copy; [`Smat::preflight_cached`] returns
    /// the shared allocation directly.
    pub fn preflight(&self, n: usize) -> Vec<Diagnostic> {
        self.preflight_cached(n).as_ref().clone()
    }

    /// Like [`Smat::preflight`] but returns the memoized, shareable
    /// diagnostics without cloning the findings. Keyed by `(n, overlay
    /// epoch)`: uses the current overlay snapshot.
    pub fn preflight_cached(&self, n: usize) -> Arc<Vec<Diagnostic>> {
        self.preflight_cached_at(n, &self.overlay_snapshot())
    }

    /// The memoized pre-flight findings for a launch at width `n` under a
    /// specific overlay snapshot — the epoch-pinned entry point the
    /// serving layer uses so a request admitted at epoch `e` is analyzed
    /// (and cached) against exactly that overlay.
    pub fn preflight_cached_at(&self, n: usize, overlay: &OverlaySnapshot) -> Arc<Vec<Diagnostic>> {
        let key = (n, overlay.epoch());
        if let Some(hit) = self.inner.preflight_cache.lock().unwrap().get(&key) {
            return Arc::clone(hit);
        }
        // Analysis runs outside the lock: it is pure and idempotent, so two
        // racing threads at worst both compute the same findings and one
        // insert wins.
        let diags = Arc::new(self.run_preflight(n, overlay));
        let mut cache = self.inner.preflight_cache.lock().unwrap();
        Arc::clone(cache.entry(key).or_insert(diags))
    }

    /// Number of distinct `(n, epoch)` keys with memoized pre-flight
    /// findings.
    pub fn preflight_cache_len(&self) -> usize {
        self.inner.preflight_cache.lock().unwrap().len()
    }

    /// The uncached pre-flight pass: the base BCSR/launch analysis plus a
    /// scan of the overlay payload (a non-finite override would poison the
    /// scalar correction path exactly like a non-finite base value poisons
    /// the kernel).
    fn run_preflight(&self, n: usize, overlay: &OverlaySnapshot) -> Vec<Diagnostic> {
        let inner = &*self.inner;
        let mut diags = verify_bcsr(&inner.bcsr);
        let launch_cfg = crate::kernel::build_launch_config(
            &inner.gpu,
            &inner.bcsr,
            n,
            inner.config.opts,
            inner.config.schedule,
        );
        diags.extend(analyze_launch(
            &inner.bcsr,
            n,
            &launch_cfg,
            &inner.gpu.cfg,
            &ScheduleSpec::for_async(inner.config.opts.async_copy),
        ));
        for cell in overlay.cells() {
            if !cell.value.is_finite() || !cell.correction.is_finite() {
                diags.push(Diagnostic::new(
                    DiagCode::NonFinitePayload,
                    Location::Row { row: cell.row },
                    format!(
                        "overlay override at ({}, {}) is non-finite (value {}, correction {})",
                        cell.row, cell.col, cell.value, cell.correction
                    ),
                ));
            }
        }
        diags
    }

    /// Executes `C = A·B` on the simulated device. Returns the product in
    /// the original row order together with the execution report, or a
    /// simulation error (e.g. out of device memory, or a pre-flight
    /// rejection when [`SmatConfig::preflight`] is active and an
    /// error-severity finding is present).
    pub fn try_spmm(&self, b: &Dense<T>) -> Result<SmatRun<T>, SimError> {
        self.try_spmm_on(&self.inner.gpu, b)
    }

    /// Like [`Smat::try_spmm`] but executes on an explicitly provided
    /// device instance instead of the one embedded at prepare time — the
    /// entry point for device pools that multiplex prepared matrices over
    /// several simulated GPUs.
    ///
    /// `gpu` must be configured identically to the prepare-time device
    /// (same [`DeviceConfig`](smat_gpusim::DeviceConfig) parameters): the
    /// memoized pre-flight findings and the launch geometry are derived
    /// from the prepared configuration. This is asserted by device name in
    /// debug builds.
    pub fn try_spmm_on(&self, gpu: &Gpu, b: &Dense<T>) -> Result<SmatRun<T>, SimError> {
        self.try_spmm_on_pinned(gpu, b, &self.overlay_snapshot())
    }

    /// Like [`Smat::try_spmm_on`] but executes against an explicit
    /// [`OverlaySnapshot`] instead of the current one — the epoch-pinning
    /// entry point of the serving layer: a request captures the snapshot
    /// at admission and finishes on that epoch even if the matrix mutates
    /// while the request waits in a queue.
    ///
    /// The base runs on the Tensor Core path unchanged; the overlay's
    /// corrections run on the scalar path over the touched rows and merge
    /// into the output (see [`crate::overlay`] for the bitwise contract).
    pub fn try_spmm_on_pinned(
        &self,
        gpu: &Gpu,
        b: &Dense<T>,
        overlay: &OverlaySnapshot,
    ) -> Result<SmatRun<T>, SimError> {
        let inner = &*self.inner;
        debug_assert_eq!(
            gpu.cfg.name, inner.gpu.cfg.name,
            "pool device must match the prepare-time device configuration"
        );
        assert_eq!(
            inner.ncols,
            b.nrows(),
            "B must have {} rows, got {}",
            inner.ncols,
            b.nrows()
        );
        let mut spmm_span = smat_trace::span("spmm", "pipeline");
        spmm_span.arg("n", b.ncols() as u64);
        spmm_span.arg("device", gpu.trace_device as u64);
        spmm_span.arg("epoch", overlay.epoch());
        if inner.config.preflight.enabled() {
            let diagnostics = {
                let mut sp = smat_trace::span("preflight", "pipeline");
                let diagnostics = self.preflight_cached_at(b.ncols(), overlay);
                sp.arg("findings", diagnostics.len() as u64);
                diagnostics
            };
            if diagnostics.has_errors() {
                return Err(SimError::PreflightRejected {
                    diagnostics: diagnostics.as_ref().clone(),
                });
            }
        }
        // Column permutation (if any) reshuffles the rows of B.
        let b_permuted;
        let b_eff: &Dense<T> = match &inner.reordering.col_perm {
            Some(cp) => {
                b_permuted = b.select_rows(cp.as_slice());
                &b_permuted
            }
            None => b,
        };

        let (launch, c_permuted) = crate::kernel::smat_spmm_scheduled(
            gpu,
            &inner.bcsr,
            b_eff,
            inner.config.opts,
            inner.config.accum,
            crate::kernel::Epilogue::default(),
            inner.config.schedule,
        )?;

        // (P·A)·B = P·(A·B): undo the row permutation on the output.
        let inv = inner.reordering.row_perm.inverse();
        let mut c = c_permuted.select_rows(inv.as_slice());
        // The scalar half of the split: overlay corrections merge into the
        // original-order product. B enters un-permuted — overlay
        // coordinates live in the original space.
        overlay.apply_corrections(&mut c, b, 1.0);

        Ok(SmatRun {
            c,
            report: RunReport {
                launch,
                nblocks: inner.bcsr.nblocks(),
                stats_before: inner.stats_before.clone(),
                stats_after: inner.stats_after.clone(),
                kernel_label: inner.config.opts.label(),
            },
        })
    }

    /// The permuted matrix (`P·A·Qᵀ`) reconstructed as CSR — the operand
    /// of the scalar (cuSPARSE-like) degradation path used when the Tensor
    /// Core kernel keeps failing under fault injection.
    ///
    /// Memoized on the prepared handle: the first call converts the BCSR
    /// back to CSR (dropping block padding), later calls share the same
    /// allocation. A product computed over this matrix is in the
    /// *permuted* space: feed it right-hand sides transformed with
    /// [`Smat::permute_rhs`] and restore the output row order with
    /// [`Smat::restore_row_order`].
    pub fn fallback_csr(&self) -> Arc<Csr<T>> {
        Arc::clone(
            self.inner
                .fallback_csr
                .get_or_init(|| Arc::new(self.inner.bcsr.to_csr())),
        )
    }

    /// Applies the prepare-time column permutation (if any) to a
    /// right-hand side, producing the `B` the permuted-space operands
    /// ([`Smat::bcsr`], [`Smat::fallback_csr`]) expect. Returns `None`
    /// when no column permutation is active and `b` can be used as-is.
    pub fn permute_rhs(&self, b: &Dense<T>) -> Option<Dense<T>> {
        self.inner
            .reordering
            .col_perm
            .as_ref()
            .map(|cp| b.select_rows(cp.as_slice()))
    }

    /// Restores the original row order of a product computed in the
    /// permuted row space (`P·(A·B)` → `A·B`) — the assembly step
    /// [`Smat::try_spmm`] performs internally, exposed for external
    /// executors such as the scalar degradation path.
    pub fn restore_row_order(&self, c_permuted: &Dense<T>) -> Dense<T> {
        let inv = self.inner.reordering.row_perm.inverse();
        c_permuted.select_rows(inv.as_slice())
    }

    /// Like [`Smat::try_spmm`] but panics on simulation errors — the
    /// convenient entry point when the working set is known to fit.
    ///
    /// # Panics
    /// Panics if the simulated device reports an error (e.g. out of memory).
    pub fn spmm(&self, b: &Dense<T>) -> SmatRun<T> {
        self.try_spmm(b).expect("simulated launch failed")
    }

    /// BLAS-style fused update `C = alpha·A·B + beta·C`, with `c` given and
    /// returned in the *original* row order.
    ///
    /// # Panics
    /// Panics on shape mismatches or simulation errors.
    pub fn spmm_axpby(&self, b: &Dense<T>, c: &Dense<T>, alpha: f64, beta: f64) -> SmatRun<T> {
        let inner = &*self.inner;
        assert_eq!(inner.ncols, b.nrows(), "B must have {} rows", inner.ncols);
        let b_permuted;
        let b_eff: &Dense<T> = match &inner.reordering.col_perm {
            Some(cp) => {
                b_permuted = b.select_rows(cp.as_slice());
                &b_permuted
            }
            None => b,
        };
        // The kernel sees the permuted row order; bring C into it.
        let c_permuted = c.select_rows(inner.reordering.row_perm.as_slice());
        let (launch, out_permuted) = crate::kernel::smat_spmm_scheduled(
            &inner.gpu,
            &inner.bcsr,
            b_eff,
            inner.config.opts,
            inner.config.accum,
            crate::kernel::Epilogue {
                alpha,
                beta,
                c_in: Some(&c_permuted),
            },
            inner.config.schedule,
        )
        .expect("simulated launch failed");
        let inv = inner.reordering.row_perm.inverse();
        let mut out = out_permuted.select_rows(inv.as_slice());
        // alpha·A_eff·B = alpha·A_base·B + alpha·(overlay corrections)·B.
        self.overlay_snapshot()
            .apply_corrections(&mut out, b, alpha);
        SmatRun {
            c: out,
            report: RunReport {
                launch,
                nblocks: inner.bcsr.nblocks(),
                stats_before: inner.stats_before.clone(),
                stats_after: inner.stats_after.clone(),
                kernel_label: inner.config.opts.label(),
            },
        }
    }

    /// Sparse matrix–vector product `y = A·x` — the N = 1 special case
    /// (§II). The vector is treated as a one-column dense matrix.
    ///
    /// # Panics
    /// Panics on shape mismatches or simulation errors.
    pub fn spmv(&self, x: &[T]) -> (Vec<T>, RunReport) {
        let ncols = self.inner.ncols;
        assert_eq!(x.len(), ncols, "x must have {ncols} entries");
        let b = Dense::from_vec(ncols, 1, x.to_vec());
        let run = self.spmm(&b);
        let y = (0..run.c.nrows()).map(|i| run.c.get(i, 0)).collect();
        (y, run.report)
    }

    // ----- dynamic-matrix overlay (see `crate::overlay`) -----

    /// The current overlay snapshot. Immutable and `Arc`-shared: callers
    /// that must execute on a fixed epoch hold this and use
    /// [`Smat::try_spmm_on_pinned`].
    pub fn overlay_snapshot(&self) -> Arc<OverlaySnapshot> {
        Arc::clone(&self.inner.overlay.lock().unwrap().snapshot)
    }

    /// The current overlay epoch: the number of mutations applied since
    /// prepare (or since the last compaction rebase anchored it).
    pub fn overlay_epoch(&self) -> u64 {
        self.overlay_snapshot().epoch()
    }

    /// The fingerprint of the *effective* matrix identity: the base
    /// content fingerprint stamped with the current overlay epoch. This is
    /// what epoch-sensitive caches (plan cache, planner decisions) must
    /// key on; [`Smat::fingerprint`] stays the epoch-0 base identity the
    /// registry keys tenants by.
    pub fn effective_fingerprint(&self) -> MatrixFingerprint {
        self.inner.fingerprint.with_epoch(self.overlay_epoch())
    }

    /// Applies a batch of mutations to the overlay atomically (one epoch
    /// swap covers the whole batch; the epoch advances by `ops.len()`).
    /// Returns the new epoch.
    ///
    /// All update variants carry absolute cell state, so re-applying the
    /// same batch is idempotent (same resulting overrides, higher epoch) —
    /// the serving layer's mutate-during-compaction retry depends on this.
    ///
    /// The first mutation on a handle builds the fallback CSR and the
    /// inverse permutations (both memoized); after that each op costs two
    /// binary searches.
    ///
    /// # Panics
    /// Panics if a coordinate is out of bounds for the matrix shape.
    pub fn apply_updates(&self, ops: &[MatrixUpdate<T>]) -> u64 {
        if ops.is_empty() {
            return self.overlay_epoch();
        }
        let inner = &*self.inner;
        let fallback = self.fallback_csr();
        let mut store = inner.overlay.lock().unwrap();
        store.ensure_inverses(&inner.reordering);
        let mut cells = store.snapshot.cells().to_vec();
        for op in ops {
            let (r, c) = op.cell();
            assert!(
                r < inner.fingerprint.nrows && c < inner.ncols,
                "update at ({r},{c}) out of bounds for {}x{}",
                inner.fingerprint.nrows,
                inner.ncols
            );
            let value = op.value_f64();
            let base = store.base_value(&fallback, r, c);
            let cell = OverlayCell {
                row: r,
                col: c,
                value,
                correction: value - base,
            };
            match cells.binary_search_by_key(&(r, c), |x| (x.row, x.col)) {
                Ok(i) => cells[i] = cell,
                Err(i) => cells.insert(i, cell),
            }
        }
        let epoch = store.snapshot.epoch() + ops.len() as u64;
        store.snapshot = Arc::new(OverlaySnapshot::from_parts(cells, epoch));
        epoch
    }

    /// The effective matrix `base ⊕ overlay` as a CSR in the original
    /// coordinate space — the compaction operand (re-preparing this under
    /// the same config folds the overlay into a fresh base). With an empty
    /// overlay this reconstructs the original input exactly.
    pub fn merged_csr(&self) -> Csr<T> {
        let inner = &*self.inner;
        let fallback = self.fallback_csr();
        // Un-permute the fallback CSR back into original coordinates.
        let rp = &inner.reordering.row_perm;
        let cp = inner.reordering.col_perm.as_ref();
        let mut base = Coo::with_capacity(inner.fingerprint.nrows, inner.ncols, fallback.nnz());
        for (r, c, v) in fallback.iter() {
            let orig_c = cp.map_or(c, |p| p.source_of(c));
            base.push(rp.source_of(r), orig_c, v);
        }
        let base = base.to_csr();
        let overrides = self.overlay_snapshot().overrides();
        Coo::with_overrides(&base, &overrides).to_csr()
    }

    /// Re-anchors an absolute override set onto *this* handle's base — the
    /// publish step of background compaction. Corrections are recomputed
    /// against this base; overrides the base already satisfies (the cells
    /// the compaction folded in) drop out, and coordinates this handle
    /// already overrides — mutations that raced past the swap and were
    /// retried here — are kept as-is, since they are strictly newer than
    /// the incoming set. The epoch advances to at least `epoch` so the
    /// counter never runs backwards across a swap. Returns the resulting
    /// epoch.
    pub fn rebase_overlay(&self, incoming: &[OverlayCell], epoch: u64) -> u64 {
        let inner = &*self.inner;
        let fallback = self.fallback_csr();
        let mut store = inner.overlay.lock().unwrap();
        store.ensure_inverses(&inner.reordering);
        let mut cells = store.snapshot.cells().to_vec();
        for cell in incoming {
            let base = store.base_value(&fallback, cell.row, cell.col);
            let correction = cell.value - base;
            match cells.binary_search_by_key(&(cell.row, cell.col), |x| (x.row, x.col)) {
                // Existing override is newer (written after the swap):
                // keep it.
                Ok(_) => {}
                Err(i) => {
                    if correction != 0.0 {
                        cells.insert(
                            i,
                            OverlayCell {
                                row: cell.row,
                                col: cell.col,
                                value: cell.value,
                                correction,
                            },
                        );
                    }
                }
            }
        }
        let new_epoch = store.snapshot.epoch().max(epoch);
        store.snapshot = Arc::new(OverlaySnapshot::from_parts(cells, new_epoch));
        new_epoch
    }

    /// Whether two handles share the same prepared state (pointer
    /// identity, not content equality). The serving layer uses this to
    /// detect an epoch swap between fetching a handle and mutating it.
    pub fn ptr_eq(&self, other: &Smat<T>) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptFlags;
    use smat_formats::{Coo, F16};
    use smat_reorder::ReorderAlgorithm;

    fn interleaved(n: usize) -> Csr<F16> {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            let base = if r % 2 == 0 { 0 } else { n / 2 };
            for j in 0..8 {
                let c = (base + j * 3) % n;
                coo.push(r, c, F16::from_f64(((r + c) % 5) as f64 - 2.0));
            }
        }
        coo.to_csr()
    }

    fn rhs(k: usize, n: usize) -> Dense<F16> {
        Dense::from_fn(k, n, |i, j| F16::from_f64(((i + 2 * j) % 5) as f64 - 2.0))
    }

    #[test]
    fn pipeline_result_matches_reference_in_original_order() {
        let a = interleaved(96);
        let b = rhs(96, 8);
        let want = a.spmm_reference(&b);
        let engine = Smat::prepare(&a, SmatConfig::default());
        let run = engine.spmm(&b);
        assert_eq!(run.c, want, "row permutation must be undone");
    }

    #[test]
    fn reordering_variants_all_produce_same_product() {
        let a = interleaved(64);
        let b = rhs(64, 16);
        let want = a.spmm_reference(&b);
        for alg in [
            ReorderAlgorithm::Identity,
            ReorderAlgorithm::JaccardRows { tau: 0.7 },
            ReorderAlgorithm::JaccardRowsCols { tau: 0.7 },
            ReorderAlgorithm::ReverseCuthillMcKee,
            ReorderAlgorithm::Saad { tau: 0.5 },
            ReorderAlgorithm::GrayCode,
            ReorderAlgorithm::DegreeSort,
        ] {
            let cfg = SmatConfig {
                reorder: alg,
                ..SmatConfig::default()
            };
            let run = Smat::prepare(&a, cfg).spmm(&b);
            assert_eq!(run.c, want, "algorithm {} broke the product", alg.name());
        }
    }

    #[test]
    fn prepare_subtimings_sum_to_at_most_total() {
        let a = interleaved(128);
        let engine = Smat::prepare(&a, SmatConfig::default());
        let t = engine.prepare_timings();
        assert!(t.reorder_ms >= 0.0 && t.pack_ms >= 0.0 && t.convert_ms >= 0.0);
        assert!(
            t.stages_ms() <= t.total_ms,
            "stages {} must not exceed total {} (trace overhead lives in the total)",
            t.stages_ms(),
            t.total_ms
        );
        assert_eq!(t.total_ms, engine.prepare_wall_ms());
    }

    #[test]
    fn lsh_reorder_runs_through_the_pipeline() {
        let a = interleaved(64);
        let b = rhs(64, 16);
        let cfg = SmatConfig {
            reorder: ReorderAlgorithm::JaccardLsh {
                tau: 0.7,
                bands: 8,
                rows_per_band: 1,
            },
            ..SmatConfig::default()
        };
        let run = Smat::prepare(&a, cfg).spmm(&b);
        assert_eq!(run.c, a.spmm_reference(&b));
    }

    #[test]
    fn report_exposes_block_reduction() {
        let a = interleaved(128);
        let engine = Smat::prepare(&a, SmatConfig::default());
        let run = engine.spmm(&rhs(128, 8));
        assert!(run.report.nblocks > 0);
        assert!(run.report.block_reduction() >= 1.0);
        assert!(run.report.elapsed_ms() > 0.0);
        assert!(run.report.gflops() > 0.0);
        assert_eq!(run.report.kernel_label, "T+B+C");
    }

    #[test]
    fn prepare_once_run_many() {
        let a = interleaved(48);
        let engine = Smat::prepare(&a, SmatConfig::default());
        for n in [1, 8, 17] {
            let b = rhs(48, n);
            assert_eq!(engine.spmm(&b).c, a.spmm_reference(&b), "N={n}");
        }
    }

    #[test]
    fn naive_flags_still_correct_via_pipeline() {
        let a = interleaved(40);
        let b = rhs(40, 8);
        let cfg = SmatConfig {
            opts: OptFlags::none(),
            ..SmatConfig::default()
        };
        let run = Smat::prepare(&a, cfg).spmm(&b);
        assert_eq!(run.c, a.spmm_reference(&b));
        assert_eq!(run.report.kernel_label, "naive");
    }

    #[test]
    fn axpby_epilogue_matches_manual_combination() {
        let a = interleaved(48);
        let b = rhs(48, 8);
        let c0 = Dense::from_fn(48, 8, |i, j| F16::from_f64(((i + j) % 3) as f64));
        let engine = Smat::prepare(&a, SmatConfig::default());
        let run = engine.spmm_axpby(&b, &c0, 2.0, 3.0);
        // Reference: alpha * (A*B) + beta * C0, combined in f64 then
        // rounded once — matching the fused epilogue.
        let prod = a.spmm_reference(&b);
        let want = Dense::from_fn(48, 8, |i, j| {
            F16::from_f64(2.0 * prod.get(i, j).to_f64() + 3.0 * c0.get(i, j).to_f64())
        });
        assert_eq!(run.c, want);
    }

    #[test]
    fn axpby_with_beta_zero_equals_plain_spmm() {
        let a = interleaved(32);
        let b = rhs(32, 8);
        let c0 = Dense::zeros(32, 8);
        let engine = Smat::prepare(&a, SmatConfig::default());
        assert_eq!(engine.spmm_axpby(&b, &c0, 1.0, 0.0).c, engine.spmm(&b).c);
    }

    #[test]
    fn axpby_beta_load_costs_extra_traffic() {
        let a = interleaved(64);
        let b = rhs(64, 8);
        let c0 = Dense::zeros(64, 8);
        let engine = Smat::prepare(&a, SmatConfig::default());
        let plain = engine.spmm(&b).report.launch.totals.global_bytes;
        let fused = engine
            .spmm_axpby(&b, &c0, 1.0, 1.0)
            .report
            .launch
            .totals
            .global_bytes;
        assert!(
            fused > plain,
            "beta != 0 must load the C tiles: {fused} vs {plain}"
        );
    }

    #[test]
    fn spmv_is_the_n1_special_case() {
        let a = interleaved(40);
        let x: Vec<F16> = (0..40)
            .map(|i| F16::from_f64(((i % 5) as f64) - 2.0))
            .collect();
        let engine = Smat::prepare(&a, SmatConfig::default());
        let (y, report) = engine.spmv(&x);
        let b = Dense::from_vec(40, 1, x.clone());
        let want = a.spmm_reference(&b);
        for (i, &v) in y.iter().enumerate() {
            assert_eq!(v, want.get(i, 0));
        }
        assert!(report.elapsed_ms() > 0.0);
    }

    #[test]
    #[should_panic(expected = "B must have")]
    fn dimension_mismatch_panics() {
        let a = interleaved(32);
        let engine = Smat::prepare(&a, SmatConfig::default());
        let _ = engine.spmm(&rhs(16, 8));
    }

    #[test]
    fn preflight_rejects_oversubscribed_smem_before_launch() {
        use crate::config::PreflightMode;
        use smat_diag::{DiagCode, DiagnosticsExt};
        // 96x96 blocks request (96*96 + 4*96*8 + 4*96*8)*2 = 30720 B of
        // shared memory; the tiny test device has 16 KiB per SM. The
        // engine itself would reject this too — pre-flight must get there
        // first and say *why* with a typed finding.
        let a = interleaved(96);
        let cfg = SmatConfig {
            block_h: 96,
            block_w: 96,
            device: smat_gpusim::DeviceConfig::tiny_test_device(),
            preflight: PreflightMode::Force,
            ..SmatConfig::default()
        };
        let engine = Smat::prepare(&a, cfg);
        let err = engine.try_spmm(&rhs(96, 8)).unwrap_err();
        let SimError::PreflightRejected { diagnostics } = err else {
            panic!("expected a pre-flight rejection, got {err:?}");
        };
        assert!(diagnostics.codes().contains(&DiagCode::SmemOverflow));
        assert!(diagnostics.has_errors());
    }

    #[test]
    fn preflight_rejects_nonfinite_payload_with_typed_diagnostic() {
        use crate::config::PreflightMode;
        use smat_diag::{DiagCode, DiagnosticsExt};
        let mut coo = Coo::new(32, 32);
        coo.push(0, 0, F16::from_f32(f32::NAN));
        coo.push(17, 3, F16::ONE);
        let a = coo.to_csr();
        let cfg = SmatConfig {
            preflight: PreflightMode::Force,
            ..SmatConfig::default()
        };
        let engine = Smat::prepare(&a, cfg);
        let err = engine.try_spmm(&rhs(32, 8)).unwrap_err();
        let SimError::PreflightRejected { diagnostics } = err else {
            panic!("expected a pre-flight rejection, got {err:?}");
        };
        assert!(diagnostics.codes().contains(&DiagCode::NonFinitePayload));
        // The Display form is a readable multi-line report.
        let msg = SimError::PreflightRejected { diagnostics }.to_string();
        assert!(msg.contains("pre-flight rejected"), "{msg}");
        assert!(msg.contains("F008"), "{msg}");
    }

    #[test]
    fn preflight_off_defers_to_engine_resource_check() {
        use crate::config::PreflightMode;
        let a = interleaved(96);
        let cfg = SmatConfig {
            block_h: 96,
            block_w: 96,
            device: smat_gpusim::DeviceConfig::tiny_test_device(),
            preflight: PreflightMode::Off,
            ..SmatConfig::default()
        };
        let engine = Smat::prepare(&a, cfg);
        let err = engine.try_spmm(&rhs(96, 8)).unwrap_err();
        assert!(
            matches!(err, SimError::SharedMemoryExceeded { .. }),
            "with pre-flight off the engine's own check fires: {err:?}"
        );
    }

    #[test]
    fn handles_are_cheap_shared_clones() {
        let a = interleaved(64);
        let b = rhs(64, 8);
        let engine = Smat::prepare(&a, SmatConfig::default());
        assert_eq!(engine.handle_count(), 1);
        let shared = engine.clone();
        assert_eq!(engine.handle_count(), 2);
        // Both handles see the same prepared state and produce the product.
        assert_eq!(shared.fingerprint(), engine.fingerprint());
        assert!(std::ptr::eq(shared.bcsr(), engine.bcsr()));
        assert_eq!(shared.spmm(&b).c, a.spmm_reference(&b));
        drop(shared);
        assert_eq!(engine.handle_count(), 1);
    }

    #[test]
    fn handles_are_send_sync_for_element_types() {
        fn assert_send_sync<S: Send + Sync>() {}
        assert_send_sync::<Smat<F16>>();
        assert_send_sync::<Smat<f32>>();
    }

    #[test]
    fn fingerprint_matches_the_input_matrix() {
        use smat_formats::MatrixFingerprint;
        let a = interleaved(64);
        let engine = Smat::prepare(&a, SmatConfig::default());
        assert_eq!(engine.fingerprint(), MatrixFingerprint::of_csr(&a));
    }

    #[test]
    fn preflight_is_memoized_per_rhs_width() {
        let a = interleaved(64);
        let engine = Smat::prepare(&a, SmatConfig::default());
        assert_eq!(engine.preflight_cache_len(), 0);
        let first = engine.preflight_cached(8);
        let again = engine.preflight_cached(8);
        assert!(
            Arc::ptr_eq(&first, &again),
            "same n must reuse the cached findings"
        );
        assert_eq!(engine.preflight_cache_len(), 1);
        let other = engine.preflight_cached(16);
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(engine.preflight_cache_len(), 2);
        // The owned-copy entry point agrees with the cache.
        assert_eq!(engine.preflight(8), *first);
        // Clones share the cache (it lives on the prepared state).
        assert_eq!(engine.clone().preflight_cache_len(), 2);
    }

    #[test]
    fn spmm_on_external_device_matches_embedded_device() {
        let a = interleaved(64);
        let b = rhs(64, 8);
        let engine = Smat::prepare(&a, SmatConfig::default());
        let pool_device = Gpu::new(engine.config().device.clone());
        let on_pool = engine.try_spmm_on(&pool_device, &b).unwrap();
        let embedded = engine.try_spmm(&b).unwrap();
        assert_eq!(on_pool.c, embedded.c);
        assert_eq!(
            on_pool.report.launch.time_ms,
            embedded.report.launch.time_ms
        );
    }

    #[test]
    fn fallback_csr_is_memoized_and_matches_tc_pipeline_bitwise() {
        let a = interleaved(64);
        let b = rhs(64, 8);
        for alg in [
            ReorderAlgorithm::JaccardRows { tau: 0.7 },
            // Exercises the column permutation branch of permute_rhs.
            ReorderAlgorithm::JaccardRowsCols { tau: 0.7 },
        ] {
            let cfg = SmatConfig {
                reorder: alg,
                ..SmatConfig::default()
            };
            let engine = Smat::prepare(&a, cfg);
            let csr = engine.fallback_csr();
            assert!(
                Arc::ptr_eq(&csr, &engine.fallback_csr()),
                "fallback CSR must be built once and shared"
            );
            assert_eq!(csr.nnz(), a.nnz(), "padding zeros must be dropped");
            let b_permuted = engine.permute_rhs(&b);
            let b_eff = b_permuted.as_ref().unwrap_or(&b);
            let scalar = engine.restore_row_order(&csr.spmm_reference(b_eff));
            // The scalar degradation path must be indistinguishable from
            // the Tensor Core result — same bits, original row order.
            assert_eq!(scalar, engine.spmm(&b).c, "algorithm {}", alg.name());
        }
    }

    #[test]
    fn permute_rhs_is_none_without_column_permutation() {
        let a = interleaved(32);
        let engine = Smat::prepare(&a, SmatConfig::default());
        assert!(engine.reordering().col_perm.is_none());
        assert!(engine.permute_rhs(&rhs(32, 4)).is_none());
    }

    #[test]
    fn overlay_spmm_matches_merged_rebuild_bitwise() {
        use crate::overlay::MatrixUpdate;
        let a = interleaved(64);
        let b = rhs(64, 8);
        for alg in [
            ReorderAlgorithm::JaccardRows { tau: 0.7 },
            // Exercises the permuted-coordinate base lookups on both axes.
            ReorderAlgorithm::JaccardRowsCols { tau: 0.7 },
        ] {
            let cfg = SmatConfig {
                reorder: alg,
                ..SmatConfig::default()
            };
            let engine = Smat::prepare(&a, cfg.clone());
            let ops = [
                MatrixUpdate::Update {
                    row: 3,
                    col: 5,
                    value: F16::from_f64(2.0),
                },
                MatrixUpdate::Insert {
                    row: 10,
                    col: 63,
                    value: F16::from_f64(-1.0),
                },
                MatrixUpdate::Delete {
                    row: 1,
                    col: a.row_cols(1)[0],
                },
            ];
            let epoch = engine.apply_updates(&ops);
            assert_eq!(epoch, 3);
            let merged = engine.merged_csr();
            assert_eq!(merged.get(3, 5), Some(F16::from_f64(2.0)));
            assert_eq!(merged.get(10, 63), Some(F16::from_f64(-1.0)));
            assert_eq!(merged.get(1, a.row_cols(1)[0]), None);
            let rebuilt = Smat::prepare(&merged, cfg);
            assert_eq!(
                engine.spmm(&b).c,
                rebuilt.spmm(&b).c,
                "overlay path must equal a from-scratch rebuild ({})",
                alg.name()
            );
            assert_eq!(engine.spmm(&b).c, merged.spmm_reference(&b));
        }
    }

    #[test]
    fn merged_csr_with_empty_overlay_reconstructs_the_input() {
        let a = interleaved(48);
        let engine = Smat::prepare(&a, SmatConfig::default());
        let merged = engine.merged_csr();
        assert_eq!(merged.row_ptr(), a.row_ptr());
        assert_eq!(merged.col_idx(), a.col_idx());
        assert_eq!(merged.values(), a.values());
    }

    #[test]
    fn pinned_snapshot_executes_on_the_admitted_epoch() {
        use crate::overlay::MatrixUpdate;
        let a = interleaved(48);
        let b = rhs(48, 8);
        let engine = Smat::prepare(&a, SmatConfig::default());
        let before = engine.spmm(&b).c;
        let pinned = engine.overlay_snapshot();
        engine.apply_updates(&[MatrixUpdate::Update {
            row: 0,
            col: 0,
            value: F16::from_f64(3.0),
        }]);
        // A pinned execution ignores the later mutation...
        let gpu = Gpu::new(engine.config().device.clone());
        let run = engine.try_spmm_on_pinned(&gpu, &b, &pinned).unwrap();
        assert_eq!(run.c, before, "in-flight work finishes on its epoch");
        // ...while the unpinned path sees it.
        assert_ne!(engine.spmm(&b).c, before);
        assert_eq!(engine.overlay_epoch(), 1);
        assert_eq!(engine.effective_fingerprint().epoch, 1);
        assert_eq!(engine.fingerprint().epoch, 0, "base identity is stable");
    }

    #[test]
    fn reapplying_updates_is_idempotent_on_overrides() {
        use crate::overlay::MatrixUpdate;
        let a = interleaved(32);
        let engine = Smat::prepare(&a, SmatConfig::default());
        let ops = [
            MatrixUpdate::Update {
                row: 2,
                col: 7,
                value: F16::from_f64(4.0),
            },
            MatrixUpdate::Delete { row: 5, col: 3 },
        ];
        engine.apply_updates(&ops);
        let cells_once = engine.overlay_snapshot().cells().to_vec();
        engine.apply_updates(&ops);
        let again = engine.overlay_snapshot();
        assert_eq!(again.cells(), cells_once.as_slice(), "absolute semantics");
        assert_eq!(again.epoch(), 4, "the epoch still advances");
    }

    #[test]
    fn rebase_folds_satisfied_overrides_and_keeps_newer_ones() {
        use crate::overlay::MatrixUpdate;
        let a = interleaved(32);
        let engine = Smat::prepare(&a, SmatConfig::default());
        engine.apply_updates(&[MatrixUpdate::Update {
            row: 1,
            col: 2,
            value: F16::from_f64(5.0),
        }]);
        let old_cells = engine.overlay_snapshot().cells().to_vec();
        let old_epoch = engine.overlay_epoch();
        // Compaction: prepare the merged matrix fresh, then rebase.
        let fresh = Smat::prepare(&engine.merged_csr(), SmatConfig::default());
        // A mutation that raced past the swap and was retried on `fresh`.
        fresh.apply_updates(&[MatrixUpdate::Update {
            row: 1,
            col: 2,
            value: F16::from_f64(9.0),
        }]);
        let epoch = fresh.rebase_overlay(&old_cells, old_epoch);
        assert!(epoch >= old_epoch);
        let ov = fresh.overlay_snapshot();
        // The newer retried value wins; the folded override is dropped.
        assert_eq!(ov.len(), 1);
        assert_eq!(ov.cells()[0].value, 9.0);
        // A rebase with no racing mutations empties the overlay entirely.
        let quiet = Smat::prepare(&engine.merged_csr(), SmatConfig::default());
        quiet.rebase_overlay(&old_cells, old_epoch);
        assert!(quiet.overlay_snapshot().is_empty());
        assert_eq!(quiet.overlay_epoch(), old_epoch);
    }

    #[test]
    fn preflight_memo_is_epoch_keyed_and_rejects_nonfinite_overrides() {
        use crate::config::PreflightMode;
        use crate::overlay::MatrixUpdate;
        use smat_diag::{DiagCode, DiagnosticsExt};
        let a = interleaved(32);
        let cfg = SmatConfig {
            preflight: PreflightMode::Force,
            ..SmatConfig::default()
        };
        let engine = Smat::prepare(&a, cfg);
        assert!(engine.try_spmm(&rhs(32, 8)).is_ok());
        assert_eq!(engine.preflight_cache_len(), 1);
        // Mutating re-keys the memo: same n, new epoch, fresh analysis.
        engine.apply_updates(&[MatrixUpdate::Update {
            row: 0,
            col: 1,
            value: F16::from_f32(f32::NAN),
        }]);
        let err = engine.try_spmm(&rhs(32, 8)).unwrap_err();
        let SimError::PreflightRejected { diagnostics } = err else {
            panic!("expected a pre-flight rejection, got {err:?}");
        };
        assert!(diagnostics.codes().contains(&DiagCode::NonFinitePayload));
        assert_eq!(
            engine.preflight_cache_len(),
            2,
            "old-epoch memo must not answer for the mutated payload"
        );
        // Deleting the poisoned cell clears the rejection at the new epoch.
        engine.apply_updates(&[MatrixUpdate::Delete { row: 0, col: 1 }]);
        assert!(engine.try_spmm(&rhs(32, 8)).is_ok());
    }

    #[test]
    fn overlay_axpby_matches_merged_rebuild() {
        use crate::overlay::MatrixUpdate;
        let a = interleaved(48);
        let b = rhs(48, 8);
        let c0 = Dense::from_fn(48, 8, |i, j| F16::from_f64(((i + j) % 3) as f64));
        let engine = Smat::prepare(&a, SmatConfig::default());
        engine.apply_updates(&[MatrixUpdate::Update {
            row: 4,
            col: 9,
            value: F16::from_f64(-2.0),
        }]);
        let rebuilt = Smat::prepare(&engine.merged_csr(), SmatConfig::default());
        assert_eq!(
            engine.spmm_axpby(&b, &c0, 2.0, 3.0).c,
            rebuilt.spmm_axpby(&b, &c0, 2.0, 3.0).c
        );
    }

    #[test]
    fn preflight_reports_warnings_without_blocking() {
        use smat_diag::{DiagCode, DiagnosticsExt};
        let a = interleaved(64);
        let engine = Smat::prepare(&a, SmatConfig::default());
        let diags = engine.preflight(8);
        // The seed kernel stages the A tile row-major and budgets a single
        // async buffer — both known warnings, neither a launch blocker.
        assert!(!diags.has_errors(), "{diags:?}");
        assert!(diags.codes().contains(&DiagCode::BankConflict));
        // And indeed the launch still succeeds under Auto (debug build).
        assert!(engine.try_spmm(&rhs(64, 8)).is_ok());
    }
}
