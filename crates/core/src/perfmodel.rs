//! The empirical performance model of §III:
//! `T_tot = T_e · n_e + T_init`  (Eq. 1),
//! where `n_e` is the number of BCSR blocks (elementary computations) and
//! `T_e` the cost of one elementary computation. Fitted by ordinary least
//! squares over (n_e, T_tot) samples, exactly as the paper fits it on band
//! matrices of varying bandwidth.

use serde::Serialize;

/// One measurement: block count and total kernel time.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PerfSample {
    /// Number of elementary computations (BCSR blocks), `n_e`.
    pub n_e: f64,
    /// Measured total time in milliseconds, `T_tot`.
    pub t_ms: f64,
}

/// The fitted linear model.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PerfModel {
    /// Per-block execution time `T_e` in milliseconds.
    pub t_e_ms: f64,
    /// Startup/initialization overhead `T_init` in milliseconds.
    pub t_init_ms: f64,
    /// Coefficient of determination of the fit.
    pub r2: f64,
}

impl PerfModel {
    /// Ordinary least-squares fit of Eq. (1).
    ///
    /// # Panics
    /// Panics with fewer than two samples or when all `n_e` are equal (the
    /// slope is not identifiable).
    pub fn fit(samples: &[PerfSample]) -> PerfModel {
        assert!(samples.len() >= 2, "need at least two samples to fit");
        let n = samples.len() as f64;
        // Centered OLS: slope = Σ(x−x̄)(y−ȳ) / Σ(x−x̄)². The textbook
        // uncentered form `n·Σx² − (Σx)²` subtracts two ~x̄²-sized numbers
        // and cancels catastrophically once n_e reaches realistic block
        // counts (1e7–1e9 with a small spread): the difference carries the
        // *variance*, which is ulps of the squared mean there.
        let mean_x: f64 = samples.iter().map(|s| s.n_e).sum::<f64>() / n;
        let mean_y: f64 = samples.iter().map(|s| s.t_ms).sum::<f64>() / n;
        let sxx: f64 = samples.iter().map(|s| (s.n_e - mean_x).powi(2)).sum();
        let sxy: f64 = samples
            .iter()
            .map(|s| (s.n_e - mean_x) * (s.t_ms - mean_y))
            .sum();
        // Degenerate-x guard, now on the centered spread: all-equal n_e
        // gives sxx == 0 up to rounding of the mean.
        assert!(
            sxx > n * (f64::EPSILON * mean_x.abs().max(1.0)).powi(2),
            "all n_e equal; slope unidentifiable"
        );
        let t_e = sxy / sxx;
        let t_init = mean_y - t_e * mean_x;
        let ss_tot: f64 = samples.iter().map(|s| (s.t_ms - mean_y).powi(2)).sum();
        let ss_res: f64 = samples
            .iter()
            .map(|s| (s.t_ms - (t_e * s.n_e + t_init)).powi(2))
            .sum();
        let r2 = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };

        PerfModel {
            t_e_ms: t_e,
            t_init_ms: t_init,
            r2,
        }
    }

    /// Predicted total time for `n_e` blocks.
    pub fn predict(&self, n_e: f64) -> f64 {
        self.t_e_ms * n_e + self.t_init_ms
    }

    /// Mean relative error of the model on a sample set.
    ///
    /// Samples with `t_ms <= 0` (or non-finite) are excluded — relative
    /// error is undefined there, and one zero-time sample would otherwise
    /// poison the mean with `inf`/`NaN` and flow silently into reported
    /// error percentages. Returns `0.0` when no sample is usable; use
    /// [`PerfModel::relative_error_stats`] to observe how many were
    /// excluded.
    pub fn mean_relative_error(&self, samples: &[PerfSample]) -> f64 {
        self.relative_error_stats(samples).0
    }

    /// Mean relative error plus the number of samples excluded because
    /// their measured time was zero, negative, or non-finite.
    pub fn relative_error_stats(&self, samples: &[PerfSample]) -> (f64, usize) {
        let mut acc = 0.0;
        let mut used = 0usize;
        for s in samples {
            if !(s.t_ms.is_finite() && s.t_ms > 0.0) {
                continue;
            }
            acc += ((self.predict(s.n_e) - s.t_ms) / s.t_ms).abs();
            used += 1;
        }
        let mean = if used == 0 { 0.0 } else { acc / used as f64 };
        (mean, samples.len() - used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_on_linear_data() {
        let samples: Vec<PerfSample> = (1..=10)
            .map(|i| PerfSample {
                n_e: i as f64 * 100.0,
                t_ms: 0.5 * i as f64 * 100.0 + 3.0,
            })
            .collect();
        let m = PerfModel::fit(&samples);
        assert!((m.t_e_ms - 0.5).abs() < 1e-9);
        assert!((m.t_init_ms - 3.0).abs() < 1e-9);
        assert!(m.r2 > 1.0 - 1e-12);
        assert!((m.predict(2000.0) - 1003.0).abs() < 1e-6);
    }

    #[test]
    fn noisy_fit_recovers_parameters_approximately() {
        let samples: Vec<PerfSample> = (1..=20)
            .map(|i| {
                let noise = if i % 2 == 0 { 1.02 } else { 0.98 };
                PerfSample {
                    n_e: i as f64 * 50.0,
                    t_ms: (0.2 * i as f64 * 50.0 + 1.0) * noise,
                }
            })
            .collect();
        let m = PerfModel::fit(&samples);
        assert!((m.t_e_ms - 0.2).abs() < 0.02);
        assert!(m.r2 > 0.99);
        assert!(m.mean_relative_error(&samples) < 0.05);
    }

    #[test]
    fn zero_time_samples_do_not_poison_relative_error() {
        let mut samples: Vec<PerfSample> = (1..=10)
            .map(|i| PerfSample {
                n_e: i as f64 * 100.0,
                t_ms: 0.5 * i as f64 * 100.0 + 3.0,
            })
            .collect();
        let m = PerfModel::fit(&samples);
        // A timer-resolution dropout: measured time of exactly zero. Before
        // the guard this produced inf (t_ms == 0.0) and wiped out the mean.
        samples.push(PerfSample {
            n_e: 1234.0,
            t_ms: 0.0,
        });
        samples.push(PerfSample {
            n_e: 777.0,
            t_ms: f64::NAN,
        });
        let (mean, excluded) = m.relative_error_stats(&samples);
        assert!(mean.is_finite());
        assert!(mean < 1e-9, "exact fit on the usable samples: {mean}");
        assert_eq!(excluded, 2);
        assert!(m.mean_relative_error(&samples).is_finite());
    }

    #[test]
    fn relative_error_of_all_degenerate_samples_is_zero() {
        let m = PerfModel {
            t_e_ms: 1.0,
            t_init_ms: 0.0,
            r2: 1.0,
        };
        let samples = [PerfSample {
            n_e: 10.0,
            t_ms: 0.0,
        }];
        let (mean, excluded) = m.relative_error_stats(&samples);
        assert_eq!(mean, 0.0);
        assert_eq!(excluded, 1);
    }

    #[test]
    fn centered_fit_survives_large_offset_samples() {
        // Realistic block counts: n_e ≈ 1e9 with a spread of 10. Every
        // input here is exactly representable, yet the uncentered slope
        // formula `(n·Σxy − Σx·Σy) / (n·Σx² − (Σx)²)` computes a
        // denominator of exactly 0 (true value: 825) — Σx² ≈ 1e19 has an
        // ulp of 2048, so the variance vanishes in the cancellation and the
        // old code rejected identifiable data as "all n_e equal". The
        // centered fit is exact.
        let samples: Vec<PerfSample> = (0..10)
            .map(|i| {
                let x = 1.0e9 + i as f64;
                PerfSample {
                    n_e: x,
                    t_ms: 0.5 * x + 3.0,
                }
            })
            .collect();
        {
            // Pin the failure mode the centered rewrite fixes.
            let n = samples.len() as f64;
            let sx: f64 = samples.iter().map(|s| s.n_e).sum();
            let sxx: f64 = samples.iter().map(|s| s.n_e * s.n_e).sum();
            assert_eq!(n * sxx - sx * sx, 0.0, "cancellation demo");
        }
        let m = PerfModel::fit(&samples);
        assert!((m.t_e_ms - 0.5).abs() < 1e-9, "slope: {}", m.t_e_ms);
        assert!(
            (m.t_init_ms - 3.0).abs() < 1e-6,
            "intercept: {}",
            m.t_init_ms
        );
        assert!(m.r2 > 1.0 - 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_sample() {
        let _ = PerfModel::fit(&[PerfSample {
            n_e: 1.0,
            t_ms: 1.0,
        }]);
    }

    #[test]
    #[should_panic(expected = "unidentifiable")]
    fn rejects_degenerate_x() {
        let s = PerfSample {
            n_e: 5.0,
            t_ms: 1.0,
        };
        let _ = PerfModel::fit(&[s, s, s]);
    }
}
