//! SMaT configuration: block shape, optimization toggles (the T/B/C of the
//! Fig. 2 ablation), accumulation mode, preprocessing scheme, and device.

use serde::Serialize;
use smat_gpusim::{DeviceConfig, MmaShape};
use smat_reorder::ReorderAlgorithm;

/// The three low-level optimizations ablated in Fig. 2 of the paper.
///
/// * `tc` (**T**) — execute block multiplies on Tensor Cores through the
///   MMA API instead of CUDA-core scalar FMAs;
/// * `bcsr_iter` (**B**) — iterate only nonzero blocks through the BCSR
///   `rowPtr`/`colIdx` arrays instead of scanning every block of the row;
/// * `async_copy` (**C**) — `cuda::memcpy_async` double buffering that
///   overlaps global→shared transfers with compute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct OptFlags {
    /// Use the Tensor Core MMA API (**T**).
    pub tc: bool,
    /// Iterate nonzero blocks only via BCSR pointers (**B**).
    pub bcsr_iter: bool,
    /// Overlap data movement with compute via async copies (**C**).
    pub async_copy: bool,
}

impl OptFlags {
    /// The fully optimized kernel (T+B+C) — SMaT's production configuration.
    pub fn all() -> Self {
        OptFlags {
            tc: true,
            bcsr_iter: true,
            async_copy: true,
        }
    }

    /// The naive kernel: scalar FMAs, dense block scan, synchronous copies.
    pub fn none() -> Self {
        OptFlags {
            tc: false,
            bcsr_iter: false,
            async_copy: false,
        }
    }

    /// All eight combinations in the order of Fig. 2 (naive → T+B+C).
    pub fn all_combinations() -> [OptFlags; 8] {
        let f = |tc, bcsr_iter, async_copy| OptFlags {
            tc,
            bcsr_iter,
            async_copy,
        };
        [
            f(false, false, false),
            f(false, false, true),
            f(false, true, false),
            f(true, false, false),
            f(false, true, true),
            f(true, false, true),
            f(true, true, false),
            f(true, true, true),
        ]
    }

    /// Display label matching the paper's figure legend ("naive", "C", "B",
    /// "T", "B+C", "T+C", "T+B", "T+B+C").
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.tc {
            parts.push("T");
        }
        if self.bcsr_iter {
            parts.push("B");
        }
        if self.async_copy {
            parts.push("C");
        }
        if parts.is_empty() {
            "naive".to_string()
        } else {
            parts.join("+")
        }
    }
}

/// How warps are assigned to SMs.
///
/// The paper's kernel uses a fixed 2D grid — [`Schedule::Static2D`] — whose
/// sensitivity to skewed blocks-per-row distributions is analyzed in §VI-E
/// (dc2 is the pathological case). [`Schedule::BalancedGreedy`] is this
/// reproduction's extension: warps are pre-assigned to SMs by
/// longest-processing-time-first over their block counts, which is what a
/// persistent-kernel / work-queue implementation achieves on real hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Schedule {
    /// Fixed grid, warp→SM round-robin (the paper's kernel).
    Static2D,
    /// LPT pre-balancing by per-warp block count.
    BalancedGreedy,
}

/// Where block partial sums live between MMA instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum AccumMode {
    /// Keep the C fragment in the wide accumulator type (f32 for f16/bf16
    /// inputs) across the whole block-row loop; round once in the epilogue.
    /// This is the `mma...f32.f16.f16.f32` variant and the default.
    Wide,
    /// Round to the storage type after every MMA (the
    /// `mma...f16.f16.f16.f16` variant shown verbatim in Listing 1).
    Narrow,
}

/// When the pipeline runs the static pre-flight pass (`smat-analyze`'s
/// format verifier + schedule hazard analyzer) before launching the
/// simulated kernel.
///
/// Error-severity findings turn into
/// [`SimError::PreflightRejected`](smat_gpusim::SimError::PreflightRejected)
/// *before* the simulator executes; warnings never block a launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum PreflightMode {
    /// Run in debug builds, skip in release builds (the default): tests and
    /// development catch invariant violations, benchmarks pay nothing.
    Auto,
    /// Never run.
    Off,
    /// Always run, also in release builds.
    Force,
}

impl PreflightMode {
    /// Whether the pass runs under this mode in the current build profile.
    pub fn enabled(self) -> bool {
        match self {
            PreflightMode::Auto => cfg!(debug_assertions),
            PreflightMode::Off => false,
            PreflightMode::Force => true,
        }
    }
}

/// Full SMaT configuration.
#[derive(Clone, Debug)]
pub struct SmatConfig {
    /// BCSR block height `h` (M dimension of the MMA).
    pub block_h: usize,
    /// BCSR block width `w` (K dimension of the MMA).
    pub block_w: usize,
    /// Preprocessing permutation scheme.
    pub reorder: ReorderAlgorithm,
    /// Low-level kernel optimizations.
    pub opts: OptFlags,
    /// Accumulation mode.
    pub accum: AccumMode,
    /// Warp→SM scheduling policy.
    pub schedule: Schedule,
    /// Simulated device.
    pub device: DeviceConfig,
    /// When to run the static pre-flight pass before each launch.
    pub preflight: PreflightMode,
}

impl Default for SmatConfig {
    /// The production configuration: 16×16 blocks feeding `mma.m16n8k16`,
    /// Jaccard row reordering, all optimizations on, wide accumulation, on
    /// the A100 model.
    fn default() -> Self {
        SmatConfig {
            block_h: 16,
            block_w: 16,
            reorder: ReorderAlgorithm::smat_default(),
            opts: OptFlags::all(),
            accum: AccumMode::Wide,
            schedule: Schedule::Static2D,
            device: DeviceConfig::a100_sxm4_40gb(),
            preflight: PreflightMode::Auto,
        }
    }
}

impl SmatConfig {
    /// The MMA shape implied by the block dimensions (`m = h`, `k = w`,
    /// `n = 8` on Ampere).
    pub fn mma_shape(&self) -> MmaShape {
        MmaShape {
            m: self.block_h,
            n: 8,
            k: self.block_w,
        }
    }

    /// Configuration without preprocessing (identity permutation) — used by
    /// the reordering-effect experiments as the "original" arm.
    pub fn without_reordering(mut self) -> Self {
        self.reorder = ReorderAlgorithm::Identity;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figure_legend() {
        assert_eq!(OptFlags::none().label(), "naive");
        assert_eq!(OptFlags::all().label(), "T+B+C");
        let t = OptFlags {
            tc: true,
            bcsr_iter: false,
            async_copy: false,
        };
        assert_eq!(t.label(), "T");
        let bc = OptFlags {
            tc: false,
            bcsr_iter: true,
            async_copy: true,
        };
        assert_eq!(bc.label(), "B+C");
    }

    #[test]
    fn eight_unique_combinations() {
        let combos = OptFlags::all_combinations();
        let labels: std::collections::HashSet<String> =
            combos.iter().map(OptFlags::label).collect();
        assert_eq!(labels.len(), 8);
        assert_eq!(combos[0], OptFlags::none());
        assert_eq!(combos[7], OptFlags::all());
    }

    #[test]
    fn default_config_matches_paper() {
        let c = SmatConfig::default();
        assert_eq!(c.block_h, 16);
        assert_eq!(c.block_w, 16);
        assert_eq!(c.mma_shape(), MmaShape::M16N8K16);
        assert_eq!(c.opts, OptFlags::all());
    }

    #[test]
    fn without_reordering_sets_identity() {
        let c = SmatConfig::default().without_reordering();
        assert_eq!(c.reorder, ReorderAlgorithm::Identity);
    }
}
