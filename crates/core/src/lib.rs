//! # smat
//!
//! The SMaT library — (S)parse (Ma)trix Matrix (T)ensor Core-accelerated
//! SpMM for unstructured sparse matrices (Okanovic et al., SC 2024) — on the
//! simulated A100 of `smat-gpusim`.
//!
//! Pipeline (Fig. 1 of the paper): a CSR matrix is permuted by a
//! block-densifying row reordering (Jaccard clustering by default), stored
//! as BCSR with blocks matching the Tensor Core MMA fragment, and multiplied
//! by the warp-level 2D-parallel kernel of Algorithm 1 (`memcpy_async`
//! staging, `ldmatrix` fragment loads, `HMMA16816` tensor-core MMA).
//!
//! ```
//! use smat::{Smat, SmatConfig};
//! use smat_formats::{Csr, Dense, Element, F16, Coo};
//!
//! let mut coo = Coo::new(64, 64);
//! for i in 0..64 { coo.push(i, (i * 7) % 64, F16::from_f32(1.0)); }
//! let a: Csr<F16> = coo.to_csr();
//! let b = Dense::from_fn(64, 8, |i, j| F16::from_f64(((i + j) % 3) as f64));
//!
//! let engine = Smat::prepare(&a, SmatConfig::default());
//! let run = engine.spmm(&b);
//! assert_eq!(run.c, a.spmm_reference(&b));
//! ```

#![forbid(unsafe_code)]

pub mod autotune;
pub mod config;
pub mod kernel;
pub mod overlay;
pub mod perfmodel;
pub mod pipeline;
pub mod planner;

pub use autotune::{autotune, TuneReport, TuneSpace};
pub use config::{AccumMode, OptFlags, PreflightMode, Schedule, SmatConfig};
pub use kernel::{
    build_launch_config, smat_spmm, smat_spmm_axpby, smat_spmm_scheduled, Epilogue, NTILE,
    WARPS_PER_TB,
};
pub use overlay::{MatrixUpdate, OverlayCell, OverlaySnapshot};
pub use perfmodel::{PerfModel, PerfSample};
pub use pipeline::{PrepareTimings, RunReport, Smat, SmatRun};
pub use planner::{Calibration, PlanDecision, PlanSource, PlanSpace, Planner, ReorderCache};
