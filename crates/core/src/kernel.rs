//! The warp-level SMaT SpMM kernel (Algorithm 1 of the paper) on the
//! simulated device.
//!
//! Grid: one warp per (block row `bi`, output column tile `tj`), the
//! bottom-up 2D parallel schedule. Warps covering the same block row are
//! grouped into thread blocks of up to [`WARPS_PER_TB`] column tiles; the
//! leader warp stages the A block into shared memory once per thread block
//! (`memcpy_async`), every warp `ldmatrix`-loads its fragments and issues
//! one Tensor Core MMA per nonzero block, and the epilogue writes the C
//! tile back through shared memory (Algorithm 1 lines 10–11).
//!
//! The same function also executes the *ablation* variants of Fig. 2:
//! without **T** the block multiply runs as CUDA-core scalar FMAs, without
//! **B** every block of the row is scanned and tested for emptiness, and
//! without **C** the launch runs with synchronous two-step copies. All
//! variants are functionally identical — they differ only in recorded cost.

use smat_formats::{Bcsr, Dense, Element};
use smat_gpusim::{
    mma_tile, mma_tile_wide, CopyMode, Gpu, LaunchConfig, LaunchResult, MmaShape, SimError, WarpCtx,
};

use crate::config::{AccumMode, OptFlags, Schedule};

/// Column tiles per thread block: warps of one thread block share the
/// staged A block, amortizing its global traffic when `N` is large.
pub const WARPS_PER_TB: usize = 4;

/// Width of one output column tile (the MMA N dimension on Ampere).
pub const NTILE: usize = 8;

/// One warp's output: its C tile, row-major `block_h × NTILE`.
type WarpTile<T> = Vec<T>;

/// BLAS-style epilogue parameters: `C = alpha * A * B + beta * C_in`.
///
/// `alpha`/`beta` are applied in the accumulator precision during the
/// epilogue (one extra rounding at most), exactly as a fused GEMM epilogue
/// would. `beta != 0` requires `c_in` and charges the extra C-tile load
/// traffic.
#[derive(Clone, Copy, Debug)]
pub struct Epilogue<'a, T> {
    /// Scale on the product.
    pub alpha: f64,
    /// Scale on the existing C.
    pub beta: f64,
    /// Existing C (required when `beta != 0`), in the *permuted* row order.
    pub c_in: Option<&'a Dense<T>>,
}

impl<T> Default for Epilogue<'_, T> {
    fn default() -> Self {
        Epilogue {
            alpha: 1.0,
            beta: 0.0,
            c_in: None,
        }
    }
}

/// Launches the SMaT kernel `C = A·B` for a preprocessed BCSR matrix.
///
/// Returns the launch timing/counters and the assembled (still
/// row-permuted) output matrix.
pub fn smat_spmm<T: Element>(
    gpu: &Gpu,
    a: &Bcsr<T>,
    b: &Dense<T>,
    opts: OptFlags,
    accum: AccumMode,
) -> Result<(LaunchResult, Dense<T>), SimError> {
    smat_spmm_scheduled(
        gpu,
        a,
        b,
        opts,
        accum,
        Epilogue::default(),
        Schedule::Static2D,
    )
}

/// Launches the SMaT kernel with a BLAS-style epilogue:
/// `C = alpha * A * B + beta * C_in`.
///
/// # Panics
/// Panics if `beta != 0` and `epilogue.c_in` is missing or mis-shaped.
pub fn smat_spmm_axpby<T: Element>(
    gpu: &Gpu,
    a: &Bcsr<T>,
    b: &Dense<T>,
    opts: OptFlags,
    accum: AccumMode,
    epilogue: Epilogue<'_, T>,
) -> Result<(LaunchResult, Dense<T>), SimError> {
    smat_spmm_scheduled(gpu, a, b, opts, accum, epilogue, Schedule::Static2D)
}

/// Full-control variant of the kernel launch: BLAS epilogue plus warp→SM
/// scheduling policy.
pub fn smat_spmm_scheduled<T: Element>(
    gpu: &Gpu,
    a: &Bcsr<T>,
    b: &Dense<T>,
    opts: OptFlags,
    accum: AccumMode,
    epilogue: Epilogue<'_, T>,
    schedule: Schedule,
) -> Result<(LaunchResult, Dense<T>), SimError> {
    if epilogue.beta != 0.0 {
        let c_in = epilogue.c_in.expect("beta != 0 requires c_in");
        assert_eq!(
            c_in.shape(),
            (a.nrows(), b.ncols()),
            "c_in must be {}x{}",
            a.nrows(),
            b.ncols()
        );
    }
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "inner dimensions must match: A is {}x{}, B is {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let h = a.block_h();
    let w = a.block_w();
    let n = b.ncols();
    let ntiles = n.div_ceil(NTILE).max(1);
    let nblock_rows = a.nblock_rows();
    let n_warps = nblock_rows * ntiles;
    let shape = MmaShape {
        m: h,
        n: NTILE,
        k: w,
    };

    let launch_cfg = {
        let mut sp = smat_trace::span("build_launch_config", "pipeline");
        sp.arg("warps", n_warps as u64);
        sp.arg("n", n as u64);
        build_launch_config(gpu, a, n, opts, schedule)
    };

    let mut exec_span = smat_trace::span("kernel_execute", "pipeline");
    exec_span.arg("label", launch_cfg.label.as_str());
    exec_span.arg("warps", n_warps as u64);
    let (mut result, tiles) = gpu.launch(n_warps, &launch_cfg, |ctx| {
        let bi = ctx.warp_id / ntiles;
        let tj = ctx.warp_id % ntiles;
        smat_warp(ctx, a, b, bi, tj, shape, opts, accum, &epilogue)
    })?;
    exec_span.arg("sim_ms", result.time_ms);

    // Useful work: 2·nnz·N FLOP (padding work is excluded by definition).
    result.totals.flop_useful = 2 * a.nnz() as u64 * n as u64;

    // Assemble C from the per-warp tiles.
    let mut c = Dense::<T>::zeros(a.nrows(), n);
    for (warp_id, tile) in tiles.iter().enumerate() {
        let bi = warp_id / ntiles;
        let tj = warp_id % ntiles;
        for lr in 0..h {
            let r = bi * h + lr;
            if r >= a.nrows() {
                break;
            }
            for lc in 0..NTILE {
                let cc = tj * NTILE + lc;
                if cc >= n {
                    break;
                }
                c.set(r, cc, tile[lr * NTILE + lc]);
            }
        }
    }
    Ok((result, c))
}

/// Builds the [`LaunchConfig`] the SMaT kernel launches with for a given
/// BCSR matrix and right-hand-side width `n`: copy mode from the **C**
/// flag, the exact operand footprint and per-block shared budget of
/// Algorithm 1, and the warp→SM assignment the schedule implies.
///
/// The pipeline's pre-flight hook analyzes this same config, so what is
/// checked and what is launched agree by construction.
pub fn build_launch_config<T: Element>(
    gpu: &Gpu,
    a: &Bcsr<T>,
    n: usize,
    opts: OptFlags,
    schedule: Schedule,
) -> LaunchConfig {
    let h = a.block_h();
    let w = a.block_w();
    let ntiles = n.div_ceil(NTILE).max(1);
    let n_warps = a.nblock_rows() * ntiles;
    LaunchConfig {
        copy_mode: if opts.async_copy {
            CopyMode::AsyncPipelined
        } else {
            CopyMode::Synchronous
        },
        label: format!("smat[{}]", opts.label()),
        footprint_bytes: a.payload_bytes()
            + a.index_bytes()
            + (a.ncols() * n + a.nrows() * n) * T::BYTES,
        shared_bytes_per_block: (h * w + WARPS_PER_TB * w * NTILE + WARPS_PER_TB * h * NTILE)
            * T::BYTES,
        assignment: match schedule {
            Schedule::Static2D => None,
            Schedule::BalancedGreedy => Some(lpt_assignment(n_warps, ntiles, a, gpu.cfg.num_sms)),
        },
    }
}

/// Longest-processing-time-first warp→SM assignment: warps sorted by their
/// block count (the dominant cost), each placed on the least-loaded SM.
fn lpt_assignment<T: Element>(
    n_warps: usize,
    ntiles: usize,
    a: &Bcsr<T>,
    num_sms: usize,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n_warps).collect();
    order.sort_by_key(|&w| core::cmp::Reverse(a.blocks_in_row(w / ntiles)));
    // Min-heap of (load, sm).
    let mut heap: std::collections::BinaryHeap<core::cmp::Reverse<(u64, usize)>> = (0..num_sms)
        .map(|sm| core::cmp::Reverse((0u64, sm)))
        .collect();
    let mut assignment = vec![0usize; n_warps];
    for w in order {
        let core::cmp::Reverse((load, sm)) = heap.pop().expect("non-empty heap");
        assignment[w] = sm;
        let cost = a.blocks_in_row(w / ntiles) as u64 + 1;
        heap.push(core::cmp::Reverse((load + cost, sm)));
    }
    assignment
}

/// Body of one warp (Algorithm 1): compute C tile `(bi, tj)`.
#[allow(clippy::too_many_arguments)]
fn smat_warp<T: Element>(
    ctx: &mut WarpCtx<'_>,
    a: &Bcsr<T>,
    b: &Dense<T>,
    bi: usize,
    tj: usize,
    shape: MmaShape,
    opts: OptFlags,
    accum: AccumMode,
    epilogue: &Epilogue<'_, T>,
) -> WarpTile<T> {
    let h = a.block_h();
    let w = a.block_w();
    let n = b.ncols();
    let sector = ctx.cfg.sector_bytes as u64;
    let a_block_bytes = (h * w * T::BYTES) as u64;
    let b_tile_bytes = (NTILE * T::BYTES) as u64; // per B row touched
    let is_tb_leader = tj.is_multiple_of(WARPS_PER_TB);

    // RC <- 0 (Algorithm 1 line 2).
    let mut acc_wide = vec![T::accum_zero(); h * NTILE];
    let mut acc_narrow = vec![T::zero(); h * NTILE];
    let mut b_tile = vec![T::zero(); w * NTILE];

    // Read this block row's BCSR metadata: rowPtr pair + colIdx slice.
    let nblocks = a.blocks_in_row(bi);
    ctx.global_contiguous(8);
    if nblocks > 0 {
        ctx.global_contiguous(4 * nblocks as u64);
    }

    if !opts.bcsr_iter {
        // Without B: scan every block of the row and test for emptiness
        // (one flag gather + predicate per block; the nonzero ones fall
        // through to the compute path below).
        let scanned = a.nblock_cols() as u64;
        ctx.global_gather(scanned, 4);
        ctx.alu(2 * scanned);
    }

    for (k, &bc) in a.row_block_cols(bi).iter().enumerate() {
        let slot = a.row_ptr()[bi] + k;
        let a_vals = a.block_values(slot);

        // --- data movement + compute accounting ---
        let b_rows = w.min(b.nrows().saturating_sub(bc * w)) as u64;
        if opts.tc {
            // Staged Tensor Core path. The leader warp memcpy_asyncs the A
            // block into shared once per thread block.
            if is_tb_leader {
                ctx.global_contiguous(a_block_bytes);
                ctx.shared_tx(a_block_bytes.div_ceil(128));
            }
            // B slab of this column tile: when the tile spans all of B's
            // width the `w` rows are one contiguous region; otherwise each
            // 16-byte row segment is a strided (sector-rounded) access.
            if b.ncols() <= NTILE {
                ctx.global_contiguous(b_rows * (b.ncols() * T::BYTES) as u64);
            } else {
                ctx.counters.global_bytes += b_rows * b_tile_bytes.div_ceil(sector) * sector;
                ctx.counters.global_rounds += 1;
            }
            ctx.shared_tx((b_rows * b_tile_bytes).div_ceil(128).max(1));
            // ldmatrix: x4 for the A fragment, x2 for B (Listings 2-3),
            // reading the staged tiles from shared conflict-free; then one
            // Tensor Core MMA per block.
            ctx.ldmatrix(2);
            ctx.shared_tx((a_block_bytes + b_rows * b_tile_bytes).div_ceil(128));
            ctx.mma(1);
        } else {
            // Naive CUDA-core path (no ldmatrix staging): A streams from
            // global, every B element is fetched by the lane that needs it
            // (one sector each), and the K loop is a dependent load chain.
            ctx.global_contiguous(a_block_bytes);
            ctx.global_gather(b_rows * NTILE as u64, T::BYTES as u64);
            ctx.counters.global_rounds += b_rows;
            ctx.fma(((h * w * NTILE) as u64).div_ceil(32));
        }
        ctx.alu(4); // loop control + address arithmetic

        // --- functional execution ---
        stage_b_tile(a, b, bc, tj, &mut b_tile);
        match accum {
            AccumMode::Wide => mma_tile_wide(shape, a_vals, &b_tile, &mut acc_wide),
            AccumMode::Narrow => mma_tile(shape, a_vals, &b_tile, &mut acc_narrow),
        }
    }

    // Epilogue: RC -> shared -> global (lines 10-11), with the BLAS-style
    // alpha/beta combine in accumulator precision.
    let c_bytes = (h * NTILE * T::BYTES) as u64;
    ctx.shared_tx(c_bytes.div_ceil(128).max(1));
    if epilogue.beta != 0.0 {
        // Loading the existing C tile costs the same traffic as storing it.
        ctx.counters.global_bytes += (h as u64) * b_tile_bytes.div_ceil(sector) * sector;
        ctx.counters.global_rounds += 1;
    }
    ctx.counters.global_bytes += (h as u64) * b_tile_bytes.div_ceil(sector) * sector;
    ctx.counters.global_rounds += 1;

    let combine = |idx: usize, product: f64| -> T {
        let mut out = epilogue.alpha * product;
        if epilogue.beta != 0.0 {
            let (lr, lc) = (idx / NTILE, idx % NTILE);
            let r = bi * h + lr;
            let cc = tj * NTILE + lc;
            let prev = epilogue
                .c_in
                .map(|c| {
                    if r < c.nrows() && cc < n {
                        c.get(r, cc).to_f64()
                    } else {
                        0.0
                    }
                })
                .unwrap_or(0.0);
            out += epilogue.beta * prev;
        }
        T::from_f64(out)
    };

    match accum {
        AccumMode::Wide => acc_wide
            .into_iter()
            .enumerate()
            .map(|(i, acc)| combine(i, T::accum_to_f64(acc)))
            .collect(),
        AccumMode::Narrow => acc_narrow
            .into_iter()
            .enumerate()
            .map(|(i, v)| combine(i, v.to_f64()))
            .collect(),
    }
}

/// Copies the `w×NTILE` tile of B rows `[bc·w, bc·w + w)`, columns
/// `[tj·NTILE, tj·NTILE + NTILE)` into `tile`, zero-padding past the edges.
fn stage_b_tile<T: Element>(a: &Bcsr<T>, b: &Dense<T>, bc: usize, tj: usize, tile: &mut [T]) {
    let w = a.block_w();
    let n = b.ncols();
    for lr in 0..w {
        let k = bc * w + lr;
        for lc in 0..NTILE {
            let cc = tj * NTILE + lc;
            tile[lr * NTILE + lc] = if k < b.nrows() && cc < n {
                b.get(k, cc)
            } else {
                T::zero()
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::{Coo, Csr, F16};
    use smat_gpusim::Gpu;

    fn random_csr(n: usize, density_pct: usize, seed: usize) -> Csr<F16> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            for j in 0..n {
                let h = i
                    .wrapping_mul(31)
                    .wrapping_add(j.wrapping_mul(17))
                    .wrapping_add(seed.wrapping_mul(97));
                if h % 100 < density_pct {
                    coo.push(i, j, F16::from_f64(((h % 7) as f64) - 3.0));
                }
            }
        }
        coo.to_csr()
    }

    fn rhs(k: usize, n: usize) -> Dense<F16> {
        Dense::from_fn(k, n, |i, j| {
            F16::from_f64(((i * 3 + j * 5) % 7) as f64 - 3.0)
        })
    }

    #[test]
    fn matches_reference_on_random_matrix() {
        let csr = random_csr(70, 12, 1);
        let b = rhs(70, 8);
        let want = csr.spmm_reference(&b);
        let bcsr = Bcsr::from_csr(&csr, 16, 16);
        let gpu = Gpu::a100();
        let (_, got) = smat_spmm(&gpu, &bcsr, &b, OptFlags::all(), AccumMode::Wide).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn all_opt_variants_compute_identical_results() {
        let csr = random_csr(50, 10, 2);
        let b = rhs(50, 8);
        let bcsr = Bcsr::from_csr(&csr, 16, 16);
        let gpu = Gpu::a100();
        let want = csr.spmm_reference(&b);
        for opts in OptFlags::all_combinations() {
            let (_, got) = smat_spmm(&gpu, &bcsr, &b, opts, AccumMode::Wide).unwrap();
            assert_eq!(got, want, "variant {} diverged", opts.label());
        }
    }

    #[test]
    fn wide_n_is_tiled_correctly() {
        let csr = random_csr(40, 15, 3);
        for n in [1, 5, 8, 9, 24, 33] {
            let b = rhs(40, n);
            let want = csr.spmm_reference(&b);
            let bcsr = Bcsr::from_csr(&csr, 16, 16);
            let (_, got) =
                smat_spmm(&Gpu::a100(), &bcsr, &b, OptFlags::all(), AccumMode::Wide).unwrap();
            assert_eq!(got, want, "N={n}");
        }
    }

    #[test]
    fn block_16x8_shape_also_correct() {
        let csr = random_csr(40, 15, 4);
        let b = rhs(40, 8);
        let want = csr.spmm_reference(&b);
        let bcsr = Bcsr::from_csr(&csr, 16, 8);
        let (_, got) =
            smat_spmm(&Gpu::a100(), &bcsr, &b, OptFlags::all(), AccumMode::Wide).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn narrow_accumulation_rounds_per_block() {
        // Row 0 spans two blocks: block 0 sums to 2049 (2048 + 1), block 1
        // adds 2. Narrow rounds after each block: f16(2049) = 2048, then
        // 2048 + 2 = 2050. Wide sums 2051 in f32 and rounds once:
        // f16(2051) = 2052 (ties to even).
        let mut coo = Coo::new(16, 32);
        coo.push(0, 0, F16::from_f32(2048.0));
        coo.push(0, 1, F16::from_f32(1.0));
        coo.push(0, 16, F16::from_f32(2.0));
        let csr = coo.to_csr();
        let b = Dense::from_fn(32, 8, |_, _| F16::ONE);
        let bcsr = Bcsr::from_csr(&csr, 16, 16);
        let gpu = Gpu::a100();
        let (_, wide) = smat_spmm(&gpu, &bcsr, &b, OptFlags::all(), AccumMode::Wide).unwrap();
        let (_, narrow) = smat_spmm(&gpu, &bcsr, &b, OptFlags::all(), AccumMode::Narrow).unwrap();
        assert_eq!(wide.get(0, 0).to_f32(), 2052.0);
        assert_eq!(narrow.get(0, 0).to_f32(), 2050.0);
    }

    #[test]
    fn tc_variant_is_faster_than_scalar() {
        let csr = random_csr(128, 20, 5);
        let b = rhs(128, 8);
        let bcsr = Bcsr::from_csr(&csr, 16, 16);
        let gpu = Gpu::a100();
        let t = |opts: OptFlags| {
            smat_spmm(&gpu, &bcsr, &b, opts, AccumMode::Wide)
                .unwrap()
                .0
                .cycles
        };
        let mut tc_off = OptFlags::all();
        tc_off.tc = false;
        assert!(t(OptFlags::all()) < t(tc_off));
    }

    #[test]
    fn bcsr_iteration_saves_scanning_on_sparse_input() {
        let csr = random_csr(160, 2, 6); // very sparse
        let b = rhs(160, 8);
        let bcsr = Bcsr::from_csr(&csr, 16, 16);
        let gpu = Gpu::a100();
        let mut no_b = OptFlags::all();
        no_b.bcsr_iter = false;
        let with_b = smat_spmm(&gpu, &bcsr, &b, OptFlags::all(), AccumMode::Wide)
            .unwrap()
            .0;
        let without_b = smat_spmm(&gpu, &bcsr, &b, no_b, AccumMode::Wide).unwrap().0;
        assert!(with_b.cycles < without_b.cycles);
        assert!(without_b.totals.global_bytes > with_b.totals.global_bytes);
    }

    #[test]
    fn empty_matrix_yields_zero_output() {
        let csr = Csr::<F16>::empty(32, 32);
        let bcsr = Bcsr::from_csr(&csr, 16, 16);
        let b = rhs(32, 8);
        let (_, got) =
            smat_spmm(&Gpu::a100(), &bcsr, &b, OptFlags::all(), AccumMode::Wide).unwrap();
        assert_eq!(got, Dense::zeros(32, 8));
    }

    #[test]
    fn lpt_assignment_balances_block_counts() {
        // Block rows with wildly different block counts: the LPT schedule
        // must keep per-SM block totals within one max-warp of each other.
        let mut coo = Coo::new(16 * 40, 4096);
        for bi in 0..40usize {
            let blocks = if bi % 10 == 0 { 100 } else { 2 };
            for k in 0..blocks {
                coo.push(bi * 16, k * 16, F16::from_f64(1.0));
            }
        }
        let csr = coo.to_csr();
        let bcsr = Bcsr::from_csr(&csr, 16, 16);
        let num_sms = 8;
        let assignment = lpt_assignment(40, 1, &bcsr, num_sms);
        assert_eq!(assignment.len(), 40);
        let mut load = vec![0u64; num_sms];
        for (w, &sm) in assignment.iter().enumerate() {
            load[sm] += bcsr.blocks_in_row(w) as u64 + 1;
        }
        let max = *load.iter().max().unwrap();
        let min = *load.iter().min().unwrap();
        assert!(
            max - min <= 101,
            "LPT must balance within one heavy warp: {load:?}"
        );
    }

    #[test]
    fn balanced_schedule_does_not_change_results() {
        let csr = random_csr(90, 10, 8);
        let b = rhs(90, 8);
        let bcsr = Bcsr::from_csr(&csr, 16, 16);
        let gpu = Gpu::a100();
        let (_, c_static) = smat_spmm_scheduled(
            &gpu,
            &bcsr,
            &b,
            OptFlags::all(),
            AccumMode::Wide,
            Epilogue::default(),
            Schedule::Static2D,
        )
        .unwrap();
        let (_, c_balanced) = smat_spmm_scheduled(
            &gpu,
            &bcsr,
            &b,
            OptFlags::all(),
            AccumMode::Wide,
            Epilogue::default(),
            Schedule::BalancedGreedy,
        )
        .unwrap();
        assert_eq!(c_static, c_balanced);
    }

    #[test]
    fn footprint_overflow_reports_oom() {
        // A tiny device cannot hold the operands.
        let csr = random_csr(64, 50, 7);
        let bcsr = Bcsr::from_csr(&csr, 16, 16);
        let b = rhs(64, 8);
        let gpu = Gpu::new(smat_gpusim::DeviceConfig {
            global_mem_bytes: 16,
            ..smat_gpusim::DeviceConfig::a100_sxm4_40gb()
        });
        let err = smat_spmm(&gpu, &bcsr, &b, OptFlags::all(), AccumMode::Wide).unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }));
    }
}
