//! Dynamic-matrix support: the COO delta overlay riding on a prepared
//! [`Smat`](crate::Smat).
//!
//! The inspector/executor split freezes a matrix at prepare time; real
//! graph workloads mutate edges and values between queries. Rather than
//! re-running the expensive prepare per update, mutations accumulate in a
//! sorted COO *overlay* of cell overrides: `A_eff(r,c)` is the override
//! value where one exists and the prepared base value elsewhere. Execution
//! then follows the cuTeSpMM-style split — the prepared base runs on the
//! Tensor Core path unchanged, and the overlay's additive corrections run
//! on a scalar host path over exactly the touched rows
//! ([`OverlaySnapshot::apply_corrections`]).
//!
//! Every mutation bumps an `epoch` counter. The epoch is stamped into
//! [`MatrixFingerprint`](smat_formats::MatrixFingerprint) via
//! [`with_epoch`](smat_formats::MatrixFingerprint::with_epoch), so plan
//! caches, preflight memos, and planner decisions keyed on fingerprints
//! can never be applied across a mutation: the stale key simply no longer
//! exists.
//!
//! Snapshots are immutable and `Arc`-shared: a mutation builds a fresh
//! snapshot and swaps the pointer, so an in-flight execution pinned to the
//! snapshot it admitted under is untouched by later mutations.
//!
//! ## Bitwise determinism contract
//!
//! The corrections are applied in ascending `(row, col)` order with `f64`
//! accumulation and one final rounding per touched output element — the
//! same discipline as [`Csr::spmm_reference`](smat_formats::Csr), the
//! oracle of the conformance suite. In the exact regime the whole test
//! suite operates in (small-integer payloads whose products and partial
//! sums are exactly representable), the overlay path is therefore bitwise
//! identical to a from-scratch prepare of `base ⊕ overlay` at the same
//! epoch, across formats and reorderings; the `tests/properties.rs`
//! interleaving proptest pins this down.

use smat_formats::{Dense, Element};

/// One mutation of a dynamic matrix. All three variants carry *absolute*
/// cell state (insert/update set the value, delete zeroes it), so
/// re-applying an update is idempotent — the property the serving layer's
/// mutate-during-compaction retry relies on.
#[derive(Clone, Copy, Debug)]
pub enum MatrixUpdate<T> {
    /// Stores `value` at an unoccupied cell. Inserting over an occupied
    /// cell behaves exactly like [`MatrixUpdate::Update`] (upsert).
    Insert {
        /// Row index.
        row: usize,
        /// Column index.
        col: usize,
        /// The new cell value.
        value: T,
    },
    /// Replaces the value at a cell (occupied or not — upsert).
    Update {
        /// Row index.
        row: usize,
        /// Column index.
        col: usize,
        /// The new cell value.
        value: T,
    },
    /// Removes the cell (sets it to structural zero).
    Delete {
        /// Row index.
        row: usize,
        /// Column index.
        col: usize,
    },
}

impl<T: Element> MatrixUpdate<T> {
    /// The targeted `(row, col)` coordinate.
    pub fn cell(&self) -> (usize, usize) {
        match *self {
            MatrixUpdate::Insert { row, col, .. }
            | MatrixUpdate::Update { row, col, .. }
            | MatrixUpdate::Delete { row, col } => (row, col),
        }
    }

    /// The absolute cell value after the update, exactly widened to `f64`
    /// (`0.0` for deletes).
    pub fn value_f64(&self) -> f64 {
        match *self {
            MatrixUpdate::Insert { value, .. } | MatrixUpdate::Update { value, .. } => {
                value.to_f64()
            }
            MatrixUpdate::Delete { .. } => 0.0,
        }
    }
}

/// One overridden cell of an [`OverlaySnapshot`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverlayCell {
    /// Row index in the *original* (pre-permutation) coordinate space.
    pub row: usize,
    /// Column index in the original coordinate space.
    pub col: usize,
    /// Effective value of the cell after the override (exact `f64`
    /// widening of the element value; `0.0` means deleted).
    pub value: f64,
    /// `value − base(row, col)`: the additive correction the scalar path
    /// executes on top of the base Tensor Core product.
    pub correction: f64,
}

/// An immutable view of a matrix overlay at one epoch: the sorted COO
/// delta plus the mutation counter. Cheap to share (`Arc` in the serving
/// layer); mutations build a new snapshot rather than editing one.
#[derive(Clone, Debug, Default)]
pub struct OverlaySnapshot {
    /// Overridden cells, sorted by `(row, col)`, unique coordinates.
    cells: Vec<OverlayCell>,
    /// Number of mutations applied since the base was prepared.
    epoch: u64,
}

impl OverlaySnapshot {
    /// The empty overlay at epoch 0 — the state of a freshly prepared
    /// matrix.
    pub fn empty() -> Self {
        OverlaySnapshot::default()
    }

    /// Builds a snapshot from sorted cells (crate-internal: the `Smat`
    /// mutation path maintains the sort order invariant).
    pub(crate) fn from_parts(cells: Vec<OverlayCell>, epoch: u64) -> Self {
        debug_assert!(
            cells
                .windows(2)
                .all(|w| (w[0].row, w[0].col) < (w[1].row, w[1].col)),
            "overlay cells must be sorted by (row, col) and unique"
        );
        OverlaySnapshot { cells, epoch }
    }

    /// The mutation counter this snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The overridden cells, sorted by `(row, col)`.
    pub fn cells(&self) -> &[OverlayCell] {
        &self.cells
    }

    /// Number of overridden cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cell is overridden (epoch may still be nonzero after
    /// vacuous mutations or a compaction rebase).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of cells with a nonzero correction — the term count of the
    /// scalar overlay path, the `x` the planner prices compaction with.
    pub fn correction_terms(&self) -> usize {
        self.cells.iter().filter(|c| c.correction != 0.0).count()
    }

    /// The overrides as `(row, col, value)` triplets for
    /// [`Coo::with_overrides`](smat_formats::Coo::with_overrides) — the
    /// compaction merge input.
    pub fn overrides(&self) -> Vec<(usize, usize, f64)> {
        self.cells.iter().map(|c| (c.row, c.col, c.value)).collect()
    }

    /// Applies the overlay corrections to a base product `c = A_base·B`
    /// given in the original row order: for every touched row `r`,
    /// `c[r][j] ← round(c[r][j] + Σ_cells alpha·correction·b[col][j])`,
    /// accumulated in `f64` over cells in ascending column order and
    /// rounded once per element. `alpha` scales the corrections for the
    /// `spmm_axpby` epilogue (`1.0` for plain SpMM).
    pub fn apply_corrections<T: Element>(&self, c: &mut Dense<T>, b: &Dense<T>, alpha: f64) {
        if self.cells.is_empty() {
            return;
        }
        let n = c.ncols();
        let mut i = 0;
        while i < self.cells.len() {
            let row = self.cells[i].row;
            let row_end = self.cells[i..]
                .iter()
                .position(|cell| cell.row != row)
                .map_or(self.cells.len(), |p| i + p);
            let row_cells = &self.cells[i..row_end];
            if row_cells.iter().any(|cell| cell.correction != 0.0) {
                for j in 0..n {
                    let mut acc = c.get(row, j).to_f64();
                    for cell in row_cells {
                        if cell.correction != 0.0 {
                            acc += alpha * cell.correction * b.get(cell.col, j).to_f64();
                        }
                    }
                    c.set(row, j, T::from_f64(acc));
                }
            }
            i = row_end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::F16;

    fn snapshot(cells: Vec<OverlayCell>, epoch: u64) -> OverlaySnapshot {
        OverlaySnapshot::from_parts(cells, epoch)
    }

    #[test]
    fn empty_snapshot_is_a_no_op() {
        let ov = OverlaySnapshot::empty();
        assert_eq!(ov.epoch(), 0);
        assert_eq!(ov.correction_terms(), 0);
        let b = Dense::from_fn(4, 2, |i, j| F16::from_f64((i + j) as f64));
        let mut c = Dense::from_fn(4, 2, |i, j| F16::from_f64((i * j) as f64));
        let before = c.clone();
        ov.apply_corrections(&mut c, &b, 1.0);
        assert_eq!(c, before);
    }

    #[test]
    fn corrections_accumulate_in_f64_per_row() {
        // Two corrections in row 1 (cols 0 and 2) against a 4-row B.
        let ov = snapshot(
            vec![
                OverlayCell {
                    row: 1,
                    col: 0,
                    value: 3.0,
                    correction: 2.0,
                },
                OverlayCell {
                    row: 1,
                    col: 2,
                    value: 0.0,
                    correction: -1.0,
                },
            ],
            2,
        );
        let b = Dense::from_fn(4, 2, |i, j| F16::from_f64((i + 2 * j) as f64));
        let mut c = Dense::<F16>::zeros(3, 2);
        ov.apply_corrections(&mut c, &b, 1.0);
        for j in 0..2 {
            let want = 2.0 * b.get(0, j).to_f64() - b.get(2, j).to_f64();
            assert_eq!(c.get(1, j).to_f64(), want, "col {j}");
            assert_eq!(c.get(0, j).to_f64(), 0.0, "untouched rows stay");
            assert_eq!(c.get(2, j).to_f64(), 0.0);
        }
    }

    #[test]
    fn alpha_scales_corrections() {
        let ov = snapshot(
            vec![OverlayCell {
                row: 0,
                col: 1,
                value: 1.0,
                correction: 1.0,
            }],
            1,
        );
        let b = Dense::from_fn(2, 1, |i, _| F16::from_f64((i + 1) as f64));
        let mut c = Dense::<F16>::zeros(1, 1);
        ov.apply_corrections(&mut c, &b, 3.0);
        assert_eq!(c.get(0, 0).to_f64(), 3.0 * 2.0);
    }

    #[test]
    fn update_variants_expose_absolute_cell_state() {
        let ins = MatrixUpdate::Insert {
            row: 1,
            col: 2,
            value: F16::from_f64(2.0),
        };
        let del = MatrixUpdate::<F16>::Delete { row: 3, col: 4 };
        assert_eq!(ins.cell(), (1, 2));
        assert_eq!(ins.value_f64(), 2.0);
        assert_eq!(del.cell(), (3, 4));
        assert_eq!(del.value_f64(), 0.0);
    }
}
