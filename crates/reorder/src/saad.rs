//! Saad's similarity-based row grouping (from "Finding exact and approximate
//! block structures for ILU preconditioning", SISC 2001): rows join the
//! first open group whose *representative* row is cosine-similar enough.
//! Cheaper than Jaccard clustering (no union maintenance) but less precise —
//! one of the candidate schemes of §IV-C.

use smat_formats::{Csr, Element, Permutation};

use crate::stats::{row_block_cols, sorted_intersection_size};

/// Parameters of Saad's grouping.
#[derive(Clone, Copy, Debug)]
pub struct SaadParams {
    /// Minimum cosine similarity `|v∩w| / sqrt(|v|·|w|)` to join a group.
    pub tau: f64,
    /// Block width used to quantize column patterns.
    pub block_w: usize,
}

impl Default for SaadParams {
    fn default() -> Self {
        SaadParams {
            tau: 0.6,
            block_w: 16,
        }
    }
}

/// Cosine similarity between two sorted pattern sets.
fn cosine(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = sorted_intersection_size(a, b);
    inter as f64 / ((a.len() * b.len()) as f64).sqrt()
}

/// Computes Saad's row permutation: a single pass over rows, each row joins
/// the first existing group whose representative is similar enough
/// (candidates found through an inverted block-column index), otherwise it
/// opens a new group. Groups are emitted in creation order.
pub fn saad_row_permutation<T: Element>(csr: &Csr<T>, params: &SaadParams) -> Permutation {
    let patterns = row_block_cols(csr, params.block_w);
    let n = patterns.len();

    // group id -> member rows; representative is the first member.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    // block column -> group ids whose representative contains it.
    let nbc = csr.ncols().div_ceil(params.block_w);
    let mut groups_of_bc: Vec<Vec<u32>> = vec![Vec::new(); nbc];
    let mut empty_rows: Vec<usize> = Vec::new();
    let mut stamp: Vec<u32> = Vec::new();
    let mut epoch = 0u32;

    for r in 0..n {
        if patterns[r].is_empty() {
            empty_rows.push(r);
            continue;
        }
        epoch += 1;
        let mut joined = false;
        'search: for &bc in &patterns[r] {
            for &g in &groups_of_bc[bc] {
                let g = g as usize;
                if stamp[g] == epoch {
                    continue;
                }
                stamp[g] = epoch;
                let rep = groups[g][0];
                if cosine(&patterns[r], &patterns[rep]) >= params.tau {
                    groups[g].push(r);
                    joined = true;
                    break 'search;
                }
            }
        }
        if !joined {
            let gid = groups.len() as u32;
            groups.push(vec![r]);
            stamp.push(epoch);
            for &bc in &patterns[r] {
                groups_of_bc[bc].push(gid);
            }
        }
    }

    let mut order: Vec<usize> = Vec::with_capacity(n);
    for g in &groups {
        order.extend_from_slice(g);
    }
    order.extend_from_slice(&empty_rows);
    Permutation::from_vec(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::count_blocks;
    use smat_formats::Coo;

    fn three_families(n: usize) -> Csr<f32> {
        let mut coo = Coo::new(n, 24);
        for r in 0..n {
            let base = (r % 3) * 8;
            for c in base..base + 4 {
                coo.push(r, c, 1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn groups_similar_rows() {
        let m = three_families(24);
        let params = SaadParams {
            tau: 0.5,
            block_w: 4,
        };
        let p = saad_row_permutation(&m, &params);
        let before = count_blocks(&m, 4, 4);
        let after = count_blocks(&m.permute_rows(&p), 4, 4);
        assert!(after < before, "before={before} after={after}");
    }

    #[test]
    fn exact_families_become_contiguous() {
        let m = three_families(12);
        let params = SaadParams {
            tau: 0.99,
            block_w: 4,
        };
        let p = saad_row_permutation(&m, &params);
        let pm = m.permute_rows(&p);
        // Each family occupies one contiguous run of 4 rows.
        let fam: Vec<usize> = (0..12).map(|r| pm.row_cols(r)[0] / 8).collect();
        let transitions = fam.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(transitions, 2, "family order: {fam:?}");
    }

    #[test]
    fn handles_empty_rows_and_odd_sizes() {
        let mut coo = Coo::new(5, 4);
        coo.push(0, 0, 1.0);
        coo.push(4, 3, 1.0);
        let m = coo.to_csr();
        let p = saad_row_permutation(&m, &SaadParams::default());
        assert_eq!(p.len(), 5);
        let pm = m.permute_rows(&p);
        assert_eq!(pm.row_nnz(2), 0);
        assert_eq!(pm.row_nnz(3), 0);
        assert_eq!(pm.row_nnz(4), 0);
    }

    #[test]
    fn cosine_similarity_properties() {
        assert_eq!(cosine(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(cosine(&[1], &[2]), 0.0);
        assert_eq!(cosine(&[], &[1]), 0.0);
        let c = cosine(&[1, 2, 3, 4], &[3, 4, 5, 6]);
        assert!((c - 0.5).abs() < 1e-12);
    }
}
