//! Gray-code row ordering (Zhao et al., ICCD 2020): rows sorted by the
//! binary-reflected Gray code of their sparsity bit pattern, so that
//! consecutive rows differ in few columns — a locality-maximizing ordering
//! evaluated as a preprocessing candidate in §IV-C.

use smat_formats::{Csr, Element, Permutation};

use crate::stats::row_block_cols;

/// Parameters of the Gray-code ordering.
#[derive(Clone, Copy, Debug)]
pub struct GrayParams {
    /// Block width used to quantize column patterns.
    pub block_w: usize,
    /// Number of leading pattern bits folded into the sort key. Patterns are
    /// hashed into this many buckets (one bit per bucket) before the
    /// binary→Gray transform; 64 matches one machine word.
    pub key_bits: usize,
}

impl Default for GrayParams {
    fn default() -> Self {
        GrayParams {
            block_w: 16,
            key_bits: 64,
        }
    }
}

/// Binary-reflected Gray code of `b` (`g = b ^ (b >> 1)`).
#[inline]
pub fn to_gray(b: u64) -> u64 {
    b ^ (b >> 1)
}

/// Inverse Gray code (for tests).
pub fn from_gray(mut g: u64) -> u64 {
    let mut b = g;
    while g != 0 {
        g >>= 1;
        b ^= g;
    }
    b
}

/// Sort key of one row: its block-column occupancy folded to `key_bits`
/// bits (most-significant bit = lowest block column, so leading columns
/// dominate the order), interpreted *as a Gray code* and decoded to the
/// binary rank. Rows sorted by this rank enumerate patterns along the Gray
/// sequence, which changes one bucket at a time.
fn gray_rank(pattern: &[usize], nbc: usize, key_bits: usize) -> u64 {
    let bits = key_bits.clamp(1, 64);
    let mut key = 0u64;
    for &bc in pattern {
        // Scale block column into the key range (stable for nbc < bits and
        // a coarse bucketing otherwise).
        let pos = if nbc <= bits { bc } else { bc * bits / nbc };
        key |= 1u64 << (bits - 1 - pos.min(bits - 1));
    }
    from_gray(key)
}

/// Computes the Gray-code row permutation. Ties (identical keys) keep their
/// original relative order, and empty rows sort last.
pub fn gray_row_permutation<T: Element>(csr: &Csr<T>, params: &GrayParams) -> Permutation {
    let patterns = row_block_cols(csr, params.block_w);
    let nbc = csr.ncols().div_ceil(params.block_w).max(1);
    let mut keyed: Vec<(bool, u64, usize)> = patterns
        .iter()
        .enumerate()
        .map(|(r, pat)| {
            if pat.is_empty() {
                (true, 0, r) // empty rows last
            } else {
                (false, gray_rank(pat, nbc, params.key_bits), r)
            }
        })
        .collect();
    keyed.sort();
    Permutation::from_vec(keyed.into_iter().map(|(_, _, r)| r).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::count_blocks;
    use smat_formats::Coo;

    #[test]
    fn gray_code_roundtrip() {
        for b in [0u64, 1, 2, 3, 100, u64::MAX, 0xdead_beef] {
            assert_eq!(from_gray(to_gray(b)), b);
        }
    }

    #[test]
    fn gray_neighbors_differ_in_one_bit() {
        for b in 0u64..256 {
            let diff = to_gray(b) ^ to_gray(b + 1);
            assert_eq!(diff.count_ones(), 1, "at {b}");
        }
    }

    #[test]
    fn groups_identical_patterns_adjacent() {
        let mut coo = Coo::new(8, 8);
        // Rows alternate between pattern {0} and pattern {4}.
        for r in 0..8 {
            coo.push(r, if r % 2 == 0 { 0 } else { 4 }, 1.0);
        }
        let m = coo.to_csr();
        let p = gray_row_permutation(
            &m,
            &GrayParams {
                block_w: 4,
                key_bits: 8,
            },
        );
        let before = count_blocks(&m, 4, 4);
        let after = count_blocks(&m.permute_rows(&p), 4, 4);
        assert!(after < before, "before={before} after={after}");
        assert_eq!(after, 2);
    }

    #[test]
    fn empty_rows_sort_last() {
        let mut coo = Coo::new(4, 4);
        coo.push(2, 0, 1.0);
        let m = coo.to_csr();
        let p = gray_row_permutation(&m, &GrayParams::default());
        let pm = m.permute_rows(&p);
        assert_eq!(pm.row_nnz(0), 1);
        assert_eq!(pm.row_nnz(3), 0);
    }

    #[test]
    fn stable_for_identical_keys() {
        let mut coo = Coo::new(3, 4);
        for r in 0..3 {
            coo.push(r, 1, (r + 1) as f32);
        }
        let m = coo.to_csr();
        let p = gray_row_permutation(&m, &GrayParams::default());
        assert!(p.is_identity(), "identical patterns keep original order");
    }
}
