//! Recursive hypergraph bisection by greedy graph growing (the METIS-style
//! initial partitioner): the partitioning family of reorderings the paper
//! evaluates via Çatalyürek et al. (§IV-C), reduced to its core mechanism.
//!
//! Rows are vertices; each block column is a net connecting the rows whose
//! pattern contains it. Each bisection level grows one part from a seed,
//! always absorbing the unassigned row with the largest overlap with the
//! part's active nets (lazy max-heap), until the part holds half the rows;
//! then both halves recurse. Rows that share nets end up in the same part,
//! i.e. in nearby block rows — densifying blocks like the clustering
//! heuristics but with a divisive (global) view instead of an agglomerative
//! (local) one.

use smat_formats::{Csr, Element, Permutation};

use crate::stats::row_block_cols;

/// Parameters of the recursive bisection.
#[derive(Clone, Copy, Debug)]
pub struct BisectionParams {
    /// Stop splitting below this part size (block height is the natural
    /// choice: one part ≈ one block row).
    pub min_part: usize,
    /// Block width used to quantize column patterns into nets.
    pub block_w: usize,
}

impl Default for BisectionParams {
    fn default() -> Self {
        BisectionParams {
            min_part: 16,
            block_w: 16,
        }
    }
}

/// Computes the bisection row permutation.
pub fn bisection_row_permutation<T: Element>(
    csr: &Csr<T>,
    params: &BisectionParams,
) -> Permutation {
    let patterns = row_block_cols(csr, params.block_w);
    let nbc = csr.ncols().div_ceil(params.block_w).max(1);
    let mut order: Vec<usize> = (0..csr.nrows()).collect();
    // Empty rows go last so they cannot dilute the cut refinement.
    order.sort_by_key(|&r| patterns[r].is_empty());
    let n_nonempty = order
        .iter()
        .position(|&r| patterns[r].is_empty())
        .unwrap_or(order.len());
    let (head, _tail) = order.split_at_mut(n_nonempty);
    bisect(head, &patterns, nbc, params, 0);
    Permutation::from_vec(order)
}

/// Recursively bisects `rows` in place by greedy graph growing.
fn bisect(
    rows: &mut [usize],
    patterns: &[Vec<usize>],
    nbc: usize,
    params: &BisectionParams,
    depth: usize,
) {
    if rows.len() <= params.min_part.max(2) || depth > 48 {
        return;
    }
    let half = rows.len() / 2;

    // Local structures: inverted index net -> local row indices.
    let mut rows_of_net: Vec<Vec<u32>> = vec![Vec::new(); nbc];
    for (i, &r) in rows.iter().enumerate() {
        for &bc in &patterns[r] {
            rows_of_net[bc].push(i as u32);
        }
    }

    // Seed: the row with the largest pattern (most nets to attract mates).
    let seed = (0..rows.len())
        .max_by_key(|&i| patterns[rows[i]].len())
        .unwrap_or(0);

    let mut in_left = vec![false; rows.len()];
    let mut overlap = vec![0u32; rows.len()];
    let mut net_active = vec![false; nbc];
    // Lazy max-heap of (overlap_at_push, local row).
    let mut heap: std::collections::BinaryHeap<(u32, u32)> = Default::default();

    let activate = |i: usize,
                    in_left: &mut [bool],
                    overlap: &mut [u32],
                    net_active: &mut [bool],
                    heap: &mut std::collections::BinaryHeap<(u32, u32)>| {
        in_left[i] = true;
        for &bc in &patterns[rows[i]] {
            if !net_active[bc] {
                net_active[bc] = true;
                for &j in &rows_of_net[bc] {
                    let j = j as usize;
                    if !in_left[j] {
                        overlap[j] += 1;
                        heap.push((overlap[j], j as u32));
                    }
                }
            }
        }
    };

    activate(seed, &mut in_left, &mut overlap, &mut net_active, &mut heap);
    let mut left_count = 1usize;
    let mut cursor = 0usize; // fallback for disconnected rows

    while left_count < half {
        // Pop until a live entry (lazy deletion: stale if assigned or the
        // recorded overlap is outdated).
        let next = loop {
            match heap.pop() {
                Some((ov, j)) => {
                    let j = j as usize;
                    if !in_left[j] && overlap[j] == ov {
                        break Some(j);
                    }
                }
                None => break None,
            }
        };
        let pick = match next {
            Some(j) => j,
            None => {
                // Disconnected from the grown part: take the next
                // unassigned row in order.
                while cursor < rows.len() && in_left[cursor] {
                    cursor += 1;
                }
                if cursor >= rows.len() {
                    break;
                }
                cursor
            }
        };
        activate(pick, &mut in_left, &mut overlap, &mut net_active, &mut heap);
        left_count += 1;
    }

    // Materialize: left rows first, stable within each side.
    let mut left: Vec<usize> = Vec::with_capacity(left_count);
    let mut right: Vec<usize> = Vec::with_capacity(rows.len() - left_count);
    for (i, &r) in rows.iter().enumerate() {
        if in_left[i] {
            left.push(r);
        } else {
            right.push(r);
        }
    }
    let split = left.len();
    rows[..split].copy_from_slice(&left);
    rows[split..].copy_from_slice(&right);

    let (l, r) = rows.split_at_mut(split);
    bisect(l, patterns, nbc, params, depth + 1);
    bisect(r, patterns, nbc, params, depth + 1);
}

/// Cut size of a bipartition: nets with members on both sides (exposed for
/// tests and diagnostics).
pub fn cut_size(patterns: &[Vec<usize>], left: &[usize], right: &[usize], nbc: usize) -> usize {
    let mut on_left = vec![false; nbc];
    let mut on_right = vec![false; nbc];
    for &r in left {
        for &bc in &patterns[r] {
            on_left[bc] = true;
        }
    }
    for &r in right {
        for &bc in &patterns[r] {
            on_right[bc] = true;
        }
    }
    (0..nbc).filter(|&bc| on_left[bc] && on_right[bc]).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::count_blocks;
    use smat_formats::Coo;

    /// Two interleaved communities touching disjoint column ranges.
    fn two_communities(n: usize) -> Csr<f32> {
        let mut coo = Coo::new(n, 32);
        for r in 0..n {
            let base = if r % 2 == 0 { 0 } else { 16 };
            for j in 0..4 {
                coo.push(r, base + j * 4, 1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn separates_interleaved_communities() {
        let m = two_communities(64);
        let params = BisectionParams {
            min_part: 4,
            block_w: 4,
        };
        let p = bisection_row_permutation(&m, &params);
        let pm = m.permute_rows(&p);
        let before = count_blocks(&m, 4, 4);
        let after = count_blocks(&pm, 4, 4);
        assert!(after < before, "before={before} after={after}");
        // The two communities must form exactly two contiguous runs.
        let fam: Vec<bool> = (0..64).map(|r| pm.row_cols(r)[0] < 16).collect();
        let transitions = fam.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(transitions, 1, "{fam:?}");
    }

    #[test]
    fn refinement_reduces_cut_at_top_level() {
        let m = two_communities(64);
        let patterns = row_block_cols(&m, 4);
        let nbc = 8;
        // Unrefined split (input order): both communities on both sides.
        let rows: Vec<usize> = (0..64).collect();
        let cut_before = cut_size(&patterns, &rows[..32], &rows[32..], nbc);
        // Refined split from the algorithm.
        let params = BisectionParams {
            min_part: 32,
            block_w: 4,
        };
        let p = bisection_row_permutation(&m, &params);
        let ordered: Vec<usize> = (0..64).map(|i| p.source_of(i)).collect();
        let cut_after = cut_size(&patterns, &ordered[..32], &ordered[32..], nbc);
        assert!(cut_after < cut_before, "{cut_after} < {cut_before}");
        assert_eq!(cut_after, 0, "perfectly separable communities");
    }

    #[test]
    fn handles_empty_rows_and_tiny_inputs() {
        let mut coo = Coo::new(5, 8);
        coo.push(0, 0, 1.0f32);
        coo.push(3, 4, 1.0);
        let m = coo.to_csr();
        let p = bisection_row_permutation(&m, &BisectionParams::default());
        assert_eq!(p.len(), 5);
        let pm = m.permute_rows(&p);
        assert_eq!(pm.nnz(), 2);
        // Empty rows at the end.
        assert!(pm.row_nnz(0) > 0);
        assert_eq!(pm.row_nnz(4), 0);
    }

    #[test]
    fn balance_constraint_is_respected() {
        // All rows share the same pattern: gains are never positive, sides
        // stay balanced, and the permutation is still valid.
        let mut coo = Coo::new(33, 8);
        for r in 0..33 {
            coo.push(r, 2, 1.0f32);
        }
        let m = coo.to_csr();
        let params = BisectionParams {
            min_part: 4,
            block_w: 4,
        };
        let p = bisection_row_permutation(&m, &params);
        assert_eq!(p.len(), 33);
    }
}
