//! Reverse Cuthill–McKee ordering (Liu & Sherman, 1976): a bandwidth-
//! minimizing BFS ordering on the symmetrized sparsity graph. One of the
//! candidate preprocessing schemes evaluated in §IV-C.

use smat_formats::{Csr, Element, Permutation};

/// Computes the RCM row permutation of a square matrix on the symmetrized
/// pattern `A + Aᵀ`. For each connected component, BFS starts from a
/// minimum-degree vertex and visits neighbors in increasing degree order;
/// the final order is reversed.
///
/// # Panics
/// Panics if the matrix is not square (RCM permutes rows and columns
/// symmetrically; callers apply it to rows only, which is also valid).
pub fn rcm_permutation<T: Element>(csr: &Csr<T>) -> Permutation {
    assert_eq!(
        csr.nrows(),
        csr.ncols(),
        "RCM requires a square matrix (pattern graph)"
    );
    let n = csr.nrows();
    let at = csr.transpose();

    // Symmetrized adjacency (sorted union of row patterns of A and Aᵀ),
    // self-loops removed.
    let mut adj: Vec<Vec<usize>> = Vec::with_capacity(n);
    for r in 0..n {
        let mut nb: Vec<usize> = csr
            .row_cols(r)
            .iter()
            .chain(at.row_cols(r))
            .copied()
            .filter(|&c| c != r)
            .collect();
        nb.sort_unstable();
        nb.dedup();
        adj.push(nb);
    }
    let degree: Vec<usize> = adj.iter().map(Vec::len).collect();

    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut scratch: Vec<usize> = Vec::new();

    // Seeds in increasing degree, one BFS per component.
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.sort_unstable_by_key(|&v| degree[v]);

    for &seed in &seeds {
        if visited[seed] {
            continue;
        }
        visited[seed] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            scratch.clear();
            scratch.extend(adj[v].iter().copied().filter(|&u| !visited[u]));
            scratch.sort_unstable_by_key(|&u| degree[u]);
            for &u in &scratch {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }

    order.reverse();
    Permutation::from_vec(order)
}

/// Matrix bandwidth: `max |i - j|` over stored entries (0 for empty or
/// diagonal matrices). The quantity RCM minimizes.
pub fn bandwidth<T: Element>(csr: &Csr<T>) -> usize {
    csr.iter().map(|(i, j, _)| i.abs_diff(j)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::Coo;

    /// A ring graph numbered so that the natural order has large bandwidth.
    fn scrambled_ring(n: usize) -> Csr<f32> {
        let mut coo = Coo::new(n, n);
        // Ring i -- (i+1) but with vertices relabeled by bit-reversal-ish
        // scramble (multiply by a unit mod n).
        let scramble = |v: usize| (v * 7 + 3) % n;
        for i in 0..n {
            let a = scramble(i);
            let b = scramble((i + 1) % n);
            coo.push(a, b, 1.0);
            coo.push(b, a, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn rcm_reduces_bandwidth_of_scrambled_ring() {
        let m = scrambled_ring(64);
        let p = rcm_permutation(&m);
        // Apply symmetrically to measure true graph bandwidth.
        let pm = m.permute_rows(&p).permute_cols(&p);
        assert!(
            bandwidth(&pm) < bandwidth(&m),
            "RCM should shrink bandwidth: {} -> {}",
            bandwidth(&m),
            bandwidth(&pm)
        );
        // A ring has optimal bandwidth 2 under RCM-style level orderings;
        // allow slack but require near-optimal.
        assert!(bandwidth(&pm) <= 4, "bandwidth {}", bandwidth(&pm));
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        let mut coo = Coo::new(6, 6);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(4, 5, 1.0);
        coo.push(5, 4, 1.0);
        // vertices 2,3 isolated
        let m = coo.to_csr();
        let p = rcm_permutation(&m);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn rcm_on_diagonal_matrix_is_a_permutation() {
        let mut coo = Coo::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 1.0);
        }
        let m = coo.to_csr();
        let p = rcm_permutation(&m);
        assert_eq!(p.len(), 5);
        assert_eq!(bandwidth(&m.permute_rows(&p).permute_cols(&p)), 0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rcm_rejects_rectangular() {
        let m = Csr::<f32>::empty(3, 4);
        let _ = rcm_permutation(&m);
    }

    #[test]
    fn bandwidth_of_tridiagonal_is_one() {
        let mut coo = Coo::new(8, 8);
        for i in 0..8 {
            coo.push(i, i, 1.0);
            if i + 1 < 8 {
                coo.push(i, i + 1, 1.0);
                coo.push(i + 1, i, 1.0);
            }
        }
        assert_eq!(bandwidth(&coo.to_csr()), 1);
    }
}
