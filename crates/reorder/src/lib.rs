//! # smat-reorder
//!
//! Block-densifying sparse matrix reordering — the preprocessing stage of
//! SMaT (§IV-C of the paper). Finding the block-minimizing permutation is
//! NP-hard; this crate implements the heuristics the paper evaluates:
//!
//! * [`jaccard`] — Sylos Labini's Jaccard-distance row clustering (the
//!   scheme SMaT adopts), in row-only and row+column variants;
//! * [`rcm`] — Reverse Cuthill–McKee bandwidth minimization;
//! * [`saad`] — Saad's representative-based similarity grouping;
//! * [`gray`] — Gray-code pattern ordering;
//! * degree sort — a simple nnz-descending baseline.
//!
//! All algorithms return a [`Permutation`] (`A' = P·A`); row permutations
//! are free for SpMM (the result rows are permuted back, `B` untouched),
//! while column permutations additionally reshuffle `B` — which is why the
//! paper rejects them after evaluation.

#![forbid(unsafe_code)]

pub mod bisection;
pub mod gray;
pub mod jaccard;
pub mod jaccard_lsh;
pub mod rcm;
pub mod saad;
pub mod stats;

use serde::Serialize;
use smat_formats::{BlockRowStats, Csr, Element, Permutation};

pub use bisection::{bisection_row_permutation, BisectionParams};
pub use gray::{gray_row_permutation, GrayParams};
pub use jaccard::{jaccard_row_col_permutation, jaccard_row_permutation, JaccardParams};
pub use jaccard_lsh::{jaccard_lsh_row_permutation, JaccardLshParams};
pub use rcm::{bandwidth, rcm_permutation};
pub use saad::{saad_row_permutation, SaadParams};

/// The reordering schemes evaluated in the paper, unified behind one
/// dispatcher ([`reorder`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum ReorderAlgorithm {
    /// No reordering (`P = I`).
    Identity,
    /// Sylos Labini's Jaccard clustering, rows only — SMaT's default.
    JaccardRows {
        /// Join threshold on Jaccard distance.
        tau: f64,
    },
    /// Jaccard clustering on rows and then on columns (evaluated and
    /// rejected by the paper: the block reduction does not pay for
    /// reshuffling `B`).
    JaccardRowsCols {
        /// Join threshold on Jaccard distance.
        tau: f64,
    },
    /// Jaccard clustering with MinHash/LSH-bucketed candidate generation:
    /// similarity is only evaluated within hash-band buckets, cutting the
    /// candidate scan from the inverted-index worst case to near-linear
    /// while keeping the exact-Jaccard join test.
    JaccardLsh {
        /// Join threshold on Jaccard distance (same meaning as
        /// [`ReorderAlgorithm::JaccardRows`]).
        tau: f64,
        /// Number of LSH bands.
        bands: usize,
        /// MinHash values per band.
        rows_per_band: usize,
    },
    /// Reverse Cuthill–McKee (square matrices only; falls back to identity
    /// for rectangular inputs).
    ReverseCuthillMcKee,
    /// Saad's representative-similarity grouping.
    Saad {
        /// Minimum cosine similarity to join a group.
        tau: f64,
    },
    /// Gray-code pattern ordering.
    GrayCode,
    /// Recursive bisection with FM refinement (the hypergraph-partitioning
    /// family of Çatalyürek et al.).
    Bisection,
    /// Rows sorted by descending nonzero count (load-balance baseline).
    DegreeSort,
}

impl ReorderAlgorithm {
    /// SMaT's default preprocessing: row-only Jaccard clustering with the
    /// threshold used throughout the evaluation.
    pub fn smat_default() -> Self {
        ReorderAlgorithm::JaccardRows { tau: 0.7 }
    }

    /// Short name for experiment records.
    pub fn name(&self) -> &'static str {
        match self {
            ReorderAlgorithm::Identity => "original",
            ReorderAlgorithm::JaccardRows { .. } => "jaccard-rows",
            ReorderAlgorithm::JaccardRowsCols { .. } => "jaccard-rows-cols",
            ReorderAlgorithm::JaccardLsh { .. } => "jaccard-lsh",
            ReorderAlgorithm::ReverseCuthillMcKee => "rcm",
            ReorderAlgorithm::Saad { .. } => "saad",
            ReorderAlgorithm::GrayCode => "gray",
            ReorderAlgorithm::Bisection => "bisection",
            ReorderAlgorithm::DegreeSort => "degree-sort",
        }
    }

    /// Which block dimensions `(block_h, block_w)` the computed permutation
    /// actually depends on. Algorithms that ignore a dimension produce the
    /// same [`Reordering`] for every value of it, so callers sweeping a
    /// block-shape space (autotune, the admission planner) can reorder once
    /// per *effective* signature instead of once per candidate.
    ///
    /// Mirrors the [`reorder`] dispatcher: the Jaccard family quantizes
    /// column patterns by `block_w` and caps clusters at `block_h` rows;
    /// Saad and Gray-code quantize by `block_w` only; bisection partitions
    /// down to `block_h` under `block_w`-quantized connectivity; identity,
    /// RCM, and degree sort look at the graph alone.
    pub fn permutation_depends_on(&self) -> (bool, bool) {
        match self {
            ReorderAlgorithm::Identity
            | ReorderAlgorithm::ReverseCuthillMcKee
            | ReorderAlgorithm::DegreeSort => (false, false),
            ReorderAlgorithm::Saad { .. } | ReorderAlgorithm::GrayCode => (false, true),
            ReorderAlgorithm::JaccardRows { .. }
            | ReorderAlgorithm::JaccardRowsCols { .. }
            | ReorderAlgorithm::JaccardLsh { .. }
            | ReorderAlgorithm::Bisection => (true, true),
        }
    }

    /// The `(block_h, block_w)` pair after masking out dimensions the
    /// permutation does not depend on (masked dims map to 0). Two candidate
    /// configurations with equal signatures are guaranteed to produce the
    /// same permutation, so the signature is a reuse key.
    pub fn permutation_signature(&self, block_h: usize, block_w: usize) -> (usize, usize) {
        let (h, w) = self.permutation_depends_on();
        (if h { block_h } else { 0 }, if w { block_w } else { 0 })
    }
}

/// The permutations produced by a reordering scheme.
#[derive(Clone, Debug)]
pub struct Reordering {
    /// Row permutation `P` (`A' = P·A`).
    pub row_perm: Permutation,
    /// Optional column permutation `Q` (`A' = P·A·Qᵀ`); when present, `B`
    /// must be row-permuted by `Q` before the multiply.
    pub col_perm: Option<Permutation>,
}

impl Reordering {
    /// Identity reordering for an `nrows`-row matrix.
    pub fn identity(nrows: usize) -> Self {
        Reordering {
            row_perm: Permutation::identity(nrows),
            col_perm: None,
        }
    }

    /// Applies the reordering to a matrix.
    pub fn apply<T: Element>(&self, csr: &Csr<T>) -> Csr<T> {
        let rp = csr.permute_rows(&self.row_perm);
        match &self.col_perm {
            Some(cp) => rp.permute_cols(cp),
            None => rp,
        }
    }
}

/// Runs the selected reordering scheme with block shape `block_h×block_w`
/// (the shape the downstream BCSR will use; pattern quantization follows it).
pub fn reorder<T: Element>(
    csr: &Csr<T>,
    alg: ReorderAlgorithm,
    block_h: usize,
    block_w: usize,
) -> Reordering {
    match alg {
        ReorderAlgorithm::Identity => Reordering::identity(csr.nrows()),
        ReorderAlgorithm::JaccardRows { tau } => {
            let params = JaccardParams {
                tau,
                block_w,
                max_cluster_rows: Some(block_h),
            };
            Reordering {
                row_perm: jaccard_row_permutation(csr, &params),
                col_perm: None,
            }
        }
        ReorderAlgorithm::JaccardRowsCols { tau } => {
            let params = JaccardParams {
                tau,
                block_w,
                max_cluster_rows: Some(block_h),
            };
            let (rp, cp) = jaccard_row_col_permutation(csr, &params);
            Reordering {
                row_perm: rp,
                col_perm: Some(cp),
            }
        }
        ReorderAlgorithm::JaccardLsh {
            tau,
            bands,
            rows_per_band,
        } => {
            let params = JaccardLshParams {
                tau,
                block_w,
                max_cluster_rows: Some(block_h),
                bands,
                rows_per_band,
                ..JaccardLshParams::default()
            };
            Reordering {
                row_perm: jaccard_lsh_row_permutation(csr, &params),
                col_perm: None,
            }
        }
        ReorderAlgorithm::ReverseCuthillMcKee => {
            if csr.nrows() == csr.ncols() {
                Reordering {
                    row_perm: rcm_permutation(csr),
                    col_perm: None,
                }
            } else {
                Reordering::identity(csr.nrows())
            }
        }
        ReorderAlgorithm::Saad { tau } => {
            let params = SaadParams { tau, block_w };
            Reordering {
                row_perm: saad_row_permutation(csr, &params),
                col_perm: None,
            }
        }
        ReorderAlgorithm::GrayCode => {
            let params = GrayParams {
                block_w,
                key_bits: 64,
            };
            Reordering {
                row_perm: gray_row_permutation(csr, &params),
                col_perm: None,
            }
        }
        ReorderAlgorithm::Bisection => {
            let params = BisectionParams {
                min_part: block_h,
                block_w,
            };
            Reordering {
                row_perm: bisection_row_permutation(csr, &params),
                col_perm: None,
            }
        }
        ReorderAlgorithm::DegreeSort => {
            let mut idx: Vec<usize> = (0..csr.nrows()).collect();
            idx.sort_by_key(|&r| core::cmp::Reverse(csr.row_nnz(r)));
            Reordering {
                row_perm: Permutation::from_vec(idx),
                col_perm: None,
            }
        }
    }
}

/// Before/after comparison of a reordering: the §VI-A numbers (block count
/// reduction, blocks-per-row stddev change).
#[derive(Clone, Debug, serde::Serialize)]
pub struct ReorderEffect {
    /// Scheme name.
    pub algorithm: String,
    /// Block statistics of the original matrix.
    pub before: BlockRowStats,
    /// Block statistics after reordering.
    pub after: BlockRowStats,
}

impl ReorderEffect {
    /// `before.nblocks / after.nblocks` (>1 is an improvement).
    pub fn block_reduction(&self) -> f64 {
        if self.after.nblocks == 0 {
            return 1.0;
        }
        self.before.nblocks as f64 / self.after.nblocks as f64
    }

    /// `before.stddev / after.stddev` (>1 is a load-balance improvement).
    pub fn stddev_reduction(&self) -> f64 {
        if self.after.stddev == 0.0 {
            return if self.before.stddev == 0.0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.before.stddev / self.after.stddev
    }
}

/// Applies `alg` and measures its effect on the `h×w` block structure.
pub fn evaluate_reordering<T: Element>(
    csr: &Csr<T>,
    alg: ReorderAlgorithm,
    block_h: usize,
    block_w: usize,
) -> (Reordering, ReorderEffect) {
    let before = stats::block_row_stats(csr, block_h, block_w);
    let r = reorder(csr, alg, block_h, block_w);
    let after = stats::block_row_stats(&r.apply(csr), block_h, block_w);
    (
        r,
        ReorderEffect {
            algorithm: alg.name().to_string(),
            before,
            after,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::Coo;

    fn shuffled_families() -> Csr<f32> {
        // 32 rows, 2 interleaved families: clustering should split them.
        let mut coo = Coo::new(32, 32);
        for r in 0..32 {
            let base = if r % 2 == 0 { 0 } else { 16 };
            for c in (base..base + 16).step_by(4) {
                coo.push(r, c, 1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn every_algorithm_yields_valid_reordering() {
        let m = shuffled_families();
        let algs = [
            ReorderAlgorithm::Identity,
            ReorderAlgorithm::JaccardRows { tau: 0.7 },
            ReorderAlgorithm::JaccardRowsCols { tau: 0.7 },
            ReorderAlgorithm::JaccardLsh {
                tau: 0.7,
                bands: 8,
                rows_per_band: 1,
            },
            ReorderAlgorithm::ReverseCuthillMcKee,
            ReorderAlgorithm::Saad { tau: 0.5 },
            ReorderAlgorithm::GrayCode,
            ReorderAlgorithm::Bisection,
            ReorderAlgorithm::DegreeSort,
        ];
        for alg in algs {
            let r = reorder(&m, alg, 4, 4);
            let pm = r.apply(&m);
            assert_eq!(pm.nnz(), m.nnz(), "{} lost nonzeros", alg.name());
            assert_eq!(r.row_perm.len(), 32);
        }
    }

    #[test]
    fn jaccard_improves_interleaved_families() {
        let m = shuffled_families();
        let (_, effect) = evaluate_reordering(&m, ReorderAlgorithm::JaccardRows { tau: 0.7 }, 4, 4);
        assert!(
            effect.block_reduction() > 1.5,
            "reduction {}",
            effect.block_reduction()
        );
    }

    #[test]
    fn identity_reordering_changes_nothing() {
        let m = shuffled_families();
        let (r, effect) = evaluate_reordering(&m, ReorderAlgorithm::Identity, 4, 4);
        assert!(r.row_perm.is_identity());
        assert_eq!(effect.block_reduction(), 1.0);
        assert_eq!(effect.before, effect.after);
    }

    #[test]
    fn degree_sort_orders_by_row_nnz() {
        let mut coo = Coo::new(3, 4);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(1, 2, 1.0);
        coo.push(2, 0, 1.0);
        coo.push(2, 1, 1.0);
        let m = coo.to_csr();
        let r = reorder(&m, ReorderAlgorithm::DegreeSort, 2, 2);
        let pm = r.apply(&m);
        assert_eq!(pm.row_nnz(0), 3);
        assert_eq!(pm.row_nnz(1), 2);
        assert_eq!(pm.row_nnz(2), 1);
    }

    #[test]
    fn rcm_on_rectangular_falls_back_to_identity() {
        let m = Csr::<f32>::empty(3, 5);
        let r = reorder(&m, ReorderAlgorithm::ReverseCuthillMcKee, 2, 2);
        assert!(r.row_perm.is_identity());
    }

    #[test]
    fn row_col_reordering_tracks_col_perm() {
        let m = shuffled_families();
        let r = reorder(&m, ReorderAlgorithm::JaccardRowsCols { tau: 0.7 }, 4, 4);
        assert!(r.col_perm.is_some());
        assert_eq!(r.apply(&m).nnz(), m.nnz());
    }
}
