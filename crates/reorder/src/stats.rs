//! Block-structure statistics computed directly on CSR, without
//! materializing BCSR payloads — the reordering algorithms and the Fig. 3
//! analysis call these in inner loops.

use smat_formats::{BlockRowStats, Csr, Element};

/// Sorted, deduplicated block-column indices of each *block row* for block
/// size `h×w`.
pub fn block_pattern<T: Element>(csr: &Csr<T>, h: usize, w: usize) -> Vec<Vec<usize>> {
    assert!(h > 0 && w > 0);
    let nbr = csr.nrows().div_ceil(h);
    let mut patterns = vec![Vec::new(); nbr];
    for (bi, pat) in patterns.iter_mut().enumerate() {
        let lo = bi * h;
        let hi = (lo + h).min(csr.nrows());
        for r in lo..hi {
            pat.extend(csr.row_cols(r).iter().map(|&c| c / w));
        }
        pat.sort_unstable();
        pat.dedup();
    }
    patterns
}

/// Sorted, deduplicated block-column indices of each *row* (row-granular
/// pattern used by the clustering algorithms before rows are grouped).
pub fn row_block_cols<T: Element>(csr: &Csr<T>, w: usize) -> Vec<Vec<usize>> {
    (0..csr.nrows())
        .map(|r| {
            let mut v: Vec<usize> = csr.row_cols(r).iter().map(|&c| c / w).collect();
            v.dedup(); // input is sorted, so dedup suffices
            v
        })
        .collect()
}

/// Number of nonzero `h×w` blocks (the paper's `n_e`) without building BCSR.
pub fn count_blocks<T: Element>(csr: &Csr<T>, h: usize, w: usize) -> usize {
    block_pattern(csr, h, w).iter().map(Vec::len).sum()
}

/// Blocks per block-row, as needed for the Fig. 3 distributions.
pub fn blocks_per_row<T: Element>(csr: &Csr<T>, h: usize, w: usize) -> Vec<usize> {
    block_pattern(csr, h, w).iter().map(Vec::len).collect()
}

/// [`BlockRowStats`] of a CSR matrix under `h×w` blocking.
pub fn block_row_stats<T: Element>(csr: &Csr<T>, h: usize, w: usize) -> BlockRowStats {
    BlockRowStats::from_counts(&blocks_per_row(csr, h, w))
}

/// Jaccard distance `1 - |a ∩ b| / |a ∪ b|` between two sorted index sets.
/// Empty-vs-empty is distance 0.
pub fn jaccard_distance(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = sorted_intersection_size(a, b);
    let union = a.len() + b.len() - inter;
    1.0 - inter as f64 / union as f64
}

/// Size of the intersection of two sorted, deduplicated sets.
pub fn sorted_intersection_size(a: &[usize], b: &[usize]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            core::cmp::Ordering::Less => i += 1,
            core::cmp::Ordering::Greater => j += 1,
            core::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Merges sorted set `b` into sorted set `a` (union, in place).
pub fn merge_sorted_into(a: &mut Vec<usize>, b: &[usize]) {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            core::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            core::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            core::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    *a = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::Coo;

    fn sample() -> Csr<f32> {
        let mut coo = Coo::new(4, 8);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 4, 1.0);
        coo.push(2, 0, 1.0);
        coo.push(3, 7, 1.0);
        coo.to_csr()
    }

    #[test]
    fn block_pattern_2x2() {
        let p = block_pattern(&sample(), 2, 2);
        assert_eq!(p, vec![vec![0, 2], vec![0, 3]]);
    }

    #[test]
    fn count_blocks_matches_bcsr() {
        let m = sample();
        for (h, w) in [(1, 1), (2, 2), (2, 4), (4, 8), (3, 3)] {
            let expect = smat_formats::Bcsr::from_csr(&m, h, w).nblocks();
            assert_eq!(count_blocks(&m, h, w), expect, "block {h}x{w}");
        }
    }

    #[test]
    fn row_block_cols_dedups() {
        let p = row_block_cols(&sample(), 2);
        assert_eq!(p[0], vec![0]); // cols 0,1 -> same block col
        assert_eq!(p[1], vec![2]);
    }

    #[test]
    fn jaccard_basic() {
        assert_eq!(jaccard_distance(&[0, 1], &[0, 1]), 0.0);
        assert_eq!(jaccard_distance(&[0], &[1]), 1.0);
        assert!((jaccard_distance(&[0, 1], &[1, 2]) - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
        assert_eq!(jaccard_distance(&[], &[]), 0.0);
        assert_eq!(jaccard_distance(&[], &[1]), 1.0);
    }

    #[test]
    fn merge_sorted_unions() {
        let mut a = vec![0, 2, 5];
        merge_sorted_into(&mut a, &[1, 2, 6]);
        assert_eq!(a, vec![0, 1, 2, 5, 6]);
    }

    #[test]
    fn intersection_size() {
        assert_eq!(sorted_intersection_size(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(sorted_intersection_size(&[], &[1]), 0);
    }
}
