//! MinHash/LSH-bucketed variant of the Jaccard row clustering.
//!
//! The exact algorithm in [`crate::jaccard`] enumerates candidates through an
//! inverted block-column index: every row sharing *any* block column with the
//! growing cluster is a candidate, which on matrices with heavy columns
//! degenerates toward a quadratic scan. This variant replaces the inverted
//! index with locality-sensitive hashing: each row gets a MinHash signature
//! of `bands × rows_per_band` hash functions over its block-column pattern,
//! the signature is cut into `bands` bands of `rows_per_band` values, and two
//! rows are candidates only if they collide in at least one band bucket. A
//! row with Jaccard *similarity* `s` to the cluster seed collides with
//! probability `1 − (1 − s^r)^b`, so near rows are almost always found while
//! far rows are almost never scanned. The join decision itself still uses the
//! exact Jaccard distance, so only recall (and never precision) is
//! approximate: the produced permutation is always valid, and block-count
//! quality tracks the exact algorithm within a small tolerance.
//!
//! Signature computation is embarrassingly parallel and runs under rayon.

use std::collections::HashMap;

use rayon::prelude::*;
use smat_formats::{Csr, Element, Permutation};

use crate::stats::{jaccard_distance, merge_sorted_into, row_block_cols};

/// Parameters of the LSH-bucketed greedy clustering.
#[derive(Clone, Copy, Debug)]
pub struct JaccardLshParams {
    /// Maximum Jaccard distance for a row to join a cluster (the exact
    /// threshold τ — identical meaning to [`crate::JaccardParams::tau`]).
    pub tau: f64,
    /// Block width used to quantize column patterns (MMA K dimension).
    pub block_w: usize,
    /// Close a cluster once it reaches this many rows; `None` lets clusters
    /// grow without bound.
    pub max_cluster_rows: Option<usize>,
    /// Number of LSH bands (`b`). More bands raise recall and cost.
    pub bands: usize,
    /// MinHash values per band (`r`). Larger values sharpen the collision
    /// threshold: collision probability is `1 − (1 − s^r)^b`.
    pub rows_per_band: usize,
    /// Drop band buckets holding more than this many rows ("stop-word"
    /// pruning). On power-law matrices a hub column's signature collects
    /// thousands of rows into one bucket that carries almost no similarity
    /// signal yet costs a quadratic sweep; capping bounds candidate breadth
    /// while near-duplicate rows still collide in their other, more
    /// selective bands. `None` keeps every bucket.
    pub max_bucket: Option<usize>,
    /// Seed of the MinHash function family. Fixed per run for determinism.
    pub seed: u64,
}

impl Default for JaccardLshParams {
    fn default() -> Self {
        JaccardLshParams {
            tau: 0.7,
            block_w: 16,
            max_cluster_rows: Some(16),
            bands: 8,
            rows_per_band: 1,
            max_bucket: Some(64),
            seed: 0x5AD_CA7,
        }
    }
}

/// SplitMix64 finalizer — the per-(function, element) MinHash hash.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// MinHash signature of one block-column pattern under `k` hash functions.
fn signature(pattern: &[usize], k: usize, seed: u64) -> Vec<u64> {
    let mut sig = vec![u64::MAX; k];
    for &bc in pattern {
        let e = mix64(seed ^ (bc as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for (j, s) in sig.iter_mut().enumerate() {
            let h = mix64(e ^ ((j as u64) << 32));
            if h < *s {
                *s = h;
            }
        }
    }
    sig
}

/// Computes the row permutation of the greedy Jaccard clustering with
/// LSH-bucketed candidate generation.
///
/// Structure mirrors [`crate::jaccard_row_permutation`]: a greedy seed loop
/// grows clusters by scanning candidates and joining rows whose exact
/// Jaccard distance to the cluster pattern is below `tau`; only the
/// candidate source differs (band buckets instead of the inverted
/// block-column index). Empty rows trail the permutation.
pub fn jaccard_lsh_row_permutation<T: Element>(
    csr: &Csr<T>,
    params: &JaccardLshParams,
) -> Permutation {
    let patterns = row_block_cols(csr, params.block_w);
    let n = patterns.len();
    let bands = params.bands.max(1);
    let rows_per_band = params.rows_per_band.max(1);
    let k = bands * rows_per_band;
    let seed = params.seed;

    // MinHash signatures, one per row — data-parallel over rows.
    let pats = &patterns;
    let sigs: Vec<Vec<u64>> = (0..n)
        .into_par_iter()
        .map(|r| signature(&pats[r], k, seed))
        .collect();

    // Band buckets: rows whose signature agrees on all `rows_per_band`
    // values of a band share a bucket. Bucket ids are assigned in row-scan
    // order, so the whole construction is deterministic.
    let mut bucket_ids: HashMap<(usize, u64), usize> = HashMap::new();
    let mut buckets: Vec<Vec<u32>> = Vec::new();
    let mut row_buckets: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (r, sig) in sigs.iter().enumerate() {
        if patterns[r].is_empty() {
            continue;
        }
        for b in 0..bands {
            let mut key = 0xcbf2_9ce4_8422_2325u64;
            for &v in &sig[b * rows_per_band..(b + 1) * rows_per_band] {
                key = mix64(key ^ v);
            }
            let next = buckets.len();
            let id = *bucket_ids.entry((b, key)).or_insert(next);
            if id == next {
                buckets.push(Vec::new());
            }
            buckets[id].push(r as u32);
            if row_buckets[r].last() != Some(&id) {
                row_buckets[r].push(id);
            }
        }
        row_buckets[r].sort_unstable();
        row_buckets[r].dedup();
    }
    // Stop-word pruning: see `JaccardLshParams::max_bucket`. Emptied (not
    // removed) so bucket ids stay stable; sweeping an empty bucket is free.
    if let Some(cap) = params.max_bucket {
        for b in &mut buckets {
            if b.len() > cap {
                b.clear();
                b.shrink_to_fit();
            }
        }
    }

    let mut clustered = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut empty_rows: Vec<usize> = Vec::new();
    let mut stamp = vec![0u32; n];
    let mut epoch = 0u32;

    for seed_row in 0..n {
        if clustered[seed_row] {
            continue;
        }
        if patterns[seed_row].is_empty() {
            clustered[seed_row] = true;
            empty_rows.push(seed_row);
            continue;
        }
        clustered[seed_row] = true;
        order.push(seed_row);
        let mut cluster_pat: Vec<usize> = patterns[seed_row].clone();
        let mut cluster_buckets: Vec<usize> = row_buckets[seed_row].clone();
        let mut cluster_rows = 1usize;
        let cap = params.max_cluster_rows.unwrap_or(usize::MAX);

        // Grow the cluster: scan rows colliding with any member's band
        // buckets; the join test is still the exact Jaccard distance.
        let mut grew = true;
        while grew && cluster_rows < cap {
            grew = false;
            epoch += 1;
            let snapshot = cluster_buckets.clone();
            'bkts: for &bkt in &snapshot {
                for &rw in &buckets[bkt] {
                    let r = rw as usize;
                    if clustered[r] || stamp[r] == epoch {
                        continue;
                    }
                    stamp[r] = epoch;
                    if jaccard_distance(&patterns[r], &cluster_pat) < params.tau {
                        clustered[r] = true;
                        order.push(r);
                        merge_sorted_into(&mut cluster_pat, &patterns[r]);
                        merge_sorted_into(&mut cluster_buckets, &row_buckets[r]);
                        cluster_rows += 1;
                        grew = true;
                        if cluster_rows >= cap {
                            break 'bkts;
                        }
                    }
                }
            }
        }
    }

    order.extend_from_slice(&empty_rows);
    debug_assert_eq!(order.len(), n);
    Permutation::from_vec(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::{jaccard_row_permutation, JaccardParams};
    use crate::stats::count_blocks;
    use smat_formats::Coo;

    fn interleaved(n: usize) -> Csr<f32> {
        let mut coo = Coo::new(n, 16);
        for r in 0..n {
            let base = if r % 2 == 0 { 0 } else { 8 };
            for c in base..base + 4 {
                coo.push(r, c, 1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn lsh_clustering_reduces_block_count() {
        let m = interleaved(32);
        let params = JaccardLshParams {
            tau: 0.5,
            block_w: 4,
            max_cluster_rows: Some(4),
            ..JaccardLshParams::default()
        };
        let p = jaccard_lsh_row_permutation(&m, &params);
        let before = count_blocks(&m, 4, 4);
        let after = count_blocks(&m.permute_rows(&p), 4, 4);
        assert!(after < before, "before={before}, after={after}");
        assert_eq!(after, 8);
    }

    #[test]
    fn result_is_valid_permutation() {
        let m = interleaved(17);
        let p = jaccard_lsh_row_permutation(&m, &JaccardLshParams::default());
        assert_eq!(p.len(), 17);
        let pm = m.permute_rows(&p);
        assert_eq!(pm.nnz(), m.nnz());
    }

    #[test]
    fn empty_rows_go_last() {
        let mut coo = Coo::new(6, 4);
        coo.push(0, 0, 1.0);
        coo.push(3, 0, 1.0);
        let m = coo.to_csr();
        let p = jaccard_lsh_row_permutation(&m, &JaccardLshParams::default());
        let pm = m.permute_rows(&p);
        assert!(pm.row_nnz(0) > 0);
        assert!(pm.row_nnz(1) > 0);
        for r in 2..6 {
            assert_eq!(pm.row_nnz(r), 0, "row {r} should be empty");
        }
    }

    #[test]
    fn identical_rows_always_collide() {
        // Rows with identical patterns have identical signatures, so LSH
        // finds them with probability 1 — quality must match exact Jaccard.
        let m = interleaved(64);
        let lsh = JaccardLshParams {
            tau: 0.5,
            block_w: 4,
            max_cluster_rows: Some(4),
            ..JaccardLshParams::default()
        };
        let exact = JaccardParams {
            tau: 0.5,
            block_w: 4,
            max_cluster_rows: Some(4),
        };
        let b_lsh = count_blocks(
            &m.permute_rows(&jaccard_lsh_row_permutation(&m, &lsh)),
            4,
            4,
        );
        let b_exact = count_blocks(&m.permute_rows(&jaccard_row_permutation(&m, &exact)), 4, 4);
        assert_eq!(b_lsh, b_exact);
    }

    #[test]
    fn oversized_buckets_are_pruned_without_breaking_validity() {
        // Every row shares one hub block-column, collapsing all rows into
        // one giant bucket per band; the cap prunes it, and the result must
        // stay a valid, deterministic permutation.
        let mut coo = Coo::new(200, 64);
        for r in 0..200 {
            coo.push(r, 0, 1.0);
            coo.push(r, 4 + (r % 15) * 4, 1.0);
        }
        let m = coo.to_csr();
        let params = JaccardLshParams {
            block_w: 4,
            max_bucket: Some(8),
            ..JaccardLshParams::default()
        };
        let p1 = jaccard_lsh_row_permutation(&m, &params);
        let p2 = jaccard_lsh_row_permutation(&m, &params);
        assert_eq!(p1.len(), 200);
        assert_eq!(m.permute_rows(&p1).nnz(), m.nnz());
        assert_eq!(p1.as_slice(), p2.as_slice());
    }

    #[test]
    fn deterministic_across_runs() {
        let m = interleaved(48);
        let params = JaccardLshParams::default();
        let p1 = jaccard_lsh_row_permutation(&m, &params);
        let p2 = jaccard_lsh_row_permutation(&m, &params);
        assert_eq!(p1.as_slice(), p2.as_slice());
    }
}
