//! Sylos Labini's Jaccard-similarity row clustering (IA³'22), the
//! preprocessing scheme SMaT adopts (§IV-C): greedily cluster rows whose
//! block-column patterns are close in Jaccard distance, so that rows sharing
//! columns land in the same block row and blocks densify.

use smat_formats::{Csr, Element, Permutation};

use crate::stats::{jaccard_distance, merge_sorted_into, row_block_cols};

/// Parameters of the greedy clustering.
#[derive(Clone, Copy, Debug)]
pub struct JaccardParams {
    /// Maximum Jaccard distance for a row to join a cluster (the paper's
    /// threshold τ). Smaller is stricter; 0.6–0.8 works well in practice.
    pub tau: f64,
    /// Block width used to quantize column patterns (MMA K dimension).
    pub block_w: usize,
    /// Close a cluster once it reaches this many rows; `None` lets clusters
    /// grow without bound (the original algorithm). Capping at the block
    /// height keeps the scan cost linear and aligns clusters with BCSR
    /// block rows.
    pub max_cluster_rows: Option<usize>,
}

impl Default for JaccardParams {
    fn default() -> Self {
        JaccardParams {
            tau: 0.7,
            block_w: 16,
            max_cluster_rows: Some(16),
        }
    }
}

/// Computes the row permutation produced by the greedy Jaccard clustering.
///
/// The returned permutation gathers clustered rows into adjacent positions
/// (`A' = P·A`). Empty rows are collected into trailing clusters.
pub fn jaccard_row_permutation<T: Element>(csr: &Csr<T>, params: &JaccardParams) -> Permutation {
    let patterns = row_block_cols(csr, params.block_w);
    let n = patterns.len();

    // Inverted index: block column -> rows whose pattern contains it. Used
    // to enumerate candidate rows that can have nonzero Jaccard overlap
    // with the current cluster, instead of scanning all rows.
    let nbc = csr.ncols().div_ceil(params.block_w);
    let mut rows_of_bc: Vec<Vec<u32>> = vec![Vec::new(); nbc];
    for (r, pat) in patterns.iter().enumerate() {
        for &bc in pat {
            rows_of_bc[bc].push(r as u32);
        }
    }

    let mut clustered = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut empty_rows: Vec<usize> = Vec::new();
    // Per-candidate visit stamp to avoid re-checking a row for the same
    // cluster; and a cursor per block column so each inverted list is
    // consumed at most once over the whole run (rows before the cursor are
    // already clustered).
    let mut stamp = vec![0u32; n];
    let mut epoch = 0u32;

    for seed in 0..n {
        if clustered[seed] {
            continue;
        }
        if patterns[seed].is_empty() {
            clustered[seed] = true;
            empty_rows.push(seed);
            continue;
        }
        clustered[seed] = true;
        order.push(seed);
        let mut cluster_pat: Vec<usize> = patterns[seed].clone();
        let mut cluster_rows = 1usize;
        let cap = params.max_cluster_rows.unwrap_or(usize::MAX);

        // Grow the cluster: repeatedly scan candidates sharing a block
        // column with the current cluster pattern.
        let mut grew = true;
        while grew && cluster_rows < cap {
            grew = false;
            epoch += 1;
            // Snapshot: merging updates cluster_pat; candidates from newly
            // added block columns are picked up on the next sweep.
            let snapshot = cluster_pat.clone();
            'cols: for &bc in &snapshot {
                for &rw in &rows_of_bc[bc] {
                    let r = rw as usize;
                    if clustered[r] || stamp[r] == epoch {
                        continue;
                    }
                    stamp[r] = epoch;
                    if jaccard_distance(&patterns[r], &cluster_pat) < params.tau {
                        clustered[r] = true;
                        order.push(r);
                        merge_sorted_into(&mut cluster_pat, &patterns[r]);
                        cluster_rows += 1;
                        grew = true;
                        if cluster_rows >= cap {
                            break 'cols;
                        }
                    }
                }
            }
        }
    }

    order.extend_from_slice(&empty_rows);
    debug_assert_eq!(order.len(), n);
    Permutation::from_vec(order)
}

/// Row *and* column clustering: cluster rows first, then apply the same
/// procedure to the columns of the row-permuted matrix (via its transpose).
/// The paper evaluates this variant and finds the extra column permutation
/// does not pay for the cost of reshuffling `B` (§IV-C, §VI-A).
pub fn jaccard_row_col_permutation<T: Element>(
    csr: &Csr<T>,
    params: &JaccardParams,
) -> (Permutation, Permutation) {
    let row_perm = jaccard_row_permutation(csr, params);
    let permuted = csr.permute_rows(&row_perm);
    let col_params = JaccardParams {
        // Quantize row patterns at block height when clustering columns.
        block_w: params.max_cluster_rows.unwrap_or(16).max(1),
        ..*params
    };
    let col_perm = jaccard_row_permutation(&permuted.transpose(), &col_params);
    (row_perm, col_perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::count_blocks;
    use smat_formats::Coo;

    /// Two interleaved row families: odd rows hit columns 0..4, even rows
    /// hit columns 8..12. Clustering should separate the families.
    fn interleaved(n: usize) -> Csr<f32> {
        let mut coo = Coo::new(n, 16);
        for r in 0..n {
            let base = if r % 2 == 0 { 0 } else { 8 };
            for c in base..base + 4 {
                coo.push(r, c, 1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn clustering_reduces_block_count() {
        let m = interleaved(32);
        let params = JaccardParams {
            tau: 0.5,
            block_w: 4,
            max_cluster_rows: Some(4),
        };
        let p = jaccard_row_permutation(&m, &params);
        let before = count_blocks(&m, 4, 4);
        let after = count_blocks(&m.permute_rows(&p), 4, 4);
        assert!(
            after < before,
            "clustering should densify blocks: before={before}, after={after}"
        );
        // Perfect clustering: each 4-row block covers one 4-wide family
        // chunk -> 8 block rows x 1 block = 8 blocks.
        assert_eq!(after, 8);
    }

    #[test]
    fn result_is_valid_permutation() {
        let m = interleaved(17); // odd size exercises tail handling
        let p = jaccard_row_permutation(&m, &JaccardParams::default());
        assert_eq!(p.len(), 17);
        // Permutation::from_vec validates bijectivity internally; spot-check
        // the product is the same matrix up to row order.
        let pm = m.permute_rows(&p);
        assert_eq!(pm.nnz(), m.nnz());
    }

    #[test]
    fn empty_rows_go_last() {
        let mut coo = Coo::new(6, 4);
        coo.push(0, 0, 1.0);
        coo.push(3, 0, 1.0);
        // rows 1,2,4,5 empty
        let m = coo.to_csr();
        let p = jaccard_row_permutation(&m, &JaccardParams::default());
        let pm = m.permute_rows(&p);
        assert!(pm.row_nnz(0) > 0);
        assert!(pm.row_nnz(1) > 0);
        for r in 2..6 {
            assert_eq!(pm.row_nnz(r), 0, "row {r} should be empty");
        }
    }

    #[test]
    fn identity_on_already_banded_matrix() {
        // A band matrix is already optimally blocked; clustering must not
        // make it worse (the conf5_4-8x8 caveat in §VI-A notes Jaccard *can*
        // hurt; with matched tau and cap the band case stays optimal).
        let mut coo = Coo::new(16, 16);
        for r in 0usize..16 {
            for c in r.saturating_sub(1)..(r + 2).min(16) {
                coo.push(r, c, 1.0);
            }
        }
        let m = coo.to_csr();
        let params = JaccardParams {
            tau: 0.9,
            block_w: 4,
            max_cluster_rows: Some(4),
        };
        let p = jaccard_row_permutation(&m, &params);
        let before = count_blocks(&m, 4, 4);
        let after = count_blocks(&m.permute_rows(&p), 4, 4);
        assert!(after <= before + 2, "before={before} after={after}");
    }

    #[test]
    fn row_col_variant_returns_two_valid_permutations() {
        let m = interleaved(16);
        let params = JaccardParams {
            tau: 0.5,
            block_w: 4,
            max_cluster_rows: Some(4),
        };
        let (rp, cp) = jaccard_row_col_permutation(&m, &params);
        assert_eq!(rp.len(), 16);
        assert_eq!(cp.len(), 16);
        let pm = m.permute_rows(&rp).permute_cols(&cp);
        assert_eq!(pm.nnz(), m.nnz());
    }

    #[test]
    fn unbounded_clusters_also_work() {
        let m = interleaved(16);
        let params = JaccardParams {
            tau: 0.5,
            block_w: 4,
            max_cluster_rows: None,
        };
        let p = jaccard_row_permutation(&m, &params);
        let pm = m.permute_rows(&p);
        // With unbounded clusters the two families form two contiguous runs.
        let first_family: Vec<bool> = (0..16).map(|r| pm.row_cols(r)[0] < 8).collect();
        let transitions = first_family.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(
            transitions, 1,
            "families must be contiguous: {first_family:?}"
        );
    }
}
