//! Value assignment for generated matrices.
//!
//! All generators produce *small integer* values (in `{-4,…,4}\{0}`). Small
//! integers are exactly representable in every Tensor-Core input precision
//! (f16, bf16, i8, f32), their products and partial sums stay exact in the
//! f32/i32 accumulators, and the single final rounding to the storage type
//! is then identical between a simulated kernel and the f64 reference — so
//! integration tests can assert *bit-exact* equality across all kernels and
//! precisions instead of hiding bugs behind tolerances.

/// Deterministic nonzero value for coordinate `(i, j)`: an integer in
/// `[-4, 4]`, never zero.
#[inline]
pub fn coord_value(i: usize, j: usize) -> f64 {
    // A cheap coordinate hash spread over 8 nonzero values.
    let h = i
        .wrapping_mul(0x9e37_79b9)
        .wrapping_add(j.wrapping_mul(0x85eb_ca6b));
    let v = ((h >> 7) % 8) as i64 - 4; // in [-4, 3]
    if v >= 0 {
        (v + 1) as f64 // skip zero: [-4,-1] u [1,4]
    } else {
        v as f64
    }
}

/// Deterministic dense right-hand-side value for `(k, n)`: an integer in
/// `[-3, 3]` (zeros allowed — `B` is dense regardless).
#[inline]
pub fn rhs_value(k: usize, n: usize) -> f64 {
    let h = k
        .wrapping_mul(0xc2b2_ae35)
        .wrapping_add(n.wrapping_mul(0x27d4_eb2f));
    (((h >> 9) % 7) as i64 - 3) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::{Bf16, Element, F16};

    #[test]
    fn coord_values_are_nonzero_small_integers() {
        for i in 0..100 {
            for j in 0..100 {
                let v = coord_value(i, j);
                assert!(v != 0.0);
                assert!((-4.0..=4.0).contains(&v));
                assert_eq!(v.fract(), 0.0);
            }
        }
    }

    #[test]
    fn values_are_exact_in_all_precisions() {
        for i in 0..50 {
            for j in 0..50 {
                let v = coord_value(i, j);
                assert_eq!(F16::from_f64(v).to_f64(), v);
                assert_eq!(Bf16::from_f64(v).to_f64(), v);
                assert_eq!(<i8 as Element>::from_f64(v).to_f64(), v);
            }
        }
    }

    #[test]
    fn rhs_values_cover_range() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..100 {
            for n in 0..8 {
                let v = rhs_value(k, n);
                assert!((-3.0..=3.0).contains(&v));
                seen.insert(v as i64);
            }
        }
        assert!(seen.len() >= 6, "values should spread: {seen:?}");
    }
}
