//! Synthetic serving traces: deterministic request streams for the
//! `smat-serve` engine.
//!
//! A trace is a sequence of [`TraceRequest`]s, each naming one of `M`
//! registered matrices and a right-hand-side width `n`. Matrix popularity
//! follows a truncated Zipf law (`P(matrix k) ∝ 1/(k+1)^s`), the shape real
//! inference traffic takes: a few hot models absorb most requests, which is
//! exactly what makes a prepared-matrix registry pay off. Widths are drawn
//! from a small caller-supplied set, mimicking fixed batch-size tiers.
//!
//! Everything is a pure function of the seed: replaying the same trace
//! twice produces identical requests, which the serving example relies on
//! to assert a deterministic end state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// One request of a synthetic serving trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct TraceRequest {
    /// Position in the trace (0-based).
    pub seq: usize,
    /// Index of the target matrix in the trace's matrix set (`0..n_matrices`).
    pub matrix: usize,
    /// Right-hand-side column count for this request.
    pub n_cols: usize,
}

/// Parameters of the synthetic trace generator.
#[derive(Clone, Debug, Serialize)]
pub struct TraceSpec {
    /// Number of requests to generate.
    pub requests: usize,
    /// Number of distinct matrices (`matrix` is drawn from `0..n_matrices`).
    pub n_matrices: usize,
    /// Candidate right-hand-side widths (uniformly drawn).
    pub widths: Vec<usize>,
    /// Zipf skew exponent `s` (0 = uniform popularity; ~1 = web-like skew).
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            requests: 256,
            n_matrices: 4,
            widths: vec![8, 16, 32],
            zipf_s: 1.0,
            seed: 42,
        }
    }
}

/// Generates the trace described by `spec`.
///
/// Guarantees every matrix index appears at least once when
/// `spec.requests >= spec.n_matrices` (the first `n_matrices` requests
/// cycle through all matrices so the registry's cold-miss count is exactly
/// the matrix count), then samples popularity Zipf-style.
///
/// # Panics
/// Panics if the spec has no matrices or no widths.
pub fn serve_trace(spec: &TraceSpec) -> Vec<TraceRequest> {
    assert!(spec.n_matrices > 0, "trace needs at least one matrix");
    assert!(!spec.widths.is_empty(), "trace needs at least one width");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Cumulative Zipf mass over matrix ranks.
    let weights: Vec<f64> = (0..spec.n_matrices)
        .map(|k| 1.0 / ((k + 1) as f64).powf(spec.zipf_s))
        .collect();
    let total: f64 = weights.iter().sum();

    let mut out = Vec::with_capacity(spec.requests);
    for seq in 0..spec.requests {
        let matrix = if seq < spec.n_matrices {
            seq // warm every matrix once, deterministically
        } else {
            let mut p = rng.gen::<f64>() * total;
            let mut pick = spec.n_matrices - 1;
            for (k, w) in weights.iter().enumerate() {
                if p < *w {
                    pick = k;
                    break;
                }
                p -= *w;
            }
            pick
        };
        let n_cols = spec.widths[rng.gen_range(0..spec.widths.len())];
        out.push(TraceRequest {
            seq,
            matrix,
            n_cols,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let spec = TraceSpec::default();
        assert_eq!(serve_trace(&spec), serve_trace(&spec));
        let other = TraceSpec {
            seed: 7,
            ..TraceSpec::default()
        };
        assert_ne!(serve_trace(&spec), serve_trace(&other));
    }

    #[test]
    fn every_matrix_appears_and_widths_are_from_the_set() {
        let spec = TraceSpec {
            requests: 200,
            n_matrices: 5,
            widths: vec![8, 16],
            zipf_s: 1.2,
            seed: 3,
        };
        let trace = serve_trace(&spec);
        assert_eq!(trace.len(), 200);
        for m in 0..5 {
            assert!(trace.iter().any(|r| r.matrix == m), "matrix {m} unused");
        }
        assert!(trace.iter().all(|r| r.n_cols == 8 || r.n_cols == 16));
        assert!(trace.iter().all(|r| r.matrix < 5));
        assert_eq!(trace[3].seq, 3);
    }

    #[test]
    fn zipf_skew_favors_rank_zero() {
        let spec = TraceSpec {
            requests: 2000,
            n_matrices: 4,
            widths: vec![8],
            zipf_s: 1.0,
            seed: 11,
        };
        let trace = serve_trace(&spec);
        let mut counts = [0usize; 4];
        for r in &trace {
            counts[r.matrix] += 1;
        }
        assert!(
            counts[0] > counts[3] * 2,
            "rank 0 must dominate rank 3: {counts:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one matrix")]
    fn rejects_empty_matrix_set() {
        let _ = serve_trace(&TraceSpec {
            n_matrices: 0,
            ..TraceSpec::default()
        });
    }
}
