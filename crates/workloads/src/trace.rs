//! Synthetic serving traces: deterministic request streams for the
//! `smat-serve` engine.
//!
//! A trace is a sequence of [`TraceRequest`]s, each naming one of `M`
//! registered matrices and a right-hand-side width `n`. Matrix popularity
//! follows a truncated Zipf law (`P(matrix k) ∝ 1/(k+1)^s`), the shape real
//! inference traffic takes: a few hot models absorb most requests, which is
//! exactly what makes a prepared-matrix registry pay off. Widths are drawn
//! from a small caller-supplied set, mimicking fixed batch-size tiers.
//!
//! Everything is a pure function of the seed: replaying the same trace
//! twice produces identical requests, which the serving example relies on
//! to assert a deterministic end state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// One request of a synthetic serving trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct TraceRequest {
    /// Position in the trace (0-based).
    pub seq: usize,
    /// Index of the target matrix in the trace's matrix set (`0..n_matrices`).
    pub matrix: usize,
    /// Right-hand-side column count for this request.
    pub n_cols: usize,
    /// Whether the target is one of the trace's *large* matrices (see
    /// [`TraceSpec::large_matrices`]) — tenants whose operands a sharding
    /// server would partition across devices. The driver decides what
    /// "large" means dimensionally; the trace only marks which tenants mix
    /// sharded and unsharded traffic.
    pub large: bool,
}

/// Parameters of the synthetic trace generator.
#[derive(Clone, Debug, Serialize)]
pub struct TraceSpec {
    /// Number of requests to generate.
    pub requests: usize,
    /// Number of distinct matrices (`matrix` is drawn from `0..n_matrices`).
    pub n_matrices: usize,
    /// Candidate right-hand-side widths (uniformly drawn).
    pub widths: Vec<usize>,
    /// Zipf skew exponent `s` (0 = uniform popularity; ~1 = web-like skew).
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
    /// How many of the `n_matrices` tenants are *large* (clamped to
    /// `n_matrices`). Large tenants are spread evenly across the
    /// popularity ranks (`k % ceil(n/large) == 0`), not bunched at the hot
    /// or cold end, so sharded and unsharded requests interleave
    /// throughout the trace rather than phase-separating.
    pub large_matrices: usize,
    /// Expected mutations per request (see [`mutation_trace`]). `0.0` (the
    /// default) generates a static trace; `0.1` interleaves roughly one
    /// cell mutation per ten requests. Mutations only target small
    /// (unsharded) tenants — the serving engine rejects mutation of
    /// sharded registrations.
    pub mutate_rate: f64,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            requests: 256,
            n_matrices: 4,
            widths: vec![8, 16, 32],
            zipf_s: 1.0,
            seed: 42,
            large_matrices: 0,
            mutate_rate: 0.0,
        }
    }
}

/// One cell mutation of a dynamic serving trace, scheduled *before* the
/// request with the same `seq` is submitted.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct TraceMutation {
    /// The request position this mutation lands in front of.
    pub seq: usize,
    /// Index of the target matrix (always a small/unsharded tenant).
    pub matrix: usize,
    /// Target row (within the matrix's dimensions as supplied to
    /// [`mutation_trace`]).
    pub row: usize,
    /// Target column.
    pub col: usize,
    /// New cell value for upserts (small-integer scheme, so every
    /// precision stays bit-exact against the f64 reference). Ignored when
    /// `delete` is set.
    pub value: f64,
    /// Whether the mutation removes the cell instead of upserting it.
    pub delete: bool,
}

/// Which popularity ranks are large: `large` ranks spread evenly over
/// `0..n` (stride `ceil(n/large)`, shortfall filled from the cold end).
/// Rank 0 — the hottest tenant — is always large when any rank is, so
/// sharded traffic stays interleaved with the unsharded stream instead of
/// hiding in the cold tail.
fn large_ranks(n: usize, large: usize) -> Vec<bool> {
    let large = large.min(n);
    let mut flags = vec![false; n];
    if large == 0 {
        return flags;
    }
    let mut marked = 0;
    for k in (0..n).step_by(n.div_ceil(large)) {
        if marked == large {
            break;
        }
        flags[k] = true;
        marked += 1;
    }
    for k in (0..n).rev() {
        if marked == large {
            break;
        }
        if !flags[k] {
            flags[k] = true;
            marked += 1;
        }
    }
    flags
}

/// Generates the trace described by `spec`.
///
/// Guarantees every matrix index appears at least once when
/// `spec.requests >= spec.n_matrices` (the first `n_matrices` requests
/// cycle through all matrices so the registry's cold-miss count is exactly
/// the matrix count), then samples popularity Zipf-style.
///
/// # Panics
/// Panics if the spec has no matrices or no widths.
pub fn serve_trace(spec: &TraceSpec) -> Vec<TraceRequest> {
    assert!(spec.n_matrices > 0, "trace needs at least one matrix");
    assert!(!spec.widths.is_empty(), "trace needs at least one width");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let large = large_ranks(spec.n_matrices, spec.large_matrices);
    // Cumulative Zipf mass over matrix ranks.
    let weights: Vec<f64> = (0..spec.n_matrices)
        .map(|k| 1.0 / ((k + 1) as f64).powf(spec.zipf_s))
        .collect();
    let total: f64 = weights.iter().sum();

    let mut out = Vec::with_capacity(spec.requests);
    for seq in 0..spec.requests {
        let matrix = if seq < spec.n_matrices {
            seq // warm every matrix once, deterministically
        } else {
            let mut p = rng.gen::<f64>() * total;
            let mut pick = spec.n_matrices - 1;
            for (k, w) in weights.iter().enumerate() {
                if p < *w {
                    pick = k;
                    break;
                }
                p -= *w;
            }
            pick
        };
        let n_cols = spec.widths[rng.gen_range(0..spec.widths.len())];
        out.push(TraceRequest {
            seq,
            matrix,
            n_cols,
            large: large[matrix],
        });
    }
    out
}

/// Generates the mutation schedule of a dynamic trace: for each request
/// position an independent Bernoulli draw at [`TraceSpec::mutate_rate`]
/// emits one cell mutation to apply before that request. Targets are drawn
/// Zipf-style over the *small* tenants only (`dims[k]` gives tenant `k`'s
/// `(nrows, ncols)`); roughly one in five mutations is a deletion, the
/// rest upsert small-integer values, so replays stay bit-exact in every
/// precision.
///
/// A separate RNG stream (seed ⊕ a fixed tweak) keeps the request trace
/// byte-identical whether or not mutations are enabled — the dynamic trace
/// is the static trace plus a schedule, not a different trace.
///
/// Returns an empty schedule when the rate is zero or every tenant is
/// large.
///
/// # Panics
/// Panics if `dims` has fewer entries than `spec.n_matrices`.
pub fn mutation_trace(spec: &TraceSpec, dims: &[(usize, usize)]) -> Vec<TraceMutation> {
    assert!(
        dims.len() >= spec.n_matrices,
        "need dimensions for all {} tenants, got {}",
        spec.n_matrices,
        dims.len()
    );
    if spec.mutate_rate <= 0.0 {
        return Vec::new();
    }
    let large = large_ranks(spec.n_matrices, spec.large_matrices);
    let small: Vec<usize> = (0..spec.n_matrices).filter(|&k| !large[k]).collect();
    if small.is_empty() {
        return Vec::new();
    }
    let weights: Vec<f64> = (0..small.len())
        .map(|k| 1.0 / ((k + 1) as f64).powf(spec.zipf_s))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x6d75_7461_7465); // "mutate"
    let mut out = Vec::new();
    for seq in 0..spec.requests {
        if rng.gen::<f64>() >= spec.mutate_rate {
            continue;
        }
        let mut p = rng.gen::<f64>() * total;
        let mut pick = small.len() - 1;
        for (k, w) in weights.iter().enumerate() {
            if p < *w {
                pick = k;
                break;
            }
            p -= *w;
        }
        let matrix = small[pick];
        let (nrows, ncols) = dims[matrix];
        let delete = rng.gen::<f64>() < 0.2;
        // Small nonzero integers: exact in f16/bf16/f32/f64 alike.
        let value = [-2.0, -1.0, 1.0, 2.0][rng.gen_range(0..4usize)];
        out.push(TraceMutation {
            seq,
            matrix,
            row: rng.gen_range(0..nrows),
            col: rng.gen_range(0..ncols),
            value,
            delete,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let spec = TraceSpec::default();
        assert_eq!(serve_trace(&spec), serve_trace(&spec));
        let other = TraceSpec {
            seed: 7,
            ..TraceSpec::default()
        };
        assert_ne!(serve_trace(&spec), serve_trace(&other));
    }

    #[test]
    fn every_matrix_appears_and_widths_are_from_the_set() {
        let spec = TraceSpec {
            requests: 200,
            n_matrices: 5,
            widths: vec![8, 16],
            zipf_s: 1.2,
            seed: 3,
            large_matrices: 0,
            mutate_rate: 0.0,
        };
        let trace = serve_trace(&spec);
        assert_eq!(trace.len(), 200);
        for m in 0..5 {
            assert!(trace.iter().any(|r| r.matrix == m), "matrix {m} unused");
        }
        assert!(trace.iter().all(|r| r.n_cols == 8 || r.n_cols == 16));
        assert!(trace.iter().all(|r| r.matrix < 5));
        assert_eq!(trace[3].seq, 3);
    }

    #[test]
    fn zipf_skew_favors_rank_zero() {
        let spec = TraceSpec {
            requests: 2000,
            n_matrices: 4,
            widths: vec![8],
            zipf_s: 1.0,
            seed: 11,
            large_matrices: 0,
            mutate_rate: 0.0,
        };
        let trace = serve_trace(&spec);
        let mut counts = [0usize; 4];
        for r in &trace {
            counts[r.matrix] += 1;
        }
        assert!(
            counts[0] > counts[3] * 2,
            "rank 0 must dominate rank 3: {counts:?}"
        );
    }

    #[test]
    fn large_tenants_interleave_with_small_ones() {
        let spec = TraceSpec {
            requests: 400,
            n_matrices: 4,
            widths: vec![8],
            zipf_s: 1.0,
            seed: 9,
            large_matrices: 2,
            mutate_rate: 0.0,
        };
        let trace = serve_trace(&spec);
        // Ranks 0 and 2 are large (stride 2); flags follow the matrix.
        assert!(trace.iter().all(|r| r.large == (r.matrix % 2 == 0)));
        let n_large = trace.iter().filter(|r| r.large).count();
        assert!(
            n_large > 0 && n_large < trace.len(),
            "both kinds must appear: {n_large} large of {}",
            trace.len()
        );
        // Interleaved, not phase-separated: both kinds appear in the
        // steady-state (post-warmup) half of the trace.
        let tail = &trace[trace.len() / 2..];
        assert!(tail.iter().any(|r| r.large));
        assert!(tail.iter().any(|r| !r.large));
        // The hottest tenant is large, so sharded traffic dominates.
        assert!(trace.iter().filter(|r| r.matrix == 0).all(|r| r.large));
    }

    #[test]
    fn large_rank_selection_clamps_and_spreads() {
        assert_eq!(large_ranks(4, 0), vec![false; 4]);
        assert_eq!(large_ranks(4, 2), vec![true, false, true, false]);
        assert_eq!(large_ranks(3, 5), vec![true, true, true], "clamped");
        let six = large_ranks(6, 4);
        assert_eq!(six.iter().filter(|&&f| f).count(), 4);
        assert!(six[0], "rank 0 is always large when any rank is");
    }

    #[test]
    fn mutation_schedule_is_deterministic_and_leaves_requests_unchanged() {
        let static_spec = TraceSpec::default();
        let dynamic_spec = TraceSpec {
            mutate_rate: 0.25,
            ..TraceSpec::default()
        };
        // The request stream is invariant under the mutation rate.
        assert_eq!(serve_trace(&static_spec), serve_trace(&dynamic_spec));
        let dims = vec![(64, 64); 4];
        let muts = mutation_trace(&dynamic_spec, &dims);
        assert_eq!(muts, mutation_trace(&dynamic_spec, &dims), "replayable");
        assert!(!muts.is_empty(), "rate 0.25 over 256 requests must fire");
        assert!(muts.len() < 256);
        for m in &muts {
            assert!(m.matrix < 4);
            assert!(m.row < 64 && m.col < 64);
            assert!(m.seq < 256);
            assert!(m.delete || m.value.abs() == 1.0 || m.value.abs() == 2.0);
        }
        // Sorted by schedule position (construction order).
        assert!(muts.windows(2).all(|w| w[0].seq <= w[1].seq));
        // Zero rate: empty schedule.
        assert!(mutation_trace(&static_spec, &dims).is_empty());
    }

    #[test]
    fn mutations_avoid_large_tenants() {
        let spec = TraceSpec {
            requests: 400,
            large_matrices: 2,
            mutate_rate: 0.5,
            ..TraceSpec::default()
        };
        let dims = vec![(64, 64); 4];
        let muts = mutation_trace(&spec, &dims);
        assert!(!muts.is_empty());
        // Ranks 0 and 2 are large (stride 2): only 1 and 3 may mutate.
        assert!(muts.iter().all(|m| m.matrix == 1 || m.matrix == 3));
        // All tenants large: nothing to mutate.
        let all_large = TraceSpec {
            large_matrices: 4,
            ..spec
        };
        assert!(mutation_trace(&all_large, &dims).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one matrix")]
    fn rejects_empty_matrix_set() {
        let _ = serve_trace(&TraceSpec {
            n_matrices: 0,
            ..TraceSpec::default()
        });
    }
}
