//! Core matrix generators: band matrices (the Fig. 2/9 synthetic workload),
//! uniform random, RMAT power-law, and mesh stencils.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smat_formats::{Coo, Csr, Dense, Element};

use crate::values::{coord_value, rhs_value};

/// `n×n` band matrix of half-bandwidth `b`: `a[i][j] != 0` iff
/// `|i - j| <= b` (the paper's §VI-C definition). `b >= n-1` yields a fully
/// dense matrix.
pub fn band<T: Element>(n: usize, b: usize) -> Csr<T> {
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for i in 0..n {
        let lo = i.saturating_sub(b);
        let hi = (i + b + 1).min(n);
        for j in lo..hi {
            col_idx.push(j);
            values.push(T::from_f64(coord_value(i, j)));
        }
        row_ptr.push(col_idx.len());
    }
    Csr::from_raw(n, n, row_ptr, col_idx, values)
}

/// Number of nonzeros of [`band`] without generating it.
pub fn band_nnz(n: usize, b: usize) -> usize {
    (0..n)
        .map(|i| (i + b + 1).min(n) - i.saturating_sub(b))
        .sum()
}

/// The paper's perf-model calibration suite (§III): `n×n` band matrices of
/// geometrically spread half-bandwidths, so the block counts `n_e` span the
/// range the fitted line will be asked to interpolate. Feeds
/// `smat::Calibration::fit_on`.
pub fn calibration_bands<T: Element>(n: usize) -> Vec<Csr<T>> {
    let mut bands = vec![2usize, 4, 8, 16, 32];
    bands.retain(|&b| b < n);
    bands.iter().map(|&b| band(n, b)).collect()
}

/// Uniform (Erdős–Rényi) random sparse matrix with the given `sparsity`
/// (fraction of zeros). Sampling is per-row binomial with deterministic
/// seeding; the diagonal is always present so no row is empty for
/// `sparsity < 1`.
pub fn random_uniform<T: Element>(nrows: usize, ncols: usize, sparsity: f64, seed: u64) -> Csr<T> {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let density = 1.0 - sparsity;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::with_capacity(
        nrows,
        ncols,
        (nrows as f64 * ncols as f64 * density) as usize + nrows,
    );
    for i in 0..nrows {
        if density > 0.0 && ncols > 0 {
            coo.push(i, i.min(ncols - 1), T::from_f64(coord_value(i, i)));
        }
        for j in 0..ncols {
            if rng.gen::<f64>() < density {
                coo.push(i, j, T::from_f64(coord_value(i, j)));
            }
        }
    }
    coo.to_csr()
}

/// RMAT power-law generator (Chakrabarti et al.): recursively drops `nnz`
/// edges into a `2^scale × 2^scale` matrix with quadrant probabilities
/// `(a, b, c, d)`. The default `(0.57, 0.19, 0.19, 0.05)` produces the
/// skewed row-degree distributions typical of circuit and web matrices
/// (the `dc2` pathology).
pub fn rmat<T: Element>(scale: u32, nnz: usize, seed: u64) -> Csr<T> {
    rmat_with_probs(scale, nnz, seed, (0.57, 0.19, 0.19, 0.05))
}

/// [`rmat`] with explicit quadrant probabilities.
pub fn rmat_with_probs<T: Element>(
    scale: u32,
    nnz: usize,
    seed: u64,
    (a, b, c, _d): (f64, f64, f64, f64),
) -> Csr<T> {
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::with_capacity(n, n, nnz);
    for _ in 0..nnz {
        let mut r = 0usize;
        let mut col = 0usize;
        for _ in 0..scale {
            let p: f64 = rng.gen();
            let (dr, dc) = if p < a {
                (0, 0)
            } else if p < a + b {
                (0, 1)
            } else if p < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            r = (r << 1) | dr;
            col = (col << 1) | dc;
        }
        coo.push(r, col, T::from_f64(coord_value(r, col)));
    }
    coo.to_csr() // duplicates collapse; effective nnz may be below `nnz`
}

/// 5-point 2D Poisson stencil on an `nx×ny` grid (the HPCG-like regular
/// matrix motivating the band-matrix benchmark in §V-D).
pub fn mesh2d<T: Element>(nx: usize, ny: usize) -> Csr<T> {
    let n = nx * ny;
    let mut coo = Coo::with_capacity(n, n, 5 * n);
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            coo.push(i, i, T::from_f64(4.0));
            if x > 0 {
                coo.push(i, idx(x - 1, y), T::from_f64(-1.0));
            }
            if x + 1 < nx {
                coo.push(i, idx(x + 1, y), T::from_f64(-1.0));
            }
            if y > 0 {
                coo.push(i, idx(x, y - 1), T::from_f64(-1.0));
            }
            if y + 1 < ny {
                coo.push(i, idx(x, y + 1), T::from_f64(-1.0));
            }
        }
    }
    coo.to_csr()
}

/// 7-point 3D Poisson stencil on an `nx×ny×nz` grid — the matrix HPCG
/// actually ranks supercomputers with (§V-D motivation).
pub fn mesh3d<T: Element>(nx: usize, ny: usize, nz: usize) -> Csr<T> {
    let n = nx * ny * nz;
    let mut coo = Coo::with_capacity(n, n, 7 * n);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                coo.push(i, i, T::from_f64(6.0));
                if x > 0 {
                    coo.push(i, idx(x - 1, y, z), T::from_f64(-1.0));
                }
                if x + 1 < nx {
                    coo.push(i, idx(x + 1, y, z), T::from_f64(-1.0));
                }
                if y > 0 {
                    coo.push(i, idx(x, y - 1, z), T::from_f64(-1.0));
                }
                if y + 1 < ny {
                    coo.push(i, idx(x, y + 1, z), T::from_f64(-1.0));
                }
                if z > 0 {
                    coo.push(i, idx(x, y, z - 1), T::from_f64(-1.0));
                }
                if z + 1 < nz {
                    coo.push(i, idx(x, y, z + 1), T::from_f64(-1.0));
                }
            }
        }
    }
    coo.to_csr()
}

/// FEM-style mesh matrix: `nodes` mesh nodes with `dof` degrees of freedom
/// each; every node couples to itself and to `neighbors` nearby nodes, and
/// each coupling is a dense `dof×dof` block. This reproduces the
/// block-structured patterns of the 2D/3D-mesh and structural matrices in
/// Table I (cant, consph, shipsec1, cop20k_A).
pub fn mesh_fem<T: Element>(
    nodes: usize,
    dof: usize,
    neighbors: usize,
    locality: usize,
    seed: u64,
) -> Csr<T> {
    let n = nodes * dof;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::with_capacity(n, n, nodes * (neighbors + 1) * dof * dof);
    for node in 0..nodes {
        let mut coupled: Vec<usize> = vec![node];
        for _ in 0..neighbors {
            // Neighbors are drawn near the node (mesh locality), with an
            // occasional long-range coupling.
            let other = if rng.gen::<f64>() < 0.9 {
                let span = locality.max(1);
                let lo = node.saturating_sub(span);
                let hi = (node + span + 1).min(nodes);
                rng.gen_range(lo..hi)
            } else {
                rng.gen_range(0..nodes)
            };
            coupled.push(other);
        }
        coupled.sort_unstable();
        coupled.dedup();
        for &other in &coupled {
            for di in 0..dof {
                for dj in 0..dof {
                    let r = node * dof + di;
                    let c = other * dof + dj;
                    coo.push(r, c, T::from_f64(coord_value(r, c)));
                }
            }
        }
    }
    coo.to_csr()
}

/// Dense right-hand side `B ∈ K×N` with deterministic small-integer values.
pub fn dense_b<T: Element>(k: usize, n: usize) -> Dense<T> {
    Dense::from_fn(k, n, |i, j| T::from_f64(rhs_value(i, j)))
}

/// Applies a deterministic row scramble to a matrix, destroying the natural
/// ordering: this models how real assembled matrices arrive without their
/// ideal row order, giving the reordering stage something to recover.
pub fn scramble_rows<T: Element>(csr: &Csr<T>, seed: u64) -> Csr<T> {
    let n = csr.nrows();
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher-Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    csr.permute_rows(&smat_formats::Permutation::from_vec(idx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_structure() {
        let m: Csr<f32> = band(8, 1);
        assert_eq!(m.nnz(), band_nnz(8, 1));
        assert_eq!(m.nnz(), 8 + 2 * 7); // tridiagonal
        assert_eq!(m.get(0, 2), None);
        assert!(m.get(3, 4).is_some());
    }

    #[test]
    fn band_full_width_is_dense() {
        let m: Csr<f32> = band(6, 5);
        assert_eq!(m.nnz(), 36);
        assert_eq!(m.sparsity(), 0.0);
    }

    #[test]
    fn band_zero_bandwidth_is_diagonal() {
        let m: Csr<f32> = band(5, 0);
        assert_eq!(m.nnz(), 5);
        for (i, j, _) in m.iter() {
            assert_eq!(i, j);
        }
    }

    #[test]
    fn random_uniform_hits_target_sparsity() {
        let m: Csr<f32> = random_uniform(200, 200, 0.9, 7);
        let got = m.sparsity();
        assert!((got - 0.9).abs() < 0.02, "sparsity {got}");
    }

    #[test]
    fn random_uniform_is_deterministic() {
        let a: Csr<f32> = random_uniform(50, 50, 0.8, 99);
        let b: Csr<f32> = random_uniform(50, 50, 0.8, 99);
        assert_eq!(a, b);
        let c: Csr<f32> = random_uniform(50, 50, 0.8, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_degree_distribution_is_skewed() {
        let m: Csr<f32> = rmat(10, 8_000, 3);
        let degrees = m.row_nnz_histogram();
        let max = *degrees.iter().max().unwrap();
        let mean = m.nnz() as f64 / m.nrows() as f64;
        assert!(
            max as f64 > mean * 8.0,
            "power-law should produce heavy rows: max={max} mean={mean}"
        );
    }

    #[test]
    fn mesh2d_is_symmetric_pentadiagonal() {
        let m: Csr<f32> = mesh2d(4, 4);
        assert_eq!(m.nrows(), 16);
        assert_eq!(m.get(0, 0), Some(4.0));
        assert_eq!(m.get(0, 1), Some(-1.0));
        assert_eq!(m.get(0, 4), Some(-1.0));
        assert_eq!(m.get(0, 5), None);
        // Symmetry of the stencil.
        let t = m.transpose();
        assert_eq!(t, m);
    }

    #[test]
    fn mesh3d_is_symmetric_seven_point() {
        let m: Csr<f32> = mesh3d(3, 3, 3);
        assert_eq!(m.nrows(), 27);
        // Center node has all 6 neighbors + diagonal.
        let center = 13; // (1,1,1)
        assert_eq!(m.row_nnz(center), 7);
        assert_eq!(m.get(center, center), Some(6.0));
        // Corner node has 3 neighbors + diagonal.
        assert_eq!(m.row_nnz(0), 4);
        assert_eq!(m.transpose(), m);
    }

    #[test]
    fn mesh3d_row_sums_vanish_in_the_interior() {
        // Poisson stencil: 6 - 6 neighbors = 0 for interior rows.
        let m: Csr<f32> = mesh3d(4, 4, 4);
        let interior = (4 + 1) * 4 + 1;
        let sum: f32 = m.row_values(interior).iter().sum();
        assert_eq!(sum, 0.0);
    }

    #[test]
    fn mesh_fem_has_dense_dof_blocks() {
        let m: Csr<f32> = mesh_fem(20, 3, 4, 2, 11);
        assert_eq!(m.nrows(), 60);
        // Diagonal block of node 0 fully dense.
        for di in 0..3 {
            for dj in 0..3 {
                assert!(m.get(di, dj).is_some(), "({di},{dj}) missing");
            }
        }
        // nnz divisible by dof*dof (whole blocks only).
        assert_eq!(m.nnz() % 9, 0);
    }

    #[test]
    fn scramble_preserves_multiset_of_rows() {
        let m: Csr<f32> = mesh2d(5, 5);
        let s = scramble_rows(&m, 42);
        assert_eq!(s.nnz(), m.nnz());
        assert_ne!(s, m);
        let mut a: Vec<usize> = m.row_nnz_histogram();
        let mut b: Vec<usize> = s.row_nnz_histogram();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn dense_b_deterministic_and_integer() {
        let b = dense_b::<f32>(16, 4);
        assert_eq!(b, dense_b::<f32>(16, 4));
        for v in b.as_slice() {
            assert_eq!(v.fract(), 0.0);
        }
    }
}
