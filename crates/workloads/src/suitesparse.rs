//! Structural mimics of the nine SuiteSparse matrices of Table I.
//!
//! The real collection files are not available offline, so each matrix is
//! replaced by a deterministic generator that reproduces the structural
//! trait driving its behaviour in the paper (DESIGN.md §2): family-clustered
//! rows with a few heavy rows for `mip1`, a banded lattice for
//! `conf5_4-8x8`, FEM dof-block meshes for the mesh/structural group,
//! power-law rows for `dc2`. A `scale` parameter shrinks dimensions and
//! nonzeros proportionally (preserving row-degree structure) so the full
//! harness stays tractable on a laptop; `scale = 1.0` reproduces the
//! Table I sizes. A Matrix Market reader (`smat_formats::mtx`) lets real
//! files replace the mimics where available.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use smat_formats::{Coo, Csr, Element};

use crate::generators::{band, mesh_fem, scramble_rows};
use crate::values::coord_value;

/// Structure class of a mimic.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum MimicKind {
    /// Rows come in families sharing one column pattern, interleaved by
    /// assembly order, plus a small fraction of heavy scattered rows
    /// (`mip1`: reordering reunites families, cutting blocks and the
    /// blocks-per-row stddev).
    FamilyClustered,
    /// Banded lattice coupling; already optimally ordered, reordering can
    /// only hurt (`conf5_4-8x8`).
    BlockBand,
    /// FEM mesh with dense dof×dof node-coupling blocks; `scrambled` mimics
    /// assembly orders that lost the natural node order.
    FemMesh {
        /// Degrees of freedom per mesh node (block size in the pattern).
        dof: usize,
        /// Whether the natural node order was destroyed.
        scrambled: bool,
    },
    /// Power-law row degrees with extreme sparsity (`dc2`: the adversarial
    /// case for a static 2D block schedule).
    PowerLaw,
}

/// One Table I matrix: the paper's metadata plus our generator recipe.
#[derive(Clone, Debug, Serialize)]
pub struct Mimic {
    /// SuiteSparse matrix name.
    pub name: &'static str,
    /// Application domain (Table I column 1).
    pub domain: &'static str,
    /// Rows (= columns) at scale 1.0.
    pub full_n: usize,
    /// Nonzeros at scale 1.0.
    pub full_nnz: usize,
    /// Structure class.
    pub kind: MimicKind,
    /// Generator seed.
    pub seed: u64,
}

impl Mimic {
    /// Sparsity of the full-size matrix, as reported in Table I.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.full_nnz as f64 / (self.full_n as f64 * self.full_n as f64)
    }

    /// Scaled dimension.
    pub fn n_at(&self, scale: f64) -> usize {
        ((self.full_n as f64 * scale) as usize).max(64)
    }

    /// Scaled nonzero target.
    pub fn nnz_at(&self, scale: f64) -> usize {
        let n = self.n_at(scale);
        let avg = self.full_nnz as f64 / self.full_n as f64;
        (n as f64 * avg) as usize
    }

    /// Generates the mimic at the given scale.
    pub fn generate<T: Element>(&self, scale: f64) -> Csr<T> {
        let n = self.n_at(scale);
        let avg_deg = (self.full_nnz as f64 / self.full_n as f64).round() as usize;
        match self.kind {
            MimicKind::FamilyClustered => family_clustered(n, avg_deg, self.seed),
            MimicKind::BlockBand => band(n, (avg_deg / 2).max(1)),
            MimicKind::FemMesh { dof, scrambled } => {
                let nodes = (n / dof).max(1);
                let neighbors = (avg_deg / dof).saturating_sub(1).max(1);
                let locality = (neighbors * 2).max(4);
                let m = mesh_fem::<T>(nodes, dof, neighbors, locality, self.seed);
                if scrambled {
                    scramble_rows(&m, self.seed ^ 0xdead)
                } else {
                    m
                }
            }
            MimicKind::PowerLaw => power_law(n, self.nnz_at(scale), self.seed),
        }
    }
}

/// Rows in families of 16 sharing a column pattern of dense 16-wide runs,
/// interleaved by a scramble. 10% of families are *heavy* (8× the pattern
/// size): in the scrambled original ordering every block row unions several
/// distinct heavy patterns (large mean *and* large stddev of blocks per
/// row); clustering reunites families so the unions collapse — reproducing
/// mip1's block-count *and* load-balance improvements (§VI-B).
fn family_clustered<T: Element>(n: usize, avg_deg: usize, seed: u64) -> Csr<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let family_size = 16usize;
    let nfam = n.div_ceil(family_size);
    let nbc = n.div_ceil(16).max(1);
    // 90% light families, 10% heavy with 8x the runs; calibrate the light
    // degree so the overall average matches `avg_deg`.
    let light_deg = (avg_deg as f64 / 1.7).max(1.0);
    let light_runs = ((light_deg / 16.0).ceil() as usize).max(1);
    let heavy_runs = (light_runs * 8).min(nbc);

    let mut coo = Coo::with_capacity(n, n, n * avg_deg * 2);
    for fam in 0..nfam {
        let runs = if rng.gen::<f64>() < 0.1 {
            heavy_runs
        } else {
            light_runs
        };
        // The family's shared pattern: `runs` random 16-wide column runs.
        let mut run_cols: Vec<usize> = (0..runs).map(|_| rng.gen_range(0..nbc)).collect();
        run_cols.sort_unstable();
        run_cols.dedup();
        for member in 0..family_size {
            let r = fam * family_size + member;
            if r >= n {
                break;
            }
            for &bc in &run_cols {
                for c in (bc * 16)..((bc + 1) * 16).min(n) {
                    coo.push(r, c, T::from_f64(coord_value(r, c)));
                }
            }
        }
    }
    scramble_rows(&coo.to_csr(), seed ^ 0xbeef)
}

/// Power-law (Zipf) row degrees over randomly placed columns, rows
/// scrambled. Reproduces `dc2`: extreme sparsity, mean blocks/row small,
/// stddev an order of magnitude larger.
fn power_law<T: Element>(n: usize, nnz: usize, seed: u64) -> Csr<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Zipf with exponent ~1: deg(i) = c/(i+1), normalized to hit `nnz`.
    let harmonic: f64 = (0..n).map(|i| 1.0 / (i + 1) as f64).sum();
    let c = nnz as f64 / harmonic;
    let mut coo = Coo::with_capacity(n, n, nnz + n);
    for i in 0..n {
        let deg = ((c / (i + 1) as f64).round() as usize).clamp(1, n);
        if deg > n / 2 {
            // Head rows: dense runs (hubs connect to everything nearby).
            for ccol in 0..deg {
                coo.push(i, ccol, T::from_f64(coord_value(i, ccol)));
            }
        } else {
            for _ in 0..deg {
                let ccol = rng.gen_range(0..n);
                coo.push(i, ccol, T::from_f64(coord_value(i, ccol)));
            }
        }
    }
    scramble_rows(&coo.to_csr(), seed ^ 0xd00d)
}

/// The nine Table I matrices in the paper's order.
pub fn table1() -> Vec<Mimic> {
    vec![
        Mimic {
            name: "mip1",
            domain: "optimization",
            full_n: 66_000,
            full_nnz: 10_400_000,
            kind: MimicKind::FamilyClustered,
            seed: 101,
        },
        Mimic {
            name: "conf5_4-8x8",
            domain: "quantum chem.",
            full_n: 49_000,
            full_nnz: 1_900_000,
            kind: MimicKind::BlockBand,
            seed: 102,
        },
        Mimic {
            name: "cant",
            domain: "2D/3D mesh",
            full_n: 62_000,
            full_nnz: 4_000_000,
            kind: MimicKind::FemMesh {
                dof: 3,
                scrambled: false,
            },
            seed: 103,
        },
        Mimic {
            name: "pdb1HYS",
            domain: "weighted graph",
            full_n: 36_000,
            full_nnz: 4_300_000,
            kind: MimicKind::FemMesh {
                dof: 6,
                scrambled: true,
            },
            seed: 104,
        },
        Mimic {
            name: "rma10",
            domain: "fluid dynamics",
            full_n: 46_800,
            full_nnz: 2_300_000,
            kind: MimicKind::FemMesh {
                dof: 5,
                scrambled: true,
            },
            seed: 105,
        },
        Mimic {
            name: "cop20k_A",
            domain: "2D/3D mesh",
            full_n: 121_000,
            full_nnz: 2_600_000,
            kind: MimicKind::FemMesh {
                dof: 3,
                scrambled: true,
            },
            seed: 106,
        },
        Mimic {
            name: "consph",
            domain: "2D/3D mesh",
            full_n: 83_000,
            full_nnz: 6_000_000,
            kind: MimicKind::FemMesh {
                dof: 3,
                scrambled: true,
            },
            seed: 107,
        },
        Mimic {
            name: "shipsec1",
            domain: "structural",
            full_n: 140_000,
            full_nnz: 7_800_000,
            kind: MimicKind::FemMesh {
                dof: 3,
                scrambled: true,
            },
            seed: 108,
        },
        Mimic {
            name: "dc2",
            domain: "circuit simulation",
            full_n: 116_000,
            full_nnz: 766_000,
            kind: MimicKind::PowerLaw,
            seed: 109,
        },
    ]
}

/// Looks up a Table I mimic by name.
pub fn by_name(name: &str) -> Option<Mimic> {
    table1().into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_nine_matrices_matching_paper_sparsity() {
        let t = table1();
        assert_eq!(t.len(), 9);
        // Spot-check the sparsities quoted in Table I.
        let get = |n: &str| by_name(n).unwrap();
        assert!((get("mip1").sparsity() - 0.9976).abs() < 0.001);
        assert!((get("dc2").sparsity() - 0.9999).abs() < 0.0002);
        assert!((get("cop20k_A").sparsity() - 0.9998).abs() < 0.0002);
    }

    #[test]
    fn generated_sizes_track_scale() {
        let m = by_name("cant").unwrap();
        let small: Csr<f32> = m.generate(0.02);
        assert!(small.nrows() >= 64);
        assert!(small.nrows() < 3000);
        // Average degree should be in the right ballpark (row structure
        // preserved under scaling).
        let avg = small.nnz() as f64 / small.nrows() as f64;
        let want = m.full_nnz as f64 / m.full_n as f64;
        assert!(
            avg > want * 0.3 && avg < want * 3.0,
            "avg degree {avg} vs paper {want}"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        for m in table1() {
            let a: Csr<f32> = m.generate(0.005);
            let b: Csr<f32> = m.generate(0.005);
            assert_eq!(a, b, "{} not deterministic", m.name);
        }
    }

    #[test]
    fn dc2_mimic_has_skewed_rows() {
        let m = by_name("dc2").unwrap();
        let g: Csr<f32> = m.generate(0.02);
        let hist = g.row_nnz_histogram();
        let mean = g.nnz() as f64 / g.nrows() as f64;
        let max = *hist.iter().max().unwrap() as f64;
        assert!(max > mean * 20.0, "max {max} mean {mean}");
    }

    #[test]
    fn conf5_mimic_is_banded() {
        let m = by_name("conf5_4-8x8").unwrap();
        let g: Csr<f32> = m.generate(0.01);
        let bw = smat_reorder_free_bandwidth(&g);
        assert!(bw < g.nrows() / 4, "bandwidth {bw} of n={}", g.nrows());
    }

    // Local bandwidth helper (avoid a dev-dependency on smat-reorder).
    fn smat_reorder_free_bandwidth(csr: &Csr<f32>) -> usize {
        csr.iter().map(|(i, j, _)| i.abs_diff(j)).max().unwrap_or(0)
    }

    #[test]
    fn mip1_mimic_reordering_potential() {
        // The scrambled family structure must be recoverable: identical
        // row patterns exist.
        let m = by_name("mip1").unwrap();
        let g: Csr<f32> = m.generate(0.01);
        let mut patterns: Vec<Vec<usize>> =
            (0..g.nrows()).map(|r| g.row_cols(r).to_vec()).collect();
        patterns.sort();
        let dup = patterns
            .windows(2)
            .filter(|w| w[0] == w[1] && !w[0].is_empty())
            .count();
        assert!(
            dup > g.nrows() / 4,
            "families should yield duplicate patterns: {dup} of {}",
            g.nrows()
        );
    }
}
