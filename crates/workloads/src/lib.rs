//! # smat-workloads
//!
//! Deterministic workload generators for the SMaT reproduction:
//!
//! * [`generators`] — band matrices (the §VI-C synthetic sweep), uniform
//!   random, RMAT power-law, 2D Poisson stencils, FEM dof-block meshes, and
//!   dense right-hand sides;
//! * [`suitesparse`] — structural mimics of the nine Table I matrices,
//!   scaled by a single parameter;
//! * [`values`] — the small-integer value scheme that keeps every kernel
//!   bit-exact against the f64 reference in every supported precision;
//! * [`trace`] — deterministic Zipf-popularity request traces for the
//!   `smat-serve` engine.
//!
//! Everything is seeded and reproducible; no generator touches the network
//! or the filesystem.

#![forbid(unsafe_code)]

pub mod generators;
pub mod suitesparse;
pub mod trace;
pub mod values;

pub use generators::{
    band, band_nnz, calibration_bands, dense_b, mesh2d, mesh3d, mesh_fem, random_uniform, rmat,
    rmat_with_probs, scramble_rows,
};
pub use suitesparse::{by_name, table1, Mimic, MimicKind};
pub use trace::{mutation_trace, serve_trace, TraceMutation, TraceRequest, TraceSpec};
