//! Deterministic interleaving model checker: a mini-loom.
//!
//! [`check`] runs a closure (the *model body*) many times. Inside a model
//! execution, every checked primitive (lock acquire, condvar wait/notify,
//! checked atomic op, [`spawn`], [`JoinHandle::join`]) becomes a
//! *scheduling point*: the thread pauses and an explorer decides which
//! model thread performs its next operation. Exactly one model thread is
//! logically running at any time, so an execution is fully determined by
//! the sequence of choices — a *schedule* — and the explorer can
//! DFS-enumerate schedules by replaying a decision prefix and branching
//! on the last choice that still has untried alternatives.
//!
//! Exploration is bounded two ways, both logged in the [`Report`]:
//! a **preemption bound** (schedules that switch away from a still-
//! runnable thread more than `max_preemptions` times are pruned — the
//! classic CHESS result is that real protocol bugs show up with very few
//! preemptions), and a **schedule budget** (`max_schedules` DFS
//! executions). If the budget is hit before the bounded space is
//! exhausted, a seeded **random-walk fallback** samples `random_walks`
//! further schedules with the preemption bound lifted, and the report
//! carries a `C008` note stating the truncation.
//!
//! Detected failures: a schedule in which every live thread is blocked
//! (`C005` deadlock, or `C006` lost wakeup when every blocked thread is
//! parked on a condvar), and a panic inside the body — i.e. a violated
//! protocol invariant — under some schedule (`C007`).
//!
//! Model discipline: the body must route all cross-thread state through
//! checked primitives, create those primitives inside the body, use
//! [`spawn`]/[`JoinHandle::join`] instead of `std::thread`, and be
//! deterministic apart from scheduling. Checked atomics are explored
//! with sequentially consistent semantics (weaker orderings are modeled
//! as SeqCst — relaxed-memory reorderings are out of scope).

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use smat_diag::{DiagCode, Diagnostic, Location};

use crate::ACTIVE;

/// Hard per-execution operation limit: a guard against accidental
/// spin loops in model bodies, reported as a C007 finding when hit.
const STEP_LIMIT: usize = 50_000;

/// Bounds and identity of one model-checking run.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Name of the protocol under test (appears in findings and logs).
    pub name: &'static str,
    /// Preemption bound for the DFS phase: schedules that switch away
    /// from a still-runnable thread more than this many times are pruned.
    pub max_preemptions: usize,
    /// DFS schedule budget. When hit before exhaustion, the random-walk
    /// fallback runs and the report carries a C008 truncation note.
    pub max_schedules: usize,
    /// Number of seeded random-walk schedules after a truncated DFS
    /// (explored with the preemption bound lifted).
    pub random_walks: usize,
    /// Seed for the random-walk fallback.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            name: "model",
            max_preemptions: 2,
            max_schedules: 4096,
            random_walks: 64,
            seed: 0x5eed_c0de,
        }
    }
}

impl Config {
    /// A default-bounded config named after the protocol under test.
    pub fn named(name: &'static str) -> Self {
        Config {
            name,
            ..Config::default()
        }
    }
}

/// Outcome of a model-checking run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Protocol name from the [`Config`].
    pub name: &'static str,
    /// Total executions performed (DFS + random walks).
    pub schedules: usize,
    /// Whether the preemption-bounded schedule space was exhausted.
    pub exhausted: bool,
    /// Longest schedule (in scheduling points) seen.
    pub max_depth: usize,
    /// Findings: C005/C006/C007 failures (exploration stops at the first
    /// one) plus a C008 note when the DFS budget truncated exploration.
    pub findings: Vec<Diagnostic>,
}

impl Report {
    /// Whether the run found no error-severity failures (a C008
    /// truncation note does not count as a failure).
    pub fn is_clean(&self) -> bool {
        self.findings.iter().all(|d| !d.is_error())
    }

    /// One-line human summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "model `{}`: {} schedules, {}, max depth {}, {} finding(s)",
            self.name,
            self.schedules,
            if self.exhausted {
                "exhausted (within preemption bound)".to_string()
            } else {
                "budget-truncated".to_string()
            },
            self.max_depth,
            self.findings.len()
        )
    }
}

// ---------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TState {
    Runnable,
    BlockedLock(usize),
    BlockedCv(usize),
    BlockedJoin(usize),
    Finished,
}

#[derive(Clone, Debug)]
struct ChoiceRec {
    /// Index into the enabled list that was taken.
    chosen: usize,
    /// Size of the enabled list at this point.
    enabled_len: usize,
    /// Position of the previously running thread in the enabled list
    /// (`None` when it was blocked/finished — a forced switch).
    cur_pos: Option<usize>,
    /// Preemptions spent on the schedule before this choice.
    preemptions_before: usize,
    /// Thread id the choice handed control to (for failure messages).
    chosen_tid: usize,
}

#[derive(Clone, Debug)]
enum Failure {
    Deadlock {
        all_cv: bool,
        desc: String,
        thread: usize,
    },
    Panic {
        msg: String,
        thread: usize,
    },
}

#[derive(Clone, Copy)]
enum Mode {
    /// Replay `prefix`, then take the first bound-allowed choice.
    Dfs,
    /// Seeded random choice among bound-allowed alternatives.
    Random(u64),
}

struct LockSt {
    owner: Option<usize>,
    label: &'static str,
}

struct CvSt {
    waiters: Vec<usize>,
    label: &'static str,
}

struct ExecState {
    threads: Vec<TState>,
    current: usize,
    live: usize,
    locks: Vec<LockSt>,
    cvs: Vec<CvSt>,
    prefix: Vec<usize>,
    pos: usize,
    trace: Vec<ChoiceRec>,
    preemptions: usize,
    bound: usize,
    mode: Mode,
    rng: u64,
    steps: usize,
    failure: Option<Failure>,
    aborting: bool,
}

struct Exec {
    st: Mutex<ExecState>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    epoch: u64,
}

/// Payload used to unwind model threads once the execution is over
/// (deadlock detected, or another thread failed). Caught quietly by the
/// per-thread wrapper.
struct ModelAbort;

#[derive(Clone)]
struct Ctx {
    exec: Arc<Exec>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Whether the calling thread is a model thread of an active execution.
pub fn in_model() -> bool {
    ACTIVE.load(Ordering::Relaxed) >= 2 && CTX.with(|c| c.borrow().is_some())
}

static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Per-primitive model identity: an execution-local slot index plus the
/// epoch of the execution that assigned it (primitives must be created
/// inside the model body; the epoch guards against stale reuse).
pub(crate) struct ModelSlot {
    id: AtomicUsize,
    epoch: AtomicU64,
}

impl ModelSlot {
    pub(crate) const fn new() -> Self {
        ModelSlot {
            id: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
        }
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Scheduler core
// ---------------------------------------------------------------------

fn enabled_list(st: &ExecState) -> Vec<usize> {
    st.threads
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, TState::Runnable))
        .map(|(t, _)| t)
        .collect()
}

/// Chooses the next thread to run and transfers logical control to it.
/// `me` is the thread making the choice (the logically current one);
/// `me_runnable` is false when `me` just blocked or finished.
fn pick_and_transfer(exec: &Exec, st: &mut ExecState, me: usize) -> bool {
    let enabled = enabled_list(st);
    if enabled.is_empty() {
        if st.live > 0 && st.failure.is_none() {
            let mut kinds = Vec::new();
            let mut all_cv = true;
            let mut first = 0;
            for (t, s) in st.threads.iter().enumerate() {
                match s {
                    TState::BlockedLock(l) => {
                        all_cv = false;
                        if kinds.is_empty() {
                            first = t;
                        }
                        kinds.push(format!("t{t} blocked on lock `{}`", st.locks[*l].label));
                    }
                    TState::BlockedCv(c) => {
                        if kinds.is_empty() {
                            first = t;
                        }
                        kinds.push(format!("t{t} waiting on condvar `{}`", st.cvs[*c].label));
                    }
                    TState::BlockedJoin(j) => {
                        all_cv = false;
                        if kinds.is_empty() {
                            first = t;
                        }
                        kinds.push(format!("t{t} joining t{j}"));
                    }
                    TState::Runnable | TState::Finished => {}
                }
            }
            st.failure = Some(Failure::Deadlock {
                all_cv,
                desc: kinds.join("; "),
                thread: first,
            });
        }
        abort(exec, st);
        return false;
    }
    let cur_pos = enabled.iter().position(|&t| t == me);
    let allowed = |c: usize| -> bool {
        let preempt = cur_pos.is_some() && Some(c) != cur_pos;
        st.preemptions + usize::from(preempt) <= st.bound
    };
    let c = if st.pos < st.prefix.len() {
        st.prefix[st.pos].min(enabled.len() - 1)
    } else {
        match st.mode {
            Mode::Dfs => (0..enabled.len())
                .find(|&c| allowed(c))
                .unwrap_or_else(|| cur_pos.unwrap_or(0)),
            Mode::Random(_) => {
                let candidates: Vec<usize> = (0..enabled.len()).filter(|&c| allowed(c)).collect();
                let pick = splitmix(&mut st.rng) as usize % candidates.len().max(1);
                *candidates.get(pick).unwrap_or(&0)
            }
        }
    };
    let preempt = cur_pos.is_some() && Some(c) != cur_pos;
    st.trace.push(ChoiceRec {
        chosen: c,
        enabled_len: enabled.len(),
        cur_pos,
        preemptions_before: st.preemptions,
        chosen_tid: enabled[c],
    });
    st.pos += 1;
    if preempt {
        st.preemptions += 1;
    }
    st.current = enabled[c];
    if st.current != me {
        exec.cv.notify_all();
    }
    true
}

fn abort(exec: &Exec, st: &mut ExecState) {
    st.aborting = true;
    exec.cv.notify_all();
}

/// A scheduling point: pause, let the explorer choose who runs next, and
/// return once this thread is (re-)scheduled. Skipped while the thread
/// is unwinding (guard drops during a panic must not re-enter the
/// scheduler).
fn sched_point(c: &Ctx) {
    if std::thread::panicking() {
        return;
    }
    let exec = &*c.exec;
    let mut st = exec.st.lock().unwrap();
    st.steps += 1;
    if st.steps > STEP_LIMIT && st.failure.is_none() {
        st.failure = Some(Failure::Panic {
            msg: format!("execution exceeded the {STEP_LIMIT}-operation step limit"),
            thread: c.tid,
        });
        abort(exec, &mut st);
    }
    if !st.aborting && st.current == c.tid {
        pick_and_transfer(exec, &mut st, c.tid);
    }
    loop {
        if st.aborting {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        if st.current == c.tid && matches!(st.threads[c.tid], TState::Runnable) {
            return;
        }
        st = exec.cv.wait(st).unwrap();
    }
}

/// Blocks the calling thread with `state`, hands control to another
/// thread (detecting deadlock if none is runnable), and returns once a
/// wakeup made this thread runnable and the explorer scheduled it.
fn block_me(c: &Ctx, state: TState) {
    let exec = &*c.exec;
    let mut st = exec.st.lock().unwrap();
    st.threads[c.tid] = state;
    if !st.aborting {
        pick_and_transfer(exec, &mut st, c.tid);
    }
    loop {
        if st.aborting {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        if st.current == c.tid && matches!(st.threads[c.tid], TState::Runnable) {
            return;
        }
        st = exec.cv.wait(st).unwrap();
    }
}

fn ensure_lock(st: &mut ExecState, exec: &Exec, slot: &ModelSlot, label: &'static str) -> usize {
    if slot.epoch.load(Ordering::Relaxed) == exec.epoch {
        return slot.id.load(Ordering::Relaxed);
    }
    st.locks.push(LockSt { owner: None, label });
    let id = st.locks.len() - 1;
    slot.id.store(id, Ordering::Relaxed);
    slot.epoch.store(exec.epoch, Ordering::Relaxed);
    id
}

fn ensure_cv(st: &mut ExecState, exec: &Exec, slot: &ModelSlot, label: &'static str) -> usize {
    if slot.epoch.load(Ordering::Relaxed) == exec.epoch {
        return slot.id.load(Ordering::Relaxed);
    }
    st.cvs.push(CvSt {
        waiters: Vec::new(),
        label,
    });
    let id = st.cvs.len() - 1;
    slot.id.store(id, Ordering::Relaxed);
    slot.epoch.store(exec.epoch, Ordering::Relaxed);
    id
}

// ---------------------------------------------------------------------
// Operations called by the checked primitives (crate::sync)
// ---------------------------------------------------------------------

/// Model-acquires a mutex for the calling model thread, blocking (in
/// model time) while another model thread owns it.
pub(crate) fn mutex_lock(slot: &ModelSlot, label: &'static str) {
    let Some(c) = ctx() else { return };
    loop {
        sched_point(&c);
        let mut st = c.exec.st.lock().unwrap();
        let id = ensure_lock(&mut st, &c.exec, slot, label);
        match st.locks[id].owner {
            None => {
                st.locks[id].owner = Some(c.tid);
                return;
            }
            Some(owner) if owner == c.tid => {
                // Self-deadlock: block on our own lock; the deadlock
                // detector reports it (C005) once nothing else can run.
            }
            Some(_) => {}
        }
        drop(st);
        block_me(&c, TState::BlockedLock(slot.id.load(Ordering::Relaxed)));
    }
}

/// Model-releases a mutex, waking model threads blocked on it. Never
/// blocks (safe to call from guard drops during unwinding).
pub(crate) fn mutex_unlock(slot: &ModelSlot) {
    let Some(c) = ctx() else { return };
    let mut st = c.exec.st.lock().unwrap();
    if slot.epoch.load(Ordering::Relaxed) != c.exec.epoch {
        return;
    }
    let id = slot.id.load(Ordering::Relaxed);
    if st.locks[id].owner == Some(c.tid) {
        st.locks[id].owner = None;
        for t in 0..st.threads.len() {
            if st.threads[t] == TState::BlockedLock(id) {
                st.threads[t] = TState::Runnable;
            }
        }
    }
}

/// Model condvar wait: atomically releases the (model) mutex, parks the
/// calling thread on the condvar, and re-acquires the mutex after a
/// wakeup. No spurious wakeups in model time.
pub(crate) fn cv_wait(
    cv_slot: &ModelSlot,
    cv_label: &'static str,
    mutex_slot: &ModelSlot,
    mutex_label: &'static str,
) {
    let Some(c) = ctx() else { return };
    sched_point(&c);
    {
        let mut st = c.exec.st.lock().unwrap();
        let cvid = ensure_cv(&mut st, &c.exec, cv_slot, cv_label);
        let mid = ensure_lock(&mut st, &c.exec, mutex_slot, mutex_label);
        // Release the mutex and park, as one model-atomic step.
        if st.locks[mid].owner == Some(c.tid) {
            st.locks[mid].owner = None;
            for t in 0..st.threads.len() {
                if st.threads[t] == TState::BlockedLock(mid) {
                    st.threads[t] = TState::Runnable;
                }
            }
        }
        st.cvs[cvid].waiters.push(c.tid);
        drop(st);
        block_me(&c, TState::BlockedCv(cvid));
    }
    mutex_lock(mutex_slot, mutex_label);
}

/// Model condvar notify. `all` wakes every parked waiter, otherwise the
/// longest-parked one. A notify with no waiters is lost (real condvar
/// semantics — this is exactly what makes lost wakeups detectable).
/// The scheduling point before the notify lets a waiter park in between
/// a state change and the signal; the notify itself never blocks.
pub(crate) fn cv_notify(slot: &ModelSlot, label: &'static str, all: bool) {
    let Some(c) = ctx() else { return };
    sched_point(&c);
    let mut st = c.exec.st.lock().unwrap();
    let id = ensure_cv(&mut st, &c.exec, slot, label);
    let waiters = if all {
        std::mem::take(&mut st.cvs[id].waiters)
    } else if st.cvs[id].waiters.is_empty() {
        Vec::new()
    } else {
        vec![st.cvs[id].waiters.remove(0)]
    };
    for w in waiters {
        if st.threads[w] == TState::BlockedCv(id) {
            st.threads[w] = TState::Runnable;
        }
    }
}

/// Scheduling point wrapped around every checked atomic operation.
pub(crate) fn atomic_point() {
    if let Some(c) = ctx() {
        sched_point(&c);
    }
}

/// An explicit scheduling point; outside a model execution it is a
/// plain `std::thread::yield_now`.
pub fn yield_now() {
    match ctx() {
        Some(c) => sched_point(&c),
        None => std::thread::yield_now(),
    }
}

// ---------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------

/// Handle to a model thread, returned by [`spawn`].
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Waits (in model time) for the thread to finish and returns its
    /// value.
    pub fn join(self) -> T {
        let c = ctx().expect("JoinHandle::join outside a model execution");
        loop {
            sched_point(&c);
            let st = c.exec.st.lock().unwrap();
            if matches!(st.threads[self.tid], TState::Finished) {
                break;
            }
            drop(st);
            block_me(&c, TState::BlockedJoin(self.tid));
        }
        let out = self.result.lock().unwrap().take();
        match out {
            Some(v) => v,
            // The joined thread panicked; the execution is aborting.
            None => std::panic::panic_any(ModelAbort),
        }
    }
}

/// Spawns a model thread. Must be called from inside a model body; the
/// new thread starts paused and runs only when the explorer schedules it.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let c = ctx().expect("model::spawn outside a model execution");
    sched_point(&c);
    let tid = {
        let mut st = c.exec.st.lock().unwrap();
        st.threads.push(TState::Runnable);
        st.live += 1;
        st.threads.len() - 1
    };
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let exec = Arc::clone(&c.exec);
    let h = std::thread::Builder::new()
        .name(format!("model-t{tid}"))
        .spawn(move || thread_main(exec, tid, move || *slot.lock().unwrap() = Some(f())))
        .expect("spawn model OS thread");
    c.exec.handles.lock().unwrap().push(h);
    JoinHandle { tid, result }
}

fn thread_main(exec: Arc<Exec>, tid: usize, f: impl FnOnce()) {
    let c = Ctx {
        exec: Arc::clone(&exec),
        tid,
    };
    CTX.with(|cell| *cell.borrow_mut() = Some(c.clone()));
    // Wait to be logically scheduled for the first time.
    {
        let mut st = exec.st.lock().unwrap();
        loop {
            if st.aborting {
                break;
            }
            if st.current == tid {
                break;
            }
            st = exec.cv.wait(st).unwrap();
        }
    }
    let aborted_early = exec.st.lock().unwrap().aborting;
    let outcome = if aborted_early {
        Err(Box::new(ModelAbort) as Box<dyn std::any::Any + Send>)
    } else {
        catch_unwind(AssertUnwindSafe(f))
    };
    let mut st = exec.st.lock().unwrap();
    st.threads[tid] = TState::Finished;
    st.live -= 1;
    for t in 0..st.threads.len() {
        if st.threads[t] == TState::BlockedJoin(tid) {
            st.threads[t] = TState::Runnable;
        }
    }
    if let Err(payload) = outcome {
        if !payload.is::<ModelAbort>() && st.failure.is_none() {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "model thread panicked".to_string());
            st.failure = Some(Failure::Panic { msg, thread: tid });
        }
        abort(&exec, &mut st);
    }
    if st.live == 0 {
        exec.cv.notify_all();
    } else if !st.aborting && st.current == tid {
        pick_and_transfer(&exec, &mut st, tid);
    }
    drop(st);
    CTX.with(|cell| *cell.borrow_mut() = None);
}

// ---------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------

fn run_one(
    body: &Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<usize>,
    bound: usize,
    mode: Mode,
) -> (Vec<ChoiceRec>, Option<Failure>) {
    let rng = match mode {
        Mode::Random(seed) => seed,
        Mode::Dfs => 0,
    };
    let exec = Arc::new(Exec {
        st: Mutex::new(ExecState {
            threads: vec![TState::Runnable],
            current: 0,
            live: 1,
            locks: Vec::new(),
            cvs: Vec::new(),
            prefix,
            pos: 0,
            trace: Vec::new(),
            preemptions: 0,
            bound,
            mode,
            rng,
            steps: 0,
            failure: None,
            aborting: false,
        }),
        cv: Condvar::new(),
        handles: Mutex::new(Vec::new()),
        epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
    });
    let body = Arc::clone(body);
    let exec2 = Arc::clone(&exec);
    let root = std::thread::Builder::new()
        .name("model-t0".to_string())
        .spawn(move || thread_main(exec2, 0, move || body()))
        .expect("spawn model root thread");
    exec.handles.lock().unwrap().push(root);
    {
        let mut st = exec.st.lock().unwrap();
        while st.live > 0 {
            st = exec.cv.wait(st).unwrap();
        }
    }
    loop {
        let h = exec.handles.lock().unwrap().pop();
        match h {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }
    let st = exec.st.lock().unwrap();
    (st.trace.clone(), st.failure.clone())
}

/// The lexicographically next DFS decision prefix within the preemption
/// bound, or `None` when the bounded space is exhausted.
fn next_prefix(trace: &[ChoiceRec], bound: usize) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        let t = &trace[i];
        for c in t.chosen + 1..t.enabled_len {
            let preempt = t.cur_pos.is_some() && Some(c) != t.cur_pos;
            if t.preemptions_before + usize::from(preempt) <= bound {
                let mut prefix: Vec<usize> = trace[..i].iter().map(|r| r.chosen).collect();
                prefix.push(c);
                return Some(prefix);
            }
        }
    }
    None
}

fn schedule_string(trace: &[ChoiceRec]) -> String {
    let tids: Vec<String> = trace.iter().map(|r| r.chosen_tid.to_string()).collect();
    if tids.len() > 96 {
        format!("{}..(+{})", tids[..96].join(","), tids.len() - 96)
    } else {
        tids.join(",")
    }
}

fn failure_diag(cfg: &Config, f: &Failure, trace: &[ChoiceRec]) -> Diagnostic {
    let sched = schedule_string(trace);
    match f {
        Failure::Deadlock {
            all_cv,
            desc,
            thread,
        } => {
            let code = if *all_cv {
                DiagCode::ModelLostWakeup
            } else {
                DiagCode::ModelDeadlock
            };
            Diagnostic::new(
                code,
                Location::Thread { thread: *thread },
                format!(
                    "model `{}`: {} under schedule [{sched}]: {desc}",
                    cfg.name,
                    if *all_cv {
                        "lost wakeup (every live thread parked on a condvar)"
                    } else {
                        "deadlock (every live thread blocked)"
                    }
                ),
            )
        }
        Failure::Panic { msg, thread } => Diagnostic::new(
            DiagCode::ModelInvariantViolation,
            Location::Thread { thread: *thread },
            format!(
                "model `{}`: invariant violated under schedule [{sched}]: {msg}",
                cfg.name
            ),
        ),
    }
}

struct ActiveGuard;

impl ActiveGuard {
    fn new() -> Self {
        ACTIVE.fetch_add(2, Ordering::Relaxed);
        ActiveGuard
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(2, Ordering::Relaxed);
    }
}

/// Model-checks `body`: DFS-enumerates schedules within the preemption
/// bound (stopping at the first failing schedule), falling back to
/// seeded random walks when the DFS budget is hit first. See the module
/// docs for the discipline `body` must follow.
pub fn check<F>(cfg: Config, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let _active = ActiveGuard::new();
    let mut findings = Vec::new();
    let mut schedules = 0usize;
    let mut max_depth = 0usize;
    let mut exhausted = false;
    let mut prefix = Vec::new();
    loop {
        let (trace, failure) = run_one(&body, prefix.clone(), cfg.max_preemptions, Mode::Dfs);
        schedules += 1;
        max_depth = max_depth.max(trace.len());
        if let Some(f) = failure {
            findings.push(failure_diag(&cfg, &f, &trace));
            break;
        }
        match next_prefix(&trace, cfg.max_preemptions) {
            None => {
                exhausted = true;
                break;
            }
            Some(p) => prefix = p,
        }
        if schedules >= cfg.max_schedules {
            break;
        }
    }
    if !exhausted && findings.is_empty() {
        let mut seed = cfg.seed;
        for _ in 0..cfg.random_walks {
            let walk_seed = splitmix(&mut seed);
            let (trace, failure) = run_one(&body, Vec::new(), usize::MAX, Mode::Random(walk_seed));
            schedules += 1;
            max_depth = max_depth.max(trace.len());
            if let Some(f) = failure {
                findings.push(failure_diag(&cfg, &f, &trace));
                break;
            }
        }
        findings.push(Diagnostic::new(
            DiagCode::ModelExplorationTruncated,
            Location::Whole,
            format!(
                "model `{}`: DFS budget of {} schedules hit before exhausting the \
                 preemption-bounded space (bound {}); sampled {} random walks",
                cfg.name, cfg.max_schedules, cfg.max_preemptions, cfg.random_walks
            ),
        ));
    }
    if smat_trace::enabled() {
        for d in &findings {
            smat_trace::instant(
                d.code.as_str(),
                "sanitize",
                vec![("message", d.message.clone().into())],
            );
        }
        smat_trace::instant(
            "model.check",
            "sanitize",
            vec![
                ("name", cfg.name.into()),
                ("schedules", schedules.into()),
                ("exhausted", u64::from(exhausted).into()),
            ],
        );
    }
    Report {
        name: cfg.name,
        schedules,
        exhausted,
        max_depth,
        findings,
    }
}
