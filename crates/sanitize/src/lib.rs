//! # smat-sanitize
//!
//! Concurrency verification for the serving stack: the same
//! "checked by construction" treatment `smat-analyze` gives data formats,
//! extended to cross-thread protocols. Two engines share one set of
//! checked sync primitives ([`sync::Mutex`], [`sync::RwLock`],
//! [`sync::Condvar`], checked atomics):
//!
//! 1. **Lock-order analysis** ([`lockdep`]): when enabled, every
//!    acquisition records a `held -> acquired` edge into a process-global
//!    lock-order graph; [`report`] runs a Tarjan-SCC cycle detector over
//!    the accumulated graph and emits typed diagnostics (`C001`
//!    lock-order cycle, `C002` condvar wait holding a foreign lock,
//!    `C003` lock held across a park/channel recv, `C004` double
//!    acquire). Findings surface through `smat-diag` and, when tracing is
//!    on, as `smat-trace` instants in the `sanitize` category.
//! 2. **Deterministic interleaving model checking** ([`model`]): a
//!    mini-loom. Inside [`model::check`], the checked primitives stop
//!    going to the OS scheduler and instead yield to an explorer that
//!    DFS-enumerates thread interleavings (bounded-preemption cap with a
//!    seeded random-walk fallback for large state spaces), detecting
//!    reachable deadlocks (`C005`), lost wakeups (`C006`), and invariant
//!    violations asserted inside the model body (`C007`). Truncated
//!    exploration is reported as a `C008` note with the cap.
//!
//! **Cost when disabled.** Both engines are off by default. The only cost
//! a checked primitive adds to `std::sync` then is one relaxed atomic
//! load (the same trick `smat-trace` uses for its disabled path).

#![forbid(unsafe_code)]

pub mod lockdep;
pub mod model;
pub mod sync;

pub use lockdep::{check_park, disable, enable, enabled, report, reset, LockOrderGraph};
pub use model::{check, spawn as model_spawn, Config as ModelConfig, Report as ModelReport};
pub use smat_diag::{DiagCode, Diagnostic, DiagnosticsExt, Location, Severity};

use std::sync::atomic::{AtomicU32, Ordering};

/// Bit 0: lockdep enabled. Bits 1..: count of in-flight model executions
/// (each execution adds 2). One relaxed load answers "is any engine
/// active?" — the entire disabled-mode cost of every checked primitive.
pub(crate) static ACTIVE: AtomicU32 = AtomicU32::new(0);

/// Whether any sanitizer engine (lockdep or a model execution) is active.
/// One relaxed atomic load; the fast path of every checked primitive.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}
