//! Checked sync primitives: drop-in `Mutex`/`RwLock`/`Condvar`/atomics
//! that feed the [`crate::lockdep`] graph when lock-order recording is
//! enabled and yield to the [`crate::model`] explorer inside a model
//! execution.
//!
//! **Disabled cost.** With both engines off, every operation is the
//! underlying `std::sync` operation plus one relaxed atomic load
//! ([`crate::active`]) — the same trick `smat-trace` uses.
//!
//! **Poisoning.** `lock()` is `std`-shaped (returns [`LockResult`]) so
//! call sites choose a policy. [`Mutex::lock_or_recover`] implements the
//! recover policy: take the data despite a poisoned flag. That is only
//! correct when every critical section leaves the data structurally
//! valid at every panic point (document this at each call site).
//! `Condvar::wait` always recovers: a poison observed at wakeup means
//! some other thread panicked while we slept, and the waiter's predicate
//! re-check loop is the validity barrier.

use std::sync::atomic::Ordering;
use std::sync::{LockResult, PoisonError};

use crate::lockdep::{self, LockMeta};
use crate::model::{self, ModelSlot};

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// A checked mutual-exclusion lock wrapping [`std::sync::Mutex`].
pub struct Mutex<T: ?Sized> {
    meta: LockMeta,
    model: ModelSlot,
    label: &'static str,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// An unlabeled checked mutex (shows up as `mutex#<id>` in findings).
    pub const fn new(value: T) -> Self {
        Mutex {
            meta: LockMeta::new(""),
            model: ModelSlot::new(),
            label: "",
            inner: std::sync::Mutex::new(value),
        }
    }

    /// A checked mutex carrying a stable label for diagnostics.
    pub const fn labeled(label: &'static str, value: T) -> Self {
        Mutex {
            meta: LockMeta::new(label),
            model: ModelSlot::new(),
            label,
            inner: std::sync::Mutex::new(value),
        }
    }

    fn wrap<'a>(
        &'a self,
        res: LockResult<std::sync::MutexGuard<'a, T>>,
        tracked: bool,
        model_tracked: bool,
    ) -> LockResult<MutexGuard<'a, T>> {
        let make = |inner| MutexGuard {
            lock: self,
            inner: Some(inner),
            tracked,
            model_tracked,
        };
        match res {
            Ok(g) => Ok(make(g)),
            Err(e) => Err(PoisonError::new(make(e.into_inner()))),
        }
    }

    /// Acquires the lock. `std`-shaped: an [`Err`] carries the guard of a
    /// poisoned mutex (some thread panicked while holding it).
    #[inline]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if crate::active() {
            return self.lock_checked();
        }
        self.wrap(self.inner.lock(), false, false)
    }

    #[cold]
    fn lock_checked(&self) -> LockResult<MutexGuard<'_, T>> {
        if model::in_model() {
            model::mutex_lock(&self.model, self.label);
            // Model ownership held: the real lock is uncontended.
            return self.wrap(self.inner.lock(), false, true);
        }
        if lockdep::enabled() {
            let tracked = lockdep::on_acquire(&self.meta);
            return self.wrap(self.inner.lock(), tracked, false);
        }
        self.wrap(self.inner.lock(), false, false)
    }

    /// Acquires the lock, recovering from poisoning: the guard is handed
    /// out even if a previous holder panicked. Use only where every
    /// critical section keeps the data valid at every panic point — and
    /// say why at the call site.
    #[inline]
    pub fn lock_or_recover(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access through exclusive ownership (no locking, recovers
    /// from poisoning — with `&mut self` no other holder can exist).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").field("label", &self.label).finish()
    }
}

/// Guard of a [`Mutex`]; releases lockdep/model bookkeeping on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    tracked: bool,
    model_tracked: bool,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not neutralized")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not neutralized")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the model/lockdep bookkeeping so a
        // woken model thread finds it free.
        self.inner = None;
        if self.model_tracked {
            model::mutex_unlock(&self.lock.model);
        }
        if self.tracked {
            lockdep::on_release(&self.lock.meta);
        }
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// A checked condition variable wrapping [`std::sync::Condvar`].
pub struct Condvar {
    model: ModelSlot,
    label: &'static str,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// An unlabeled checked condvar.
    pub const fn new() -> Self {
        Condvar::labeled("condvar")
    }

    /// A checked condvar carrying a stable label for diagnostics.
    pub const fn labeled(label: &'static str) -> Self {
        Condvar {
            model: ModelSlot::new(),
            label,
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks on this condvar, releasing `guard`'s mutex while asleep and
    /// re-acquiring it before returning. Recovers from poisoning observed
    /// at wakeup (see the module docs); callers must re-check their
    /// predicate in a loop as with any condvar. When lockdep is recording
    /// and the calling thread holds *another* checked lock, a C002
    /// finding is recorded. In model mode there are no spurious wakeups.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let lock = guard.lock;
        if guard.model_tracked {
            // Neutralize the guard: the model wait releases ownership
            // itself, atomically with parking.
            drop(guard.inner.take());
            guard.model_tracked = false;
            drop(guard);
            model::cv_wait(&self.model, self.label, &lock.model, lock.label);
            let inner = lock.inner.lock().unwrap_or_else(PoisonError::into_inner);
            return MutexGuard {
                lock,
                inner: Some(inner),
                tracked: false,
                model_tracked: true,
            };
        }
        let tracked = guard.tracked;
        if tracked {
            lockdep::on_condvar_wait(&lock.meta);
            // The mutex is released while we sleep but conceptually still
            // ours (we re-own it at return), so the held entry stays; the
            // neutralized guard must not pop it.
            guard.tracked = false;
        }
        let std_guard = guard.inner.take().expect("guard not neutralized");
        drop(guard);
        let res = self.inner.wait(std_guard);
        let inner = res.unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            lock,
            inner: Some(inner),
            tracked,
            model_tracked: false,
        }
    }

    /// Wakes one waiter (the longest-parked one in model mode).
    pub fn notify_one(&self) {
        if crate::active() && model::in_model() {
            model::cv_notify(&self.model, self.label, false);
            return;
        }
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if crate::active() && model::in_model() {
            model::cv_notify(&self.model, self.label, true);
            return;
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar")
            .field("label", &self.label)
            .finish()
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// A checked reader-writer lock wrapping [`std::sync::RwLock`].
///
/// For lock-order purposes read and write acquisitions are the same node
/// (a read-then-write upgrade pattern still deadlocks). In model mode
/// both are modeled as exclusive — conservative, but sound for deadlock
/// detection.
pub struct RwLock<T: ?Sized> {
    meta: LockMeta,
    model: ModelSlot,
    label: &'static str,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// An unlabeled checked rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            meta: LockMeta::new(""),
            model: ModelSlot::new(),
            label: "",
            inner: std::sync::RwLock::new(value),
        }
    }

    /// A checked rwlock carrying a stable label for diagnostics.
    pub const fn labeled(label: &'static str, value: T) -> Self {
        RwLock {
            meta: LockMeta::new(label),
            model: ModelSlot::new(),
            label,
            inner: std::sync::RwLock::new(value),
        }
    }

    fn track(&self) -> (bool, bool) {
        if !crate::active() {
            return (false, false);
        }
        if model::in_model() {
            model::mutex_lock(&self.model, self.label);
            return (false, true);
        }
        if lockdep::enabled() {
            return (lockdep::on_acquire(&self.meta), false);
        }
        (false, false)
    }

    /// Acquires shared read access (`std`-shaped result).
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let (tracked, model_tracked) = self.track();
        let make = |inner| RwLockReadGuard {
            lock: self,
            inner: Some(inner),
            tracked,
            model_tracked,
        };
        match self.inner.read() {
            Ok(g) => Ok(make(g)),
            Err(e) => Err(PoisonError::new(make(e.into_inner()))),
        }
    }

    /// Acquires exclusive write access (`std`-shaped result).
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let (tracked, model_tracked) = self.track();
        let make = |inner| RwLockWriteGuard {
            lock: self,
            inner: Some(inner),
            tracked,
            model_tracked,
        };
        match self.inner.write() {
            Ok(g) => Ok(make(g)),
            Err(e) => Err(PoisonError::new(make(e.into_inner()))),
        }
    }

    /// Read access with the recover-from-poison policy (see
    /// [`Mutex::lock_or_recover`]).
    pub fn read_or_recover(&self) -> RwLockReadGuard<'_, T> {
        self.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Write access with the recover-from-poison policy (see
    /// [`Mutex::lock_or_recover`]).
    pub fn write_or_recover(&self) -> RwLockWriteGuard<'_, T> {
        self.write().unwrap_or_else(PoisonError::into_inner)
    }
}

macro_rules! rw_guard {
    ($name:ident, $std:ident $(, $mut:ident)?) => {
        /// Guard of a [`RwLock`]; releases bookkeeping on drop.
        pub struct $name<'a, T: ?Sized> {
            lock: &'a RwLock<T>,
            inner: Option<std::sync::$std<'a, T>>,
            tracked: bool,
            model_tracked: bool,
        }

        impl<T: ?Sized> std::ops::Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                self.inner.as_ref().expect("guard not neutralized")
            }
        }

        $(impl<T: ?Sized> std::ops::$mut for $name<'_, T> {
            fn deref_mut(&mut self) -> &mut T {
                self.inner.as_mut().expect("guard not neutralized")
            }
        })?

        impl<T: ?Sized> Drop for $name<'_, T> {
            fn drop(&mut self) {
                self.inner = None;
                if self.model_tracked {
                    model::mutex_unlock(&self.lock.model);
                }
                if self.tracked {
                    lockdep::on_release(&self.lock.meta);
                }
            }
        }
    };
}

rw_guard!(RwLockReadGuard, RwLockReadGuard);
rw_guard!(RwLockWriteGuard, RwLockWriteGuard, DerefMut);

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

#[inline]
fn atomic_point() {
    if crate::active() && model::in_model() {
        model::atomic_point();
    }
}

macro_rules! checked_atomic {
    ($name:ident, $std:ident, $ty:ty) => {
        /// A checked atomic: passthrough to the `std` atomic, plus a
        /// scheduling point per operation inside a model execution
        /// (explored with SeqCst semantics there).
        #[derive(Debug, Default)]
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            /// A new atomic holding `value`.
            pub const fn new(value: $ty) -> Self {
                $name {
                    inner: std::sync::atomic::$std::new(value),
                }
            }

            /// Atomic load.
            #[inline]
            pub fn load(&self, order: Ordering) -> $ty {
                atomic_point();
                self.inner.load(order)
            }

            /// Atomic store.
            #[inline]
            pub fn store(&self, value: $ty, order: Ordering) {
                atomic_point();
                self.inner.store(value, order);
            }

            /// Atomic swap, returning the previous value.
            #[inline]
            pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                atomic_point();
                self.inner.swap(value, order)
            }
        }
    };
}

checked_atomic!(AtomicBool, AtomicBool, bool);
checked_atomic!(AtomicU32, AtomicU32, u32);
checked_atomic!(AtomicU64, AtomicU64, u64);
checked_atomic!(AtomicUsize, AtomicUsize, usize);

macro_rules! checked_atomic_arith {
    ($name:ident, $ty:ty) => {
        impl $name {
            /// Atomic add, returning the previous value.
            #[inline]
            pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                atomic_point();
                self.inner.fetch_add(value, order)
            }

            /// Atomic subtract, returning the previous value.
            #[inline]
            pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                atomic_point();
                self.inner.fetch_sub(value, order)
            }

            /// Atomic max, returning the previous value.
            #[inline]
            pub fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                atomic_point();
                self.inner.fetch_max(value, order)
            }
        }
    };
}

checked_atomic_arith!(AtomicU32, u32);
checked_atomic_arith!(AtomicU64, u64);
checked_atomic_arith!(AtomicUsize, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_mode_is_a_plain_mutex() {
        let m = Mutex::labeled("test.plain", 41);
        {
            let mut g = m.lock().unwrap();
            *g += 1;
        }
        assert_eq!(*m.lock_or_recover(), 42);
    }

    #[test]
    fn poisoned_lock_recovers_with_the_documented_policy() {
        let m = std::sync::Arc::new(Mutex::labeled("test.poison", vec![1, 2, 3]));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "mutex should be poisoned");
        assert_eq!(m.lock_or_recover().len(), 3);
    }

    #[test]
    fn condvar_roundtrip_without_engines() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = std::sync::Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock_or_recover();
            *g = true;
            drop(g);
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock_or_recover();
        while !*g {
            g = cv.wait(g);
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::labeled("test.rw", 7);
        assert_eq!(*l.read_or_recover(), 7);
        *l.write_or_recover() = 8;
        assert_eq!(*l.read().unwrap(), 8);
    }

    #[test]
    fn checked_atomics_pass_through() {
        let b = AtomicBool::new(false);
        assert!(!b.swap(true, Ordering::SeqCst));
        assert!(b.load(Ordering::SeqCst));
        let n = AtomicU32::new(1);
        assert_eq!(n.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(n.load(Ordering::SeqCst), 3);
    }
}
