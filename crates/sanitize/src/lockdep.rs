//! Lock-order analysis: a process-global lock-order graph fed by the
//! checked primitives, plus a Tarjan-SCC cycle detector over it.
//!
//! When [`enable`]d, every acquisition of a [`crate::sync::Mutex`] /
//! [`crate::sync::RwLock`] records one `held -> acquired` edge per lock
//! the acquiring thread already holds. The graph accumulates across the
//! whole process (the point: edges from *different* call paths combine,
//! so an AB here and a BA there form a cycle even if no single run
//! deadlocks). [`report`] analyzes the graph and merges runtime findings
//! recorded at the offending call sites:
//!
//! | code | finding |
//! |------|---------|
//! | C001 | lock-order cycle (potential AB-BA deadlock) |
//! | C002 | `Condvar::wait` entered while a different mutex is held |
//! | C003 | park / channel-recv style blocking wait while a lock is held |
//! | C004 | same-thread re-acquisition of a held non-reentrant lock |
//!
//! Everything here intentionally uses raw `std::sync` internals — the
//! engine must not recurse into itself.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use smat_diag::{DiagCode, Diagnostic, Location};

use crate::ACTIVE;

/// Identity a checked lock carries: a lazily assigned id plus a static
/// label. Ids start at 1; 0 means "not yet registered".
pub(crate) struct LockMeta {
    id: AtomicU64,
    label: &'static str,
}

impl LockMeta {
    /// A meta with the given label (empty string = unlabeled).
    pub(crate) const fn new(label: &'static str) -> Self {
        LockMeta {
            id: AtomicU64::new(0),
            label,
        }
    }

    /// The lock's global id, registering it on first use.
    pub(crate) fn id(&self) -> u64 {
        let id = self.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let mut labels = state().labels.lock().unwrap();
        // Re-check under the registry lock so two racing first-acquires
        // agree on one id.
        let id = self.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let fallback = format!("mutex#{}", labels.len() + 1);
        labels.push(if self.label.is_empty() {
            fallback
        } else {
            self.label.to_string()
        });
        let id = labels.len() as u64;
        self.id.store(id, Ordering::Relaxed);
        id
    }
}

/// Dedup keys of recorded runtime findings: `(code string, ids)`.
type RuntimeSeen = BTreeSet<(&'static str, u64, u64)>;

struct State {
    /// Label for id `i` lives at `labels[i - 1]`.
    labels: Mutex<Vec<String>>,
    /// `held -> acquired` edges with one example description each.
    edges: Mutex<BTreeMap<(u64, u64), String>>,
    /// C002–C004 findings recorded at the offending call sites,
    /// deduplicated by `(code string, ids)`.
    runtime: Mutex<(RuntimeSeen, Vec<Diagnostic>)>,
}

fn state() -> &'static State {
    static STATE: OnceLock<State> = OnceLock::new();
    STATE.get_or_init(|| State {
        labels: Mutex::new(Vec::new()),
        edges: Mutex::new(BTreeMap::new()),
        runtime: Mutex::new((BTreeSet::new(), Vec::new())),
    })
}

thread_local! {
    /// Ids of the locks this thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn label_of(id: u64) -> String {
    state()
        .labels
        .lock()
        .unwrap()
        .get((id - 1) as usize)
        .cloned()
        .unwrap_or_else(|| format!("mutex#{id}"))
}

fn push_runtime(code: DiagCode, a: u64, b: u64, diag: impl FnOnce() -> Diagnostic) {
    let mut rt = state().runtime.lock().unwrap();
    if rt.0.insert((code.as_str(), a, b)) {
        let d = diag();
        emit_trace(&d);
        rt.1.push(d);
    }
}

fn emit_trace(d: &Diagnostic) {
    if smat_trace::enabled() {
        smat_trace::instant(
            d.code.as_str(),
            "sanitize",
            vec![("message", d.message.clone().into())],
        );
    }
}

/// Whether lock-order recording is on (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) & 1 != 0
}

/// Turns lock-order recording on. The graph keeps accumulating across
/// enable/disable cycles until [`reset`].
pub fn enable() {
    ACTIVE.fetch_or(1, Ordering::Relaxed);
}

/// Turns lock-order recording off. Held-lock bookkeeping for guards
/// acquired while enabled still unwinds correctly on drop.
pub fn disable() {
    ACTIVE.fetch_and(!1, Ordering::Relaxed);
}

/// Clears the accumulated graph and runtime findings (labels and ids
/// persist — a lock keeps its identity for the process lifetime).
pub fn reset() {
    state().edges.lock().unwrap().clear();
    let mut rt = state().runtime.lock().unwrap();
    rt.0.clear();
    rt.1.clear();
}

/// Records an acquisition of `meta` by the current thread: one
/// `held -> acquired` edge per already-held lock, a C004 finding on
/// re-acquisition. Returns `true` (the guard must call [`on_release`]).
pub(crate) fn on_acquire(meta: &LockMeta) -> bool {
    let id = meta.id();
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if held.contains(&id) {
            push_runtime(DiagCode::DoubleAcquire, id, id, || {
                Diagnostic::new(
                    DiagCode::DoubleAcquire,
                    Location::Lock { name: label_of(id) },
                    format!(
                        "thread re-acquired `{}` while already holding it \
                         (non-reentrant lock: self-deadlock)",
                        label_of(id)
                    ),
                )
            });
        } else {
            let mut edges = state().edges.lock().unwrap();
            for &h in held.iter() {
                edges
                    .entry((h, id))
                    .or_insert_with(|| format!("{} -> {}", label_of(h), label_of(id)));
            }
        }
        held.push(id);
    });
    true
}

/// Unwinds the held-stack entry pushed by [`on_acquire`] (guards may drop
/// out of acquisition order, so this removes by id, not by popping).
pub(crate) fn on_release(meta: &LockMeta) {
    let id = meta.id.load(Ordering::Relaxed);
    if id == 0 {
        return;
    }
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&h| h == id) {
            held.remove(pos);
        }
    });
}

/// Called by `Condvar::wait` with the id of the mutex the guard releases:
/// any *other* held lock stays held across the sleep — C002.
pub(crate) fn on_condvar_wait(guard_meta: &LockMeta) {
    let guard_id = guard_meta.id();
    HELD.with(|held| {
        for &h in held.borrow().iter() {
            if h != guard_id {
                push_runtime(DiagCode::CondvarWaitHoldingLock, guard_id, h, || {
                    Diagnostic::new(
                        DiagCode::CondvarWaitHoldingLock,
                        Location::Lock { name: label_of(h) },
                        format!(
                            "Condvar::wait releases `{}` but the thread still \
                             holds `{}` across the sleep",
                            label_of(guard_id),
                            label_of(h)
                        ),
                    )
                });
            }
        }
    });
}

/// Checkpoint for blocking waits that are not a condvar on the held mutex
/// (thread park, oneshot receive, channel recv): holding any checked lock
/// here risks deadlocking the thread meant to wake us — C003.
///
/// Call at the entry of the blocking operation, before taking any lock
/// that the wakeup path also takes. `what` names the wait site.
pub fn check_park(what: &'static str) {
    if !enabled() {
        return;
    }
    HELD.with(|held| {
        for &h in held.borrow().iter() {
            push_runtime(DiagCode::LockHeldAcrossPark, h, 0, || {
                Diagnostic::new(
                    DiagCode::LockHeldAcrossPark,
                    Location::Lock { name: label_of(h) },
                    format!("`{what}` blocks while `{}` is held", label_of(h)),
                )
            });
        }
    });
}

/// Analyzes the accumulated lock-order graph and returns every finding:
/// C001 cycles from Tarjan SCC over the edges, plus the C002–C004
/// runtime findings recorded at their call sites. Does not clear state;
/// calling twice returns the same findings (use [`reset`] between runs).
pub fn report() -> Vec<Diagnostic> {
    let labels = state().labels.lock().unwrap().clone();
    let edges: Vec<(u64, u64)> = state().edges.lock().unwrap().keys().copied().collect();
    let mut graph = LockOrderGraph::new();
    for label in &labels {
        graph.add_node(label.clone());
    }
    for (a, b) in edges {
        graph.add_edge((a - 1) as usize, (b - 1) as usize);
    }
    let mut out = graph.analyze();
    for d in &out {
        emit_trace(d);
    }
    out.extend(state().runtime.lock().unwrap().1.iter().cloned());
    out
}

/// A standalone lock-order graph: the same cycle analysis [`report`] runs
/// on the process-global graph, usable on synthetic graphs (fixtures,
/// property tests) without touching global state.
#[derive(Clone, Debug, Default)]
pub struct LockOrderGraph {
    labels: Vec<String>,
    edges: BTreeSet<(usize, usize)>,
}

impl LockOrderGraph {
    /// An empty graph.
    pub fn new() -> Self {
        LockOrderGraph::default()
    }

    /// Adds a lock node and returns its index.
    pub fn add_node(&mut self, label: impl Into<String>) -> usize {
        self.labels.push(label.into());
        self.labels.len() - 1
    }

    /// Records that some thread acquired `b` while holding `a`.
    /// Out-of-range indices are clamped into existence with synthetic
    /// labels so fixture mutation can't panic the analyzer.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        let max = a.max(b);
        while self.labels.len() <= max {
            self.labels.push(format!("mutex#{}", self.labels.len() + 1));
        }
        self.edges.insert((a, b));
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Runs the cycle analysis: one C001 per strongly connected component
    /// with ≥ 2 locks (reported with a concrete cycle through it), one
    /// C004 per self-edge.
    pub fn analyze(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for &(a, b) in &self.edges {
            if a == b {
                out.push(Diagnostic::new(
                    DiagCode::DoubleAcquire,
                    Location::Lock {
                        name: self.labels[a].clone(),
                    },
                    format!(
                        "`{}` acquired while already held (self-edge in the \
                         lock-order graph)",
                        self.labels[a]
                    ),
                ));
            }
        }
        for scc in self.tarjan() {
            if scc.len() < 2 {
                continue;
            }
            let cycle = self.concrete_cycle(&scc);
            let path = cycle
                .iter()
                .map(|&n| self.labels[n].as_str())
                .collect::<Vec<_>>()
                .join(" -> ");
            out.push(Diagnostic::new(
                DiagCode::LockOrderCycle,
                Location::Lock {
                    name: self.labels[scc[0]].clone(),
                },
                format!(
                    "locks acquired in contradicting orders (potential AB-BA \
                     deadlock): {path} -> {}",
                    self.labels[cycle[0]]
                ),
            ));
        }
        out
    }

    /// Tarjan's SCC algorithm (iterative), components in deterministic
    /// order (sorted by smallest member).
    fn tarjan(&self) -> Vec<Vec<usize>> {
        let n = self.labels.len();
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            if a != b {
                adj[a].push(b);
            }
        }
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<usize>> = Vec::new();
        // Explicit DFS frames: (node, next child position).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            frames.push((root, 0));
            while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
                if *ci == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = adj[v].get(*ci) {
                    *ci += 1;
                    if index[w] == usize::MAX {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut scc = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        scc.sort_unstable();
                        sccs.push(scc);
                    }
                }
            }
        }
        sccs.sort_by_key(|scc| scc[0]);
        sccs
    }

    /// A concrete cycle through an SCC (for the diagnostic message): BFS
    /// from the smallest member back to itself, restricted to the SCC.
    fn concrete_cycle(&self, scc: &[usize]) -> Vec<usize> {
        let members: BTreeSet<usize> = scc.iter().copied().collect();
        let start = scc[0];
        let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for &(a, b) in &self.edges {
                if a != v || !members.contains(&b) {
                    continue;
                }
                if b == start {
                    // Rebuild start -> ... -> v, closing the cycle at start.
                    let mut path = vec![v];
                    let mut cur = v;
                    while cur != start {
                        cur = prev[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return path;
                }
                if b != start && !prev.contains_key(&b) {
                    prev.insert(b, v);
                    queue.push_back(b);
                }
            }
        }
        scc.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_diag::DiagnosticsExt;

    #[test]
    fn acyclic_graph_is_clean() {
        let mut g = LockOrderGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(a, c);
        assert!(g.analyze().is_empty());
    }

    #[test]
    fn ab_ba_cycle_fires_c001_with_both_names() {
        let mut g = LockOrderGraph::new();
        let a = g.add_node("registry.entries");
        let b = g.add_node("slot.waiters");
        g.add_edge(a, b);
        g.add_edge(b, a);
        let diags = g.analyze();
        assert_eq!(diags.codes(), vec![DiagCode::LockOrderCycle]);
        assert!(diags[0].message.contains("registry.entries"));
        assert!(diags[0].message.contains("slot.waiters"));
    }

    #[test]
    fn three_cycle_fires_once() {
        let mut g = LockOrderGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(c, a);
        let diags = g.analyze();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::LockOrderCycle);
    }

    #[test]
    fn self_edge_fires_c004() {
        let mut g = LockOrderGraph::new();
        let a = g.add_node("a");
        g.add_edge(a, a);
        assert_eq!(g.analyze().codes(), vec![DiagCode::DoubleAcquire]);
    }

    #[test]
    fn two_disjoint_cycles_fire_twice() {
        let mut g = LockOrderGraph::new();
        let n: Vec<usize> = (0..4).map(|i| g.add_node(format!("l{i}"))).collect();
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[0]);
        g.add_edge(n[2], n[3]);
        g.add_edge(n[3], n[2]);
        let diags = g.analyze();
        assert_eq!(diags.len(), 2);
    }
}
