//! Regression guard for the disabled-mode cost contract: a checked
//! `sanitize::sync::Mutex` with both engines off must cost the same as a
//! raw `std::sync::Mutex` plus one relaxed atomic load per acquire.
//!
//! Timing asserts are inherently noisy, so this test is deliberately
//! coarse: it compares medians over several trials and only fails when
//! the checked path is a *multiple* of the raw path — which would mean
//! the disabled fast path regressed into taking a lock or walking the
//! held-stack. The fine-grained numbers live in the `serve_engine` bench
//! (`mutex_x10k_std` vs `mutex_x10k_checked_disabled`).

use std::time::Instant;

use smat_sanitize::sync::Mutex;

const OPS: usize = 50_000;
const TRIALS: usize = 9;

fn median_nanos(mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..TRIALS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[TRIALS / 2]
}

#[test]
fn disabled_checked_mutex_is_within_noise_of_std() {
    // Both engines off — the default state; reset() defends against other
    // tests in this binary (there are none today) leaving bits set.
    smat_sanitize::reset();

    let raw = std::sync::Mutex::new(0u64);
    let checked = Mutex::labeled("overhead.checked", 0u64);

    // Interleave warm-up so neither side benefits from cache priming.
    for _ in 0..OPS {
        *raw.lock().unwrap() += 1;
        *checked.lock_or_recover() += 1;
    }

    let raw_ns = median_nanos(|| {
        for _ in 0..OPS {
            *std::hint::black_box(raw.lock().unwrap()) += 1;
        }
    });
    let checked_ns = median_nanos(|| {
        for _ in 0..OPS {
            *std::hint::black_box(checked.lock_or_recover()) += 1;
        }
    });

    // One relaxed load per acquire should land well under 2x even in a
    // debug build; 4x is the "the fast path broke" threshold, chosen so
    // scheduler noise on a loaded CI box cannot fire it spuriously.
    assert!(
        checked_ns < raw_ns.saturating_mul(4),
        "disabled checked mutex took {checked_ns} ns for {OPS} ops vs {raw_ns} ns raw \
         (>{0}x bound) — the disabled fast path has regressed",
        4
    );
}
