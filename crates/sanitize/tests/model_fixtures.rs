//! Proof the two engines work: intentionally buggy fixture protocols
//! that threaded stress tests pass but the analyses must fail.
//!
//! 1. **AB-BA pair** — two locks taken in contradicting orders. The
//!    lock-order engine flags the cycle statically (C001) and the model
//!    checker finds a schedule that actually deadlocks (C005).
//! 2. **Lost-wakeup park variant** — a park/fulfill slot that drains its
//!    waiter list *before* publishing the value (the inverse of the
//!    publish-then-drain order `smat-serve` uses), and a flag+condvar
//!    wait that checks its predicate outside the mutex. The stress tests
//!    pass (the racy window is a few instructions wide), the model
//!    checker fails them (C007 / C006).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use smat_sanitize::sync::{AtomicBool, AtomicU32, Condvar, Mutex};
use smat_sanitize::{model, DiagCode, DiagnosticsExt, ModelConfig};

// ---------------------------------------------------------------------
// Fixture 1: AB-BA lock pair
// ---------------------------------------------------------------------

#[test]
fn lockdep_flags_ab_ba_cycle_as_c001() {
    // A single thread is enough: the graph accumulates `a -> b` from one
    // call path and `b -> a` from another, which is exactly the situation
    // two threads deadlock on.
    smat_sanitize::reset();
    smat_sanitize::enable();
    let a = Mutex::labeled("fixture.lock_a", ());
    let b = Mutex::labeled("fixture.lock_b", ());
    {
        let _ga = a.lock_or_recover();
        let _gb = b.lock_or_recover();
    }
    {
        let _gb = b.lock_or_recover();
        let _ga = a.lock_or_recover();
    }
    smat_sanitize::disable();
    let findings = smat_sanitize::report();
    assert!(
        findings.codes().contains(&DiagCode::LockOrderCycle),
        "expected C001 in {findings:?}"
    );
    let cycle = findings
        .iter()
        .find(|d| d.code == DiagCode::LockOrderCycle)
        .unwrap();
    assert!(
        cycle.message.contains("fixture.lock_a"),
        "{}",
        cycle.message
    );
    assert!(
        cycle.message.contains("fixture.lock_b"),
        "{}",
        cycle.message
    );
    smat_sanitize::reset();
}

#[test]
fn model_detects_ab_ba_deadlock_as_c005() {
    let report = model::check(ModelConfig::named("fixture.ab_ba"), || {
        let a = Arc::new(Mutex::labeled("ab_ba.a", ()));
        let b = Arc::new(Mutex::labeled("ab_ba.b", ()));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = model::spawn(move || {
            let _ga = a1.lock_or_recover();
            let _gb = b1.lock_or_recover();
        });
        let t2 = model::spawn(move || {
            let _gb = b.lock_or_recover();
            let _ga = a.lock_or_recover();
        });
        t1.join();
        t2.join();
    });
    assert!(
        report.findings.codes().contains(&DiagCode::ModelDeadlock),
        "expected C005 in {report:?}"
    );
    assert!(!report.is_clean());
}

// Threaded stress over the same AB-BA pair: passes in practice because
// the first thread usually finishes its two-lock critical section before
// the second even starts — which is why stress tests kept the serve
// protocols looking healthy and a model checker is needed at all.
#[test]
fn stress_rarely_trips_over_ab_ba() {
    for _ in 0..50 {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = std::thread::spawn(move || {
            let _ga = a1.lock_or_recover();
            let _gb = b1.lock_or_recover();
        });
        t1.join().unwrap();
        // Sequenced after t1 to keep the stress test honest *and* hang-
        // free: real schedulers almost never interleave the two-lock
        // window, and when they do the test would deadlock forever.
        let t2 = std::thread::spawn(move || {
            let _gb = b.lock_or_recover();
            let _ga = a.lock_or_recover();
        });
        t2.join().unwrap();
    }
}

// ---------------------------------------------------------------------
// Fixture 2a: lost wakeup (condvar predicate checked outside the mutex)
// ---------------------------------------------------------------------

fn buggy_wait_protocol() {
    let flag = Arc::new(AtomicBool::new(false));
    let pair = Arc::new((Mutex::labeled("lost_wakeup.m", ()), Condvar::new()));
    let (flag2, pair2) = (Arc::clone(&flag), Arc::clone(&pair));
    let waiter = model::spawn(move || {
        // BUG: the predicate is sampled before taking the mutex, and not
        // re-checked under it — the signal can land in between.
        if !flag2.load(Ordering::SeqCst) {
            let (m, cv) = &*pair2;
            let g = m.lock_or_recover();
            let _g = cv.wait(g);
        }
    });
    let signaler = model::spawn(move || {
        flag.store(true, Ordering::SeqCst);
        let (_m, cv) = &*pair;
        cv.notify_all();
    });
    signaler.join();
    // The waiter handle is dropped, not joined: if the wakeup is lost the
    // waiter stays parked forever with nothing left to signal it.
    drop(waiter);
}

#[test]
fn model_detects_lost_wakeup_as_c006() {
    let report = model::check(
        ModelConfig::named("fixture.lost_wakeup"),
        buggy_wait_protocol,
    );
    assert!(
        report.findings.codes().contains(&DiagCode::ModelLostWakeup),
        "expected C006 in {report:?}"
    );
    assert!(!report.is_clean());
}

// ---------------------------------------------------------------------
// Fixture 2b: a park slot that drains before publishing
// ---------------------------------------------------------------------

type BuggyWaiter = Box<dyn FnOnce(u32) + Send>;

/// The buggy variant of serve's park slot: `fulfill` takes the parked
/// waiters *before* publishing the value, so a waiter that parks in
/// between is never drained. The registry's real slot publishes first
/// and drains second, exactly to close this window.
struct BuggyParkSlot {
    value: Mutex<Option<u32>>,
    waiters: Mutex<Vec<BuggyWaiter>>,
}

impl BuggyParkSlot {
    fn new() -> Self {
        BuggyParkSlot {
            value: Mutex::labeled("buggy_slot.value", None),
            waiters: Mutex::labeled("buggy_slot.waiters", Vec::new()),
        }
    }

    fn fulfill(&self, v: u32) {
        // BUG: drain-then-publish. Anyone parking between the take and
        // the publish is lost.
        let ws = std::mem::take(&mut *self.waiters.lock_or_recover());
        *self.value.lock_or_recover() = Some(v);
        for w in ws {
            w(v);
        }
    }

    fn park(&self, f: BuggyWaiter) {
        let mut ws = self.waiters.lock_or_recover();
        let ready = *self.value.lock_or_recover();
        match ready {
            Some(v) => {
                drop(ws);
                f(v);
            }
            None => ws.push(f),
        }
    }
}

#[test]
fn model_detects_dropped_waiter_as_c007() {
    let report = model::check(ModelConfig::named("fixture.buggy_park"), || {
        let slot = Arc::new(BuggyParkSlot::new());
        let delivered = Arc::new(AtomicU32::new(0));
        let (s2, d2) = (Arc::clone(&slot), Arc::clone(&delivered));
        let parker = model::spawn(move || {
            let d = Arc::clone(&d2);
            s2.park(Box::new(move |v| {
                assert_eq!(v, 7);
                d.fetch_add(1, Ordering::SeqCst);
            }));
        });
        let fulfiller = model::spawn(move || slot.fulfill(7));
        parker.join();
        fulfiller.join();
        assert_eq!(
            delivered.load(Ordering::SeqCst),
            1,
            "parked waiter was dropped without being served"
        );
    });
    assert!(
        report
            .findings
            .codes()
            .contains(&DiagCode::ModelInvariantViolation),
        "expected C007 in {report:?}"
    );
}

// The same protocol under a threaded stress loop: passes, because the
// racy window (between the waiter take and the value publish) is a few
// instructions wide. This is the test suite the serve protocols had
// before this crate — green and blind.
#[test]
fn stress_passes_the_buggy_park_slot() {
    for _ in 0..50 {
        let slot = Arc::new(BuggyParkSlot::new());
        let delivered = Arc::new(AtomicU32::new(0));
        let (s2, d2) = (Arc::clone(&slot), Arc::clone(&delivered));
        let parker = std::thread::spawn(move || {
            let d = Arc::clone(&d2);
            s2.park(Box::new(move |v| {
                assert_eq!(v, 7);
                d.fetch_add(1, Ordering::SeqCst);
            }));
        });
        parker.join().unwrap();
        // Parker fully parked (or served) before fulfill starts: both
        // orders the OS scheduler actually produces are safe.
        let fulfiller = std::thread::spawn(move || slot.fulfill(7));
        fulfiller.join().unwrap();
        assert_eq!(delivered.load(Ordering::SeqCst), 1);
    }
}

// ---------------------------------------------------------------------
// Clean protocols: the checker must NOT cry wolf
// ---------------------------------------------------------------------

#[test]
fn clean_wait_protocol_is_exhausted_with_zero_findings() {
    let report = model::check(ModelConfig::named("fixture.clean_wait"), || {
        let pair = Arc::new((Mutex::labeled("clean.m", false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = model::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock_or_recover();
            while !*g {
                g = cv.wait(g);
            }
        });
        let signaler = model::spawn(move || {
            let (m, cv) = &*pair;
            *m.lock_or_recover() = true;
            cv.notify_all();
        });
        waiter.join();
        signaler.join();
    });
    assert!(report.findings.is_empty(), "{report:?}");
    assert!(report.exhausted, "{}", report.summary());
    assert!(report.schedules > 1, "{}", report.summary());
}

#[test]
fn racy_read_modify_write_is_caught_as_c007() {
    let report = model::check(ModelConfig::named("fixture.rmw"), || {
        let n = Arc::new(Mutex::labeled("rmw.n", 0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                model::spawn(move || {
                    let v = *n.lock_or_recover();
                    // Scheduling point between read and write: the other
                    // thread's increment can be lost here.
                    model::yield_now();
                    *n.lock_or_recover() = v + 1;
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(*n.lock_or_recover(), 2, "lost update");
    });
    assert!(
        report
            .findings
            .codes()
            .contains(&DiagCode::ModelInvariantViolation),
        "expected C007 in {report:?}"
    );
}

#[test]
fn truncated_exploration_carries_a_c008_note_and_stays_clean() {
    let cfg = ModelConfig {
        max_schedules: 2,
        random_walks: 3,
        ..ModelConfig::named("fixture.truncated")
    };
    let report = model::check(cfg, || {
        let n = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let n = Arc::clone(&n);
                model::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(n.load(Ordering::SeqCst), 3);
    });
    assert!(!report.exhausted);
    assert!(
        report
            .findings
            .codes()
            .contains(&DiagCode::ModelExplorationTruncated),
        "expected C008 note in {report:?}"
    );
    // A truncation note is not a failure.
    assert!(report.is_clean(), "{report:?}");
    assert!(report.schedules >= 2 + 3, "{}", report.summary());
}

#[test]
fn double_acquire_self_deadlocks_under_the_model() {
    let report = model::check(ModelConfig::named("fixture.double_acquire"), || {
        let m = Arc::new(Mutex::labeled("double.m", ()));
        let g1 = m.lock_or_recover();
        let _g2 = m.lock_or_recover();
        drop(g1);
    });
    assert!(
        report.findings.codes().contains(&DiagCode::ModelDeadlock),
        "expected C005 in {report:?}"
    );
}
