//! # smat-diag
//!
//! The typed-diagnostic core shared by every static-analysis pass in the
//! workspace: the format verifiers (`smat-formats`/`smat-analyze`), the
//! kernel-schedule hazard analyzer (`smat-analyze`), and the pipeline
//! pre-flight hook (`smat`).
//!
//! A [`Diagnostic`] is a machine-readable finding: a stable [`DiagCode`]
//! (`F###` for format invariants, `S###` for schedule hazards, `C###` for
//! concurrency findings from `smat-sanitize`), a [`Severity`], a structured
//! [`Location`], and a human-readable message.
//! Diagnostics serialize to JSON through the workspace serde shim so tools
//! can consume `--format json` output of the analyzer CLI.

#![forbid(unsafe_code)]

use serde::Serialize;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Informational: worth reporting, never blocks anything.
    Note,
    /// Suspicious but executable: the launch can run, likely slower or with
    /// higher risk than intended (e.g. bank-conflicted smem layout).
    Warning,
    /// A violated invariant: executing would compute garbage, panic, or
    /// exceed a hard device limit. Pre-flight rejects on any error.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes.
///
/// `F###` codes are structural/format invariants; `S###` codes are
/// kernel-schedule hazards; `C###` codes are concurrency findings from the
/// `smat-sanitize` lock-order analysis and interleaving model checker.
/// Codes are append-only: once published, a code keeps its meaning so
/// downstream tooling can match on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
#[non_exhaustive]
pub enum DiagCode {
    // --- format invariants (F0xx) ---
    /// Row/panel/column pointer array has the wrong length.
    RowPtrLength,
    /// Pointer array does not start at 0.
    RowPtrStart,
    /// Pointer array does not end at the entry count.
    RowPtrEnd,
    /// Pointer array decreases somewhere.
    RowPtrNonMonotone,
    /// A column (or row, for CSC) index is out of range.
    ColIdxOutOfBounds,
    /// Column indices within a row are not strictly increasing (unsorted or
    /// duplicated).
    ColIdxUnsorted,
    /// Index and value array lengths disagree.
    ArityMismatch,
    /// A stored payload value is NaN or infinite.
    NonFinitePayload,
    /// Matrix dimensions are inconsistent with each other or with an
    /// operand (e.g. `A.ncols != B.nrows`).
    DimensionMismatch,
    /// A block dimension (height, width, vector length, or stride) is zero.
    BlockDimZero,
    /// Recorded scalar nonzero count disagrees with the stored payload.
    NnzInconsistent,
    /// A permutation image is out of range.
    PermOutOfRange,
    /// A permutation maps two sources to the same image.
    PermDuplicate,
    /// A permutation's length disagrees with the dimension it permutes.
    PermLengthMismatch,
    /// A padding slot that must be zero holds a nonzero value.
    PaddingNotZero,
    /// A COO entry lies outside the matrix dimensions.
    EntryOutOfBounds,
    /// Duplicate COO coordinates (legal before `compact`, suspicious after).
    DuplicateEntry,

    // --- kernel-schedule hazards (S0xx) ---
    /// Per-block shared memory request exceeds the SM's capacity.
    SmemOverflow,
    /// Declared `footprint_bytes` is smaller than what the kernel's operands
    /// actually occupy — the OOM check would pass vacuously.
    FootprintUnderreported,
    /// The working set exceeds device memory.
    DeviceOom,
    /// Explicit warp→SM assignment length disagrees with the warp count
    /// (unmapped or phantom warps).
    AssignmentLength,
    /// An assignment entry names an SM the device does not have (the engine
    /// would silently wrap it modulo `num_sms`).
    AssignmentSmOutOfRange,
    /// The assignment leaves some SMs idle while others are oversubscribed.
    AssignmentImbalance,
    /// The staged-tile shared memory layout exposes `ldmatrix` bank
    /// conflicts.
    BankConflict,
    /// Async pipelining declared with a stage depth that cannot overlap
    /// copy and compute.
    AsyncNoDoubleBuffer,
    /// Shared memory budget only covers a single stage buffer although the
    /// copy mode is async-pipelined: commits serialize on one buffer.
    AsyncSmemSingleBuffered,
    /// Pipeline stage depth exceeds the block-row iteration count: the
    /// pipeline never fills and prologue latency dominates.
    AsyncStagesExceedWork,

    // --- concurrency findings (C0xx, from smat-sanitize) ---
    /// The accumulated lock-order graph contains a cycle: two (or more)
    /// locks are acquired in contradicting orders on different code paths —
    /// a potential AB-BA deadlock.
    LockOrderCycle,
    /// `Condvar::wait` was entered while a *different* mutex was still
    /// held: the sleeping thread keeps that lock, so the thread meant to
    /// signal it can deadlock against it.
    CondvarWaitHoldingLock,
    /// A blocking wait that is not a condvar on the held mutex (thread
    /// park, oneshot/channel receive) was entered while a lock was held.
    LockHeldAcrossPark,
    /// A thread re-acquired a non-reentrant lock it already holds
    /// (self-deadlock with `std`-style mutexes).
    DoubleAcquire,
    /// The model checker found a schedule in which every live thread is
    /// blocked on a lock or join — a reachable deadlock.
    ModelDeadlock,
    /// The model checker found a schedule in which every live thread is
    /// parked on a condvar with no pending notify — a lost wakeup.
    ModelLostWakeup,
    /// A model-checked execution panicked (a protocol invariant asserted
    /// inside the model body failed under some schedule).
    ModelInvariantViolation,
    /// The model checker hit its schedule budget before exhausting the
    /// state space; remaining schedules were sampled by random walk only.
    ModelExplorationTruncated,
}

impl DiagCode {
    /// The stable short code (`F001`, `S003`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::RowPtrLength => "F001",
            DiagCode::RowPtrStart => "F002",
            DiagCode::RowPtrEnd => "F003",
            DiagCode::RowPtrNonMonotone => "F004",
            DiagCode::ColIdxOutOfBounds => "F005",
            DiagCode::ColIdxUnsorted => "F006",
            DiagCode::ArityMismatch => "F007",
            DiagCode::NonFinitePayload => "F008",
            DiagCode::DimensionMismatch => "F009",
            DiagCode::BlockDimZero => "F010",
            DiagCode::NnzInconsistent => "F011",
            DiagCode::PermOutOfRange => "F012",
            DiagCode::PermDuplicate => "F013",
            DiagCode::PermLengthMismatch => "F014",
            DiagCode::PaddingNotZero => "F015",
            DiagCode::EntryOutOfBounds => "F016",
            DiagCode::DuplicateEntry => "F017",
            DiagCode::SmemOverflow => "S001",
            DiagCode::FootprintUnderreported => "S002",
            DiagCode::DeviceOom => "S003",
            DiagCode::AssignmentLength => "S004",
            DiagCode::AssignmentSmOutOfRange => "S005",
            DiagCode::AssignmentImbalance => "S006",
            DiagCode::BankConflict => "S007",
            DiagCode::AsyncNoDoubleBuffer => "S008",
            DiagCode::AsyncSmemSingleBuffered => "S009",
            DiagCode::AsyncStagesExceedWork => "S010",
            DiagCode::LockOrderCycle => "C001",
            DiagCode::CondvarWaitHoldingLock => "C002",
            DiagCode::LockHeldAcrossPark => "C003",
            DiagCode::DoubleAcquire => "C004",
            DiagCode::ModelDeadlock => "C005",
            DiagCode::ModelLostWakeup => "C006",
            DiagCode::ModelInvariantViolation => "C007",
            DiagCode::ModelExplorationTruncated => "C008",
        }
    }

    /// The default severity findings with this code carry.
    pub fn default_severity(self) -> Severity {
        match self {
            DiagCode::AssignmentImbalance
            | DiagCode::BankConflict
            | DiagCode::AsyncSmemSingleBuffered
            | DiagCode::AsyncStagesExceedWork
            | DiagCode::DuplicateEntry
            | DiagCode::LockHeldAcrossPark => Severity::Warning,
            DiagCode::ModelExplorationTruncated => Severity::Note,
            _ => Severity::Error,
        }
    }
}

impl std::fmt::Display for DiagCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in a structure (or schedule) a finding points.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
#[non_exhaustive]
pub enum Location {
    /// No specific location (whole-structure findings).
    Whole,
    /// Index into a row/panel pointer array.
    RowPtr {
        /// Array index.
        index: usize,
    },
    /// A row (or block row / panel) of the matrix.
    Row {
        /// Row index.
        row: usize,
    },
    /// Flat position in an index or value array.
    Pos {
        /// Array position.
        pos: usize,
    },
    /// Index into a permutation vector.
    Perm {
        /// Permutation source index.
        index: usize,
    },
    /// A warp of the launch grid.
    Warp {
        /// Flat warp id.
        warp: usize,
    },
    /// A streaming multiprocessor.
    Sm {
        /// SM index.
        sm: usize,
    },
    /// A named scalar field of a config structure.
    Field {
        /// Field name.
        name: &'static str,
    },
    /// A named lock (mutex/rwlock) tracked by the sanitizer.
    Lock {
        /// The lock's label (or `mutex#<id>` when unlabeled).
        name: String,
    },
    /// A model-checker thread.
    Thread {
        /// Model thread index (0 = the model body's root thread).
        thread: usize,
    },
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Location::Whole => write!(f, "-"),
            Location::RowPtr { index } => write!(f, "row_ptr[{index}]"),
            Location::Row { row } => write!(f, "row {row}"),
            Location::Pos { pos } => write!(f, "pos {pos}"),
            Location::Perm { index } => write!(f, "perm[{index}]"),
            Location::Warp { warp } => write!(f, "warp {warp}"),
            Location::Sm { sm } => write!(f, "sm {sm}"),
            Location::Field { name } => write!(f, "{name}"),
            Location::Lock { name } => write!(f, "lock {name}"),
            Location::Thread { thread } => write!(f, "thread t{thread}"),
        }
    }
}

/// One machine-readable finding of a static-analysis pass.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Stable code identifying the invariant or hazard class.
    pub code: DiagCode,
    /// Severity of the finding.
    pub severity: Severity,
    /// Structured location of the finding.
    pub location: Location,
    /// Human-readable explanation with the concrete offending values.
    pub message: String,
}

impl Diagnostic {
    /// A finding at `code`'s default severity.
    pub fn new(code: DiagCode, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            location,
            message: message.into(),
        }
    }

    /// A finding with an explicit severity override.
    pub fn with_severity(
        code: DiagCode,
        severity: Severity,
        location: Location,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            location,
            message: message.into(),
        }
    }

    /// Whether the finding blocks execution.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] at {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

/// Convenience queries over a batch of findings.
pub trait DiagnosticsExt {
    /// Whether any finding is an [`Severity::Error`].
    fn has_errors(&self) -> bool;
    /// Number of error-severity findings.
    fn error_count(&self) -> usize;
    /// The distinct codes present, in first-seen order.
    fn codes(&self) -> Vec<DiagCode>;
}

impl DiagnosticsExt for [Diagnostic] {
    fn has_errors(&self) -> bool {
        self.iter().any(Diagnostic::is_error)
    }

    fn error_count(&self) -> usize {
        self.iter().filter(|d| d.is_error()).count()
    }

    fn codes(&self) -> Vec<DiagCode> {
        let mut out = Vec::new();
        for d in self {
            if !out.contains(&d.code) {
                out.push(d.code);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_and_typed() {
        let d = Diagnostic::new(
            DiagCode::RowPtrNonMonotone,
            Location::RowPtr { index: 3 },
            "row_ptr decreases: 7 -> 5",
        );
        assert_eq!(
            d.to_string(),
            "error [F004] at row_ptr[3]: row_ptr decreases: 7 -> 5"
        );
        assert!(d.is_error());
    }

    #[test]
    fn codes_are_unique() {
        let all = [
            DiagCode::RowPtrLength,
            DiagCode::RowPtrStart,
            DiagCode::RowPtrEnd,
            DiagCode::RowPtrNonMonotone,
            DiagCode::ColIdxOutOfBounds,
            DiagCode::ColIdxUnsorted,
            DiagCode::ArityMismatch,
            DiagCode::NonFinitePayload,
            DiagCode::DimensionMismatch,
            DiagCode::BlockDimZero,
            DiagCode::NnzInconsistent,
            DiagCode::PermOutOfRange,
            DiagCode::PermDuplicate,
            DiagCode::PermLengthMismatch,
            DiagCode::PaddingNotZero,
            DiagCode::EntryOutOfBounds,
            DiagCode::DuplicateEntry,
            DiagCode::SmemOverflow,
            DiagCode::FootprintUnderreported,
            DiagCode::DeviceOom,
            DiagCode::AssignmentLength,
            DiagCode::AssignmentSmOutOfRange,
            DiagCode::AssignmentImbalance,
            DiagCode::BankConflict,
            DiagCode::AsyncNoDoubleBuffer,
            DiagCode::AsyncSmemSingleBuffered,
            DiagCode::AsyncStagesExceedWork,
            DiagCode::LockOrderCycle,
            DiagCode::CondvarWaitHoldingLock,
            DiagCode::LockHeldAcrossPark,
            DiagCode::DoubleAcquire,
            DiagCode::ModelDeadlock,
            DiagCode::ModelLostWakeup,
            DiagCode::ModelInvariantViolation,
            DiagCode::ModelExplorationTruncated,
        ];
        let strs: std::collections::HashSet<&str> = all.iter().map(|c| c.as_str()).collect();
        assert_eq!(strs.len(), all.len());
    }

    #[test]
    fn concurrency_codes_have_the_c_prefix_and_expected_severities() {
        let c = [
            DiagCode::LockOrderCycle,
            DiagCode::CondvarWaitHoldingLock,
            DiagCode::LockHeldAcrossPark,
            DiagCode::DoubleAcquire,
            DiagCode::ModelDeadlock,
            DiagCode::ModelLostWakeup,
            DiagCode::ModelInvariantViolation,
            DiagCode::ModelExplorationTruncated,
        ];
        for code in c {
            assert!(code.as_str().starts_with('C'), "{code}");
        }
        assert_eq!(
            DiagCode::LockHeldAcrossPark.default_severity(),
            Severity::Warning
        );
        assert_eq!(
            DiagCode::ModelExplorationTruncated.default_severity(),
            Severity::Note
        );
        assert_eq!(DiagCode::LockOrderCycle.default_severity(), Severity::Error);
        assert_eq!(
            Diagnostic::new(
                DiagCode::LockOrderCycle,
                Location::Lock {
                    name: "registry.entries".into()
                },
                "cycle: registry.entries -> slot.waiters -> registry.entries",
            )
            .to_string(),
            "error [C001] at lock registry.entries: cycle: registry.entries -> \
             slot.waiters -> registry.entries"
        );
    }

    #[test]
    fn serializes_to_json() {
        let d = Diagnostic::new(
            DiagCode::SmemOverflow,
            Location::Field {
                name: "shared_bytes_per_block",
            },
            "needs 200000 B, SM has 164 KiB",
        );
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains("\"SmemOverflow\""), "{json}");
        assert!(json.contains("\"Error\""), "{json}");
    }

    #[test]
    fn batch_queries() {
        let batch = [
            Diagnostic::new(DiagCode::BankConflict, Location::Whole, "w"),
            Diagnostic::new(DiagCode::DeviceOom, Location::Whole, "e"),
            Diagnostic::new(DiagCode::DeviceOom, Location::Whole, "e2"),
        ];
        assert!(batch.has_errors());
        assert_eq!(batch.error_count(), 2);
        assert_eq!(
            batch.codes(),
            vec![DiagCode::BankConflict, DiagCode::DeviceOom]
        );
    }
}
