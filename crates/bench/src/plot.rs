//! Terminal plotting for the reproduction harness: the paper's figures are
//! bar charts and line plots, so `reproduce` renders ASCII equivalents
//! under each table (log-scale bars — the paper's performance axes are
//! logarithmic too).

/// Renders a horizontal bar chart. Values are plotted on a log10 axis when
/// they span more than one decade (matching the paper's figures), linearly
/// otherwise. Non-finite or non-positive values render as `OOM`.
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let finite: Vec<f64> = rows
        .iter()
        .map(|&(_, v)| v)
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    if finite.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let max = finite.iter().cloned().fold(f64::MIN, f64::max);
    let min = finite.iter().cloned().fold(f64::MAX, f64::min);
    let log_scale = max / min > 10.0;
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);

    for (label, v) in rows {
        let bar = if !v.is_finite() || *v <= 0.0 {
            "OOM".to_string()
        } else {
            let frac = if log_scale {
                // Map [min/2, max] logarithmically onto the width so the
                // smallest value still shows a sliver.
                let lo = (min / 2.0).ln();
                ((v.ln() - lo) / (max.ln() - lo)).clamp(0.0, 1.0)
            } else {
                (v / max).clamp(0.0, 1.0)
            };
            let n = ((frac * width as f64).round() as usize).max(1);
            format!("{} {}", "#".repeat(n), format_value(*v))
        };
        out.push_str(&format!("  {label:<label_w$} |{bar}\n"));
    }
    if log_scale {
        out.push_str("  (log scale)\n");
    }
    out
}

/// Renders a simple x/y line plot as an ASCII grid (used for the band
/// sweeps: x = sparsity points, one line per series).
pub fn line_plot(
    title: &str,
    x_labels: &[String],
    series: &[(String, Vec<f64>)],
    height: usize,
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let all: Vec<f64> = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    if all.is_empty() || x_labels.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let max = all.iter().cloned().fold(f64::MIN, f64::max).ln();
    let min = all.iter().cloned().fold(f64::MAX, f64::min).ln();
    let span = (max - min).max(1e-9);
    let cols = x_labels.len();
    let mut grid = vec![vec![' '; cols * 3]; height];
    let marks = ['S', 'D', 'M', 'c', 'B', 'x', '+', 'o'];
    for (si, (_, ys)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for (xi, &y) in ys.iter().enumerate().take(cols) {
            if !(y.is_finite() && y > 0.0) {
                continue;
            }
            let fy = (y.ln() - min) / span;
            let row = height - 1 - ((fy * (height - 1) as f64).round() as usize).min(height - 1);
            grid[row][xi * 3 + 1] = mark;
        }
    }
    for row in grid {
        out.push_str("  |");
        out.push_str(&row.into_iter().collect::<String>());
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(cols * 3));
    out.push('\n');
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(si, (name, _))| format!("{}={}", marks[si % marks.len()], name))
        .collect();
    out.push_str(&format!(
        "  x: {} .. {}   {}  (log y)\n",
        x_labels.first().unwrap(),
        x_labels.last().unwrap(),
        legend.join("  ")
    ));
    out
}

fn format_value(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_renders_all_rows() {
        let rows = vec![
            ("SMaT".to_string(), 1232.0),
            ("DASP".to_string(), 193.0),
            ("cuSPARSE".to_string(), 60.0),
        ];
        let s = bar_chart("Fig. 8 mip1", &rows, 40);
        assert!(s.contains("SMaT"));
        assert!(s.contains("cuSPARSE"));
        assert!(s.contains("1232"));
        // Larger value gets a longer bar.
        let bar_len = |name: &str| {
            s.lines()
                .find(|l| l.contains(name))
                .unwrap()
                .matches('#')
                .count()
        };
        assert!(bar_len("SMaT") > bar_len("DASP"));
        assert!(bar_len("DASP") > bar_len("cuSPARSE"));
        assert!(s.contains("log scale"), "3 decades -> log axis");
    }

    #[test]
    fn bar_chart_marks_failed_runs() {
        let rows = vec![("ok".to_string(), 10.0), ("failed".to_string(), f64::NAN)];
        let s = bar_chart("t", &rows, 20);
        assert!(s.lines().any(|l| l.contains("failed") && l.contains("OOM")));
    }

    #[test]
    fn bar_chart_linear_when_narrow_range() {
        let rows = vec![("a".to_string(), 90.0), ("b".to_string(), 100.0)];
        let s = bar_chart("t", &rows, 20);
        assert!(!s.contains("log scale"));
    }

    #[test]
    fn empty_chart_is_graceful() {
        let s = bar_chart("t", &[("x".to_string(), f64::NAN)], 20);
        assert!(s.contains("no data") || s.contains("OOM"));
    }

    #[test]
    fn line_plot_renders_series_markers() {
        let x: Vec<String> = (0..6).map(|i| format!("{}", 1 << i)).collect();
        let series = vec![
            (
                "SMaT".to_string(),
                vec![100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0],
            ),
            (
                "DASP".to_string(),
                vec![50.0, 60.0, 70.0, 80.0, 90.0, 100.0],
            ),
        ];
        let s = line_plot("Fig. 9a", &x, &series, 10);
        assert!(s.contains('S') && s.contains('D'));
        assert!(s.contains("S=SMaT"));
        assert!(s.contains("log y"));
        // The top row should contain only the fastest series' marker.
        let first_data_row = s.lines().nth(1).unwrap();
        assert!(!first_data_row.contains('D'));
    }
}
