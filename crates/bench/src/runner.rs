//! Shared machinery of the experiment harness: engine enumeration, metric
//! records, and geometric-mean summaries.

use serde::Serialize;
use smat::{Smat, SmatConfig};
use smat_baselines::{CusparseLike, DaspLike, MagicubeLike, SputnikLike};
use smat_formats::{Csr, Dense, F16};
use smat_gpusim::{Gpu, SimError};
use smat_reorder::{reorder, ReorderAlgorithm};

/// The SpMM engines compared throughout the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Engine {
    /// SMaT (this paper).
    Smat,
    /// DASP-like batched TC SpMV.
    Dasp,
    /// Magicube-like SR-BCRS int16.
    Magicube,
    /// cuSPARSE-like CSR SpMM.
    Cusparse,
    /// Sputnik-like swizzled CSR SpMM (beyond the paper's comparison set).
    Sputnik,
}

impl Engine {
    /// The paper's four engines, in its plotting order.
    pub fn all() -> [Engine; 4] {
        [
            Engine::Smat,
            Engine::Dasp,
            Engine::Magicube,
            Engine::Cusparse,
        ]
    }

    /// The paper's engines plus the extra Sputnik-like baseline.
    pub fn all_with_extras() -> [Engine; 5] {
        [
            Engine::Smat,
            Engine::Dasp,
            Engine::Magicube,
            Engine::Cusparse,
            Engine::Sputnik,
        ]
    }

    /// Display name used in reports and figures.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Smat => "SMaT",
            Engine::Dasp => "DASP",
            Engine::Magicube => "Magicube",
            Engine::Cusparse => "cuSPARSE",
            Engine::Sputnik => "Sputnik",
        }
    }
}

/// One measured point.
#[derive(Clone, Debug, Serialize)]
pub struct Measurement {
    /// Engine name.
    pub engine: String,
    /// Simulated kernel milliseconds.
    pub time_ms: f64,
    /// Effective GFLOP/s over `2·nnz·N`.
    pub gflops: f64,
    /// SM load imbalance (max/mean busy).
    pub imbalance: f64,
    /// Set when the simulated device rejected the launch (e.g. OOM).
    pub error: Option<String>,
}

impl Measurement {
    fn failed(engine: &str, err: SimError) -> Self {
        Measurement {
            engine: engine.to_string(),
            time_ms: f64::NAN,
            gflops: 0.0,
            imbalance: f64::NAN,
            error: Some(err.to_string()),
        }
    }
}

/// Runs one engine on `A·B`. For the baselines, the requested reordering is
/// applied to `A` up front (their performance depends on the row order just
/// like SMaT's; Figures 5–7 measure exactly this). SMaT reorders internally
/// through its own pipeline.
pub fn run_engine(
    engine: Engine,
    gpu: &Gpu,
    a: &Csr<F16>,
    b: &Dense<F16>,
    reordering: ReorderAlgorithm,
) -> Measurement {
    match engine {
        Engine::Smat => {
            let cfg = SmatConfig {
                reorder: reordering,
                device: gpu.cfg.clone(),
                ..SmatConfig::default()
            };
            let prepared = Smat::prepare(a, cfg);
            match prepared.try_spmm(b) {
                Ok(run) => Measurement {
                    engine: "SMaT".to_string(),
                    time_ms: run.report.elapsed_ms(),
                    gflops: run.report.gflops(),
                    imbalance: run.report.launch.sm_imbalance(),
                    error: None,
                },
                Err(e) => Measurement::failed("SMaT", e),
            }
        }
        _ => {
            // Apply the permutation to A (and, for row+col variants, to the
            // rows of B) before handing the matrix to the baseline.
            let r = reorder(a, reordering, 16, 16);
            let a_perm = r.apply(a);
            let b_perm_storage;
            let b_eff: &Dense<F16> = match &r.col_perm {
                Some(cp) => {
                    b_perm_storage = b.select_rows(cp.as_slice());
                    &b_perm_storage
                }
                None => b,
            };
            let out = match engine {
                Engine::Dasp => DaspLike::new(gpu, &a_perm).spmm(b_eff),
                Engine::Magicube => MagicubeLike::new(gpu, &a_perm).spmm(b_eff),
                Engine::Cusparse => CusparseLike::new(gpu, &a_perm).spmm(b_eff),
                Engine::Sputnik => SputnikLike::new(gpu, &a_perm).spmm(b_eff),
                Engine::Smat => unreachable!(),
            };
            match out {
                Ok((res, _)) => Measurement {
                    engine: engine.name().to_string(),
                    time_ms: res.time_ms,
                    gflops: res.gflops(),
                    imbalance: res.sm_imbalance(),
                    error: None,
                },
                Err(e) => Measurement::failed(engine.name(), e),
            }
        }
    }
}

/// Like [`run_engine`] but returns the busiest-SM roofline profile
/// (`None` if the launch failed).
pub fn run_engine_profiled(
    engine: Engine,
    gpu: &Gpu,
    a: &Csr<F16>,
    b: &Dense<F16>,
    reordering: ReorderAlgorithm,
) -> Option<smat_gpusim::BoundProfile> {
    match engine {
        Engine::Smat => {
            let cfg = SmatConfig {
                reorder: reordering,
                device: gpu.cfg.clone(),
                ..SmatConfig::default()
            };
            Smat::prepare(a, cfg)
                .try_spmm(b)
                .ok()
                .map(|run| run.report.launch.profile)
        }
        _ => {
            let r = reorder(a, reordering, 16, 16);
            let a_perm = r.apply(a);
            let out = match engine {
                Engine::Dasp => DaspLike::new(gpu, &a_perm).spmm(b),
                Engine::Magicube => MagicubeLike::new(gpu, &a_perm).spmm(b),
                Engine::Cusparse => CusparseLike::new(gpu, &a_perm).spmm(b),
                Engine::Sputnik => SputnikLike::new(gpu, &a_perm).spmm(b),
                Engine::Smat => unreachable!(),
            };
            out.ok().map(|(res, _)| res.profile)
        }
    }
}

/// Geometric mean of a sequence (ignores non-finite or non-positive values).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for v in values {
        if v.is_finite() && v > 0.0 {
            log_sum += v.ln();
            count += 1;
        }
    }
    if count == 0 {
        f64::NAN
    } else {
        (log_sum / count as f64).exp()
    }
}

/// Formats a GFLOP/s or ratio cell, tolerating NaN (failed runs).
pub fn fmt_cell(v: f64) -> String {
    if v.is_nan() {
        "OOM".to_string()
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_workloads::{dense_b, random_uniform};

    #[test]
    fn all_engines_run_on_a_small_matrix() {
        let gpu = Gpu::a100();
        let a: Csr<F16> = random_uniform(96, 96, 0.9, 5);
        let b = dense_b::<F16>(96, 8);
        for e in Engine::all() {
            let m = run_engine(e, &gpu, &a, &b, ReorderAlgorithm::Identity);
            assert!(m.error.is_none(), "{} failed: {:?}", e.name(), m.error);
            assert!(m.time_ms > 0.0 && m.gflops > 0.0, "{}: {m:?}", e.name());
        }
    }

    #[test]
    fn reordering_variants_run_for_baselines() {
        let gpu = Gpu::a100();
        let a: Csr<F16> = random_uniform(64, 64, 0.85, 6);
        let b = dense_b::<F16>(64, 8);
        for alg in [
            ReorderAlgorithm::JaccardRows { tau: 0.7 },
            ReorderAlgorithm::JaccardRowsCols { tau: 0.7 },
        ] {
            let m = run_engine(Engine::Cusparse, &gpu, &a, &b, alg);
            assert!(m.error.is_none());
        }
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean([3.0]) - 3.0).abs() < 1e-12);
        assert!(geomean([f64::NAN]).is_nan());
        assert!((geomean([1.0, f64::NAN, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fmt_cell_handles_ranges() {
        assert_eq!(fmt_cell(f64::NAN), "OOM");
        assert_eq!(fmt_cell(123.4), "123");
        assert_eq!(fmt_cell(12.345), "12.35");
        assert_eq!(fmt_cell(0.5), "0.5000");
    }
}
