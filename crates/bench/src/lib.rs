//! # smat-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation on the simulated A100 (see EXPERIMENTS.md for the
//! paper-vs-measured record):
//!
//! * `cargo run --release -p smat-bench --bin reproduce -- all`
//! * or one experiment: `... -- fig8`, `... -- fig9a`, `... -- table1`, ...
//!
//! [`experiments`] holds one runner per table/figure; [`runner`] the shared
//! engine dispatch. Criterion wall-clock benches of the library itself live
//! in `benches/`.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod plot;
pub mod runner;

pub use experiments::HarnessConfig;
pub use runner::{geomean, run_engine, Engine, Measurement};
