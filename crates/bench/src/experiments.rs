//! One function per table/figure of the paper. Each prints a human-readable
//! table to stdout and returns machine-readable JSON records (collected by
//! the `reproduce` binary with `--json`).
//!
//! Sizes: the paper runs 16k×16k band matrices and full SuiteSparse
//! matrices on an A100; this harness defaults to `band_n = 4096` and
//! `scale = 0.1` mimics so the full suite completes in minutes on one CPU
//! core (EXPERIMENTS.md documents the scaling). Pass `--full` to reproduce
//! the paper's exact dimensions.

use serde_json::{json, Value};
use smat::{AccumMode, OptFlags, PerfModel, PerfSample, Schedule, Smat, SmatConfig};
use smat_baselines::CublasLike;
use smat_formats::{Csr, Element, F16};
use smat_gpusim::Gpu;
use smat_reorder::{evaluate_reordering, ReorderAlgorithm};
use smat_workloads::{band, band_nnz, dense_b, table1};

use crate::runner::{fmt_cell, geomean, run_engine, Engine, Measurement};

/// Harness-wide parameters.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Linear scale factor applied to the Table I mimics.
    pub scale: f64,
    /// Dimension of the synthetic band matrices (paper: 16384).
    pub band_n: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: 0.1,
            band_n: 4096,
        }
    }
}

impl HarnessConfig {
    /// The paper's full-size configuration.
    pub fn full() -> Self {
        HarnessConfig {
            scale: 1.0,
            band_n: 16384,
        }
    }

    /// Band widths swept in Fig. 2 (paper: 64…4096 on a 16k matrix, i.e.
    /// n/256 … n/4), geometric with factor 2.
    pub fn fig2_bandwidths(&self) -> Vec<usize> {
        let mut b = (self.band_n / 256).max(8);
        let mut out = Vec::new();
        while b <= self.band_n / 4 {
            out.push(b);
            b *= 2;
        }
        out
    }

    /// Band widths swept in Fig. 9 (paper: 64 … 16k = fully dense).
    pub fn fig9_bandwidths(&self) -> Vec<usize> {
        let mut b = (self.band_n / 256).max(8);
        let mut out = Vec::new();
        while b < self.band_n {
            out.push(b);
            b *= 2;
        }
        out.push(self.band_n); // dense
        out
    }
}

fn gpu() -> Gpu {
    Gpu::a100()
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// Table I: the benchmark matrices (mimics), with generated-vs-paper stats.
pub fn run_table1(cfg: &HarnessConfig) -> Vec<Value> {
    println!(
        "\n== Table I: benchmark matrices (mimics at scale {}) ==",
        cfg.scale
    );
    println!(
        "{:<18} {:<18} {:>10} {:>12} {:>9}  {:>10} {:>12}",
        "domain", "name", "n (gen)", "nnz (gen)", "sparsity", "n (paper)", "nnz (paper)"
    );
    let mut records = Vec::new();
    for m in table1() {
        let g: Csr<F16> = m.generate(cfg.scale);
        println!(
            "{:<18} {:<18} {:>10} {:>12} {:>8.2}%  {:>10} {:>12}",
            m.domain,
            m.name,
            g.nrows(),
            g.nnz(),
            g.sparsity() * 100.0,
            m.full_n,
            m.full_nnz
        );
        records.push(json!({
            "experiment": "table1",
            "matrix": m.name,
            "domain": m.domain,
            "nrows": g.nrows(),
            "nnz": g.nnz(),
            "sparsity": g.sparsity(),
            "paper_n": m.full_n,
            "paper_nnz": m.full_nnz,
            "paper_sparsity": m.sparsity(),
        }));
    }
    records
}

// ---------------------------------------------------------------------------
// Fig. 2 — performance model vs measurement across optimization combos
// ---------------------------------------------------------------------------

/// Fig. 2: run every T/B/C combination over band matrices of increasing
/// bandwidth, fit `T_tot = T_e·n_e + T_init` per variant, and report
/// measured vs model.
pub fn run_fig2(cfg: &HarnessConfig) -> Vec<Value> {
    let gpu = gpu();
    let n = cfg.band_n;
    let bandwidths = cfg.fig2_bandwidths();
    println!("\n== Fig. 2: perf model validation, {n}x{n} band x dense {n}x8 ==");

    let mut records = Vec::new();
    let b = dense_b::<F16>(n, 8);

    for opts in OptFlags::all_combinations() {
        let mut samples = Vec::new();
        let mut per_bw = Vec::new();
        for &bw in &bandwidths {
            let a = band::<F16>(n, bw);
            let config = SmatConfig {
                reorder: ReorderAlgorithm::Identity, // band is already optimal
                opts,
                device: gpu.cfg.clone(),
                ..SmatConfig::default()
            };
            let engine = Smat::prepare(&a, config);
            let run = engine.spmm(&b);
            samples.push(PerfSample {
                n_e: run.report.nblocks as f64,
                t_ms: run.report.elapsed_ms(),
            });
            per_bw.push((bw, run.report.nblocks, run.report.elapsed_ms()));
        }
        let model = PerfModel::fit(&samples);
        let (mre, excluded) = model.relative_error_stats(&samples);
        println!(
            "\n-- variant {:<6}  T_e = {:.6} us/block, T_init = {:.4} ms, R^2 = {:.4}, MRE = {:.2}%{}",
            opts.label(),
            model.t_e_ms * 1e3,
            model.t_init_ms,
            model.r2,
            mre * 100.0,
            if excluded > 0 {
                format!(" ({excluded} zero-time samples excluded)")
            } else {
                String::new()
            }
        );
        println!(
            "{:>10} {:>10} {:>14} {:>14} {:>8}",
            "bandwidth", "n_e", "measured ms", "model ms", "err %"
        );
        for (bw, n_e, t) in &per_bw {
            let pred = model.predict(*n_e as f64);
            println!(
                "{:>10} {:>10} {:>14.4} {:>14.4} {:>7.2}%",
                bw,
                n_e,
                t,
                pred,
                (pred - t) / t * 100.0
            );
            records.push(json!({
                "experiment": "fig2",
                "variant": opts.label(),
                "bandwidth": bw,
                "n_e": n_e,
                "measured_ms": t,
                "model_ms": pred,
                "t_e_ms": model.t_e_ms,
                "t_init_ms": model.t_init_ms,
                "r2": model.r2,
                "model_mre": mre,
                "mre_excluded": excluded,
            }));
        }
    }

    // Headline ratios of §III: TC API ~10x, full vs naive ~22x.
    let time_of = |label: &str| -> f64 {
        let vals: Vec<f64> = records
            .iter()
            .filter(|r| r["variant"] == label)
            .map(|r| r["measured_ms"].as_f64().unwrap())
            .collect();
        geomean(vals)
    };
    let naive = time_of("naive");
    println!("\n-- speedup over naive (geomean across bandwidths) --");
    for label in ["C", "B", "T", "B+C", "T+C", "T+B", "T+B+C"] {
        println!("{label:<6} {:>8.2}x", naive / time_of(label));
    }
    records
}

// ---------------------------------------------------------------------------
// Fig. 3 — blocks-per-row distributions under reordering
// ---------------------------------------------------------------------------

/// Fig. 3: block count and blocks-per-row distribution for original / row /
/// row+col reorderings of every Table I matrix.
pub fn run_fig3(cfg: &HarnessConfig) -> Vec<Value> {
    println!("\n== Fig. 3: BCSR blocks per row, reordering effect (16x16 blocks) ==");
    println!(
        "{:<14} {:<14} {:>10} {:>10} {:>10} {:>10}",
        "matrix", "ordering", "blocks", "mean/row", "stddev", "max/row"
    );
    let mut records = Vec::new();
    for m in table1() {
        let a: Csr<F16> = m.generate(cfg.scale);
        let arms = [
            ("original", ReorderAlgorithm::Identity),
            ("rows", ReorderAlgorithm::JaccardRows { tau: 0.7 }),
            ("rows+cols", ReorderAlgorithm::JaccardRowsCols { tau: 0.7 }),
        ];
        for (label, alg) in arms {
            let (_, effect) = evaluate_reordering(&a, alg, 16, 16);
            println!(
                "{:<14} {:<14} {:>10} {:>10.2} {:>10.2} {:>10}",
                m.name,
                label,
                effect.after.nblocks,
                effect.after.mean,
                effect.after.stddev,
                effect.after.max
            );
            records.push(json!({
                "experiment": "fig3",
                "matrix": m.name,
                "ordering": label,
                "nblocks": effect.after.nblocks,
                "mean": effect.after.mean,
                "stddev": effect.after.stddev,
                "max": effect.after.max,
                "block_reduction": effect.block_reduction(),
                "stddev_reduction": effect.stddev_reduction(),
            }));
        }
    }
    records
}

// ---------------------------------------------------------------------------
// Figs. 4-7 — reordering effect on each library's performance
// ---------------------------------------------------------------------------

/// Figs. 4–7: GFLOP/s of one engine on every Table I matrix under the three
/// orderings (N = 8).
pub fn run_reorder_effect(cfg: &HarnessConfig, engine: Engine) -> Vec<Value> {
    let fig = match engine {
        Engine::Smat => "fig4",
        Engine::Dasp => "fig5",
        Engine::Magicube => "fig6",
        Engine::Cusparse => "fig7",
        Engine::Sputnik => "fig-extra-reorder",
    };
    println!(
        "\n== {}: reordering effect on {} (GFLOP/s, N=8) ==",
        fig.to_uppercase(),
        engine.name()
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "matrix", "original", "rows", "rows+cols"
    );
    let gpu = gpu();
    let mut records = Vec::new();
    for m in table1() {
        let a: Csr<F16> = m.generate(cfg.scale);
        let b = dense_b::<F16>(a.ncols(), 8);
        let mut cells = Vec::new();
        for (label, alg) in [
            ("original", ReorderAlgorithm::Identity),
            ("rows", ReorderAlgorithm::JaccardRows { tau: 0.7 }),
            ("rows+cols", ReorderAlgorithm::JaccardRowsCols { tau: 0.7 }),
        ] {
            let meas = run_engine(engine, &gpu, &a, &b, alg);
            records.push(json!({
                "experiment": fig,
                "matrix": m.name,
                "engine": engine.name(),
                "ordering": label,
                "gflops": meas.gflops,
                "time_ms": meas.time_ms,
                "imbalance": meas.imbalance,
                "error": meas.error,
            }));
            cells.push(meas.gflops);
        }
        println!(
            "{:<14} {:>12} {:>12} {:>12}",
            m.name,
            fmt_cell(cells[0]),
            fmt_cell(cells[1]),
            fmt_cell(cells[2])
        );
    }
    records
}

// ---------------------------------------------------------------------------
// Fig. 8 — performance comparison on the SuiteSparse set
// ---------------------------------------------------------------------------

/// Fig. 8 + §VI-B summary: all four engines on every Table I matrix (N = 8),
/// with geomean speedups.
pub fn run_fig8(cfg: &HarnessConfig) -> Vec<Value> {
    println!("\n== Fig. 8: performance comparison (GFLOP/s, N=8) ==");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10}",
        "matrix", "SMaT", "DASP", "Magicube", "cuSPARSE"
    );
    let gpu = gpu();
    let mut records = Vec::new();
    let mut per_engine: std::collections::HashMap<&str, Vec<f64>> = Default::default();

    for m in table1() {
        let a: Csr<F16> = m.generate(cfg.scale);
        let b = dense_b::<F16>(a.ncols(), 8);
        let mut row: Vec<Measurement> = Vec::new();
        for e in Engine::all() {
            // SMaT runs with its preprocessing; the baselines consume the
            // matrix as distributed (their own internal preprocessing is
            // part of their engines).
            let alg = if e == Engine::Smat {
                ReorderAlgorithm::smat_default()
            } else {
                ReorderAlgorithm::Identity
            };
            row.push(run_engine(e, &gpu, &a, &b, alg));
        }
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>10}",
            m.name,
            fmt_cell(row[0].gflops),
            fmt_cell(row[1].gflops),
            fmt_cell(row[2].gflops),
            fmt_cell(row[3].gflops)
        );
        for (e, meas) in Engine::all().iter().zip(&row) {
            per_engine.entry(e.name()).or_default().push(meas.gflops);
            records.push(json!({
                "experiment": "fig8",
                "matrix": m.name,
                "engine": meas.engine,
                "gflops": meas.gflops,
                "time_ms": meas.time_ms,
                "imbalance": meas.imbalance,
                "error": meas.error,
            }));
        }
    }

    // §VI-B summary: geomean + max speedups of SMaT over each baseline.
    println!("\n-- SMaT speedup summary (paper: 2.60x DASP, 10.78x Magicube, 16.32x cuSPARSE) --");
    let smat = per_engine.get("SMaT").cloned().unwrap_or_default();
    for other in ["DASP", "Magicube", "cuSPARSE"] {
        let vals = per_engine.get(other).cloned().unwrap_or_default();
        let ratios: Vec<f64> = smat
            .iter()
            .zip(&vals)
            .map(|(s, o)| if *o > 0.0 { s / o } else { f64::NAN })
            .collect();
        let g = geomean(ratios.iter().copied());
        let max = ratios.iter().copied().fold(f64::NAN, f64::max);
        println!("vs {other:<10} geomean {g:>7.2}x   max {max:>8.2}x");
        records.push(json!({
            "experiment": "fig8-summary",
            "baseline": other,
            "geomean_speedup": g,
            "max_speedup": max,
        }));
    }

    let rows: Vec<(String, f64)> = Engine::all()
        .iter()
        .map(|e| {
            (
                e.name().to_string(),
                geomean(per_engine.get(e.name()).cloned().unwrap_or_default()),
            )
        })
        .collect();
    println!();
    print!(
        "{}",
        crate::plot::bar_chart("geomean GFLOP/s across Table I", &rows, 48)
    );
    records
}

// ---------------------------------------------------------------------------
// Fig. 9 — synthetic band matrix sweep
// ---------------------------------------------------------------------------

/// Fig. 9a (N=8) / 9b (N=128): band matrix sweep from b=64-equivalent up to
/// fully dense, all engines plus cuBLAS effective FLOP/s.
pub fn run_fig9(cfg: &HarnessConfig, n_cols: usize) -> Vec<Value> {
    let gpu = gpu();
    let n = cfg.band_n;
    let sub = if n_cols <= 8 { "9a" } else { "9b" };
    println!("\n== Fig. {sub}: band {n}x{n} * dense {n}x{n_cols}, GFLOP/s ==");
    println!(
        "{:>10} {:>9} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "bandwidth", "sparsity", "SMaT", "DASP", "Magicube", "cuSPARSE", "cuBLAS(eff)"
    );

    // cuBLAS measured once on the dense matrix, then scaled by nnz fraction
    // (the paper's §VI-C "Note").
    let cublas_dense = CublasLike::new(&gpu)
        .gemm_time(n, n, n_cols)
        .expect("dense GEMM timing");

    let mut records = Vec::new();
    for bw in cfg.fig9_bandwidths() {
        let a = band::<F16>(n, bw);
        let b = dense_b::<F16>(n, n_cols);
        let sparsity = a.sparsity();
        let mut cells = Vec::new();
        for e in Engine::all() {
            // Band matrices are already optimally blocked: no reordering
            // (§VI-C).
            let meas = run_engine(e, &gpu, &a, &b, ReorderAlgorithm::Identity);
            records.push(json!({
                "experiment": format!("fig{sub}"),
                "bandwidth": bw,
                "sparsity": sparsity,
                "engine": meas.engine,
                "gflops": meas.gflops,
                "time_ms": meas.time_ms,
                "error": meas.error,
            }));
            cells.push(meas.gflops);
        }
        let cublas_eff = cublas_dense.gflops_effective(a.nnz(), n_cols);
        records.push(json!({
            "experiment": format!("fig{sub}"),
            "bandwidth": bw,
            "sparsity": sparsity,
            "engine": "cuBLAS-effective",
            "gflops": cublas_eff,
            "time_ms": cublas_dense.time_ms,
        }));
        println!(
            "{:>10} {:>8.2}% {:>10} {:>10} {:>10} {:>10} {:>12}",
            bw,
            sparsity * 100.0,
            fmt_cell(cells[0]),
            fmt_cell(cells[1]),
            fmt_cell(cells[2]),
            fmt_cell(cells[3]),
            fmt_cell(cublas_eff)
        );
    }

    // Crossover report: lowest sparsity at which SMaT >= cuBLAS effective.
    let mut crossover: Option<f64> = None;
    for bw in cfg.fig9_bandwidths() {
        let smat = records
            .iter()
            .find(|r| r["bandwidth"] == bw as u64 && r["engine"] == "SMaT")
            .and_then(|r| r["gflops"].as_f64())
            .unwrap_or(0.0);
        let nnz = band_nnz(n, bw);
        let eff = cublas_dense.gflops_effective(nnz, n_cols);
        if smat >= eff {
            let sp = 1.0 - nnz as f64 / (n as f64 * n as f64);
            crossover = Some(crossover.map_or(sp, |c: f64| c.min(sp)));
        }
    }
    match crossover {
        Some(sp) => println!(
            "-- SMaT beats cuBLAS-effective down to sparsity {:.1}% (paper: {}%)",
            sp * 100.0,
            if n_cols <= 8 { 78 } else { 96 }
        ),
        None => println!("-- SMaT never beats cuBLAS-effective in this sweep"),
    }

    // Figure-style rendering: GFLOP/s vs bandwidth, one series per engine.
    let x_labels: Vec<String> = cfg
        .fig9_bandwidths()
        .iter()
        .map(ToString::to_string)
        .collect();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for engine in ["SMaT", "DASP", "Magicube", "cuSPARSE", "cuBLAS-effective"] {
        let ys: Vec<f64> = cfg
            .fig9_bandwidths()
            .iter()
            .map(|&bw| {
                records
                    .iter()
                    .find(|r| r["bandwidth"] == bw as u64 && r["engine"] == engine)
                    .and_then(|r| r["gflops"].as_f64())
                    .unwrap_or(f64::NAN)
            })
            .collect();
        series.push((engine.to_string(), ys));
    }
    println!();
    print!(
        "{}",
        crate::plot::line_plot(
            &format!("Fig. {sub} as a plot (GFLOP/s vs bandwidth)"),
            &x_labels,
            &series,
            12
        )
    );
    records
}

// ---------------------------------------------------------------------------
// Fig. 10 — scaling the outer dimension N
// ---------------------------------------------------------------------------

/// Fig. 10: wall-clock vs N on the cop20k_A mimic.
pub fn run_fig10(cfg: &HarnessConfig) -> Vec<Value> {
    let gpu = gpu();
    let m = smat_workloads::by_name("cop20k_A").expect("cop20k_A mimic");
    let a: Csr<F16> = m.generate(cfg.scale);
    println!(
        "\n== Fig. 10: wall-clock (ms) vs N on cop20k_A mimic ({}x{}, {} nnz) ==",
        a.nrows(),
        a.ncols(),
        a.nnz()
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "N", "SMaT", "DASP", "Magicube", "cuSPARSE"
    );
    let mut records = Vec::new();
    for n_cols in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1000] {
        let b = dense_b::<F16>(a.ncols(), n_cols);
        let mut cells = Vec::new();
        for e in Engine::all() {
            let alg = if e == Engine::Smat {
                ReorderAlgorithm::smat_default()
            } else {
                ReorderAlgorithm::Identity
            };
            let meas = run_engine(e, &gpu, &a, &b, alg);
            records.push(json!({
                "experiment": "fig10",
                "n": n_cols,
                "engine": meas.engine,
                "time_ms": meas.time_ms,
                "gflops": meas.gflops,
                "error": meas.error,
            }));
            cells.push(meas.time_ms);
        }
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12}",
            n_cols,
            fmt_cell(cells[0]),
            fmt_cell(cells[1]),
            fmt_cell(cells[2]),
            fmt_cell(cells[3])
        );
    }
    records
}

/// Precision study: the paper claims SMaT "works with all data types
/// supported by the MMA hardware units" — this runs the same pipeline in
/// f16, bf16 and int8 (block 16×32 feeding `mma.m16n8k32`, double the FLOP
/// rate at equal bytes) and reports simulated throughput plus accuracy
/// against an f32 reference on non-integer values.
pub fn run_precision(cfg: &HarnessConfig) -> Vec<Value> {
    use smat_formats::{Bf16, Dense};
    let gpu = gpu();
    let m = smat_workloads::by_name("cop20k_A").expect("mimic");
    let a32: Csr<f32> = m.generate(cfg.scale);
    // Fractional values exercise rounding: v / 3 is inexact in every
    // storage precision.
    let a32 = Csr::from_raw(
        a32.nrows(),
        a32.ncols(),
        a32.row_ptr().to_vec(),
        a32.col_idx().to_vec(),
        a32.values().iter().map(|v| v / 3.0).collect(),
    );
    let b32 = Dense::from_fn(a32.ncols(), 8, |i, j| {
        (((i * 3 + j * 5) % 7) as f32 - 3.0) / 3.0
    });
    let reference = a32.spmm_reference(&b32);
    let ref_scale = reference
        .as_slice()
        .iter()
        .map(|v| v.abs() as f64)
        .fold(0.0, f64::max)
        .max(1e-30);

    println!("\n== Precision study: cop20k_A mimic, N=8 ==");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>12}",
        "precision", "block", "GFLOP/s", "max rel err", "time ms"
    );
    let mut records = Vec::new();

    fn run_one<T: Element>(
        gpu: &Gpu,
        a32: &Csr<f32>,
        b32: &Dense<f32>,
        reference: &Dense<f32>,
        ref_scale: f64,
        block: (usize, usize),
    ) -> (f64, f64, f64) {
        let a: Csr<T> = a32.cast();
        let b: Dense<T> = b32.cast();
        let config = SmatConfig {
            block_h: block.0,
            block_w: block.1,
            device: gpu.cfg.clone(),
            ..SmatConfig::default()
        };
        let run = Smat::prepare(&a, config).spmm(&b);
        let err = (0..reference.nrows())
            .flat_map(|i| (0..8).map(move |j| (i, j)))
            .map(|(i, j)| (run.c.get(i, j).to_f64() - reference.get(i, j) as f64).abs())
            .fold(0.0, f64::max)
            / ref_scale;
        (run.report.gflops(), err, run.report.elapsed_ms())
    }

    type PrecisionCase = (&'static str, (usize, usize), (f64, f64, f64));
    let cases: Vec<PrecisionCase> = vec![
        (
            "f32-sim",
            (16, 16),
            run_one::<f32>(&gpu, &a32, &b32, &reference, ref_scale, (16, 16)),
        ),
        (
            "f16",
            (16, 16),
            run_one::<F16>(&gpu, &a32, &b32, &reference, ref_scale, (16, 16)),
        ),
        (
            "bf16",
            (16, 16),
            run_one::<Bf16>(&gpu, &a32, &b32, &reference, ref_scale, (16, 16)),
        ),
        (
            "i8",
            (16, 32),
            run_one::<i8>(&gpu, &a32, &b32, &reference, ref_scale, (16, 32)),
        ),
    ];
    for (name, block, (gflops, err, t)) in &cases {
        println!(
            "{:<10} {:>12} {:>12.1} {:>14.3e} {:>12.4}",
            name,
            format!("{}x{}", block.0, block.1),
            gflops,
            err,
            t
        );
        records.push(json!({
            "experiment": "precision",
            "precision": name,
            "block": format!("{}x{}", block.0, block.1),
            "gflops": gflops,
            "max_rel_err": err,
            "time_ms": t,
        }));
    }
    records
}

// ---------------------------------------------------------------------------
// Extra comparison beyond the paper: five engines incl. Sputnik-like
// ---------------------------------------------------------------------------

/// Extended Fig. 8: the paper's four engines plus the Sputnik-like
/// swizzled-CSR kernel (Gale et al., SC'20), on every Table I mimic.
/// Shows how much of SMaT's win is Tensor Cores rather than access-pattern
/// hygiene: Sputnik brackets cuSPARSE from above but stays well below SMaT.
pub fn run_extra_comparison(cfg: &HarnessConfig) -> Vec<Value> {
    println!("\n== Extra: five-engine comparison (GFLOP/s, N=8) ==");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "matrix", "SMaT", "DASP", "Magicube", "cuSPARSE", "Sputnik"
    );
    let gpu = gpu();
    let mut records = Vec::new();
    for m in table1() {
        let a: Csr<F16> = m.generate(cfg.scale);
        let b = dense_b::<F16>(a.ncols(), 8);
        let mut cells = Vec::new();
        for e in Engine::all_with_extras() {
            let alg = if e == Engine::Smat {
                ReorderAlgorithm::smat_default()
            } else {
                ReorderAlgorithm::Identity
            };
            let meas = run_engine(e, &gpu, &a, &b, alg);
            records.push(json!({
                "experiment": "extra-comparison",
                "matrix": m.name,
                "engine": meas.engine,
                "gflops": meas.gflops,
                "time_ms": meas.time_ms,
                "error": meas.error,
            }));
            cells.push(meas.gflops);
        }
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10}",
            m.name,
            fmt_cell(cells[0]),
            fmt_cell(cells[1]),
            fmt_cell(cells[2]),
            fmt_cell(cells[3]),
            fmt_cell(cells[4])
        );
    }
    records
}

/// Roofline classification: which resource bounds each engine on a mesh
/// matrix and on the band sweep extremes — the mechanism behind the Fig. 9
/// crossovers (SpMM at N=8 is bandwidth-bound; scalar kernels drown in
/// latency/decode; dense TC GEMM at large N is compute-bound).
pub fn run_roofline(cfg: &HarnessConfig) -> Vec<Value> {
    use smat_gpusim::Bound;
    let gpu = gpu();
    println!("\n== Roofline: busiest-SM cycle breakdown (N=8) ==");
    println!(
        "{:<14} {:<10} {:>12} {:>12} {:>12}  bound",
        "workload", "engine", "comp cyc", "mem cyc", "latency cyc"
    );
    let mut records = Vec::new();
    let mut cases: Vec<(String, Csr<F16>)> = vec![
        (
            "cop20k_A".to_string(),
            smat_workloads::by_name("cop20k_A")
                .unwrap()
                .generate(cfg.scale),
        ),
        (
            format!("band b={}", cfg.band_n / 64),
            band(cfg.band_n / 4, cfg.band_n / 256),
        ),
    ];
    cases.push((
        format!("band dense {}", cfg.band_n / 4),
        band(cfg.band_n / 4, cfg.band_n / 4),
    ));
    for (name, a) in &cases {
        let b = dense_b::<F16>(a.ncols(), 8);
        for e in Engine::all_with_extras().iter() {
            let alg = if *e == Engine::Smat {
                ReorderAlgorithm::smat_default()
            } else {
                ReorderAlgorithm::Identity
            };
            let meas = crate::runner::run_engine_profiled(*e, &gpu, a, &b, alg);
            let (p, bound) = match &meas {
                Some(p) => (*p, p.bound()),
                None => continue,
            };
            let _: Bound = bound;
            println!(
                "{:<14} {:<10} {:>12.0} {:>12.0} {:>12.0}  {}",
                name,
                e.name(),
                p.comp_cycles,
                p.mem_cycles,
                p.exposure_cycles,
                bound
            );
            records.push(json!({
                "experiment": "roofline",
                "workload": name,
                "engine": e.name(),
                "comp_cycles": p.comp_cycles,
                "mem_cycles": p.mem_cycles,
                "exposure_cycles": p.exposure_cycles,
                "bound": bound.to_string(),
            }));
        }
    }
    records
}

// ---------------------------------------------------------------------------
// Ablations beyond the paper
// ---------------------------------------------------------------------------

/// Block-size ablation: 16×16 (M16N8K16) vs 16×8 (M16N8K8) blocks.
pub fn run_ablation_block_size(cfg: &HarnessConfig) -> Vec<Value> {
    let gpu = gpu();
    println!("\n== Ablation: BCSR block shape (GFLOP/s, N=8) ==");
    println!("{:<14} {:>12} {:>12}", "matrix", "16x16", "16x8");
    let mut records = Vec::new();
    for m in table1() {
        let a: Csr<F16> = m.generate(cfg.scale);
        let b = dense_b::<F16>(a.ncols(), 8);
        let mut cells = Vec::new();
        for (h, w) in [(16usize, 16usize), (16, 8)] {
            let config = SmatConfig {
                block_h: h,
                block_w: w,
                device: gpu.cfg.clone(),
                ..SmatConfig::default()
            };
            let run = Smat::prepare(&a, config).spmm(&b);
            records.push(json!({
                "experiment": "ablation-block-size",
                "matrix": m.name,
                "block": format!("{h}x{w}"),
                "gflops": run.report.gflops(),
                "nblocks": run.report.nblocks,
            }));
            cells.push(run.report.gflops());
        }
        println!(
            "{:<14} {:>12} {:>12}",
            m.name,
            fmt_cell(cells[0]),
            fmt_cell(cells[1])
        );
    }
    records
}

/// Reordering-algorithm shootout (the §IV-C candidate comparison).
pub fn run_ablation_reorder(cfg: &HarnessConfig) -> Vec<Value> {
    println!("\n== Ablation: reordering algorithms (BCSR block count, 16x16) ==");
    let algs = [
        ReorderAlgorithm::Identity,
        ReorderAlgorithm::JaccardRows { tau: 0.7 },
        ReorderAlgorithm::ReverseCuthillMcKee,
        ReorderAlgorithm::Saad { tau: 0.6 },
        ReorderAlgorithm::GrayCode,
        ReorderAlgorithm::Bisection,
        ReorderAlgorithm::DegreeSort,
    ];
    print!("{:<14}", "matrix");
    for alg in &algs {
        print!(" {:>13}", alg.name());
    }
    println!();
    let mut records = Vec::new();
    for m in table1() {
        let a: Csr<F16> = m.generate(cfg.scale);
        print!("{:<14}", m.name);
        for alg in algs {
            let (_, effect) = evaluate_reordering(&a, alg, 16, 16);
            print!(" {:>13}", effect.after.nblocks);
            records.push(json!({
                "experiment": "ablation-reorder",
                "matrix": m.name,
                "algorithm": alg.name(),
                "nblocks": effect.after.nblocks,
                "reduction": effect.block_reduction(),
            }));
        }
        println!();
    }
    records
}

/// Jaccard threshold sweep on the matrices where clustering matters.
pub fn run_ablation_tau(cfg: &HarnessConfig) -> Vec<Value> {
    println!("\n== Ablation: Jaccard threshold tau (block count) ==");
    let taus = [0.3, 0.5, 0.6, 0.7, 0.8, 0.9];
    print!("{:<14}", "matrix");
    for t in taus {
        print!(" {:>9}", format!("tau={t}"));
    }
    println!();
    let mut records = Vec::new();
    for name in ["mip1", "cop20k_A", "dc2"] {
        let m = smat_workloads::by_name(name).unwrap();
        let a: Csr<F16> = m.generate(cfg.scale);
        print!("{name:<14}");
        for tau in taus {
            let (_, effect) =
                evaluate_reordering(&a, ReorderAlgorithm::JaccardRows { tau }, 16, 16);
            print!(" {:>9}", effect.after.nblocks);
            records.push(json!({
                "experiment": "ablation-tau",
                "matrix": name,
                "tau": tau,
                "nblocks": effect.after.nblocks,
            }));
        }
        println!();
    }
    records
}

/// Device sensitivity: the same SpMM on the A100 and H100 models. The
/// conclusions (who wins, bounds) must not be A100 artifacts; the expected
/// H100 speedup on bandwidth-bound SpMM tracks the ~2.2x bandwidth ratio,
/// not the ~3.2x compute ratio.
pub fn run_devices(cfg: &HarnessConfig) -> Vec<Value> {
    use smat_gpusim::DeviceConfig;
    println!("\n== Device sensitivity: A100 vs H100 (GFLOP/s, N=8) ==");
    println!(
        "{:<14} {:>12} {:>12} {:>10}",
        "matrix", "A100", "H100", "speedup"
    );
    let mut records = Vec::new();
    for m in table1() {
        let a: Csr<F16> = m.generate(cfg.scale);
        let b = dense_b::<F16>(a.ncols(), 8);
        let mut cells = Vec::new();
        for device in [
            DeviceConfig::a100_sxm4_40gb(),
            DeviceConfig::h100_sxm5_80gb(),
        ] {
            let name = device.name;
            let config = SmatConfig {
                device,
                ..SmatConfig::default()
            };
            let run = Smat::prepare(&a, config).spmm(&b);
            records.push(json!({
                "experiment": "devices",
                "matrix": m.name,
                "device": name,
                "gflops": run.report.gflops(),
                "bound": format!("{}", run.report.launch.profile.bound()),
            }));
            cells.push(run.report.gflops());
        }
        println!(
            "{:<14} {:>12} {:>12} {:>9.2}x",
            m.name,
            fmt_cell(cells[0]),
            fmt_cell(cells[1]),
            cells[1] / cells[0]
        );
    }
    records
}

/// Scheduling ablation: the paper's static 2D grid vs LPT pre-balancing
/// (what a persistent-kernel implementation achieves). Addresses §VI-E
/// directly: dc2's skewed blocks-per-row distribution is the static
/// schedule's worst case.
pub fn run_ablation_schedule(cfg: &HarnessConfig) -> Vec<Value> {
    let gpu = gpu();
    println!("\n== Ablation: warp scheduling (GFLOP/s, N=8) ==");
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>14} {:>14}",
        "matrix", "static-2D", "balanced", "speedup", "imbal static", "imbal balanced"
    );
    let mut records = Vec::new();
    for m in table1() {
        let a: Csr<F16> = m.generate(cfg.scale);
        let b = dense_b::<F16>(a.ncols(), 8);
        let mut cells: Vec<(f64, f64)> = Vec::new();
        for schedule in [Schedule::Static2D, Schedule::BalancedGreedy] {
            let config = SmatConfig {
                schedule,
                device: gpu.cfg.clone(),
                ..SmatConfig::default()
            };
            let run = Smat::prepare(&a, config).spmm(&b);
            records.push(json!({
                "experiment": "ablation-schedule",
                "matrix": m.name,
                "schedule": format!("{schedule:?}"),
                "gflops": run.report.gflops(),
                "imbalance": run.report.launch.sm_imbalance(),
            }));
            cells.push((run.report.gflops(), run.report.launch.sm_imbalance()));
        }
        println!(
            "{:<14} {:>12} {:>12} {:>9.2}x {:>14.2} {:>14.2}",
            m.name,
            fmt_cell(cells[0].0),
            fmt_cell(cells[1].0),
            cells[1].0 / cells[0].0,
            cells[0].1,
            cells[1].1
        );
    }
    records
}

/// Accumulation-mode ablation: wide (f32) vs narrow (f16, Listing 1) —
/// correctness impact measured as max |wide - narrow| on a band workload.
pub fn run_ablation_accum(cfg: &HarnessConfig) -> Vec<Value> {
    let gpu = gpu();
    let n = (cfg.band_n / 4).max(1024);
    // All-positive values and a wide band push row sums past 2048, where
    // f16 has a 2-ulp spacing and per-block (narrow) rounding diverges from
    // a single wide rounding.
    let pattern = band::<F16>(n, n / 2);
    let a = {
        let values: Vec<F16> = pattern
            .values()
            .iter()
            .map(|v| F16::from_f64(v.to_f64().abs()))
            .collect();
        Csr::from_raw(
            n,
            n,
            pattern.row_ptr().to_vec(),
            pattern.col_idx().to_vec(),
            values,
        )
    };
    let b = smat_formats::Dense::from_fn(n, 8, |_, _| F16::from_f64(1.0));
    let mk = |accum| SmatConfig {
        accum,
        device: gpu.cfg.clone(),
        reorder: ReorderAlgorithm::Identity,
        ..SmatConfig::default()
    };
    let wide = Smat::prepare(&a, mk(AccumMode::Wide)).spmm(&b);
    let narrow = Smat::prepare(&a, mk(AccumMode::Narrow)).spmm(&b);
    let diff = wide.c.max_abs_diff(&narrow.c);
    println!("\n== Ablation: accumulation mode, band {n}x{n} b=n/2, positive values ==");
    println!("max |wide(f32-acc) - narrow(f16-acc)| = {diff}");
    vec![json!({
        "experiment": "ablation-accum",
        "band_n": n,
        "max_abs_diff": diff,
    })]
}

// ---------------------------------------------------------------------------
// Serving (beyond the paper: multi-tenant engine over the prepared pipeline)
// ---------------------------------------------------------------------------

/// Serving study: replays a Zipf-skewed request trace through `smat-serve`
/// under several pool shapes and batching budgets, reporting simulated
/// makespan (max per-device kernel time), throughput, amortization factor,
/// and registry/plan cache effectiveness. The paper's prepare-once cost
/// (`T_init`) is paid per distinct matrix; everything after is `T_e`.
pub fn run_serve(cfg: &HarnessConfig) -> Vec<Value> {
    use smat_formats::Dense;
    use smat_serve::{Server, ServerConfig};
    use smat_workloads::{random_uniform, serve_trace, TraceSpec};

    let requests = ((2560.0 * cfg.scale) as usize).clamp(200, 4096);
    let n_matrices = 4;
    let dim = 128;
    let spec = TraceSpec {
        requests,
        n_matrices,
        widths: vec![8, 16, 32],
        zipf_s: 1.0,
        seed: 42,
        large_matrices: 0,
        mutate_rate: 0.0,
    };
    let trace = serve_trace(&spec);
    let matrices: Vec<Csr<F16>> = (0..n_matrices)
        .map(|m| random_uniform(dim, dim, 0.88 + 0.02 * m as f64, 42 + m as u64))
        .collect();

    println!(
        "\n== Serving: {requests} requests, {n_matrices} matrices ({dim}x{dim}), Zipf s={} ==",
        spec.zipf_s
    );
    println!(
        "{:>7} {:>7} {:>8} {:>10} {:>12} {:>12} {:>10} {:>9}",
        "devices",
        "budget",
        "batches",
        "mean batch",
        "sim span ms",
        "req/s (sim)",
        "p99 ms",
        "hit rate"
    );

    let mut records = Vec::new();
    for (devices, budget) in [(1usize, 1usize), (1, 64), (2, 64), (4, 64), (2, 128)] {
        let server: Server<F16> = Server::new(ServerConfig {
            devices,
            column_budget: budget,
            registry_capacity: n_matrices,
            ..ServerConfig::default()
        });
        let keys: Vec<_> = matrices.iter().map(|a| server.register(a)).collect();
        for window in trace.chunks(32) {
            server.pause();
            let futures: Vec<_> = window
                .iter()
                .map(|req| {
                    let b = Dense::from_fn(dim, req.n_cols, |i, j| {
                        F16::from_f64((((i + 3 * j + 7 * req.seq) % 9) as f64 - 4.0) / 2.0)
                    });
                    server.submit(keys[req.matrix], b)
                })
                .collect();
            server.resume();
            for fut in futures {
                fut.wait().expect("request served");
            }
        }
        let stats = server.stats();
        // Devices run concurrently: the simulated makespan is the busiest
        // device's kernel time, not the pool sum.
        let makespan_ms = stats
            .devices
            .iter()
            .map(|d| d.sim_ms)
            .fold(0.0f64, f64::max);
        let rps_sim = if makespan_ms > 0.0 {
            stats.completed as f64 / (makespan_ms / 1e3)
        } else {
            0.0
        };
        println!(
            "{:>7} {:>7} {:>8} {:>10.2} {:>12.3} {:>12.0} {:>10.3} {:>9.3}",
            devices,
            budget,
            stats.batches,
            stats.mean_batch(),
            makespan_ms,
            rps_sim,
            stats.latency.p99_ms,
            stats.registry.hit_rate()
        );
        records.push(json!({
            "experiment": "serve",
            "devices": devices,
            "column_budget": budget,
            "requests": requests,
            "completed": stats.completed,
            "batches": stats.batches,
            "mean_batch": stats.mean_batch(),
            "max_batch": stats.max_batch,
            "sim_ms_makespan": makespan_ms,
            "sim_ms_total": stats.sim_ms_total,
            "throughput_rps_sim": rps_sim,
            "registry_hit_rate": stats.registry.hit_rate(),
            "registry_prepares": stats.registry.prepares,
            "plan_hit_rate": stats.plans.hit_rate(),
            "latency_p50_ms": stats.latency.p50_ms,
            "latency_p99_ms": stats.latency.p99_ms,
        }));
    }
    records
}
