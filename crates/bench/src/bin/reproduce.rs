//! Regenerates the paper's tables and figures on the simulated A100.
//!
//! Usage:
//!   reproduce [--scale S] [--band-n N] [--full] [--json FILE]
//!             [--trace FILE] <experiments...>
//!
//! Experiments: table1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9a fig9b fig10
//!              ablations all

use std::io::Write;

use smat_bench::experiments as exp;
use smat_bench::{Engine, HarnessConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = HarnessConfig::default();
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cfg.scale = args[i].parse().expect("--scale takes a float");
            }
            "--band-n" => {
                i += 1;
                cfg.band_n = args[i].parse().expect("--band-n takes an integer");
            }
            "--full" => cfg = HarnessConfig::full(),
            "--json" => {
                i += 1;
                json_path = Some(args[i].clone());
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args[i].clone());
            }
            "--help" | "-h" => {
                print_help();
                return;
            }
            other => wanted.push(other.to_string()),
        }
        i += 1;
    }
    if wanted.is_empty() {
        print_help();
        return;
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = [
            "table1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9a",
            "fig9b",
            "fig10",
            "extra",
            "roofline",
            "precision",
            "devices",
            "serve",
            "ablations",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
    }

    println!(
        "# SMaT reproduction harness — scale {}, band_n {}, device A100-SXM4-40GB (simulated)",
        cfg.scale, cfg.band_n
    );

    if trace_path.is_some() {
        smat_trace::enable();
    }

    let mut records = Vec::new();
    for w in &wanted {
        let mut r = match w.as_str() {
            "table1" => exp::run_table1(&cfg),
            "fig2" => exp::run_fig2(&cfg),
            "fig3" => exp::run_fig3(&cfg),
            "fig4" => exp::run_reorder_effect(&cfg, Engine::Smat),
            "fig5" => exp::run_reorder_effect(&cfg, Engine::Dasp),
            "fig6" => exp::run_reorder_effect(&cfg, Engine::Magicube),
            "fig7" => exp::run_reorder_effect(&cfg, Engine::Cusparse),
            "fig8" => exp::run_fig8(&cfg),
            "fig9a" => exp::run_fig9(&cfg, 8),
            "fig9b" => exp::run_fig9(&cfg, 128),
            "fig10" => exp::run_fig10(&cfg),
            "extra" => exp::run_extra_comparison(&cfg),
            "roofline" => exp::run_roofline(&cfg),
            "precision" => exp::run_precision(&cfg),
            "devices" => exp::run_devices(&cfg),
            "serve" => exp::run_serve(&cfg),
            "ablations" => {
                let mut v = exp::run_ablation_block_size(&cfg);
                v.extend(exp::run_ablation_reorder(&cfg));
                v.extend(exp::run_ablation_tau(&cfg));
                v.extend(exp::run_ablation_accum(&cfg));
                v.extend(exp::run_ablation_schedule(&cfg));
                v
            }
            other => {
                eprintln!("unknown experiment '{other}' (see --help)");
                std::process::exit(2);
            }
        };
        records.append(&mut r);
    }

    if let Some(path) = trace_path {
        smat_trace::disable();
        let events = smat_trace::drain();
        println!("\n{}", smat_trace::summary_table(&events));
        std::fs::write(&path, smat_trace::chrome_trace_json(&events)).expect("write trace output");
        println!("[wrote {} trace events to {path}]", events.len());
    }

    if let Some(path) = json_path {
        let mut f = std::fs::File::create(&path).expect("create json output");
        for r in &records {
            writeln!(f, "{}", serde_json::to_string(r).unwrap()).unwrap();
        }
        println!("\n[wrote {} records to {path}]", records.len());
    }
}

fn print_help() {
    println!(
        "reproduce — regenerate the SMaT paper's tables and figures (simulated A100)

USAGE:
  reproduce [OPTIONS] <EXPERIMENTS...>

EXPERIMENTS:
  table1   benchmark matrix set           fig8    library comparison + summary
  fig2     perf model / T,B,C ablation    fig9a   band sweep, N=8 (incl. cuBLAS)
  fig3     blocks-per-row distributions   fig9b   band sweep, N=128
  fig4     reordering effect on SMaT      fig10   wall-clock vs N (cop20k_A)
  fig5     reordering effect on DASP      ablations  block size / reorder algs /
  fig6     reordering effect on Magicube             tau sweep / accumulation
  fig7     reordering effect on cuSPARSE  extra   5-engine comparison (+Sputnik)
  roofline busiest-SM cycle breakdown   precision  f16/bf16/i8 study
  devices  A100 vs H100 sensitivity     serve   multi-tenant serving study
                                          all     everything above

OPTIONS:
  --scale S    mimic scale factor (default 0.1; paper sizes at 1.0)
  --band-n N   band matrix dimension (default 4096; paper uses 16384)
  --full       shorthand for --scale 1.0 --band-n 16384
  --json FILE  also write JSON-lines records
  --trace FILE also write a Chrome Trace Event JSON (open in Perfetto)"
    );
}
