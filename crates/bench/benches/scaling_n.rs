//! Fig. 10 companion bench: SMaT wall-clock as the outer dimension N of the
//! dense operand grows (host-side; simulated times come from
//! `reproduce fig10`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smat::{Smat, SmatConfig};
use smat_formats::{Csr, F16};
use smat_workloads::{by_name, dense_b};

fn bench_scaling_n(c: &mut Criterion) {
    let a: Csr<F16> = by_name("cop20k_A").unwrap().generate(0.005);
    let engine = Smat::prepare(&a, SmatConfig::default());
    let mut group = c.benchmark_group("fig10_scaling_n");
    group.sample_size(10);
    for n in [1usize, 8, 32, 128] {
        let b = dense_b::<F16>(a.ncols(), n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &b, |bch, b| {
            bch.iter(|| std::hint::black_box(engine.spmm(b)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling_n);
criterion_main!(benches);
