//! Admission-planner benchmark: simulated SpMM time under the planner's
//! chosen configuration versus the fixed paper default, on the mixed
//! rmat/dc2-class workloads the serving engine admits in practice.
//!
//! Two kinds of output per matrix:
//!
//! * deterministic `plan_sim/<name>: ...` lines with the simulated kernel
//!   milliseconds of both arms and the planner's prediction — these are
//!   what `scripts/bench_plan.sh` commits to `BENCH_PR8.json`;
//! * criterion wall-clock arms (`plan/default/<name>`,
//!   `plan/planned/<name>`) over the prepared handles, as a host-side
//!   sanity check that the simulated ordering is not an artifact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smat::{Calibration, PlanSpace, Planner, Smat, SmatConfig};
use smat_formats::{Csr, F16};
use smat_workloads::{by_name, calibration_bands, dense_b, rmat};

const N_COLS: usize = 32;

fn mixed_workloads() -> Vec<(&'static str, Csr<F16>)> {
    vec![
        ("dc2", by_name("dc2").unwrap().generate(0.005)),
        ("cop20k_A", by_name("cop20k_A").unwrap().generate(0.005)),
        ("rmat_s9", rmat(9, 6000, 42)),
        ("rmat_s10_sparse", rmat(10, 4000, 7)),
    ]
}

fn bench_plan(c: &mut Criterion) {
    let base = SmatConfig::default();
    let planner = Planner::with_calibration(
        PlanSpace::default(),
        Calibration::fit_on(&calibration_bands::<F16>(256), N_COLS, &base),
    );

    let mut group = c.benchmark_group("plan");
    group.sample_size(10);
    for (name, a) in mixed_workloads() {
        let b = dense_b::<F16>(a.ncols(), N_COLS);
        let d = planner.decide(&a, N_COLS, &base);
        let default_engine = Smat::prepare(&a, base.clone());
        let planned_engine = Smat::prepare_with_plan(&a, d.apply(&base), d);
        let default_ms = default_engine.spmm(&b).report.elapsed_ms();
        let planned_ms = planned_engine.spmm(&b).report.elapsed_ms();
        // Deterministic record: the simulator is exact, so these numbers
        // are reproducible and safe to commit as evidence.
        println!(
            "plan_sim/{name}: default={default_ms:.6} ms planned={planned_ms:.6} ms \
             predicted={:.6} ms config={}x{}/{}/tc={}",
            d.predicted_ms,
            d.block_h,
            d.block_w,
            d.reorder.name(),
            d.use_tc
        );
        group.bench_with_input(BenchmarkId::new("default", name), &b, |bch, b| {
            bch.iter(|| std::hint::black_box(default_engine.spmm(b)));
        });
        group.bench_with_input(BenchmarkId::new("planned", name), &b, |bch, b| {
            bch.iter(|| std::hint::black_box(planned_engine.spmm(b)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plan);
criterion_main!(benches);
