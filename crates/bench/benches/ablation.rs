//! Fig. 2 companion bench: wall-clock cost of the simulated SMaT kernel for
//! every T/B/C optimization combination on a band workload. (The *simulated
//! device* times are produced by `reproduce fig2`; this Criterion bench
//! measures the host-side execution of the library itself.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smat::{OptFlags, Smat, SmatConfig};
use smat_formats::F16;
use smat_reorder::ReorderAlgorithm;
use smat_workloads::{band, dense_b};

fn bench_ablation(c: &mut Criterion) {
    let n = 512;
    let a = band::<F16>(n, 32);
    let b = dense_b::<F16>(n, 8);

    let mut group = c.benchmark_group("fig2_ablation");
    group.sample_size(10);
    for opts in OptFlags::all_combinations() {
        let cfg = SmatConfig {
            reorder: ReorderAlgorithm::Identity,
            opts,
            ..SmatConfig::default()
        };
        let engine = Smat::prepare(&a, cfg);
        group.bench_with_input(
            BenchmarkId::from_parameter(opts.label()),
            &engine,
            |bch, engine| bch.iter(|| std::hint::black_box(engine.spmm(&b))),
        );
    }
    group.finish();

    // Preparation (reorder + BCSR conversion) cost, separately.
    let mut prep = c.benchmark_group("fig2_prepare");
    prep.sample_size(10);
    prep.bench_function("prepare_band512", |bch| {
        bch.iter(|| std::hint::black_box(Smat::prepare(&a, SmatConfig::default())));
    });
    prep.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
