//! Microbenches of the format substrate: half-precision conversion, format
//! conversions (CSR→BCSR, CSR→SR-BCRS), and row permutation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smat_formats::{scalar, Bcsr, Csr, Permutation, SrBcrs, F16};
use smat_workloads::{by_name, random_uniform};

fn bench_f16_conversion(c: &mut Criterion) {
    let values: Vec<f32> = (0..4096).map(|i| (i as f32 - 2048.0) * 0.37).collect();
    let mut group = c.benchmark_group("f16_conversion");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("f32_to_f16_x4096", |b| {
        b.iter(|| {
            values
                .iter()
                .map(|&v| scalar::f32_to_f16_bits(v.to_bits()))
                .fold(0u32, |acc, h| acc.wrapping_add(h as u32))
        });
    });
    let halves: Vec<u16> = (0..4096).collect();
    group.bench_function("f16_to_f32_x4096", |b| {
        b.iter(|| {
            halves
                .iter()
                .map(|&h| scalar::f16_bits_to_f32(h))
                .fold(0u32, u32::wrapping_add)
        });
    });
    group.finish();
}

fn bench_format_conversion(c: &mut Criterion) {
    let a: Csr<F16> = by_name("consph").unwrap().generate(0.01);
    let mut group = c.benchmark_group("format_conversion");
    group.sample_size(10);
    group.throughput(Throughput::Elements(a.nnz() as u64));
    group.bench_function("csr_to_bcsr_16x16", |b| {
        b.iter(|| std::hint::black_box(Bcsr::from_csr(&a, 16, 16)));
    });
    group.bench_function("csr_to_srbcrs_8x4", |b| {
        b.iter(|| std::hint::black_box(SrBcrs::from_csr(&a.cast::<i16>(), 8, 4)));
    });
    group.bench_function("csr_transpose", |b| {
        b.iter(|| std::hint::black_box(a.transpose()));
    });
    group.finish();
}

fn bench_permutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_permutation");
    group.sample_size(10);
    for sparsity in [0.99f64, 0.90] {
        let a: Csr<F16> = random_uniform(2000, 2000, sparsity, 5);
        let perm = Permutation::from_vec((0..2000).map(|i| (i * 997) % 2000).collect());
        group.throughput(Throughput::Elements(a.nnz() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("sparsity_{sparsity}")),
            &a,
            |b, a| b.iter(|| std::hint::black_box(a.permute_rows(&perm))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_f16_conversion,
    bench_format_conversion,
    bench_permutation
);
criterion_main!(benches);
