//! Preprocessing bench: wall-clock of every reordering algorithm of §IV-C
//! on a scrambled FEM mesh (the one-time inspector cost of the pipeline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smat_formats::{Csr, F16};
use smat_reorder::{reorder, ReorderAlgorithm};
use smat_workloads::by_name;

fn bench_reorder_algos(c: &mut Criterion) {
    let a: Csr<F16> = by_name("cop20k_A").unwrap().generate(0.01);
    let algs = [
        ReorderAlgorithm::JaccardRows { tau: 0.7 },
        ReorderAlgorithm::JaccardRowsCols { tau: 0.7 },
        ReorderAlgorithm::ReverseCuthillMcKee,
        ReorderAlgorithm::Saad { tau: 0.6 },
        ReorderAlgorithm::GrayCode,
        ReorderAlgorithm::Bisection,
        ReorderAlgorithm::DegreeSort,
    ];
    let mut group = c.benchmark_group("reorder_algorithms");
    group.sample_size(10);
    for alg in algs {
        group.bench_with_input(
            BenchmarkId::from_parameter(alg.name()),
            &alg,
            |bch, &alg| bch.iter(|| std::hint::black_box(reorder(&a, alg, 16, 16))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reorder_algos);
criterion_main!(benches);
