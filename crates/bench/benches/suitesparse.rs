//! Fig. 8 companion bench: host-side wall-clock of all four engines on
//! Table I mimics (small scale so `cargo bench` stays quick; the simulated
//! figures come from `reproduce fig8`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smat_bench::{run_engine, Engine};
use smat_formats::{Csr, F16};
use smat_gpusim::Gpu;
use smat_reorder::ReorderAlgorithm;
use smat_workloads::{by_name, dense_b};

fn bench_suitesparse(c: &mut Criterion) {
    let gpu = Gpu::a100();
    let mut group = c.benchmark_group("fig8_suitesparse");
    group.sample_size(10);
    for name in ["cop20k_A", "dc2"] {
        let a: Csr<F16> = by_name(name).unwrap().generate(0.005);
        let b = dense_b::<F16>(a.ncols(), 8);
        for engine in Engine::all() {
            group.bench_with_input(
                BenchmarkId::new(engine.name(), name),
                &engine,
                |bch, &engine| {
                    bch.iter(|| {
                        std::hint::black_box(run_engine(
                            engine,
                            &gpu,
                            &a,
                            &b,
                            ReorderAlgorithm::Identity,
                        ))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_suitesparse);
criterion_main!(benches);
