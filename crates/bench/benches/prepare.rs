//! Prepare-path bench: the two axes the parallel prepare pipeline opens —
//! reorder strategy (exact Jaccard vs LSH-bucketed Jaccard vs RCM) and
//! BCSR conversion (sequential vs rayon-parallel two-pass) — across three
//! synthetic sizes. `scripts/bench_prepare.sh` produces the committed
//! `BENCH_PR5.json` evidence from the `prepare_perf` example; this bench
//! is the statistics-grade criterion view of the same comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smat_formats::{Bcsr, Csr, F16};
use smat_reorder::{reorder, ReorderAlgorithm};
use smat_workloads::{mesh2d, random_uniform, scramble_rows};

fn matrices() -> Vec<(&'static str, Csr<F16>)> {
    vec![
        ("mesh2d-2k", scramble_rows(&mesh2d(45, 45), 1)),
        ("mesh2d-8k", scramble_rows(&mesh2d(90, 90), 1)),
        ("rand-16k", random_uniform(16_384, 16_384, 0.9996, 7)),
    ]
}

fn bench_reorder_strategies(c: &mut Criterion) {
    let algs = [
        ReorderAlgorithm::JaccardRows { tau: 0.7 },
        ReorderAlgorithm::JaccardLsh {
            tau: 0.7,
            bands: 8,
            rows_per_band: 1,
        },
        ReorderAlgorithm::ReverseCuthillMcKee,
    ];
    for (name, a) in matrices() {
        let mut group = c.benchmark_group(format!("prepare_reorder/{name}"));
        group.sample_size(10);
        for alg in algs {
            group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, &alg| {
                b.iter(|| std::hint::black_box(reorder(&a, alg, 16, 16)));
            });
        }
        group.finish();
    }
}

fn bench_bcsr_conversion(c: &mut Criterion) {
    for (name, a) in matrices() {
        let mut group = c.benchmark_group(format!("prepare_convert/{name}"));
        group.sample_size(10);
        group.bench_function("sequential", |b| {
            b.iter(|| std::hint::black_box(Bcsr::from_csr(&a, 16, 16)));
        });
        group.bench_function("parallel", |b| {
            b.iter(|| std::hint::black_box(Bcsr::from_csr_parallel(&a, 16, 16)));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_reorder_strategies, bench_bcsr_conversion);
criterion_main!(benches);
