//! Fig. 9 companion bench: SMaT kernel wall-clock as the band matrix
//! densifies (host-side; simulated GFLOP/s come from `reproduce fig9a/9b`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smat::{Smat, SmatConfig};
use smat_formats::F16;
use smat_reorder::ReorderAlgorithm;
use smat_workloads::{band, dense_b};

fn bench_band_sweep(c: &mut Criterion) {
    let n = 1024;
    let b = dense_b::<F16>(n, 8);
    let mut group = c.benchmark_group("fig9_band_sweep");
    group.sample_size(10);
    for bw in [16usize, 64, 256] {
        let a = band::<F16>(n, bw);
        let cfg = SmatConfig {
            reorder: ReorderAlgorithm::Identity,
            ..SmatConfig::default()
        };
        let engine = Smat::prepare(&a, cfg);
        group.throughput(Throughput::Elements(2 * a.nnz() as u64 * 8));
        group.bench_with_input(BenchmarkId::from_parameter(bw), &engine, |bch, engine| {
            bch.iter(|| std::hint::black_box(engine.spmm(&b)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_band_sweep);
criterion_main!(benches);
