//! Host-side serving overhead: submit→complete through the `smat-serve`
//! engine (registry lookup + plan cache + queue + oneshot wakeup) versus a
//! direct call on the prepared handle. The difference is the engine's
//! per-request tax; simulated kernel time is identical by construction.

use criterion::{criterion_group, criterion_main, Criterion};
use smat::{Smat, SmatConfig};
use smat_formats::{Csr, F16};
use smat_gpusim::FaultConfig;
use smat_serve::{RecoveryPolicy, Server, ServerConfig};
use smat_shard::estimated_csr_bytes;
use smat_workloads::{dense_b, random_uniform};

fn bench_serve_overhead(c: &mut Criterion) {
    let a: Csr<F16> = random_uniform(128, 128, 0.9, 42);
    let b = dense_b::<F16>(128, 8);

    let direct = Smat::prepare(&a, SmatConfig::default());
    let server: Server<F16> = Server::new(ServerConfig {
        devices: 1,
        ..ServerConfig::default()
    });
    let key = server.register(&a);

    let mut group = c.benchmark_group("serve_engine");
    group.sample_size(20);
    group.bench_function("direct_spmm", |bch| {
        bch.iter(|| std::hint::black_box(direct.spmm(&b)));
    });
    group.bench_function("submit_wait", |bch| {
        bch.iter(|| {
            let resp = server.submit(key, b.clone()).wait().expect("served");
            std::hint::black_box(resp)
        });
    });

    // The recovery tax: same path with the chaos layer armed at a blended
    // 20% fault rate (zero backoff so the measurement is retry machinery,
    // not sleeps). The delta over `submit_wait` is what fault survival
    // costs per request.
    let chaotic: Server<F16> = Server::new(ServerConfig {
        devices: 1,
        chaos: Some(FaultConfig::blended(42, 0.2)),
        recovery: RecoveryPolicy {
            backoff_base_us: 0,
            fallback_attempts: 64,
            ..RecoveryPolicy::default()
        },
        ..ServerConfig::default()
    });
    let chaos_key = chaotic.register(&a);
    group.bench_function("submit_wait_chaos_r0.2", |bch| {
        bch.iter(|| {
            let resp = chaotic
                .submit(chaos_key, b.clone())
                .wait()
                .expect("recovery served");
            std::hint::black_box(resp)
        });
    });

    // The fan-out tax: the same request against the same matrix, but
    // registered under a shard budget that splits it three ways across a
    // three-device pool. The delta over `submit_wait` prices the two-level
    // scheduler — partition lookup, three sub-request enqueues, and the
    // join's row concatenation — per sharded request.
    let shard_a: Csr<F16> = random_uniform(384, 128, 0.9, 42);
    let sharded: Server<F16> = Server::new(ServerConfig {
        devices: 3,
        shard_max_bytes: Some(estimated_csr_bytes(&shard_a).div_ceil(3)),
        ..ServerConfig::default()
    });
    let shard_key = sharded.register(&shard_a);
    group.bench_function("submit_wait_sharded_x3", |bch| {
        bch.iter(|| {
            let resp = sharded
                .submit(shard_key, b.clone())
                .wait()
                .expect("sharded served");
            std::hint::black_box(resp)
        });
    });

    // The sanitize tax: the serve engine's locks are all
    // `smat_sanitize::sync` wrappers, whose disabled-mode cost over raw
    // `std::sync` is a single relaxed atomic load per acquire. The three
    // arms below isolate that cost on an uncontended lock (the common
    // case on the submit path): raw std baseline, checked-but-disabled
    // (the shipping configuration — must be within noise of raw), and
    // checked-with-lockdep-recording (what `--sanitize` pays).
    const LOCK_OPS: usize = 10_000;
    let std_mutex = std::sync::Mutex::new(0u64);
    group.bench_function("mutex_x10k_std", |bch| {
        bch.iter(|| {
            for _ in 0..LOCK_OPS {
                *std::hint::black_box(std_mutex.lock().unwrap()) += 1;
            }
        });
    });
    let checked = smat_sanitize::sync::Mutex::labeled("bench.serve_engine", 0u64);
    group.bench_function("mutex_x10k_checked_disabled", |bch| {
        bch.iter(|| {
            for _ in 0..LOCK_OPS {
                *std::hint::black_box(checked.lock_or_recover()) += 1;
            }
        });
    });
    smat_sanitize::enable();
    group.bench_function("mutex_x10k_checked_lockdep", |bch| {
        bch.iter(|| {
            for _ in 0..LOCK_OPS {
                *std::hint::black_box(checked.lock_or_recover()) += 1;
            }
        });
    });
    smat_sanitize::disable();
    smat_sanitize::reset();
    group.finish();
}

criterion_group!(benches, bench_serve_overhead);
criterion_main!(benches);
