//! Host-side serving overhead: submit→complete through the `smat-serve`
//! engine (registry lookup + plan cache + queue + oneshot wakeup) versus a
//! direct call on the prepared handle. The difference is the engine's
//! per-request tax; simulated kernel time is identical by construction.

use criterion::{criterion_group, criterion_main, Criterion};
use smat::{Smat, SmatConfig};
use smat_formats::{Csr, F16};
use smat_serve::{Server, ServerConfig};
use smat_workloads::{dense_b, random_uniform};

fn bench_serve_overhead(c: &mut Criterion) {
    let a: Csr<F16> = random_uniform(128, 128, 0.9, 42);
    let b = dense_b::<F16>(128, 8);

    let direct = Smat::prepare(&a, SmatConfig::default());
    let server: Server<F16> = Server::new(ServerConfig {
        devices: 1,
        ..ServerConfig::default()
    });
    let key = server.register(&a);

    let mut group = c.benchmark_group("serve_engine");
    group.sample_size(20);
    group.bench_function("direct_spmm", |bch| {
        bch.iter(|| std::hint::black_box(direct.spmm(&b)));
    });
    group.bench_function("submit_wait", |bch| {
        bch.iter(|| {
            let resp = server.submit(key, b.clone()).wait().expect("served");
            std::hint::black_box(resp)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_serve_overhead);
criterion_main!(benches);
