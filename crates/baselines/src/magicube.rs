//! Magicube-like baseline: low-precision SpMM on Tensor Cores over the
//! SR-BCRS format (Li, Osawa & Hoefler, SC'22).
//!
//! Evaluated, as in the paper, in mixed-precision **int16** (same TC
//! throughput as fp16). The kernel walks row panels of column vectors; each
//! stride group feeds one MMA after an index-decode step. Two structural
//! costs distinguish it from SMaT: the stride padding (zero vectors) does
//! TC work without useful FLOP, and the preprocessing workspace multiplies
//! the memory footprint — which is why real Magicube runs out of memory on
//! the larger SuiteSparse matrices (§VI-B); the same failure is reproduced
//! here through the simulated footprint check.

use smat_formats::{srbcrs::PAD_COL, Csr, Dense, Element, SrBcrs};
use smat_gpusim::{CopyMode, Gpu, LaunchConfig, LaunchResult, SimError};

/// Column-vector length of the SR-BCRS conversion (Magicube's V).
pub const VEC_LEN: usize = 8;
/// Vectors per stride group (Magicube's S).
pub const STRIDE: usize = 4;
/// Workspace multiplier of Magicube's preprocessing/representation over the
/// raw payload (empirically large; drives the OOMs on big matrices).
pub const WORKSPACE_FACTOR: usize = 4;

/// Width of one output column tile.
const NTILE: usize = 8;

/// Prepared Magicube-like engine: the matrix converted to SR-BCRS in i16.
pub struct MagicubeLike<'a, T> {
    gpu: &'a Gpu,
    srbcrs: SrBcrs<i16>,
    nnz: usize,
    _marker: core::marker::PhantomData<T>,
}

impl<'a, T: Element> MagicubeLike<'a, T> {
    /// Converts the operand to SR-BCRS int16. Values are quantized through
    /// `f64 -> i16` rounding (exact for the integer-valued workloads; real
    /// Magicube likewise requires quantized inputs).
    pub fn new(gpu: &'a Gpu, csr: &Csr<T>) -> Self {
        let quantized: Csr<i16> = csr.cast();
        MagicubeLike {
            gpu,
            srbcrs: SrBcrs::from_csr(&quantized, VEC_LEN, STRIDE),
            nnz: csr.nnz(),
            _marker: core::marker::PhantomData,
        }
    }

    /// The internal SR-BCRS representation.
    pub fn srbcrs(&self) -> &SrBcrs<i16> {
        &self.srbcrs
    }

    /// Device-resident bytes the launch needs (payload + workspace + B + C).
    pub fn footprint_bytes(&self, b_rows: usize, n: usize) -> usize {
        self.srbcrs.payload_bytes() * WORKSPACE_FACTOR
            + self.srbcrs.index_bytes()
            + (b_rows + self.srbcrs.nrows()) * n * 2
    }

    /// `C = A·B` on the SR-BCRS int16 kernel. `B` is quantized to i16 on
    /// the way in and the int32 accumulators are rounded back to `T`.
    pub fn spmm(&self, b: &Dense<T>) -> Result<(LaunchResult, Dense<T>), SimError> {
        let s = &self.srbcrs;
        assert_eq!(s.ncols(), b.nrows(), "inner dimensions must match");
        let n = b.ncols();
        let ntiles = n.div_ceil(NTILE).max(1);
        let npanels = s.npanels();
        let n_warps = npanels * ntiles;
        let b_q: Dense<i16> = b.cast();

        let cfg = LaunchConfig {
            // Magicube's kernels (CUDA 11 era) stage through registers
            // without memcpy_async pipelining.
            copy_mode: CopyMode::Synchronous,
            label: "magicube-like[srbcrs-i16]".to_string(),
            footprint_bytes: self.footprint_bytes(b.nrows(), n),
            shared_bytes_per_block: 32 * 1024,
            assignment: None,
        };

        let (mut result, tiles) = self.gpu.launch(n_warps, &cfg, |ctx| {
            let panel = ctx.warp_id / ntiles;
            let tj = ctx.warp_id % ntiles;
            let nvec = s.vectors_in_panel(panel);
            let groups = nvec / STRIDE;

            // Panel metadata.
            ctx.global_contiguous(8 + 4 * nvec as u64);
            for _ in 0..groups {
                // One stride group: payload (V·S i16 values, contiguous),
                // one scattered B-row segment per vector, the per-vector
                // column-index decode that SR-BCRS requires (Magicube's
                // bit-packed index streams), and one int16 MMA.
                ctx.global_contiguous((VEC_LEN * STRIDE * 2) as u64);
                ctx.global_gather(STRIDE as u64, (NTILE * 2) as u64);
                ctx.shared_tx(2);
                ctx.alu(8 * STRIDE as u64 + 4);
                ctx.mma(1);
            }
            ctx.global_contiguous((VEC_LEN * NTILE * 2) as u64); // C tile

            // Functional: accumulate the panel's C tile in i32.
            let row_lo = panel * VEC_LEN;
            let mut acc = vec![0i32; VEC_LEN * NTILE];
            for v in 0..nvec {
                let col = s.col_idx()[s.panel_ptr()[panel] + v];
                if col == PAD_COL {
                    continue;
                }
                for lr in 0..VEC_LEN {
                    if row_lo + lr >= s.nrows() {
                        break;
                    }
                    let a = s.vector_element(panel, v, lr);
                    if a == 0 {
                        continue;
                    }
                    for lc in 0..NTILE {
                        let cc = tj * NTILE + lc;
                        if cc >= n {
                            break;
                        }
                        acc[lr * NTILE + lc] =
                            <i16 as Element>::mul_acc(acc[lr * NTILE + lc], a, b_q.get(col, cc));
                    }
                }
            }
            acc
        })?;

        result.totals.flop_useful = 2 * self.nnz as u64 * n as u64;

        let mut c = Dense::zeros(s.nrows(), n);
        for (warp_id, tile) in tiles.iter().enumerate() {
            let panel = warp_id / ntiles;
            let tj = warp_id % ntiles;
            for lr in 0..VEC_LEN {
                let r = panel * VEC_LEN + lr;
                if r >= s.nrows() {
                    break;
                }
                for lc in 0..NTILE {
                    let cc = tj * NTILE + lc;
                    if cc >= n {
                        break;
                    }
                    c.set(r, cc, T::from_f64(tile[lr * NTILE + lc] as f64));
                }
            }
        }
        Ok((result, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::{Coo, F16};
    use smat_gpusim::DeviceConfig;

    fn sample(nr: usize, nc: usize) -> Csr<F16> {
        let mut coo = Coo::new(nr, nc);
        for i in 0..nr {
            for j in 0..nc {
                if (i * 11 + j * 5) % 9 == 0 {
                    coo.push(i, j, F16::from_f64(((i + 2 * j) % 7) as f64 - 3.0));
                }
            }
        }
        coo.to_csr()
    }

    fn rhs(k: usize, n: usize) -> Dense<F16> {
        Dense::from_fn(k, n, |i, j| F16::from_f64(((i * j) % 5) as f64 - 2.0))
    }

    #[test]
    fn matches_reference_on_integer_values() {
        let a = sample(40, 48);
        for n in [1, 8, 11] {
            let b = rhs(48, n);
            let (_, got) = MagicubeLike::new(&Gpu::a100(), &a).spmm(&b).unwrap();
            assert_eq!(got, a.spmm_reference(&b), "N={n}");
        }
    }

    #[test]
    fn stride_padding_inflates_tc_work() {
        let a = sample(64, 64);
        let gpu = Gpu::a100();
        let engine = MagicubeLike::new(&gpu, &a);
        let (res, _) = engine.spmm(&rhs(64, 8)).unwrap();
        // Padded zero vectors do MMA work beyond the useful FLOP.
        let tc_flop = res.totals.tc_flop(2 * (VEC_LEN * STRIDE * NTILE) as u64);
        assert!(tc_flop as f64 > res.totals.flop_useful as f64);
    }

    #[test]
    fn larger_footprint_than_raw_payload() {
        let a = sample(64, 64);
        let gpu = Gpu::a100();
        let engine = MagicubeLike::new(&gpu, &a);
        assert!(
            engine.footprint_bytes(64, 8)
                > engine.srbcrs().payload_bytes() + engine.srbcrs().index_bytes()
        );
    }

    #[test]
    fn out_of_memory_on_small_device() {
        // Mirrors §VI-B: Magicube's representation blows past the device
        // memory while SMaT fits.
        let a = sample(256, 256);
        let gpu = Gpu::new(DeviceConfig {
            global_mem_bytes: 64 * 1024,
            ..DeviceConfig::a100_sxm4_40gb()
        });
        let err = MagicubeLike::new(&gpu, &a).spmm(&rhs(256, 8)).unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }));
    }
}
