//! cuSPARSE-like baseline: CSR SpMM on CUDA cores.
//!
//! Models the vendor `cusparseSpMM` CSR algorithm: one warp per matrix row
//! (vector-CSR), lanes split the row's nonzeros, each lane gathers the B row
//! of its column index (uncoalesced — one sector per lane), partial sums are
//! combined with warp shuffles. No Tensor Cores, no blocking: the per-nonzero
//! decode cost and scattered B traffic are exactly the weaknesses the paper
//! exploits (§VI-B, up to 125× slower than SMaT).

use smat_formats::{Csr, Dense, Element};
use smat_gpusim::{CopyMode, Gpu, LaunchConfig, LaunchResult, SimError};

/// Prepared cuSPARSE-like engine (CSR is already its native format, so
/// "preparation" is only a footprint computation).
pub struct CusparseLike<'a, T> {
    gpu: &'a Gpu,
    csr: &'a Csr<T>,
}

impl<'a, T: Element> CusparseLike<'a, T> {
    /// An engine over the given CSR matrix on the given device.
    pub fn new(gpu: &'a Gpu, csr: &'a Csr<T>) -> Self {
        CusparseLike { gpu, csr }
    }

    /// `C = A·B` with the vector-CSR kernel.
    pub fn spmm(&self, b: &Dense<T>) -> Result<(LaunchResult, Dense<T>), SimError> {
        let csr = self.csr;
        assert_eq!(csr.ncols(), b.nrows(), "inner dimensions must match");
        let n = b.ncols();
        let n_warps = csr.nrows();

        let cfg = LaunchConfig {
            copy_mode: CopyMode::Synchronous, // no async staging in csrmm
            label: "cusparse-like[csr-spmm]".to_string(),
            footprint_bytes: csr.nnz() * (T::BYTES + 4)
                + (csr.nrows() + 1) * 4
                + (b.nrows() * n + csr.nrows() * n) * T::BYTES,
            shared_bytes_per_block: 0,
            assignment: None,
        };

        let (mut result, rows) = self.gpu.launch(n_warps, &cfg, |ctx| {
            let row = ctx.warp_id;
            let nnz_row = csr.row_nnz(row) as u64;
            let chunks = nnz_row.div_ceil(32).max(1);

            // rowPtr pair.
            ctx.global_contiguous(8);
            // Per 32-nnz chunk: contiguous value+index read, then the B
            // accesses. The reference cuSPARSE SpMM sample (the paper's
            // comparison target, footnote 4) uses column-major B
            // (CUSPARSE_ORDER_COL): element (col, j) of B sits K·2 bytes
            // from (col, j+1), so every (nonzero, output-column) pair is
            // its own scattered sector — N sectors per nonzero. This is
            // the dominant cost and the reason cuSPARSE degrades both on
            // dense matrices (Fig. 9) and with growing N (Fig. 10).
            let useful_bytes = 32 * (T::BYTES as u64 + 4);
            for _ in 0..chunks {
                ctx.global_contiguous(useful_bytes);
                ctx.global_gather(32 * n as u64, T::BYTES as u64);
                ctx.fma(n as u64);
                ctx.alu(5 * n as u64 / 2 + 5); // shuffles + index decode
            }
            // Epilogue: write the C row (column-major: one sector per
            // output column).
            ctx.global_gather(n as u64, T::BYTES as u64);

            // Functional: accumulate the row in the accumulator precision.
            let mut acc = vec![T::accum_zero(); n];
            for (&col, &val) in csr.row_cols(row).iter().zip(csr.row_values(row)) {
                let brow = b.row(col);
                for (a, &bv) in acc.iter_mut().zip(brow) {
                    *a = T::mul_acc(*a, val, bv);
                }
            }
            acc.into_iter().map(T::from_accum).collect::<Vec<T>>()
        })?;

        result.totals.flop_useful = 2 * csr.nnz() as u64 * n as u64;

        let mut c = Dense::zeros(csr.nrows(), n);
        for (row, vals) in rows.into_iter().enumerate() {
            c.row_mut(row).copy_from_slice(&vals);
        }
        Ok((result, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::{Coo, F16};

    fn sample(n: usize) -> Csr<F16> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            for j in 0..n {
                if (i * 13 + j * 7) % 11 == 0 {
                    coo.push(i, j, F16::from_f64(((i + j) % 5) as f64 - 2.0));
                }
            }
        }
        coo.to_csr()
    }

    fn rhs(k: usize, n: usize) -> Dense<F16> {
        Dense::from_fn(k, n, |i, j| F16::from_f64(((i * 2 + j) % 5) as f64 - 2.0))
    }

    #[test]
    fn matches_reference() {
        let a = sample(60);
        for n in [1, 8, 13] {
            let b = rhs(60, n);
            let (_, got) = CusparseLike::new(&Gpu::a100(), &a).spmm(&b).unwrap();
            assert_eq!(got, a.spmm_reference(&b), "N={n}");
        }
    }

    #[test]
    fn cost_scales_with_nnz() {
        let gpu = Gpu::a100();
        let small = sample(64);
        let large = sample(256);
        let t1 = CusparseLike::new(&gpu, &small)
            .spmm(&rhs(64, 8))
            .unwrap()
            .0
            .cycles;
        let t2 = CusparseLike::new(&gpu, &large)
            .spmm(&rhs(256, 8))
            .unwrap()
            .0
            .cycles;
        assert!(t2 > t1);
    }

    #[test]
    fn empty_rows_cost_little_but_run() {
        let a = Csr::<F16>::empty(32, 32);
        let b = rhs(32, 4);
        let (res, c) = CusparseLike::new(&Gpu::a100(), &a).spmm(&b).unwrap();
        assert_eq!(c, Dense::zeros(32, 4));
        assert_eq!(res.warps, 32);
    }
}
