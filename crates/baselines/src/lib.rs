//! # smat-baselines
//!
//! The comparison targets of the paper's evaluation (§V-A), re-implemented
//! algorithmically on the shared A100 simulator so that every library pays
//! its characteristic costs through one cost model:
//!
//! * [`CusparseLike`] — vendor-style CSR SpMM on CUDA cores (per-nonzero
//!   decode, scattered B gathers);
//! * [`DaspLike`] — Tensor-Core SpMV with row-packing, batched over columns
//!   to emulate SpMM (matrix re-streamed per column);
//! * [`MagicubeLike`] — SR-BCRS int16 SpMM on Tensor Cores (stride padding,
//!   large preprocessing footprint, simulated OOMs);
//! * [`CublasLike`] — dense Tensor-Core GEMM reported as effective FLOP/s
//!   over the nonzero fraction;
//! * [`SputnikLike`] — an extra engine beyond the paper's set: Gale et
//!   al.'s swizzled vector-CSR kernel (SC'20), the strongest CUDA-core
//!   comparison point.

#![forbid(unsafe_code)]

pub mod cublas;
pub mod cusparse;
pub mod dasp;
pub mod magicube;
pub mod sputnik;

pub use cublas::{CublasLike, GemmTime};
pub use cusparse::CusparseLike;
pub use dasp::DaspLike;
pub use magicube::MagicubeLike;
pub use sputnik::SputnikLike;
