//! Sputnik-like baseline: CSR SpMM on CUDA cores with the optimizations of
//! Gale et al. ("Sparse GPU kernels for deep learning", SC'20) — row-major
//! `B`, vector memory accesses, one-dimensional tiling, and **row
//! swizzling** (rows scheduled in decreasing-length order so the static SM
//! assignment stays balanced). Not part of the paper's comparison set, but
//! cited in its related work; included here as the strongest CUDA-core
//! baseline — it brackets cuSPARSE from above and shows how much of SMaT's
//! advantage comes from the Tensor Cores rather than from mere access
//! pattern hygiene.

use smat_formats::{Csr, Dense, Element};
use smat_gpusim::{CopyMode, Gpu, LaunchConfig, LaunchResult, SimError};

/// Prepared Sputnik-like engine.
pub struct SputnikLike<'a, T> {
    gpu: &'a Gpu,
    csr: &'a Csr<T>,
    /// Rows in decreasing nnz order (the swizzle).
    schedule: Vec<u32>,
}

impl<'a, T: Element> SputnikLike<'a, T> {
    /// Runs the row-swizzle preprocessing.
    pub fn new(gpu: &'a Gpu, csr: &'a Csr<T>) -> Self {
        let mut schedule: Vec<u32> = (0..csr.nrows() as u32).collect();
        schedule.sort_by_key(|&r| core::cmp::Reverse(csr.row_nnz(r as usize)));
        SputnikLike { gpu, csr, schedule }
    }

    /// `C = A·B` with the swizzled vector-CSR kernel (row-major `B`).
    pub fn spmm(&self, b: &Dense<T>) -> Result<(LaunchResult, Dense<T>), SimError> {
        let csr = self.csr;
        assert_eq!(csr.ncols(), b.nrows(), "inner dimensions must match");
        let n = b.ncols();
        let n_warps = csr.nrows();

        let cfg = LaunchConfig {
            copy_mode: CopyMode::AsyncPipelined, // Sputnik prefetches
            label: "sputnik-like[swizzled-csr]".to_string(),
            footprint_bytes: csr.nnz() * (T::BYTES + 4)
                + (csr.nrows() + 1) * 4
                + (b.nrows() * n + csr.nrows() * n) * T::BYTES,
            shared_bytes_per_block: 8 * 1024,
            assignment: None,
        };

        let (mut result, rows) = self.gpu.launch(n_warps, &cfg, |ctx| {
            // The swizzle maps launch slots to rows: heavy rows spread
            // round-robin over SMs instead of clustering.
            let row = self.schedule[ctx.warp_id] as usize;
            let nnz_row = csr.row_nnz(row) as u64;
            let chunks = nnz_row.div_ceil(32).max(1);

            ctx.global_contiguous(8);
            // Per 32-nnz chunk: contiguous value+index vector loads, and a
            // per-lane gather of the B row *segment* — row-major B means
            // the N elements of one row are one contiguous (sub-)sector
            // access, unlike the column-major layout cuSPARSE's sample
            // uses. FMAs and a shuffle reduction follow.
            let useful_bytes = 32 * (T::BYTES as u64 + 4);
            for _ in 0..chunks {
                ctx.global_contiguous(useful_bytes);
                ctx.global_gather(32, (n * T::BYTES) as u64);
                ctx.fma(n as u64);
                ctx.alu(2 * n as u64 + 4);
            }
            // Row-major C store: one contiguous segment.
            ctx.global_contiguous((n * T::BYTES) as u64);

            // Functional: the row product in accumulator precision.
            let mut acc = vec![T::accum_zero(); n];
            for (&col, &val) in csr.row_cols(row).iter().zip(csr.row_values(row)) {
                let brow = b.row(col);
                for (a, &bv) in acc.iter_mut().zip(brow) {
                    *a = T::mul_acc(*a, val, bv);
                }
            }
            (row, acc.into_iter().map(T::from_accum).collect::<Vec<T>>())
        })?;

        result.totals.flop_useful = 2 * csr.nnz() as u64 * n as u64;

        let mut c = Dense::zeros(csr.nrows(), n);
        for (row, vals) in rows {
            c.row_mut(row).copy_from_slice(&vals);
        }
        Ok((result, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::{Coo, F16};

    fn sample(n: usize) -> Csr<F16> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            for j in 0..n {
                if (i * 7 + j * 11) % 13 == 0 {
                    coo.push(i, j, F16::from_f64(((i + j) % 5) as f64 - 2.0));
                }
            }
        }
        coo.to_csr()
    }

    fn rhs(k: usize, n: usize) -> Dense<F16> {
        Dense::from_fn(k, n, |i, j| F16::from_f64(((i * 2 + j) % 5) as f64 - 2.0))
    }

    #[test]
    fn matches_reference_despite_swizzle() {
        let a = sample(70);
        for n in [1, 8, 13] {
            let b = rhs(70, n);
            let (_, got) = SputnikLike::new(&Gpu::a100(), &a).spmm(&b).unwrap();
            assert_eq!(got, a.spmm_reference(&b), "N={n}");
        }
    }

    #[test]
    fn faster_than_cusparse_like_at_n8() {
        // Row-major B + prefetching must beat the column-major sample
        // kernel — the bracketing property the engine exists for.
        let a = sample(256);
        let b = rhs(256, 8);
        let gpu = Gpu::a100();
        let sputnik = SputnikLike::new(&gpu, &a).spmm(&b).unwrap().0;
        let cusparse = crate::CusparseLike::new(&gpu, &a).spmm(&b).unwrap().0;
        assert!(
            sputnik.time_ms < cusparse.time_ms,
            "sputnik {} vs cusparse {}",
            sputnik.time_ms,
            cusparse.time_ms
        );
    }

    #[test]
    fn swizzle_balances_power_law_rows() {
        // Heavy rows at stride 216 = 2 x 108 SMs: under the unswizzled
        // round-robin schedule they all collide on SM 0; the swizzle packs
        // them into consecutive launch slots, one per SM.
        let n = 1080;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            if i % 216 == 0 {
                for j in 0..n {
                    coo.push(i, j, F16::from_f64(1.0));
                }
            } else {
                coo.push(i, i, F16::from_f64(1.0));
            }
        }
        let a = coo.to_csr();
        let gpu = Gpu::a100();
        let b = rhs(n, 4);
        let sputnik = SputnikLike::new(&gpu, &a).spmm(&b).unwrap().0;
        let cusparse = crate::CusparseLike::new(&gpu, &a).spmm(&b).unwrap().0;
        assert!(
            sputnik.sm_imbalance() <= cusparse.sm_imbalance(),
            "swizzled {} vs unswizzled {}",
            sputnik.sm_imbalance(),
            cusparse.sm_imbalance()
        );
    }
}
