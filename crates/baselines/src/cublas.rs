//! cuBLAS-like baseline: dense GEMM on Tensor Cores.
//!
//! Used as the paper uses it (§VI-C): the sparse matrix is multiplied *as if
//! dense*, padded with explicit zeros, and its performance is reported as
//! effective FLOP/s scaled by the nonzero fraction. The timing is a
//! closed-form roofline over the device constants — dense GEMM with good
//! swizzling streams each operand from DRAM once (compulsory traffic, L2
//! reuse between thread blocks) and otherwise runs at the MMA pipeline rate
//! — plus a wave-quantization and pipeline-efficiency factor. A functional
//! tiled GEMM with Tensor Core accumulation semantics is provided for
//! correctness tests on small operands.

use smat_formats::{Dense, Element};
use smat_gpusim::{Gpu, MmaShape, SimError};

/// Fraction of MMA-pipeline peak a tuned dense kernel sustains on large
/// square problems (cuBLAS on A100 reaches ~85–95% of the 312 TFLOP/s peak).
pub const PIPELINE_EFF: f64 = 0.88;

/// Timing summary of a dense GEMM.
#[derive(Clone, Debug)]
pub struct GemmTime {
    /// Simulated kernel milliseconds.
    pub time_ms: f64,
    /// Dense FLOP executed (`2·m·k·n`).
    pub dense_flop: f64,
    /// Dense GFLOP/s achieved by the kernel.
    pub gflops_dense: f64,
}

impl GemmTime {
    /// The paper's *effective* FLOP/s: dense time, credit only for the
    /// useful sparse work (`2·nnz·n` FLOP).
    pub fn gflops_effective(&self, nnz: usize, n: usize) -> f64 {
        2.0 * nnz as f64 * n as f64 / (self.time_ms * 1e-3) / 1e9
    }
}

/// Dense GEMM engine.
pub struct CublasLike<'a> {
    gpu: &'a Gpu,
}

impl<'a> CublasLike<'a> {
    /// A dense-GEMM engine on the given device.
    pub fn new(gpu: &'a Gpu) -> Self {
        CublasLike { gpu }
    }

    /// Roofline timing of `C(m×n) = A(m×k)·B(k×n)` in a 2-byte input
    /// precision: `max(compute, DRAM) + launch overhead`, where compute is
    /// the MMA-pipeline time of `⌈m/16⌉·⌈n/8⌉·⌈k/16⌉` fragment operations at
    /// the pipeline-efficiency fraction of peak, and DRAM is the compulsory
    /// `(m·k + k·n + m·n)` element traffic at full bandwidth. Scales to the
    /// 16k×16k dense case of Fig. 9 because no element values are touched.
    pub fn gemm_time(&self, m: usize, k: usize, n: usize) -> Result<GemmTime, SimError> {
        let d = &self.gpu.cfg;
        let elem_bytes = 2f64;
        let bytes = (m as f64 * k as f64 + k as f64 * n as f64 + m as f64 * n as f64) * elem_bytes;
        if bytes > d.global_mem_bytes as f64 {
            return Err(SimError::OutOfMemory {
                needed: bytes as usize,
                available: d.global_mem_bytes,
            });
        }

        let frag = MmaShape::M16N8K16;
        let mmas =
            (m.div_ceil(frag.m) as f64) * (n.div_ceil(frag.n) as f64) * (k.div_ceil(frag.k) as f64);
        // SM-cycles, whole device: each SM retires one MMA per
        // `cycles_per_mma`; fragment loads ride in the pipeline at
        // PIPELINE_EFF. Wave quantization: at least one full pass of the
        // grid over the SMs.
        let compute_cycles = mmas * d.cycles_per_mma / (d.num_sms as f64 * PIPELINE_EFF);
        let dram_cycles = bytes / (d.global_bytes_per_cycle * d.num_sms as f64);
        let cycles = compute_cycles.max(dram_cycles) + d.global_latency + d.launch_overhead_cycles;

        let time_ms = d.cycles_to_ms(cycles);
        let dense_flop = 2.0 * m as f64 * k as f64 * n as f64;
        Ok(GemmTime {
            time_ms,
            dense_flop,
            gflops_dense: dense_flop / (time_ms * 1e-3) / 1e9,
        })
    }

    /// Functional dense GEMM for small operands (tests): multiplies with
    /// Tensor Core accumulation semantics (wide accumulator along K, one
    /// rounding on store).
    pub fn gemm<T: Element>(&self, a: &Dense<T>, b: &Dense<T>) -> Dense<T> {
        assert_eq!(a.ncols(), b.nrows(), "inner dimensions must match");
        let (m, n) = (a.nrows(), b.ncols());
        let mut c = Dense::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = T::accum_zero();
                for kk in 0..a.ncols() {
                    acc = T::mul_acc(acc, a.get(i, kk), b.get(kk, j));
                }
                c.set(i, j, T::from_accum(acc));
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::F16;

    #[test]
    fn functional_gemm_matches_reference() {
        let a = Dense::<F16>::from_fn(20, 30, |i, j| F16::from_f64(((i + j) % 5) as f64 - 2.0));
        let b = Dense::<F16>::from_fn(30, 7, |i, j| F16::from_f64(((i * j) % 5) as f64 - 2.0));
        let a_csr = smat_formats::Csr::from_dense(&a);
        let got = CublasLike::new(&Gpu::a100()).gemm(&a, &b);
        assert_eq!(got, a_csr.spmm_reference(&b));
    }

    #[test]
    fn dense_gemm_near_tc_peak_for_large_square() {
        let gpu = Gpu::a100();
        let t = CublasLike::new(&gpu).gemm_time(8192, 8192, 8192).unwrap();
        let peak = gpu.cfg.tc_peak_gflops();
        assert!(
            t.gflops_dense > peak * 0.75 && t.gflops_dense < peak,
            "large GEMM should approach (not exceed) TC peak: {} of {peak}",
            t.gflops_dense
        );
    }

    #[test]
    fn skinny_n_is_memory_bound() {
        let gpu = Gpu::a100();
        let skinny = CublasLike::new(&gpu).gemm_time(16384, 16384, 8).unwrap();
        let square = CublasLike::new(&gpu).gemm_time(4096, 4096, 4096).unwrap();
        assert!(
            skinny.gflops_dense < square.gflops_dense / 4.0,
            "N=8 ({}) should be far below square ({})",
            skinny.gflops_dense,
            square.gflops_dense
        );
        // At N=8 the kernel is bandwidth limited: achieved bytes/s close to
        // the device bandwidth.
        let bytes = (16384f64 * 16384.0 + 16384.0 * 8.0 * 2.0) * 2.0;
        let gbs = bytes / (skinny.time_ms * 1e-3) / 1e9;
        assert!(
            gbs > gpu.cfg.mem_bandwidth_gbs() * 0.5,
            "achieved {gbs} GB/s"
        );
    }

    #[test]
    fn effective_gflops_scales_with_nnz_fraction() {
        let gpu = Gpu::a100();
        let t = CublasLike::new(&gpu).gemm_time(1024, 1024, 8).unwrap();
        let dense_nnz = 1024 * 1024;
        let full = t.gflops_effective(dense_nnz, 8);
        let tenth = t.gflops_effective(dense_nnz / 10, 8);
        assert!((full / tenth - 10.0).abs() < 0.01);
    }

    #[test]
    fn oom_on_oversized_operands() {
        let gpu = Gpu::a100();
        let err = CublasLike::new(&gpu)
            .gemm_time(4_000_000, 4_000_000, 8)
            .unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }));
    }
}
