//! DASP-like baseline: Tensor-Core-accelerated SpMV (Lu & Liu, SC'23),
//! applied to SpMM as a *batched* SpMV — one full pass over the matrix per
//! column of `B`, exactly how the paper evaluates DASP (§V-A).
//!
//! DASP's strength is its row-packing preprocessing: nonzeros are packed
//! into fixed-size groups that feed MMA fragments regardless of row
//! lengths, so even power-law matrices (dc2) stay balanced. Its weakness is
//! the batching: the matrix (and its decode work) is re-streamed for every
//! column, so SMaT overtakes it already at N = 4–8.

use smat_formats::{Csr, Dense, Element};
use smat_gpusim::{CopyMode, Gpu, LaunchConfig, LaunchResult, SimError};

/// Nonzeros one warp processes per SpMV pass (DASP's packed group size).
const GROUP_NNZ: usize = 1024;

/// Fraction of an MMA fragment DASP fills with useful nonzeros on
/// unstructured inputs (~1/8: 32 of 256 slots of an m16n8k16 fragment when
/// packing an SpMV, consistent with DASP's reported TC utilization).
const PACK_SLOTS_PER_MMA: usize = 256;

/// Prepared DASP-like engine: row-packed groups of nonzeros.
pub struct DaspLike<'a, T> {
    gpu: &'a Gpu,
    csr: &'a Csr<T>,
    /// Flattened (row, col, val) triples in packed order.
    packed: Vec<(u32, u32, T)>,
}

impl<'a, T: Element> DaspLike<'a, T> {
    /// Runs DASP's packing preprocessing (here: row-major flattening into
    /// fixed groups, which is what balances the load).
    pub fn new(gpu: &'a Gpu, csr: &'a Csr<T>) -> Self {
        let mut packed = Vec::with_capacity(csr.nnz());
        for (r, c, v) in csr.iter() {
            packed.push((r as u32, c as u32, v));
        }
        DaspLike { gpu, csr, packed }
    }

    /// One SpMV pass `y = A·x` where `x` is column `col` of `B`.
    fn spmv_pass(
        &self,
        b: &Dense<T>,
        col: usize,
    ) -> Result<(LaunchResult, Vec<T::Accum>), SimError> {
        let nnz = self.packed.len();
        let n_warps = nnz.div_ceil(GROUP_NNZ).max(1);
        let cfg = LaunchConfig {
            copy_mode: CopyMode::AsyncPipelined, // DASP pipelines its streams
            label: "dasp-like[spmv]".to_string(),
            footprint_bytes: nnz * (T::BYTES + 8)
                + (self.csr.nrows() + self.csr.ncols()) * T::BYTES,
            shared_bytes_per_block: 16 * 1024,
            assignment: None,
        };

        let (result, partials) = self.gpu.launch(n_warps, &cfg, |ctx| {
            let lo = ctx.warp_id * GROUP_NNZ;
            let hi = (lo + GROUP_NNZ).min(nnz);
            let count = (hi - lo) as u64;

            // Packed stream: value + row/col metadata, fully contiguous.
            ctx.global_contiguous(count * (T::BYTES as u64 + 8));
            // x elements: DASP tiles x through shared memory; charge the
            // shared traffic plus a quarter-sector average for the gather
            // (x is cached, unlike cuSPARSE's raw B gathers).
            ctx.global_contiguous(count * 4 / 4);
            ctx.shared_tx(count.div_ceil(32));
            // Packed-fragment MMAs at ~12.5% slot utilization.
            ctx.mma(count.div_ceil(PACK_SLOTS_PER_MMA as u64 / 2));
            ctx.alu(count.div_ceil(32) * 4);
            // Scattered y accumulation (atomics at group boundaries).
            ctx.global_gather(2, 4);

            // Functional: partial sums of this group, sparse (row, acc).
            let mut partial: Vec<(u32, T::Accum)> = Vec::new();
            for &(r, c, v) in &self.packed[lo..hi] {
                let x = b.get(c as usize, col);
                match partial.last_mut() {
                    Some(last) if last.0 == r => last.1 = T::mul_acc(last.1, v, x),
                    _ => partial.push((r, T::mul_acc(T::accum_zero(), v, x))),
                }
            }
            partial
        })?;

        // Combine group partials into a dense y in accumulator precision.
        // Groups may split a row; contributions to the same row combine by
        // summation in accumulator precision, as the hardware atomics do.
        let mut y = vec![T::accum_zero(); self.csr.nrows()];
        for group in partials {
            for (r, acc) in group {
                // Accumulator-precision add, as the hardware atomics do.
                y[r as usize] = T::accum_add(y[r as usize], acc);
            }
        }
        Ok((result, y))
    }

    /// Batched SpMM: one SpMV pass per column of `B`. Returns the summed
    /// launch statistics (sequential passes) and the product.
    pub fn spmm(&self, b: &Dense<T>) -> Result<(LaunchResult, Dense<T>), SimError> {
        assert_eq!(self.csr.ncols(), b.nrows(), "inner dimensions must match");
        let n = b.ncols();
        let mut c = Dense::zeros(self.csr.nrows(), n);
        let mut total: Option<LaunchResult> = None;
        for col in 0..n {
            let (res, y) = self.spmv_pass(b, col)?;
            for (r, acc) in y.into_iter().enumerate() {
                c.set(r, col, T::from_accum(acc));
            }
            total = Some(match total {
                None => res,
                Some(mut t) => {
                    t.cycles += res.cycles;
                    t.time_ms += res.time_ms;
                    t.totals.add(&res.totals);
                    for (a, b) in t.per_sm_cycles.iter_mut().zip(&res.per_sm_cycles) {
                        *a += b;
                    }
                    t
                }
            });
        }
        let mut result = total.expect("at least one column");
        result.label = "dasp-like[batched-spmv]".to_string();
        result.totals.flop_useful = 2 * self.csr.nnz() as u64 * n as u64;
        Ok((result, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::{Coo, F16};

    fn sample(n: usize) -> Csr<F16> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            for j in 0..n {
                if (i * 5 + j * 3) % 7 == 0 {
                    coo.push(i, j, F16::from_f64(((i * j) % 5) as f64 - 2.0));
                }
            }
        }
        coo.to_csr()
    }

    fn rhs(k: usize, n: usize) -> Dense<F16> {
        Dense::from_fn(k, n, |i, j| F16::from_f64(((i + 3 * j) % 5) as f64 - 2.0))
    }

    #[test]
    fn matches_reference() {
        let a = sample(50);
        for n in [1, 4, 8] {
            let b = rhs(50, n);
            let (_, got) = DaspLike::new(&Gpu::a100(), &a).spmm(&b).unwrap();
            assert_eq!(got, a.spmm_reference(&b), "N={n}");
        }
    }

    #[test]
    fn batched_cost_scales_linearly_with_n() {
        let a = sample(64);
        let gpu = Gpu::a100();
        let engine = DaspLike::new(&gpu, &a);
        let t1 = engine.spmm(&rhs(64, 1)).unwrap().0.cycles;
        let t8 = engine.spmm(&rhs(64, 8)).unwrap().0.cycles;
        let ratio = t8 / t1;
        assert!(
            (6.0..=10.0).contains(&ratio),
            "batched SpMV should scale ~linearly: ratio {ratio}"
        );
    }

    #[test]
    fn groups_split_rows_correctly() {
        // A single dense row longer than one group: partial sums from
        // multiple groups must combine.
        let mut coo = Coo::new(4, 3000);
        for j in 0..3000 {
            coo.push(1, j, F16::from_f64(if j % 2 == 0 { 1.0 } else { -1.0 }));
        }
        coo.push(0, 0, F16::from_f64(2.0));
        let a = coo.to_csr();
        let b = rhs(3000, 2);
        let (_, got) = DaspLike::new(&Gpu::a100(), &a).spmm(&b).unwrap();
        assert_eq!(got, a.spmm_reference(&b));
    }

    #[test]
    fn more_balanced_than_row_per_warp_on_power_law_rows() {
        // A few huge rows among many tiny ones (the dc2 pattern): DASP's
        // nnz-packing balances warps; row-per-warp CSR does not. This is
        // why dc2 is DASP's best case in §VI-B.
        let n = 2048;
        let mut coo = Coo::new(n, n);
        for hot in [0usize, 700, 1400] {
            for j in 0..n {
                coo.push(hot, j, F16::from_f64(((j % 3) as f64) - 1.0));
            }
        }
        for i in 0..n {
            coo.push(i, (i * 17) % n, F16::from_f64(1.0));
        }
        let a = coo.to_csr();
        let gpu = Gpu::a100();
        let b = rhs(n, 1);
        let (dasp_res, _) = DaspLike::new(&gpu, &a).spmm(&b).unwrap();
        let (cusp_res, _) = crate::CusparseLike::new(&gpu, &a).spmm(&b).unwrap();
        assert!(
            dasp_res.sm_imbalance() < cusp_res.sm_imbalance(),
            "dasp {} should be more balanced than cusparse {}",
            dasp_res.sm_imbalance(),
            cusp_res.sm_imbalance()
        );
        assert!(dasp_res.sm_imbalance() < 2.0, "{}", dasp_res.sm_imbalance());
    }
}
