//! # smat-analyze
//!
//! Static analysis for the SMaT workspace: invariant verification of every
//! sparse-matrix storage format and hazard analysis of kernel schedules,
//! reported as machine-readable typed diagnostics.
//!
//! Three passes share the [`smat_diag`] diagnostic core:
//!
//! * **Format verifiers** ([`verify`]) — structural invariants of
//!   CSR/CSC/COO/BCSR/ELL/SR-BCRS matrices and permutations: monotone
//!   pointer arrays, sorted deduplicated in-bounds indices, arity and
//!   dimension consistency, padding-slot hygiene, NaN/Inf payload
//!   detection, bijectivity. Codes `F001`–`F017`.
//! * **Schedule analyzer** ([`schedule`]) — given BCSR geometry, a
//!   [`LaunchConfig`](smat_gpusim::LaunchConfig), a device, and a
//!   [`ScheduleSpec`]: shared-memory overflow, under-reported footprints,
//!   device OOM, malformed or imbalanced warp→SM assignments, `ldmatrix`
//!   bank-conflict exposure, and async double-buffering hazards. Codes
//!   `S001`–`S010`.
//! * **Reporting** ([`report`]) — compiler-style human listings and a
//!   stable JSON rendering for tooling.
//!
//! The `smat` pipeline runs the first two passes as a pre-flight hook
//! (debug builds by default) and rejects error-severity findings with a
//! typed `SimError::PreflightRejected` before the simulator executes; the
//! `analyze` example exposes the same passes as a CLI over `.mtx` files.

#![forbid(unsafe_code)]

pub mod report;
pub mod schedule;
pub mod verify;

pub use report::{render_human, render_json};
pub use schedule::{analyze_launch, ScheduleSpec};
pub use smat_diag::{DiagCode, Diagnostic, DiagnosticsExt, Location, Severity};
pub use verify::{
    verify_bcsr, verify_coo, verify_csc, verify_csr, verify_ell, verify_entries,
    verify_permutation, verify_spmm_dims, verify_srbcrs,
};

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::{Bcsr, Coo, F16};
    use smat_gpusim::{CopyMode, DeviceConfig, LaunchConfig};

    /// End-to-end: a corrupt structure plus an oversubscribed schedule
    /// produce one combined, renderable batch with stable codes.
    #[test]
    fn passes_compose_into_one_batch() {
        let mut coo = Coo::new(32, 32);
        coo.push(0, 0, F16::from_f32(f32::NAN));
        coo.push(17, 3, F16::ONE);
        let bcsr = Bcsr::from_csr(&coo.to_csr(), 16, 16);

        let mut diags = verify_bcsr(&bcsr);
        let cfg = LaunchConfig {
            copy_mode: CopyMode::AsyncPipelined,
            label: "t".into(),
            footprint_bytes: usize::MAX / 2,
            shared_bytes_per_block: 1 << 30,
            assignment: None,
        };
        diags.extend(analyze_launch(
            &bcsr,
            8,
            &cfg,
            &DeviceConfig::a100_sxm4_40gb(),
            &ScheduleSpec::default(),
        ));

        assert!(diags.has_errors());
        let codes = diags.codes();
        assert!(codes.contains(&DiagCode::NonFinitePayload));
        assert!(codes.contains(&DiagCode::SmemOverflow));

        let json = render_json(&diags);
        assert!(json.contains("\"F008\"") && json.contains("\"S001\""));
        assert!(render_human(&diags).contains("error [S001]"));
    }
}
