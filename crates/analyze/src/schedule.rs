//! Kernel-schedule hazard analysis: given the BCSR geometry, a
//! [`LaunchConfig`], the target [`DeviceConfig`], and a [`ScheduleSpec`]
//! describing the kernel's tiling and pipelining, predict the hazards the
//! simulator would either reject at launch (`S001`–`S005`) or silently pay
//! for at runtime (`S006`–`S010`) — before any warp executes.

use smat_diag::{DiagCode, Diagnostic, Location};
use smat_formats::{Bcsr, Element};
use smat_gpusim::{CopyMode, DeviceConfig, LaunchConfig, SharedTile, SmemLayout};

/// How the kernel tiles and pipelines a launch — the knobs the hazard
/// analyzer needs beyond what [`LaunchConfig`] itself records.
///
/// The defaults mirror the SMaT kernel in `smat::kernel`: four column tiles
/// per thread block, 8-wide MMA N tiles, a two-stage async pipeline, and
/// row-major shared-memory staging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleSpec {
    /// Global→shared copy mode the kernel will request.
    pub copy_mode: CopyMode,
    /// Pipeline stage depth for async copies (buffers in flight).
    pub stages: usize,
    /// Layout of the staged A tile in shared memory.
    pub smem_layout: SmemLayout,
    /// Column tiles (warps) per thread block sharing one staged A block.
    pub warps_per_tb: usize,
    /// Output column-tile width (the MMA N dimension).
    pub ntile: usize,
}

impl Default for ScheduleSpec {
    fn default() -> Self {
        ScheduleSpec {
            copy_mode: CopyMode::AsyncPipelined,
            stages: 2,
            smem_layout: SmemLayout::RowMajor,
            warps_per_tb: 4,
            ntile: 8,
        }
    }
}

impl ScheduleSpec {
    /// The spec of the seed kernel with the async-copy optimization toggled
    /// — the `C` flag of the paper's ablation.
    pub fn for_async(async_copy: bool) -> Self {
        ScheduleSpec {
            copy_mode: if async_copy {
                CopyMode::AsyncPipelined
            } else {
                CopyMode::Synchronous
            },
            ..ScheduleSpec::default()
        }
    }
}

/// Threshold on `max / mean` per-SM block load at or above which an
/// explicit assignment is reported as imbalanced.
const IMBALANCE_THRESHOLD: f64 = 2.0;

/// Analyzes one prospective launch of the SMaT kernel for the `S0xx`
/// hazard classes. `n` is the width of the dense right-hand side `B`.
///
/// Error-severity findings are conditions the simulator would reject or
/// silently mis-map (shared-memory overflow, under-reported footprints,
/// device OOM, malformed warp→SM assignments); warnings are schedules that
/// run but leave performance on the table (imbalance, bank conflicts,
/// single-buffered async pipelines, overdeep pipelines).
pub fn analyze_launch<T: Element>(
    a: &Bcsr<T>,
    n: usize,
    cfg: &LaunchConfig,
    device: &DeviceConfig,
    spec: &ScheduleSpec,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let h = a.block_h();
    let w = a.block_w();
    let ntiles = n.div_ceil(spec.ntile).max(1);
    let n_warps = a.nblock_rows() * ntiles;

    // S001: per-block shared memory vs SM capacity. The engine rejects this
    // at launch; pre-flight turns the rejection into a typed finding.
    if cfg.shared_bytes_per_block > device.shared_mem_per_sm {
        diags.push(Diagnostic::new(
            DiagCode::SmemOverflow,
            Location::Field {
                name: "shared_bytes_per_block",
            },
            format!(
                "thread block requests {} B of shared memory but {} has {} B per SM",
                cfg.shared_bytes_per_block, device.name, device.shared_mem_per_sm
            ),
        ));
    }

    // S002/S003: the declared footprint vs what the kernel's operands
    // actually occupy (A payload + index structure, B, and C). A declared
    // footprint below the recomputation makes the engine's OOM check pass
    // vacuously.
    let operand_bytes =
        a.payload_bytes() + a.index_bytes() + (a.ncols() * n + a.nrows() * n) * T::BYTES;
    if cfg.footprint_bytes < operand_bytes {
        diags.push(Diagnostic::new(
            DiagCode::FootprintUnderreported,
            Location::Field {
                name: "footprint_bytes",
            },
            format!(
                "declared footprint {} B is below the {operand_bytes} B the \
                 operands occupy: the OOM check would pass vacuously",
                cfg.footprint_bytes
            ),
        ));
    }
    let worst_footprint = cfg.footprint_bytes.max(operand_bytes);
    if worst_footprint > device.global_mem_bytes {
        diags.push(Diagnostic::new(
            DiagCode::DeviceOom,
            Location::Field {
                name: "footprint_bytes",
            },
            format!(
                "working set of {worst_footprint} B exceeds the {} B of device \
                 memory on {}",
                device.global_mem_bytes, device.name
            ),
        ));
    }

    // S004/S005/S006: explicit warp→SM assignment sanity.
    if let Some(assignment) = &cfg.assignment {
        if assignment.len() != n_warps {
            diags.push(Diagnostic::new(
                DiagCode::AssignmentLength,
                Location::Field { name: "assignment" },
                format!(
                    "assignment maps {} warps but the grid launches {n_warps} \
                     ({} block rows x {ntiles} column tiles)",
                    assignment.len(),
                    a.nblock_rows()
                ),
            ));
        }
        for (warp, &sm) in assignment.iter().enumerate() {
            if sm >= device.num_sms {
                diags.push(Diagnostic::new(
                    DiagCode::AssignmentSmOutOfRange,
                    Location::Warp { warp },
                    format!(
                        "warp {warp} is assigned to SM {sm} but {} has only {} SMs \
                         (the engine would silently wrap it to SM {})",
                        device.name,
                        device.num_sms,
                        sm % device.num_sms
                    ),
                ));
            }
        }
        // Imbalance is only meaningful once every SM could have work.
        if assignment.len() == n_warps && n_warps >= device.num_sms {
            let mut load = vec![0u64; device.num_sms];
            for (warp, &sm) in assignment.iter().enumerate() {
                load[sm % device.num_sms] += a.blocks_in_row(warp / ntiles) as u64 + 1;
            }
            let total: u64 = load.iter().sum();
            let mean = total as f64 / device.num_sms as f64;
            let (busiest, &max) = load
                .iter()
                .enumerate()
                .max_by_key(|&(_, &l)| l)
                .expect("at least one SM");
            if mean > 0.0 && max as f64 >= IMBALANCE_THRESHOLD * mean {
                diags.push(Diagnostic::new(
                    DiagCode::AssignmentImbalance,
                    Location::Sm { sm: busiest },
                    format!(
                        "SM {busiest} is assigned {max} block-loads against a \
                         mean of {mean:.1} ({:.2}x): the makespan is dominated \
                         by one SM",
                        max as f64 / mean
                    ),
                ));
            }
        }
    }

    // S007: ldmatrix bank conflicts of the staged-A layout. The x4 read of
    // a 16x16 FP16 operand is conflict-free at 4 transactions; anything
    // above that stalls every MMA issue.
    if h >= 16 && w >= 16 {
        let tile = SharedTile::new(h, w, spec.smem_layout);
        let tx = tile.ldmatrix_x4_transactions();
        if tx > 4 {
            diags.push(Diagnostic::new(
                DiagCode::BankConflict,
                Location::Field {
                    name: "smem_layout",
                },
                format!(
                    "staged {h}x{w} A tile in {:?} layout costs {tx} shared \
                     transactions per ldmatrix.x4 (conflict-free is 4); use \
                     the padded/skewed layout",
                    spec.smem_layout
                ),
            ));
        }
    }

    // S008–S010: async-pipeline hazards.
    if spec.copy_mode == CopyMode::AsyncPipelined {
        if spec.stages < 2 {
            diags.push(Diagnostic::new(
                DiagCode::AsyncNoDoubleBuffer,
                Location::Field { name: "stages" },
                format!(
                    "async pipelining with {} stage(s) cannot overlap copy \
                     and compute; at least 2 are required",
                    spec.stages
                ),
            ));
        }
        // The per-block budget that double-buffers the staged A tile while
        // keeping the B and C staging areas single-buffered.
        let pipelined_bytes = (spec.stages * h * w
            + spec.warps_per_tb * w * spec.ntile
            + spec.warps_per_tb * h * spec.ntile)
            * T::BYTES;
        if spec.stages >= 2 && cfg.shared_bytes_per_block < pipelined_bytes {
            diags.push(Diagnostic::new(
                DiagCode::AsyncSmemSingleBuffered,
                Location::Field {
                    name: "shared_bytes_per_block",
                },
                format!(
                    "shared budget of {} B single-buffers the staged A tile; \
                     {} async stages need {pipelined_bytes} B, so commits \
                     serialize on one buffer",
                    cfg.shared_bytes_per_block, spec.stages
                ),
            ));
        }
        let max_blocks = (0..a.nblock_rows())
            .map(|bi| a.blocks_in_row(bi))
            .max()
            .unwrap_or(0);
        if max_blocks > 0 && spec.stages > max_blocks {
            diags.push(Diagnostic::new(
                DiagCode::AsyncStagesExceedWork,
                Location::Field { name: "stages" },
                format!(
                    "pipeline depth {} exceeds the heaviest block row \
                     ({max_blocks} blocks): the pipeline never fills and \
                     prologue latency dominates",
                    spec.stages
                ),
            ));
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_diag::DiagnosticsExt;
    use smat_formats::{Coo, Csr, F16};

    fn dense_blocks(nblock_rows: usize, blocks_per_row: usize) -> Bcsr<F16> {
        let mut coo = Coo::new(nblock_rows * 16, blocks_per_row * 16);
        for bi in 0..nblock_rows {
            for bj in 0..blocks_per_row {
                coo.push(bi * 16, bj * 16, F16::ONE);
            }
        }
        Bcsr::from_csr(&coo.to_csr(), 16, 16)
    }

    fn kernel_cfg(a: &Bcsr<F16>, n: usize) -> LaunchConfig {
        LaunchConfig {
            copy_mode: CopyMode::AsyncPipelined,
            label: "test".into(),
            footprint_bytes: a.payload_bytes()
                + a.index_bytes()
                + (a.ncols() * n + a.nrows() * n) * F16::BYTES,
            shared_bytes_per_block: (16 * 16 + 4 * 16 * 8 + 4 * 16 * 8) * F16::BYTES,
            assignment: None,
        }
    }

    #[test]
    fn seed_kernel_schedule_reports_known_warnings_only() {
        let a = dense_blocks(4, 4);
        let cfg = kernel_cfg(&a, 8);
        let d = analyze_launch(
            &a,
            8,
            &cfg,
            &DeviceConfig::a100_sxm4_40gb(),
            &ScheduleSpec::default(),
        );
        assert!(!d.has_errors(), "{d:?}");
        // The seed kernel stages row-major (bank conflicts) and budgets a
        // single A buffer under async copies — both known, by design.
        assert!(d.codes().contains(&DiagCode::BankConflict));
        assert!(d.codes().contains(&DiagCode::AsyncSmemSingleBuffered));
    }

    #[test]
    fn smem_overflow_fires_s001() {
        let a = dense_blocks(2, 2);
        let mut cfg = kernel_cfg(&a, 8);
        cfg.shared_bytes_per_block = 1 << 20;
        let d = analyze_launch(
            &a,
            8,
            &cfg,
            &DeviceConfig::a100_sxm4_40gb(),
            &ScheduleSpec::default(),
        );
        assert!(d.codes().contains(&DiagCode::SmemOverflow));
        assert!(d.has_errors());
    }

    #[test]
    fn footprint_underreport_fires_s002() {
        let a = dense_blocks(2, 2);
        let mut cfg = kernel_cfg(&a, 8);
        cfg.footprint_bytes = 16;
        let d = analyze_launch(
            &a,
            8,
            &cfg,
            &DeviceConfig::a100_sxm4_40gb(),
            &ScheduleSpec::default(),
        );
        assert!(d.codes().contains(&DiagCode::FootprintUnderreported));
    }

    #[test]
    fn device_oom_fires_s003_on_tiny_device() {
        let a = dense_blocks(8, 8);
        let cfg = kernel_cfg(&a, 4096);
        let d = analyze_launch(
            &a,
            4096,
            &cfg,
            &DeviceConfig::tiny_test_device(),
            &ScheduleSpec::default(),
        );
        assert!(d.codes().contains(&DiagCode::DeviceOom), "{d:?}");
    }

    #[test]
    fn malformed_assignment_fires_s004_and_s005() {
        let a = dense_blocks(4, 2);
        let dev = DeviceConfig::tiny_test_device(); // 2 SMs
        let mut cfg = kernel_cfg(&a, 8);
        cfg.assignment = Some(vec![0, 1, 7]); // wrong length, SM 7 invalid
        let d = analyze_launch(&a, 8, &cfg, &dev, &ScheduleSpec::default());
        assert!(d.codes().contains(&DiagCode::AssignmentLength));
        assert!(d.codes().contains(&DiagCode::AssignmentSmOutOfRange));
    }

    #[test]
    fn lopsided_assignment_fires_s006() {
        let a = dense_blocks(8, 4);
        let dev = DeviceConfig::tiny_test_device(); // 2 SMs
        let mut cfg = kernel_cfg(&a, 8);
        // Everything on SM 0; SM 1 idles.
        cfg.assignment = Some(vec![0; 8]);
        let d = analyze_launch(&a, 8, &cfg, &dev, &ScheduleSpec::default());
        assert!(d.codes().contains(&DiagCode::AssignmentImbalance), "{d:?}");
        let balanced: Vec<usize> = (0..8).map(|w| w % 2).collect();
        cfg.assignment = Some(balanced);
        let d = analyze_launch(&a, 8, &cfg, &dev, &ScheduleSpec::default());
        assert!(!d.codes().contains(&DiagCode::AssignmentImbalance), "{d:?}");
    }

    #[test]
    fn padded_layout_clears_s007() {
        let a = dense_blocks(2, 2);
        let cfg = kernel_cfg(&a, 8);
        let spec = ScheduleSpec {
            smem_layout: SmemLayout::Padded,
            ..ScheduleSpec::default()
        };
        let d = analyze_launch(&a, 8, &cfg, &DeviceConfig::a100_sxm4_40gb(), &spec);
        assert!(!d.codes().contains(&DiagCode::BankConflict), "{d:?}");
    }

    #[test]
    fn single_stage_async_fires_s008() {
        let a = dense_blocks(2, 2);
        let cfg = kernel_cfg(&a, 8);
        let spec = ScheduleSpec {
            stages: 1,
            ..ScheduleSpec::default()
        };
        let d = analyze_launch(&a, 8, &cfg, &DeviceConfig::a100_sxm4_40gb(), &spec);
        assert!(d.codes().contains(&DiagCode::AsyncNoDoubleBuffer));
        assert!(d.has_errors());
    }

    #[test]
    fn overdeep_pipeline_fires_s010() {
        let a = dense_blocks(4, 2); // heaviest block row: 2 blocks
        let cfg = kernel_cfg(&a, 8);
        let spec = ScheduleSpec {
            stages: 5,
            ..ScheduleSpec::default()
        };
        let d = analyze_launch(&a, 8, &cfg, &DeviceConfig::a100_sxm4_40gb(), &spec);
        assert!(d.codes().contains(&DiagCode::AsyncStagesExceedWork));
    }

    #[test]
    fn synchronous_copies_skip_async_hazards() {
        let a = dense_blocks(2, 2);
        let mut cfg = kernel_cfg(&a, 8);
        cfg.copy_mode = CopyMode::Synchronous;
        let spec = ScheduleSpec::for_async(false);
        let d = analyze_launch(&a, 8, &cfg, &DeviceConfig::a100_sxm4_40gb(), &spec);
        for c in d.codes() {
            assert!(
                !matches!(
                    c,
                    DiagCode::AsyncNoDoubleBuffer
                        | DiagCode::AsyncSmemSingleBuffered
                        | DiagCode::AsyncStagesExceedWork
                ),
                "{c:?}"
            );
        }
    }

    #[test]
    fn empty_matrix_is_hazard_free_modulo_layout() {
        let a = Bcsr::from_csr(&Csr::<F16>::empty(32, 32), 16, 16);
        let cfg = kernel_cfg(&a, 8);
        let d = analyze_launch(
            &a,
            8,
            &cfg,
            &DeviceConfig::a100_sxm4_40gb(),
            &ScheduleSpec::default(),
        );
        assert!(!d.has_errors(), "{d:?}");
    }
}
