//! Format-invariant verifiers: one pass per storage format, each returning
//! every violation it finds as a typed [`Diagnostic`].
//!
//! The structural checks (pointer shapes, index ranges, sort order,
//! bijectivity) are shared with the typed constructors through
//! [`smat_formats::validate`]; the passes here add what only a whole-value
//! scan can see — NaN/Inf payloads ([`DiagCode::NonFinitePayload`]),
//! padding slots that must be zero ([`DiagCode::PaddingNotZero`]), COO
//! entries outside the matrix ([`DiagCode::EntryOutOfBounds`]), and
//! cross-structure dimension agreement ([`DiagCode::DimensionMismatch`]).

use smat_diag::{DiagCode, Diagnostic, Location};
use smat_formats::ell::EMPTY_SLOT;
use smat_formats::srbcrs::PAD_COL;
use smat_formats::validate::{validate_bcsr_parts, validate_csr_parts, validate_permutation};
use smat_formats::{Bcsr, Coo, Csc, Csr, Element, Ell, Permutation, SrBcrs};

/// Scans a value slice for NaN/Inf payloads, reporting each offending
/// position as [`DiagCode::NonFinitePayload`].
fn scan_finite<T: Element>(values: &[T], what: &str, diags: &mut Vec<Diagnostic>) {
    for (pos, v) in values.iter().enumerate() {
        let f = v.to_f64();
        if !f.is_finite() {
            diags.push(Diagnostic::new(
                DiagCode::NonFinitePayload,
                Location::Pos { pos },
                format!("{what} value at position {pos} is {f} (must be finite)"),
            ));
        }
    }
}

/// Verifies every CSR invariant: pointer shape, strictly increasing
/// in-range column indices, index/value arity, and finite payloads.
pub fn verify_csr<T: Element>(m: &Csr<T>) -> Vec<Diagnostic> {
    let mut diags = validate_csr_parts(
        m.nrows(),
        m.ncols(),
        m.row_ptr(),
        m.col_idx(),
        m.values().len(),
    );
    scan_finite(m.values(), "CSR", &mut diags);
    diags
}

/// Verifies every BCSR invariant: nonzero block dimensions, the
/// block-granularity pointer structure, payload arity `nblocks·h·w`, a
/// plausible scalar `nnz`, and finite payloads.
pub fn verify_bcsr<T: Element>(m: &Bcsr<T>) -> Vec<Diagnostic> {
    let mut diags = validate_bcsr_parts(
        m.nrows(),
        m.ncols(),
        m.block_h(),
        m.block_w(),
        m.row_ptr(),
        m.col_idx(),
        m.values().len(),
        m.nnz(),
    );
    scan_finite(m.values(), "BCSR block", &mut diags);
    diags
}

/// Verifies a COO triplet list: every entry inside the matrix bounds
/// ([`DiagCode::EntryOutOfBounds`]), duplicate coordinates flagged as a
/// warning ([`DiagCode::DuplicateEntry`] — legal before `compact`, but a
/// conversion to CSR will silently sum them), and finite payloads.
pub fn verify_coo<T: Element>(m: &Coo<T>) -> Vec<Diagnostic> {
    verify_entries(m.nrows(), m.ncols(), m.entries())
}

/// Raw-triplet form of [`verify_coo`], for entry lists that have not been
/// through the bounds-asserting [`Coo`] constructors (e.g. a parser's
/// intermediate buffer).
pub fn verify_entries<T: Element>(
    nrows: usize,
    ncols: usize,
    entries: &[(usize, usize, T)],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (pos, &(r, c, v)) in entries.iter().enumerate() {
        if r >= nrows || c >= ncols {
            diags.push(Diagnostic::new(
                DiagCode::EntryOutOfBounds,
                Location::Pos { pos },
                format!("entry ({r},{c}) out of bounds for {nrows}x{ncols}"),
            ));
        }
        if !v.to_f64().is_finite() {
            diags.push(Diagnostic::new(
                DiagCode::NonFinitePayload,
                Location::Pos { pos },
                format!(
                    "COO value at position {pos} is {} (must be finite)",
                    v.to_f64()
                ),
            ));
        }
    }
    let mut coords: Vec<(usize, usize)> = entries.iter().map(|&(r, c, _)| (r, c)).collect();
    coords.sort_unstable();
    for w in coords.windows(2) {
        if w[0] == w[1] {
            diags.push(Diagnostic::new(
                DiagCode::DuplicateEntry,
                Location::Row { row: w[0].0 },
                format!(
                    "duplicate coordinate ({}, {}): conversion will sum the values",
                    w[0].0, w[0].1
                ),
            ));
        }
    }
    diags
}

/// Verifies a CSC matrix column by column: strictly increasing in-range row
/// indices per column, a per-column total that matches `nnz`, and finite
/// payloads.
pub fn verify_csc<T: Element>(m: &Csc<T>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut total = 0usize;
    for j in 0..m.ncols() {
        let rows = m.col_rows(j);
        total += rows.len();
        for w in rows.windows(2) {
            if w[0] >= w[1] {
                diags.push(Diagnostic::new(
                    DiagCode::ColIdxUnsorted,
                    Location::Row { row: j },
                    format!(
                        "row indices in column {j} must be strictly increasing: {} after {}",
                        w[1], w[0]
                    ),
                ));
            }
        }
        for &r in rows {
            if r >= m.nrows() {
                diags.push(Diagnostic::new(
                    DiagCode::ColIdxOutOfBounds,
                    Location::Row { row: j },
                    format!(
                        "row index {r} out of range in column {j} (nrows = {})",
                        m.nrows()
                    ),
                ));
            }
        }
        scan_finite(m.col_values(j), "CSC", &mut diags);
    }
    if total != m.nnz() {
        diags.push(Diagnostic::new(
            DiagCode::NnzInconsistent,
            Location::Whole,
            format!("columns hold {total} entries but nnz reports {}", m.nnz()),
        ));
    }
    diags
}

/// Verifies an ELL matrix: occupied slots carry in-range columns and finite
/// values, and the occupied-slot count matches the recorded `nnz`.
pub fn verify_ell<T: Element>(m: &Ell<T>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut occupied = 0usize;
    for r in 0..m.nrows() {
        for s in 0..m.width() {
            let Some((c, v)) = m.slot(r, s) else {
                continue;
            };
            occupied += 1;
            if c != EMPTY_SLOT && c >= m.ncols() {
                diags.push(Diagnostic::new(
                    DiagCode::ColIdxOutOfBounds,
                    Location::Row { row: r },
                    format!(
                        "slot {s} of row {r} names column {c} (ncols = {})",
                        m.ncols()
                    ),
                ));
            }
            if !v.to_f64().is_finite() {
                diags.push(Diagnostic::new(
                    DiagCode::NonFinitePayload,
                    Location::Row { row: r },
                    format!("slot {s} of row {r} holds {} (must be finite)", v.to_f64()),
                ));
            }
        }
    }
    if occupied != m.nnz() {
        diags.push(Diagnostic::new(
            DiagCode::NnzInconsistent,
            Location::Whole,
            format!("{occupied} occupied slots but nnz reports {}", m.nnz()),
        ));
    }
    diags
}

/// Verifies an SR-BCRS matrix: panel-pointer shape, in-range non-padding
/// column indices, padded zero vectors that are actually zero
/// ([`DiagCode::PaddingNotZero`]), a nonzero count that matches the stored
/// payload, and finite payloads.
pub fn verify_srbcrs<T: Element>(m: &SrBcrs<T>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let pp = m.panel_ptr();
    if pp.first() != Some(&0) {
        diags.push(Diagnostic::new(
            DiagCode::RowPtrStart,
            Location::RowPtr { index: 0 },
            format!("panel_ptr must start at 0, found {:?}", pp.first()),
        ));
    }
    for i in 0..m.npanels() {
        if pp[i] > pp[i + 1] {
            diags.push(Diagnostic::new(
                DiagCode::RowPtrNonMonotone,
                Location::RowPtr { index: i + 1 },
                format!(
                    "panel_ptr must be monotone: panel_ptr[{i}] = {} > panel_ptr[{}] = {}",
                    pp[i],
                    i + 1,
                    pp[i + 1]
                ),
            ));
        }
    }
    if pp.last() != Some(&m.nvectors()) {
        diags.push(Diagnostic::new(
            DiagCode::RowPtrEnd,
            Location::RowPtr { index: m.npanels() },
            format!(
                "panel_ptr must end at the vector count {}, found {:?}",
                m.nvectors(),
                pp.last()
            ),
        ));
        return diags; // vector offsets below would be unreliable
    }

    let mut stored_nonzeros = 0usize;
    for (p, &panel_base) in pp.iter().enumerate().take(m.npanels()) {
        for v in 0..m.vectors_in_panel(p) {
            let c = m.col_idx()[panel_base + v];
            let is_pad = c == PAD_COL;
            if !is_pad && c >= m.ncols() {
                diags.push(Diagnostic::new(
                    DiagCode::ColIdxOutOfBounds,
                    Location::Pos {
                        pos: panel_base + v,
                    },
                    format!(
                        "vector {v} of panel {p} names column {c} (ncols = {})",
                        m.ncols()
                    ),
                ));
            }
            for lr in 0..m.vec_len() {
                let val = m.vector_element(p, v, lr).to_f64();
                if !val.is_finite() {
                    diags.push(Diagnostic::new(
                        DiagCode::NonFinitePayload,
                        Location::Pos {
                            pos: panel_base + v,
                        },
                        format!(
                            "element {lr} of vector {v} in panel {p} is {val} (must be finite)"
                        ),
                    ));
                } else if val != 0.0 {
                    if is_pad {
                        diags.push(Diagnostic::new(
                            DiagCode::PaddingNotZero,
                            Location::Pos {
                                pos: panel_base + v,
                            },
                            format!(
                                "padded zero vector {v} of panel {p} holds {val} at element {lr}"
                            ),
                        ));
                    } else {
                        stored_nonzeros += 1;
                    }
                }
            }
        }
    }
    if stored_nonzeros != m.nnz() {
        diags.push(Diagnostic::new(
            DiagCode::NnzInconsistent,
            Location::Whole,
            format!(
                "vectors hold {stored_nonzeros} nonzeros but nnz reports {}",
                m.nnz()
            ),
        ));
    }
    diags
}

/// Verifies a permutation is a bijection of `0..len` and, when an expected
/// domain size is given, that the length matches it
/// ([`DiagCode::PermLengthMismatch`]).
pub fn verify_permutation(p: &Permutation, expected_len: Option<usize>) -> Vec<Diagnostic> {
    let mut diags = validate_permutation(p.as_slice());
    if let Some(n) = expected_len {
        if p.len() != n {
            diags.push(Diagnostic::new(
                DiagCode::PermLengthMismatch,
                Location::Whole,
                format!(
                    "permutation has length {} but permutes a dimension of {n}",
                    p.len()
                ),
            ));
        }
    }
    diags
}

/// Checks the SpMM operand shapes `C[m×n] = A[m×k] · B[k×n]`
/// ([`DiagCode::DimensionMismatch`] when `A.ncols != B.nrows`).
pub fn verify_spmm_dims(
    a_nrows: usize,
    a_ncols: usize,
    b_nrows: usize,
    b_ncols: usize,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if a_ncols != b_nrows {
        diags.push(Diagnostic::new(
            DiagCode::DimensionMismatch,
            Location::Whole,
            format!(
                "inner dimensions must match: A is {a_nrows}x{a_ncols}, B is {b_nrows}x{b_ncols}"
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_diag::DiagnosticsExt;
    use smat_formats::F16;

    fn sample_csr() -> Csr<f32> {
        let mut coo = Coo::new(4, 6);
        coo.push(0, 0, 1.0);
        coo.push(0, 5, 2.0);
        coo.push(1, 2, 3.0);
        coo.push(3, 1, 4.0);
        coo.push(3, 3, 5.0);
        coo.to_csr()
    }

    #[test]
    fn well_formed_structures_are_clean() {
        let csr = sample_csr();
        assert!(verify_csr(&csr).is_empty());
        assert!(verify_csc(&Csc::from_csr(&csr)).is_empty());
        assert!(verify_ell(&Ell::from_csr(&csr)).is_empty());
        assert!(verify_srbcrs(&SrBcrs::from_csr(&csr, 2, 2)).is_empty());
        assert!(verify_bcsr(&Bcsr::from_csr(&csr, 2, 2)).is_empty());
        assert!(verify_coo(&csr.to_coo()).is_empty());
        assert!(verify_permutation(&Permutation::identity(4), Some(4)).is_empty());
    }

    #[test]
    fn nan_payload_fires_f008() {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 0, F16::from_f32(f32::NAN));
        coo.push(1, 1, F16::ONE);
        let d = verify_coo(&coo);
        assert!(d.codes().contains(&DiagCode::NonFinitePayload), "{d:?}");
        let csr = coo.to_csr();
        assert!(verify_csr(&csr)
            .codes()
            .contains(&DiagCode::NonFinitePayload));
        let bcsr = Bcsr::from_csr(&csr, 2, 2);
        assert!(verify_bcsr(&bcsr)
            .codes()
            .contains(&DiagCode::NonFinitePayload));
    }

    #[test]
    fn coo_duplicates_warn_but_do_not_error() {
        let mut coo = Coo::new(3, 3);
        coo.push(1, 1, 1.0f32);
        coo.push(1, 1, 2.0);
        let d = verify_coo(&coo);
        assert_eq!(d.codes(), vec![DiagCode::DuplicateEntry]);
        assert!(!d.has_errors());
    }

    #[test]
    fn raw_entry_out_of_bounds_fires_f016() {
        // `Coo` constructors assert bounds, so the raw-triplet verifier is
        // the path a parser would take before building the structure.
        let d = verify_entries(4, 4, &[(1, 2, 1.0f32), (6, 7, 1.0)]);
        assert_eq!(d.codes(), vec![DiagCode::EntryOutOfBounds]);
        assert!(d.has_errors());
    }

    #[test]
    fn permutation_length_mismatch_fires_f014() {
        let p = Permutation::identity(4);
        let d = verify_permutation(&p, Some(6));
        assert_eq!(d.codes(), vec![DiagCode::PermLengthMismatch]);
    }

    #[test]
    fn spmm_dims_mismatch_fires_f009() {
        assert!(verify_spmm_dims(8, 8, 8, 4).is_empty());
        let d = verify_spmm_dims(8, 8, 4, 4);
        assert_eq!(d.codes(), vec![DiagCode::DimensionMismatch]);
        assert!(d.has_errors());
    }

    #[test]
    fn ell_propagates_nonfinite_payloads() {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 0, F16::from_f32(f32::NAN));
        coo.push(2, 1, F16::ONE);
        let e = Ell::from_csr(&coo.to_csr());
        let d = verify_ell(&e);
        assert!(d.codes().contains(&DiagCode::NonFinitePayload), "{d:?}");
    }
}
