//! Rendering of diagnostic batches: a compiler-style human listing and a
//! line-stable JSON array for tooling (`smat-analyze --format json`).

use smat_diag::{Diagnostic, DiagnosticsExt, Severity};

/// Renders a batch as a compiler-style listing, one finding per line,
/// followed by a summary line (`N errors, M warnings`). An empty batch
/// renders as a single "no findings" line.
pub fn render_human(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "no findings\n".to_string();
    }
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    out.push_str(&format!(
        "{} error(s), {warnings} warning(s), {} finding(s)\n",
        diags.error_count(),
        diags.len()
    ));
    out
}

/// Renders a batch as a JSON array. Every element carries the stable short
/// code (`"F001"`), the severity, the display form of the location, and
/// the message:
///
/// ```json
/// [{"code":"S001","severity":"error","location":"shared_bytes_per_block","message":"..."}]
/// ```
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"code\":{},\"severity\":{},\"location\":{},\"message\":{}}}",
            json_string(d.code.as_str()),
            json_string(&d.severity.to_string()),
            json_string(&d.location.to_string()),
            json_string(&d.message),
        ));
    }
    out.push(']');
    out
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_diag::{DiagCode, Location};

    fn batch() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new(
                DiagCode::SmemOverflow,
                Location::Field {
                    name: "shared_bytes_per_block",
                },
                "needs 200000 B",
            ),
            Diagnostic::new(
                DiagCode::BankConflict,
                Location::Whole,
                "8 tx \"row-major\"",
            ),
        ]
    }

    #[test]
    fn human_listing_has_summary() {
        let s = render_human(&batch());
        assert!(s.contains("error [S001] at shared_bytes_per_block: needs 200000 B"));
        assert!(s.contains("1 error(s), 1 warning(s), 2 finding(s)"));
        assert_eq!(render_human(&[]), "no findings\n");
    }

    #[test]
    fn json_uses_stable_codes_and_escapes() {
        let s = render_json(&batch());
        assert!(s.starts_with('[') && s.ends_with(']'));
        assert!(s.contains("\"code\":\"S001\""));
        assert!(s.contains("\"severity\":\"warning\""));
        assert!(s.contains("8 tx \\\"row-major\\\""), "{s}");
        assert_eq!(render_json(&[]), "[]");
    }
}
